// E10 — formal specification + automated verification (Martonosi, §4),
// instantiated on the hardware memory-consistency interface.
//
// The classic litmus suite checked against SC and x86-TSO by two
// independent formal engines (operational state-space exploration and
// axiomatic candidate enumeration), plus enumeration throughput.
//
// Expected shape: the allowed/forbidden table matches the literature
// exactly (SB is the lone SC/TSO divergence; fences/RMWs restore order);
// the two engines agree wherever both apply.
#include <chrono>
#include <iostream>

#include "memmodel/litmus.hpp"
#include "support/table.hpp"

using namespace harmony;
using namespace harmony::memmodel;

int main() {
  std::cout << "E10: litmus tests under two formal models x two checkers\n\n";

  Table t({"test", "SC", "TSO", "PSO", "axiom_agrees", "expected_TSO",
           "expected_PSO"});
  t.title("E10.a — allowed/forbidden table (classic suite, operational; "
          "axiomatic cross-checked)");
  bool all_ok = true;
  for (const LitmusTest& test : classic_suite()) {
    const auto sc_op = check_operational(test, Model::kSc);
    const auto tso_op = check_operational(test, Model::kTso);
    const auto pso_op = check_operational(test, Model::kPso);
    bool agree = true;
    if (!test.uses_rmw()) {
      agree = check_axiomatic(test, Model::kSc).condition_reachable ==
                  sc_op.condition_reachable &&
              check_axiomatic(test, Model::kTso).condition_reachable ==
                  tso_op.condition_reachable &&
              check_axiomatic(test, Model::kPso).condition_reachable ==
                  pso_op.condition_reachable;
    }
    const bool matches_truth =
        sc_op.condition_reachable == test.allowed_sc &&
        tso_op.condition_reachable == test.allowed_tso &&
        pso_op.condition_reachable == test.allowed_pso;
    all_ok = all_ok && agree && matches_truth;
    auto verdict = [](const CheckResult& r) {
      return std::string(r.condition_reachable ? "allowed" : "forbidden");
    };
    t.add_row({test.name, verdict(sc_op), verdict(tso_op), verdict(pso_op),
               std::string(agree ? "yes" : "NO"),
               std::string(test.allowed_tso ? "allowed" : "forbidden"),
               std::string(test.allowed_pso ? "allowed" : "forbidden")});
  }
  t.print(std::cout);

  // Fence synthesis: automated *repair*, not just detection.
  std::cout << '\n';
  Table f({"test", "model", "min_fences", "minimal_sets", "tried"});
  f.title("E10.b — minimal fence sets that forbid the weak outcome");
  struct Job {
    const char* name;
    LitmusTest test;
    Model model;
  };
  const Job jobs[] = {
      {"SB on TSO", store_buffering(), Model::kTso},
      {"SB on PSO", store_buffering(), Model::kPso},
      {"MP on PSO", message_passing(), Model::kPso},
      {"2+2W on PSO", two_plus_two_w(), Model::kPso},
  };
  for (const Job& j : jobs) {
    const FenceSynthesisResult r = synthesize_fences(j.test, j.model);
    f.add_row({std::string(j.name),
               std::string(j.model == Model::kTso ? "TSO" : "PSO"),
               r.minimal_sets.empty()
                   ? std::int64_t{0}
                   : static_cast<std::int64_t>(r.minimal_sets[0].size()),
               static_cast<std::int64_t>(r.minimal_sets.size()),
               static_cast<std::int64_t>(r.candidates_tried)});
  }
  f.print(std::cout);

  // Enumeration effort / throughput.
  std::cout << '\n';
  Table e({"test", "model", "states_visited", "final_states",
           "checks_per_ms"});
  e.title("E10.c — operational state-space sizes and throughput");
  for (const LitmusTest& test : classic_suite()) {
    for (Model m : {Model::kSc, Model::kTso, Model::kPso}) {
      const auto t0 = std::chrono::steady_clock::now();
      constexpr int kReps = 50;
      CheckResult last;
      for (int i = 0; i < kReps; ++i) last = check_operational(test, m);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      e.add_row({test.name,
                 std::string(m == Model::kSc   ? "SC"
                             : m == Model::kTso ? "TSO"
                                                : "PSO"),
                 static_cast<std::int64_t>(last.states_visited),
                 static_cast<std::int64_t>(last.executions_explored),
                 kReps / std::max(ms, 1e-6)});
    }
  }
  e.print(std::cout);

  std::cout << "\nShape check: only SB diverges between SC and TSO; "
               "SB+mfences and SB+rmws are forbidden again; operational "
               "and axiomatic verdicts agree on every non-RMW test ("
            << (all_ok ? "HOLDS" : "VIOLATED") << ").\n";
  return all_ok ? 0 : 1;
}
