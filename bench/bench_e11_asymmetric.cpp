// E11 — asymmetric read/write costs (Blelloch, §2: "reasonably simple
// extensions that support accounting for locality, as well as asymmetry
// in read-write costs").
//
// Two kernel pairs traced through the ARAM counter and priced at a
// sweep of write-cost multipliers omega (the NVM regime):
//   * scan: sequential (n writes) vs tree/parallel-friendly (~3n writes)
//   * sort: 2-way mergesort (n log2 n writes) vs k-way mergesort
//     (n log_k n writes) for k in {4, 16}
//
// Expected shape: write-lean variants win more as omega grows; the
// k-way-vs-2-way advantage scales like log2(k) in the write term, and
// the omega at which k-way's total cost advantage exceeds 2x is the
// reported crossover.
#include <iostream>

#include "algos/scan.hpp"
#include "algos/sort.hpp"
#include "cache/aram.hpp"
#include "cache/traced.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E11: ARAM (read=1, write=omega) costs of write-lean vs "
               "write-heavy schedules\n\n";

  const std::size_t n = 1 << 14;

  // --- scan pair ---------------------------------------------------------
  cache::AddressSpace space;
  cache::AramCounter seq_scan;
  {
    cache::TracedArray<double> in(n, space, seq_scan);
    cache::TracedArray<double> out(n, space, seq_scan);
    algos::inclusive_scan_traced(in, out, 0.0);
  }
  cache::AramCounter tree_scan;
  {
    cache::TracedArray<double> in(n, space, tree_scan);
    cache::TracedArray<double> out(n, space, tree_scan);
    cache::TracedArray<double> tmp(n, space, tree_scan);
    algos::tree_scan_traced(in, out, tmp, 0.0);
  }

  // --- sort trio ----------------------------------------------------------
  const auto keys = algos::random_keys(n, 5);
  cache::AramCounter sort2;
  {
    cache::TracedArray<std::int64_t> a(keys, space, sort2);
    algos::merge_sort_traced(a);
  }
  cache::AramCounter sort4;
  {
    cache::TracedArray<std::int64_t> a(keys, space, sort4);
    algos::kway_merge_sort_traced(a, 4);
  }
  cache::AramCounter sort16;
  {
    cache::TracedArray<std::int64_t> a(keys, space, sort16);
    algos::kway_merge_sort_traced(a, 16);
  }
  cache::AramCounter sort16u;
  {
    cache::TracedArray<std::int64_t> a(keys, space, sort16u);
    algos::kway_merge_sort_uncached(a, 16);
  }

  Table io({"kernel", "reads", "writes", "writes_per_elem"});
  io.title("E11.a — big-memory traffic (n = 2^14)");
  auto row = [&](const char* name, const cache::AramCounter& c) {
    io.add_row({std::string(name), static_cast<std::int64_t>(c.reads()),
                static_cast<std::int64_t>(c.writes()),
                static_cast<double>(c.writes()) / static_cast<double>(n)});
  };
  row("scan sequential", seq_scan);
  row("scan tree (parallel-friendly)", tree_scan);
  row("mergesort 2-way", sort2);
  row("mergesort 4-way", sort4);
  row("mergesort 16-way (cached heads)", sort16);
  row("mergesort 16-way (uncached heads)", sort16u);
  io.print(std::cout);

  std::cout << '\n';
  Table t({"omega", "tree_scan/seq_scan", "2way/16way_cached",
           "2way/16way_uncached", "uncached_wins"});
  t.title("E11.b — ARAM cost ratios vs write-cost multiplier omega");
  double crossover = -1.0;
  for (double omega : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const double r = sort2.cost(omega) / sort16u.cost(omega);
    if (r > 1.0 && crossover < 0) crossover = omega;
    t.add_row({omega, tree_scan.cost(omega) / seq_scan.cost(omega),
               sort2.cost(omega) / sort16.cost(omega), r,
               std::string(r > 1.0 ? "yes" : "no")});
  }
  t.print(std::cout);

  std::cout << "\nShape check: 16-way halves the write passes (14 levels "
               "-> 4) for a constant-factor win at every omega; the "
               "*uncached* 16-way trades ~4x extra reads for those write "
               "savings and only wins once omega exceeds ~k/log2(k) "
               "(measured crossover: first winning omega = "
            << crossover << ", theory ~5).\n";
  return 0;
}
