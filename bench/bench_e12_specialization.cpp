// E12 — the specialization gap (Dally, §3): "The energy overhead of an
// ADD instruction is 10,000x times more than the energy required to do
// the add" ... "Such programs can be mapped to accelerators that are
// >10,000x or more efficient than conventional architectures.
// Alternatively, they can be targeted to programmable architectures that
// are 100s of times more efficient."
//
// The same function (a weight-stationary 1-D convolution, plus the DP
// wavefront) is priced under five implementation styles, all from one
// technology model:
//
//   CPU, operands in DRAM — instruction tax (10,000x) + off-chip fetch
//   CPU, operands in LLC  — instruction tax + ~5 mm SRAM reach
//   programmable grid     — explicit F&M movement + a ~30x light-core tax
//   fixed array @0.2 mm   — the lowered mapping at programmable-PE pitch
//   fixed array @0.02 mm  — the same netlist shrunk to MAC-cell pitch
//
// The pitch sweep is the connective tissue between the paper's two
// headline claims: by its own 80 fJ/bit-mm constant, a fixed-function
// array only clears the ">10,000x" bar against a CPU whose operands
// travel off-chip, and only when its own operand wires are tens of
// microns — movement, not arithmetic, sets every one of these ratios.
#include <iostream>

#include "algos/editdist.hpp"
#include "algos/specs.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/lower.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {

/// Per-op tax of a lightweight programmable PE (local instruction store
/// + decode), vs 10,000x for the OoO core.
constexpr double kProgrammableTax = 30.0;

fm::MachineConfig machine_at_pitch(int cols, double pitch_mm) {
  noc::GridGeometry geom(cols, 1, Length::millimetres(pitch_mm),
                         noc::TechnologyModel::n5());
  fm::MachineConfig cfg{.geom = geom};
  cfg.cycle = geom.tech().add_delay;
  return cfg;
}

struct Styles {
  double ops = 0.0;
  Energy cpu_dram, cpu_llc, grid, array_pe_pitch, array_mac_pitch;
};

Styles price(const fm::FunctionSpec& spec, const fm::Mapping& mapping,
             int cols) {
  const fm::MachineConfig pe_cfg = machine_at_pitch(cols, 0.2);
  const fm::MachineConfig mac_cfg = machine_at_pitch(cols, 0.02);
  const fm::LegalityReport rep = verify(spec, mapping, pe_cfg);
  HARMONY_ASSERT_MSG(rep.ok, "E12: mapping must verify");

  const fm::CostReport at_pe = evaluate_cost(spec, mapping, pe_cfg);
  const fm::CostReport at_mac = evaluate_cost(spec, mapping, mac_cfg);
  const noc::TechnologyModel& tech = pe_cfg.geom.tech();

  Styles s;
  s.ops = at_pe.total_ops;
  const double operands = 2.0 * s.ops;
  s.cpu_dram = tech.cpu_instruction_energy(32) * s.ops +
               tech.offchip_energy(32) * operands;
  s.cpu_llc = tech.cpu_instruction_energy(32) * s.ops +
              tech.sram_access_energy(32, Length::millimetres(5.0)) *
                  operands;
  s.grid = at_pe.total_energy() +
           tech.op_energy(32) * (kProgrammableTax * s.ops);
  s.array_pe_pitch = at_pe.total_energy();
  s.array_mac_pitch = at_mac.total_energy();
  return s;
}

}  // namespace

int main() {
  std::cout << "E12: one function, five implementation styles (movement "
               "decides everything)\n\n";

  struct Row {
    std::string kernel;
    Styles s;
  };
  std::vector<Row> rows;
  {
    auto build = algos::conv1d_weight_stationary(256, 16);
    rows.push_back({"conv1d n=256 k=16 (weight-stationary)",
                    price(build.spec, build.mapping, 16)});
    const fm::HardwareSpec hw = lower(build.spec, build.mapping,
                                      machine_at_pitch(16, 0.02),
                                      "conv_ws");
    std::cout << "Lowered conv array: " << hw.active_pes()
              << " PEs, schedule " << hw.schedule_length
              << " cycles, est. area " << hw.estimated_area().mm2()
              << " mm^2\n\n";
  }
  {
    algos::SwScores sw;
    fm::TensorId rt;
    fm::TensorId qt;
    fm::TensorId ht;
    const auto spec = algos::editdist_spec(64, 64, sw, &rt, &qt, &ht);
    fm::Mapping m;
    const fm::WavefrontMap wf = fm::wavefront_map(64, 16);
    m.set_computed(ht, wf.place_fn(), wf.time_fn());
    m.set_input(rt, fm::InputHome::at({0, 0}));
    m.set_input(qt, fm::InputHome::at({0, 0}));
    rows.push_back({"editdist 64x64 (wavefront)", price(spec, m, 16)});
  }

  Table t({"kernel", "style", "energy_nJ", "fJ_per_op", "vs_cpu_dram"});
  t.title("E12.a — energy by implementation style");
  bool prog_claim = true;
  bool accel_claim = true;
  for (const Row& r : rows) {
    struct Line {
      const char* style;
      Energy e;
    };
    const Line lines[] = {
        {"CPU, operands in DRAM", r.s.cpu_dram},
        {"CPU, operands in LLC (5 mm)", r.s.cpu_llc},
        {"programmable grid (0.2 mm pitch)", r.s.grid},
        {"fixed array (0.2 mm pitch)", r.s.array_pe_pitch},
        {"fixed array (0.02 mm MAC pitch)", r.s.array_mac_pitch},
    };
    for (const Line& l : lines) {
      t.add_row({r.kernel, std::string(l.style), l.e.nanojoules(),
                 l.e.femtojoules() / r.s.ops, r.s.cpu_dram / l.e});
    }
    prog_claim = prog_claim && r.s.cpu_llc / r.s.grid > 100.0;
    accel_claim = accel_claim && r.s.cpu_dram / r.s.array_mac_pitch > 1e4;
  }
  t.print(std::cout);

  // Pitch ablation: where does the 10,000x bar sit?
  std::cout << '\n';
  Table p({"array_pitch_mm", "fJ_per_op", "cpu_dram_over_array",
           "clears_10000x"});
  p.title("E12.b — conv array pitch sweep vs the paper's >10,000x bar");
  {
    auto build = algos::conv1d_weight_stationary(256, 16);
    const noc::TechnologyModel tech = noc::TechnologyModel::n5();
    const fm::CostReport ref =
        evaluate_cost(build.spec, build.mapping, machine_at_pitch(16, 0.2));
    const Energy cpu = tech.cpu_instruction_energy(32) * ref.total_ops +
                       tech.offchip_energy(32) * (2.0 * ref.total_ops);
    for (double pitch : {0.2, 0.1, 0.05, 0.02, 0.01}) {
      const fm::CostReport c = evaluate_cost(build.spec, build.mapping,
                                             machine_at_pitch(16, pitch));
      const double ratio = cpu / c.total_energy();
      p.add_row({pitch, c.total_energy().femtojoules() / c.total_ops,
                 ratio, std::string(ratio > 1e4 ? "yes" : "no")});
    }
  }
  p.print(std::cout);

  std::cout << "\nShape check: programmable grid is 100s of times better "
               "than the LLC-fed CPU ("
            << (prog_claim ? "HOLDS" : "VIOLATED")
            << "); the MAC-pitch fixed array clears >10,000x against the "
               "DRAM-fed CPU ("
            << (accel_claim ? "HOLDS" : "VIOLATED")
            << ").  Both bars are set by operand movement, not "
               "arithmetic — the statement's core point.\n";
  return prog_claim && accel_claim ? 0 : 1;
}
