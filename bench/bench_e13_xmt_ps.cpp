// E13 — XMT's hardware prefix-sum (Vishkin, §5): "the XMT architecture,
// which to a first approximation is about reducing overheads of PRAM
// algorithms using hardware primitives."
//
// Dynamic-work benchmarks where many virtual threads allocate through a
// shared counter: stream compaction and BFS frontier expansion, run with
// the hardware combining ps() and with a software fetch-add that
// serializes under contention.
//
// Expected shape: hardware-ps cycles stay flat as the number of
// simultaneous allocations on one counter grows; software-ps cycles grow
// linearly with the hottest counter; spreading allocation over more
// counters closes the gap (at the price of a second compaction pass).
#include <iostream>

#include "algos/graph.hpp"
#include "pram/xmt.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E13: hardware prefix-sum vs software fetch-add under "
               "contention\n\n";

  // --- stream compaction: keep elements passing a predicate ------------
  Table t({"threads", "counters", "hw_ps_cycles", "sw_ps_cycles",
           "sw_over_hw"});
  t.title("E13.a — compaction of n elements through shared counters "
          "(64 TCUs)");
  for (std::int64_t n : {64, 256, 1024, 4096}) {
    for (std::int64_t counters : {std::int64_t{1}, std::int64_t{16}}) {
      auto run = [&](bool hardware) {
        pram::XmtConfig cfg;
        cfg.num_tcus = 64;
        cfg.hardware_ps = hardware;
        // Memory: [0,n) input; [n,2n) output; [2n, 2n+counters) counters.
        pram::XmtMachine m(static_cast<std::size_t>(2 * n + counters),
                           cfg);
        Rng rng(7);
        for (std::int64_t i = 0; i < n; ++i) {
          m.mem(static_cast<std::size_t>(i)) =
              rng.next_bool(0.5) ? 1 : 0;
        }
        const auto un = static_cast<std::size_t>(n);
        return m.spawn(n, [&, un, counters](pram::XmtMachine::Thread& th) {
          const std::int64_t keep =
              th.read(static_cast<std::size_t>(th.id()));
          th.charge(1);  // predicate
          if (keep != 0) {
            const auto counter =
                2 * un + static_cast<std::size_t>(
                             th.id() % counters);
            const std::int64_t slot = th.ps(counter, 1);
            // Strided shard layout: shard c's j-th survivor lands at
            // j*counters + c (shards interleaved; compacted by a second
            // pass not modelled here).  Distinct (shard, slot) pairs map
            // to distinct addresses.
            th.write(un + static_cast<std::size_t>(slot * counters +
                                                   th.id() % counters),
                     th.id());
          }
        });
      };
      const auto hw = run(true);
      const auto sw = run(false);
      t.add_row({n, counters, hw.estimated_cycles, sw.estimated_cycles,
                 static_cast<double>(sw.estimated_cycles) /
                     static_cast<double>(hw.estimated_cycles)});
    }
  }
  t.print(std::cout);

  // --- BFS frontier expansion ------------------------------------------
  std::cout << '\n';
  Table b({"graph", "ps_mode", "total_cycles", "max_contention",
           "vs_hw"});
  b.title("E13.b — XMT BFS end to end, hardware vs software ps");
  for (auto& [name, g] :
       std::vector<std::pair<std::string, algos::CsrGraph>>{
           {"random n=4096 m~24k", algos::random_graph(4096, 12288, 3)},
           {"grid 48x48", algos::grid_graph(48, 48)}}) {
    pram::XmtConfig hw_cfg;
    hw_cfg.num_tcus = 64;
    hw_cfg.hardware_ps = true;
    pram::XmtConfig sw_cfg = hw_cfg;
    sw_cfg.hardware_ps = false;
    const auto hw = algos::bfs_xmt(g, 0, hw_cfg);
    const auto sw = algos::bfs_xmt(g, 0, sw_cfg);
    b.add_row({name, std::string("hardware"),
               hw.stats.estimated_cycles, hw.stats.max_ps_contention,
               1.0});
    b.add_row({name, std::string("software"),
               sw.stats.estimated_cycles, sw.stats.max_ps_contention,
               static_cast<double>(sw.stats.estimated_cycles) /
                   static_cast<double>(hw.stats.estimated_cycles)});
  }
  b.print(std::cout);

  std::cout << "\nShape check: single-counter software ps degrades "
               "linearly in thread count (sw_over_hw grows with n); 16 "
               "counters or hardware combining keep it flat; BFS "
               "end-to-end inherits the same gap on the hub levels.\n";
  return 0;
}
