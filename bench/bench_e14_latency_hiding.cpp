// E14 — Yelick (§6): "Heavyweight communication mechanisms that imply
// global or pairwise synchronization and require more data aggregation
// to amortize overhead can consume precious fast memory resources" and
// "latency of data movement ... another demand for increased parallelism
// to hide latencies."
//
// Two studies on the alpha-beta/BSP machine:
//   a) aggregation: move V words from each process to its neighbour as
//      one message, as b-word batches, or word-at-a-time — time is
//      alpha*V/b + beta*V, so tiny batches burn alpha while huge batches
//      burn buffer memory; the sweep exposes the knee at b ~ alpha/beta.
//   b) latency hiding: a fixed stream of dependent supersteps vs the
//      same volume split across k independent channels processed
//      round-robin — more available parallelism amortizes the per-step
//      latency exactly as the statement predicts.
#include <iostream>

#include "comm/alphabeta.hpp"
#include "comm/bsp.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E14: message aggregation and latency hiding under the "
               "alpha-beta model\n\n";

  comm::AlphaBeta model;  // alpha = 1 us, beta = 1 ns/word

  // --- (a) aggregation sweep -------------------------------------------
  const std::uint64_t volume = 1 << 16;  // words per neighbour pair
  Table a({"batch_words", "messages", "time_ms", "vs_best",
           "buffer_words"});
  a.title("E14.a — shipping 65536 words: batch-size sweep (8 procs, "
          "ring neighbours)");
  std::vector<std::pair<std::uint64_t, double>> results;
  for (std::uint64_t batch : {1u, 16u, 256u, 1024u, 4096u, 65536u}) {
    comm::BspMachine m(8, model);
    std::uint64_t sent = 0;
    while (sent < volume) {
      const std::uint64_t chunk = std::min<std::uint64_t>(
          batch, volume - sent);
      m.superstep([&](comm::BspMachine::Proc& p) {
        p.send((p.rank() + 1) % p.nprocs(),
               std::vector<double>(chunk, 1.0));
      });
      sent += chunk;
    }
    results.emplace_back(batch, m.stats().time.nanoseconds() * 1e-6);
  }
  double best = results[0].second;
  for (auto& [b, ms] : results) best = std::min(best, ms);
  for (auto& [b, ms] : results) {
    a.add_row({static_cast<std::int64_t>(b),
               static_cast<std::int64_t>(volume / b), ms, ms / best,
               static_cast<std::int64_t>(b)});
  }
  a.print(std::cout);

  // --- (b) latency hiding via channel parallelism ------------------------
  // One logical stream of `rounds` dependent exchanges vs k independent
  // streams interleaved: per-superstep alpha is amortized over k
  // messages in flight.
  std::cout << '\n';
  Table b({"independent_channels", "supersteps", "time_ms", "speedup"});
  b.title("E14.b — k independent exchange streams, same total volume "
          "(256 rounds x 64 words)");
  const int rounds = 256;
  const std::uint64_t words = 64;
  double base_ms = 0.0;
  for (int k : {1, 2, 4, 8, 16}) {
    comm::BspMachine m(2, model);
    // Each superstep carries k channel messages (the channels are
    // independent, so they share a barrier).
    const int steps = rounds / k;
    for (int s = 0; s < steps; ++s) {
      m.superstep([&](comm::BspMachine::Proc& p) {
        if (p.rank() != 0) return;
        for (int c = 0; c < k; ++c) {
          p.send(1, std::vector<double>(words, 1.0), c);
        }
      });
    }
    const double ms = m.stats().time.nanoseconds() * 1e-6;
    if (k == 1) base_ms = ms;
    b.add_row({static_cast<std::int64_t>(k),
               static_cast<std::int64_t>(steps), ms, base_ms / ms});
  }
  b.print(std::cout);

  std::cout << "\nShape check: E14.a has a clear knee near "
               "alpha/beta = 1000 words (tiny batches pay alpha*V, one "
               "giant batch is optimal in time but costs V words of "
               "buffer); E14.b speedup approaches k while alpha "
               "dominates, saturating once beta*volume takes over.\n";
  return 0;
}
