// E15 (extension) — collective-algorithm selection under alpha-beta
// (Yelick, §6: a "simpler set of data movement and synchronization
// primitives" and communication avoidance in both volume and events).
//
// Four allreduce schedules swept over the vector length: the classic
// result (Thakur et al.) is that the latency-lean recursive doubling
// wins small vectors and the bandwidth-optimal ring wins large ones,
// with the crossover near n ~ alpha*P/(beta*log P).  The naive root
// schedule shows why h-relations (not just volume) matter: its total
// volume matches the ring's but its root hot-spot makes it the worst
// at scale.
#include <iostream>

#include "comm/collectives.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;
using namespace harmony::comm;

namespace {
std::vector<std::vector<double>> inputs(std::size_t p, std::size_t n) {
  Rng rng(p * 31 + n);
  std::vector<std::vector<double>> in(p, std::vector<double>(n));
  for (auto& v : in) {
    for (auto& x : v) x = rng.next_double(-1, 1);
  }
  return in;
}
}  // namespace

int main() {
  std::cout << "E15: allreduce schedule selection (P = 16, alpha = 1 us, "
               "beta = 1 ns/word, L = 2 us)\n\n";

  const std::size_t p = 16;
  Table t({"n_words", "algorithm", "supersteps", "total_words",
           "max_h_relation", "time_ms", "best"});
  t.title("E15.a — four allreduce schedules across vector sizes");
  for (std::size_t n : {16u, 256u, 4096u, 65536u, 262144u}) {
    const auto in = inputs(p, n);
    struct Run {
      AllreduceAlgo algo;
      CollectiveResult res;
    };
    std::vector<Run> runs;
    for (auto algo :
         {AllreduceAlgo::kNaiveRoot, AllreduceAlgo::kBinomialTree,
          AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRing}) {
      runs.push_back({algo, allreduce(in, algo)});
    }
    double best = runs[0].res.stats.time.picoseconds();
    for (const Run& r : runs) {
      best = std::min(best, r.res.stats.time.picoseconds());
    }
    for (const Run& r : runs) {
      t.add_row({static_cast<std::int64_t>(n),
                 std::string(allreduce_name(r.algo)),
                 r.res.stats.supersteps,
                 static_cast<std::int64_t>(r.res.stats.total_words),
                 static_cast<std::int64_t>(r.res.stats.max_h_relation),
                 r.res.stats.time.nanoseconds() * 1e-6,
                 std::string(r.res.stats.time.picoseconds() <= best + 1e-9
                                 ? "<-"
                                 : "")});
    }
  }
  t.print(std::cout);

  // Locate the recursive-doubling / ring crossover.
  std::cout << '\n';
  std::size_t crossover = 0;
  for (std::size_t n = 16; n <= (1u << 20); n *= 2) {
    const auto in = inputs(p, n);
    const auto rd = allreduce(in, AllreduceAlgo::kRecursiveDoubling);
    const auto ring = allreduce(in, AllreduceAlgo::kRing);
    if (ring.stats.time < rd.stats.time) {
      crossover = n;
      break;
    }
  }
  // Theory: ring pays (2P - log P) extra supersteps of (alpha + L) and
  // saves n*beta*(log P - 2(P-1)/P) of bandwidth.
  const double alpha_l_ns = 1000.0 + 2000.0;
  const double theory = (2.0 * p - 4.0) * alpha_l_ns /
                        (1.0 * (4.0 - 2.0 * (p - 1.0) / p));
  std::cout << "measured recursive-doubling -> ring crossover: n = "
            << crossover << " words (alpha-beta-L theory ~ "
            << theory << ")\n";

  std::cout << "\nShape check: recursive doubling wins the small-n rows, "
               "ring the large-n rows; naive root's max_h_relation is "
               "~P/2x everyone else's despite competitive volume.\n";
  return 0;
}
