// E16 (extension/ablation) — replacement policy and associativity
// sensitivity of the cache simulator.
//
// Blelloch's statement leans on the ideal-cache model; real hierarchies
// differ in replacement policy and associativity.  This ablation checks
// how much the E5 conclusions depend on the simulator's defaults:
//
//   a) LRU vs FIFO vs deterministic-random on the E5 kernels — the
//      cache-oblivious kernels' near-bound behaviour must survive any
//      sane policy (LRU's competitiveness argument is policy-robust for
//      blocked access patterns);
//   b) associativity sweep on the pathological power-of-two-stride
//      transpose — direct-mapped caches blow up on column walks, higher
//      associativity recovers the bound.
#include <functional>
#include <iostream>

#include "algos/transpose.hpp"
#include "cache/cache.hpp"
#include "cache/ideal.hpp"
#include "cache/reuse.hpp"
#include "cache/traced.hpp"
#include "support/table.hpp"

using namespace harmony;
using cache::CacheConfig;
using cache::CacheHierarchy;
using cache::Replacement;
using cache::TracedArray;

namespace {

std::uint64_t run_transpose(std::size_t n, CacheConfig cfg,
                            bool oblivious) {
  CacheHierarchy h({cfg});
  cache::CacheSink sink(h);
  cache::AddressSpace space;
  TracedArray<double> in(n * n, space, sink);
  TracedArray<double> out(n * n, space, sink);
  if (oblivious) {
    algos::transpose_oblivious(in, out, n);
  } else {
    algos::transpose_naive(in, out, n);
  }
  return h.level_stats(0).misses();
}

}  // namespace

int main() {
  std::cout << "E16: cache design ablation (policy x associativity)\n\n";

  const std::size_t n = 512;
  const double q = cache::transpose_misses(
      cache::IdealCache{32.0 * 1024, 64.0}, static_cast<double>(n),
      sizeof(double));

  Table t({"kernel", "policy", "misses", "misses_over_ideal"});
  t.title("E16.a — transpose 512^2, 32 KiB 8-way, replacement policy");
  for (Replacement r :
       {Replacement::kLru, Replacement::kFifo, Replacement::kRandom}) {
    for (bool oblivious : {false, true}) {
      CacheConfig cfg{"L1", 32 * 1024, 64, 8, r};
      const auto misses = run_transpose(n, cfg, oblivious);
      t.add_row({std::string(oblivious ? "cache-oblivious" : "naive"),
                 std::string(replacement_name(r)),
                 static_cast<std::int64_t>(misses),
                 static_cast<double>(misses) / q});
    }
  }
  t.print(std::cout);

  std::cout << '\n';
  Table a({"associativity", "naive_misses", "oblivious_misses",
           "oblivious_over_ideal"});
  a.title("E16.b — associativity sweep (LRU), transpose 512^2");
  for (std::size_t ways : {1u, 2u, 4u, 8u, 0u}) {  // 0 = fully assoc.
    CacheConfig cfg{"L1", 32 * 1024, 64, ways, Replacement::kLru};
    const auto naive = run_transpose(n, cfg, false);
    const auto obl = run_transpose(n, cfg, true);
    a.add_row({ways == 0 ? std::string("full")
                         : std::to_string(ways) + "-way",
               static_cast<std::int64_t>(naive),
               static_cast<std::int64_t>(obl),
               static_cast<double>(obl) / q});
  }
  a.print(std::cout);

  // Miss-ratio curves from one profiling pass each (Mattson stacks):
  // the whole capacity axis without re-simulating.
  std::cout << '\n';
  Table r({"capacity_KiB", "naive_misses", "oblivious_misses", "ratio"});
  r.title("E16.c — fully-associative LRU miss-ratio curve, transpose "
          "256^2 (one pass per kernel via reuse-distance profiling)");
  {
    const std::size_t np = 256;
    cache::ReuseProfiler naive_prof(64);
    cache::ReuseProfiler obl_prof(64);
    {
      cache::AddressSpace space;
      cache::TracedArray<double> in(np * np, space, naive_prof);
      cache::TracedArray<double> out(np * np, space, naive_prof);
      algos::transpose_naive(in, out, np);
    }
    {
      cache::AddressSpace space;
      cache::TracedArray<double> in(np * np, space, obl_prof);
      cache::TracedArray<double> out(np * np, space, obl_prof);
      algos::transpose_oblivious(in, out, np);
    }
    for (std::size_t kib : {1u, 4u, 16u, 64u, 256u, 1024u}) {
      const std::size_t lines = kib * 1024 / 64;
      const auto nm = naive_prof.predicted_misses(lines);
      const auto om = obl_prof.predicted_misses(lines);
      r.add_row({static_cast<std::int64_t>(kib),
                 static_cast<std::int64_t>(nm),
                 static_cast<std::int64_t>(om),
                 static_cast<double>(nm) / static_cast<double>(om)});
    }
    r.print(std::cout);
    std::cout << "naive working set: " << naive_prof.working_set_lines()
              << " lines; oblivious: " << obl_prof.working_set_lines()
              << " lines\n";
  }

  std::cout << "\nShape check: the E5 conclusion is design-robust — the "
               "oblivious kernel stays within ~1.6x of the ideal bound "
               "under every policy (random costs the most: it evicts "
               "live tile lines) and at every associativity (page-"
               "padded array bases keep even direct-mapped conflicts "
               "rare); naive stays pinned at 4.5x regardless.\n";
  return 0;
}
