// E17 (extension/ablation) — granularity vs fork overhead in the
// work-depth model (Blelloch, §2).
//
// The statement's case for simple models is that they *guide the
// designer*: here the model answers a concrete engineering question —
// what base-case grain should a fork-join scan/sort use, given a runtime
// whose fork costs c units?  Too-fine grains blow up W with fork
// overhead; too-coarse grains blow up D.  The table locates the knee for
// several fork costs, and the greedy-schedule T_16 column shows the
// model's recommendation directly.
#include <iostream>

#include "algos/scan.hpp"
#include "algos/sort.hpp"
#include "sched/workspan.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E17: grain-size selection under fork overhead (work-span "
               "model as design tool)\n\n";

  const std::size_t n = 1 << 14;

  for (double fork_cost : {1.0, 16.0, 128.0}) {
    Table t({"grain", "work_W", "span_D", "forks", "T_16", "T16_vs_best"});
    t.title("E17 — scan n=2^14, fork_cost=" +
            std::to_string(static_cast<int>(fork_cost)));
    struct Row {
      std::size_t grain;
      double w, d, t16;
      std::size_t forks;
    };
    std::vector<Row> rows;
    for (std::size_t grain : {1u, 8u, 64u, 512u, 4096u, 16384u}) {
      sched::WorkSpanCtx::Options opts;
      opts.fork_cost = fork_cost;
      sched::WorkSpanCtx ctx(opts);
      std::vector<double> data(n, 1.0);
      algos::exclusive_scan(ctx, data, grain);
      rows.push_back({grain, ctx.total_work(), ctx.span(),
                      ctx.greedy_time(16), ctx.fork_count()});
    }
    double best = rows[0].t16;
    for (const Row& r : rows) best = std::min(best, r.t16);
    for (const Row& r : rows) {
      t.add_row({static_cast<std::int64_t>(r.grain), r.w, r.d,
                 static_cast<std::int64_t>(r.forks), r.t16,
                 r.t16 / best});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Shape check: with cheap forks any fine grain is fine; as "
               "fork_cost grows the optimal grain moves right (the knee "
               "tracks grain ~ fork_cost * P), and grain = n degenerates "
               "to serial (T_16 = W).  The model yields the schedule "
               "answer without running a single thread.\n";
  return 0;
}
