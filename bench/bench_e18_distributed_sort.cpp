// E18 (extension) — distributed sorting as a communication problem
// (Yelick, §6): sample sort's one-pass key movement and flat h-relation
// vs the root-sort funnel, across process counts and key volumes.
#include <algorithm>
#include <iostream>

#include "algos/samplesort.hpp"
#include "algos/sort.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E18: distributed sort — sample sort vs root sort on the "
               "BSP machine\n\n";

  Table t({"n", "P", "algorithm", "ok", "total_words", "max_h_relation",
           "supersteps", "time_ms"});
  t.title("E18 — communication profile of two distributed sorts");
  for (std::size_t n : {1u << 12, 1u << 15}) {
    for (int procs : {4, 16, 64}) {
      const auto keys = algos::random_keys(n, n + procs);
      auto expect = keys;
      std::sort(expect.begin(), expect.end());

      const auto sample = algos::bsp_sample_sort(keys, procs);
      const auto root = algos::bsp_root_sort(keys, procs);
      t.add_row({static_cast<std::int64_t>(n),
                 static_cast<std::int64_t>(procs),
                 std::string("sample sort"),
                 std::string(sample.sorted == expect ? "yes" : "NO"),
                 static_cast<std::int64_t>(sample.stats.total_words),
                 static_cast<std::int64_t>(sample.stats.max_h_relation),
                 sample.stats.supersteps,
                 sample.stats.time.nanoseconds() * 1e-6});
      t.add_row({static_cast<std::int64_t>(n),
                 static_cast<std::int64_t>(procs),
                 std::string("root sort"),
                 std::string(root.sorted == expect ? "yes" : "NO"),
                 static_cast<std::int64_t>(root.stats.total_words),
                 static_cast<std::int64_t>(root.stats.max_h_relation),
                 root.stats.supersteps,
                 root.stats.time.nanoseconds() * 1e-6});
    }
  }
  t.print(std::cout);

  std::cout << "\nShape check: comparable total volume (every key crosses "
               "the network ~once either way); once n >> P the root "
               "sort's max_h_relation is ~P/2x sample sort's and its "
               "time degrades with P while sample sort's improves.  At "
               "small n / large P sample sort's own rank-0 splitter "
               "broadcast (P*(P-1) words) becomes its hot-spot — the "
               "same volume-vs-events lesson applied to the control "
               "traffic.\n";
  return 0;
}
