// E19 (extension/ablation) — mesh vs torus for the systolic DP wavefront.
//
// The corrected wavefront mapping (E2) pays a (P-1)-hop "return wire"
// every time a block boundary hands row P-1's results back to PE 0.  On
// a folded torus that edge is one hop.  This ablation quantifies how
// much of the wavefront's energy overhead is that single topological
// artifact — a concrete instance of Dally's algorithm/architecture
// co-design loop (the mapping exposes a hot wire; the topology removes
// it).
#include <iostream>

#include "algos/editdist.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {

fm::MachineConfig machine_with(int cols, noc::Topology topo) {
  noc::GridGeometry geom(cols, 1, Length::millimetres(0.2),
                         noc::TechnologyModel::n5(), topo);
  fm::MachineConfig cfg{.geom = geom};
  cfg.cycle = geom.tech().add_delay;
  return cfg;
}

}  // namespace

int main() {
  std::cout << "E19: wavefront edit distance on mesh vs torus\n\n";

  Table t({"N", "P", "topology", "verified", "cycles", "bit_hops",
           "movement_nJ", "movement_vs_torus"});
  t.title("E19 — the block-boundary return wire, priced");
  for (std::int64_t n : {128, 256}) {
    for (int p : {8, 16, 32}) {
      algos::SwScores scores;
      fm::TensorId rt;
      fm::TensorId qt;
      fm::TensorId ht;
      const auto spec = algos::editdist_spec(n, n, scores, &rt, &qt, &ht);
      fm::Mapping m;
      const fm::WavefrontMap wf = fm::wavefront_map(n, p);
      m.set_computed(ht, wf.place_fn(), wf.time_fn());
      m.set_input(rt, fm::InputHome::at({0, 0}));
      m.set_input(qt, fm::InputHome::at({0, 0}));

      double torus_nj = 0.0;
      for (noc::Topology topo :
           {noc::Topology::kTorus, noc::Topology::kMesh}) {
        const fm::MachineConfig cfg = machine_with(p, topo);
        fm::VerifyOptions vo;
        vo.check_storage = false;  // identical to E2's checked configs
        const fm::LegalityReport rep = verify(spec, m, cfg, vo);
        const fm::CostReport cost = evaluate_cost(spec, m, cfg);
        const double nj = cost.onchip_movement_energy.nanojoules();
        if (topo == noc::Topology::kTorus) torus_nj = nj;
        t.add_row({n, p,
                   std::string(topo == noc::Topology::kMesh ? "mesh"
                                                            : "torus"),
                   std::string(rep.ok ? "yes" : "NO"),
                   cost.makespan_cycles,
                   static_cast<std::int64_t>(cost.bit_hops), nj,
                   nj / torus_nj});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nShape check: identical schedules and cycle counts; the "
               "torus removes the (P-1)-hop boundary wire, and the mesh/"
               "torus movement-energy ratio grows with P (the boundary "
               "wire's share of all traffic).\n";
  return 0;
}
