// E1 — the paper's compute-vs-communication energy ratios (§3).
//
// Claim reproduced: "Transporting the result of an add 1mm costs 160x as
// much as performing the add.  Sending it across the diagonal of an
// 800mm2 GPU costs 4500x as much.  Going off chip is an order of
// magnitude more expensive." — plus the 10,000x instruction-overhead
// figure.  This bench evaluates the technology model at a distance sweep
// and prints the ratio table EXPERIMENTS.md quotes.
#include <iostream>

#include "noc/tech.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main() {
  using namespace harmony;
  const noc::TechnologyModel tech = noc::TechnologyModel::n5();

  std::cout << "E1: energy of moving a 32-bit add result vs the add "
               "itself (5nm model)\n\n";

  Table t({"transport", "distance_mm", "energy_fJ", "ratio_vs_add",
           "paper_says"});
  t.title("E1.a — movement / compute energy ratios (32-bit values)");
  const Energy add = tech.op_energy(32);
  t.add_row({std::string("32-bit add (compute only)"), 0.0,
             add.femtojoules(), 1.0, std::string("1x")});

  struct Row {
    const char* name;
    double mm;
    const char* paper;
  };
  const Row rows[] = {
      {"move 0.1 mm (neighbour PE)", 0.1, "-"},
      {"move 1 mm", 1.0, "160x"},
      {"move 5 mm", 5.0, "-"},
      {"move 10 mm", 10.0, "-"},
      {"across 800 mm^2 die (28.3 mm)", tech.die.side().millimetres(),
       "4500x"},
  };
  for (const Row& r : rows) {
    const Length d = Length::millimetres(r.mm);
    t.add_row({std::string(r.name), r.mm,
               tech.move_energy(32, d).femtojoules(),
               tech.ratio_move_over_add(d), std::string(r.paper)});
  }
  t.add_row({std::string("off-chip (DRAM) access"),
             tech.die.side().millimetres(),
             tech.offchip_energy(32).femtojoules(),
             tech.ratio_offchip_over_add(),
             std::string("~50,000x (\"order of magnitude more\")")});
  t.add_row({std::string("add as OoO CPU instruction"), 0.0,
             tech.cpu_instruction_energy(32).femtojoules(),
             tech.cpu_instruction_energy(32) / add,
             std::string("10,000x")});
  t.print(std::cout);

  std::cout << '\n';
  Table d({"distance_mm", "delay_ps", "vs_32b_add_delay"});
  d.title("E1.b — wire delay vs compute delay (800 ps/mm vs 200 ps add)");
  for (double mm : {0.1, 0.2, 1.0, 5.0, 28.3}) {
    const Time w = tech.move_delay(Length::millimetres(mm));
    d.add_row({mm, w.picoseconds(),
               w / tech.op_delay(32)});
  }
  d.print(std::cout);

  std::cout << "\nShape check: ratio(1mm) == 160x exactly; die crossing in "
               "[4400, 4600]; off-chip in [40k, 55k]; instruction "
               "overhead == 10,000x.\n";
  return 0;
}
