// E20 (extension) — ghost zones / communication-avoiding time tiling
// (Yelick, §6: reduce the "number of distinct events, while being
// cognizant of consuming memory resources").
//
// A 1-D Jacobi stencil distributed over P processes, sweeping the halo
// depth h: each round costs one synchronization + 2 messages of h cells
// per interior process and buys h time steps, at the price of O(h^2)
// redundant boundary flops and h cells of halo memory.  The optimal h
// grows with the per-message/per-barrier cost — measured directly.
#include <iostream>

#include "algos/bsp_stencil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E20: halo-depth sweep for the distributed stencil "
               "(n = 4096, 256 steps, P = 16)\n\n";

  const std::int64_t n = 4096;
  const std::int64_t steps = 256;
  const int procs = 16;
  Rng rng(2);
  std::vector<double> u0(static_cast<std::size_t>(n));
  for (auto& v : u0) v = rng.next_double(0, 1);

  for (const char* regime : {"default", "high-latency"}) {
    comm::AlphaBeta model;
    if (std::string(regime) == "high-latency") {
      model.alpha = Time::nanoseconds(10000.0);
      model.barrier = Time::nanoseconds(20000.0);
    }
    Table t({"halo_h", "rounds", "messages", "words", "redundant_flops",
             "time_ms", "vs_best"});
    t.title(std::string("E20 — halo sweep, ") + regime +
            " interconnect (alpha=" +
            std::to_string(static_cast<int>(
                model.alpha.nanoseconds())) +
            "ns, L=" +
            std::to_string(static_cast<int>(
                model.barrier.nanoseconds())) +
            "ns)");
    struct Row {
      std::int64_t h;
      algos::BspStencilResult res;
    };
    std::vector<Row> rows;
    const double base_flops = 3.0 * static_cast<double>(n) *
                              static_cast<double>(steps);
    for (std::int64_t h : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      rows.push_back({h, algos::bsp_stencil1d(u0, steps, procs, h, model)});
    }
    double best = rows[0].res.stats.time.picoseconds();
    for (const Row& r : rows) {
      best = std::min(best, r.res.stats.time.picoseconds());
    }
    for (const Row& r : rows) {
      t.add_row({r.h, r.res.rounds,
                 static_cast<std::int64_t>(r.res.stats.total_messages),
                 static_cast<std::int64_t>(r.res.stats.total_words),
                 r.res.stats.total_flops - base_flops,
                 r.res.stats.time.nanoseconds() * 1e-6,
                 r.res.stats.time.picoseconds() / best});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Shape check: h = 1 pays one barrier+exchange per step; "
               "deepening the halo divides rounds by h for quadratically "
               "growing redundant flops, so time falls, bottoms out (h = "
               "128 on the default interconnect), and turns back up once "
               "recomputation dominates; a slower interconnect pushes "
               "the knee right — communication avoidance bought with "
               "memory and recomputation, exactly the statement's "
               "trade.\n";
  return 0;
}
