// E21 — serving the mapping oracles (Dally, §3, operationalized): once
// (function, mapping) cost is a pure analytic query, the natural system
// around it is a memoizing service — the search that discovers a good
// mapping is paid once and amortized across every later request for the
// same (spec, map, machine, merit) key.
//
// Two arrival disciplines drive one harmony::serve::Service over a
// Zipf-distributed population of 64 distinct cost-eval requests:
//
//   closed loop — 8 client threads issue call() back-to-back; measures
//                 saturation throughput of the cache fast path.
//   open loop   — arrivals paced at a fixed rate independent of
//                 completions; measures latency when the service is not
//                 allowed to push back on the client.
//
// Expected shape: after a one-pass warmup, the Zipf mix hits the result
// cache ≥90% of the time and the closed loop sustains ≥10k req/s on 8
// workers — the point being that the *service* layer, not the oracle,
// sets the throughput once the working set is memoized.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "algos/editdist.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace harmony;
using namespace std::chrono_literals;

namespace {

using Clock = std::chrono::steady_clock;

/// Zipf(s) sampler over {0..n-1} by inverse CDF (deterministic, no
/// std:: distribution — see support/rng.hpp rationale).
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  std::size_t operator()(Rng& rng) const {
    const double u = rng.next_double();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

/// 64 distinct cost-eval requests: one edit-distance spec, wavefront
/// maps differing in time offset t0 (distinct cache keys, identical
/// oracle cost — so throughput differences are the service's, not the
/// workload's).
class Population {
 public:
  static constexpr std::size_t kDistinct = 64;

  Population() {
    algos::SwScores s;
    spec_ = std::make_shared<const fm::FunctionSpec>(
        algos::editdist_spec(24, 24, s));
  }

  [[nodiscard]] serve::Request make(std::size_t idx) const {
    serve::Request req;
    req.kind = serve::RequestKind::kCostEval;
    req.spec = spec_;
    req.machine = fm::make_machine(24, 1);
    req.inputs = {serve::InputPlacement::at({0, 0}),
                  serve::InputPlacement::at({0, 0})};
    req.map = fm::AffineMap{.ti = 1, .tj = 1, .tk = 0,
                            .t0 = static_cast<std::int64_t>(idx),
                            .xi = 1, .xj = 0, .xk = 0, .x0 = 0,
                            .yi = 0, .yj = 0, .yk = 0, .y0 = 0,
                            .cols = 24, .rows = 1};
    return req;
  }

 private:
  std::shared_ptr<const fm::FunctionSpec> spec_;
};

struct RunStats {
  std::uint64_t requests = 0;
  double elapsed_s = 0.0;
  serve::MetricsSnapshot snap;
};

void add_result_row(Table& t, const std::string& mode,
                    const std::string& load, const RunStats& r) {
  const double rps =
      r.elapsed_s > 0 ? static_cast<double>(r.requests) / r.elapsed_s : 0.0;
  t.add_row({mode, load, static_cast<std::int64_t>(r.requests),
             r.elapsed_s * 1e3, rps, r.snap.cache.hit_rate(), r.snap.p50_us,
             r.snap.p95_us, r.snap.p99_us});
}

RunStats closed_loop(const Population& pop, const Zipf& zipf, int clients,
                     int per_client) {
  serve::ServiceConfig cfg;
  cfg.num_workers = 8;
  serve::Service svc(cfg);

  // Warmup: populate the cache with one pass over the population so the
  // measured window prices the steady state, not the cold misses.
  for (std::size_t i = 0; i < Population::kDistinct; ++i) {
    (void)svc.call(pop.make(i));
  }

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0xe21ULL + static_cast<std::uint64_t>(c));
      for (int i = 0; i < per_client; ++i) {
        const serve::Response r = svc.call(pop.make(zipf(rng)));
        if (!r.ok()) {
          std::cerr << "closed loop: unexpected failure: " << r.error
                    << "\n";
          std::abort();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunStats stats;
  stats.requests =
      static_cast<std::uint64_t>(clients) * static_cast<std::uint64_t>(per_client);
  stats.elapsed_s = elapsed;
  stats.snap = svc.metrics();
  svc.shutdown();
  return stats;
}

RunStats open_loop(const Population& pop, const Zipf& zipf,
                   double arrivals_per_s, int total) {
  serve::ServiceConfig cfg;
  cfg.num_workers = 8;
  serve::Service svc(cfg);
  for (std::size_t i = 0; i < Population::kDistinct; ++i) {
    (void)svc.call(pop.make(i));
  }

  Rng rng(0x0be21ULL);
  std::vector<std::future<serve::Response>> inflight;
  inflight.reserve(static_cast<std::size_t>(total));
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / arrivals_per_s));
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < total; ++i) {
    // Fixed schedule: arrival i is due at start + i·interval regardless
    // of how the service is doing (the defining open-loop property).
    std::this_thread::sleep_until(start + i * interval);
    inflight.push_back(svc.submit(pop.make(zipf(rng))));
  }
  for (auto& f : inflight) {
    const serve::Response r = f.get();
    if (!r.ok()) {
      std::cerr << "open loop: unexpected failure: " << r.error << "\n";
      std::abort();
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunStats stats;
  stats.requests = static_cast<std::uint64_t>(total);
  stats.elapsed_s = elapsed;
  stats.snap = svc.metrics();
  svc.shutdown();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E21: serving the mapping oracles — cache + batching under "
               "Zipf traffic\n\n";

  // --trace out.json records request lifecycles (admit → queue_wait →
  // batch → cache_probe → cost_eval/tune → reply, stitched by request
  // id) across every Service this run stands up.  Each Service is
  // destroyed inside its own scope, so all traced threads are joined
  // before the capture at the bottom of main.
  const std::string trace_path = trace::trace_flag(argc, argv);
  std::optional<trace::TraceSession> session;
  if (!trace_path.empty()) session.emplace();

  const Population pop;
  const Zipf zipf(Population::kDistinct, 1.1);

  Table t({"mode", "load", "requests", "elapsed_ms", "throughput_rps",
           "hit_rate", "p50_us", "p95_us", "p99_us"});
  t.title("E21 — closed- vs open-loop arrivals, 64-key Zipf(1.1) "
          "cost-eval mix, 8 workers");

  const RunStats closed = closed_loop(pop, zipf, /*clients=*/8,
                                      /*per_client=*/4000);
  add_result_row(t, "closed", "8 clients", closed);

  for (const double rate : {2000.0, 8000.0}) {
    const RunStats open = open_loop(pop, zipf, rate, /*total=*/8000);
    add_result_row(t, "open",
                   std::to_string(static_cast<int>(rate)) + " req/s", open);
  }
  t.print(std::cout);

  std::cout << "\nclosed-loop metrics (JSON endpoint a fronting process "
               "would scrape):\n"
            << serve::metrics_json(closed.snap) << "\n";

  // A tune request rides the same service: the search forks its
  // enumeration grains into the service's worker pool (bounded by
  // max_tune_workers), and the tune-metrics rows record how many lanes
  // each tune actually used and what stealing it induced.
  {
    serve::ServiceConfig cfg;
    cfg.num_workers = 8;
    cfg.max_tune_workers = 4;
    serve::Service svc(cfg);
    algos::SwScores s;
    serve::Request req;
    req.kind = serve::RequestKind::kTune;
    req.spec = std::make_shared<const fm::FunctionSpec>(
        algos::editdist_spec(12, 12, s));
    req.machine = fm::make_machine(12, 1);
    req.inputs = {serve::InputPlacement::at({0, 0}),
                  serve::InputPlacement::at({0, 0})};
    req.fom = fm::FigureOfMerit::kTime;
    req.tune_workers = 4;
    const serve::Response r = svc.call(req);
    const serve::MetricsSnapshot snap = svc.metrics();
    std::cout << "\nparallel tune through the service: ok=" << r.ok()
              << " workers_used=" << r.search.workers_used
              << " (cap " << cfg.max_tune_workers << ")"
              << " tunes=" << snap.tunes
              << " mean_tune_workers=" << snap.mean_tune_workers
              << " tune_steals=" << snap.tune_steals << "\n";
    svc.shutdown();
  }

  if (session) {
    session->stop();
    const trace::Capture cap = session->capture();
    trace::write_chrome_json_file(trace_path, cap);
    std::cout << '\n';
    trace::summary_table(trace::summarize(cap)).print(std::cout);
    std::cout << "trace: " << cap.events.size() << " events -> " << trace_path
              << " (open in ui.perfetto.dev)\n";
  }

  const double closed_rps =
      static_cast<double>(closed.requests) / closed.elapsed_s;
  std::cout << "\nShape check: closed loop sustains "
            << static_cast<std::int64_t>(closed_rps)
            << " req/s (target >= 10000) at hit rate "
            << closed.snap.cache.hit_rate()
            << " (target >= 0.90) — the memoized fast path, not the "
               "cost oracle, sets the ceiling.\n";
  return (closed_rps >= 10000.0 && closed.snap.cache.hit_rate() >= 0.90)
             ? 0
             : 1;
}
