// E22 — compile-once candidate evaluation (DESIGN.md §12).
//
// The mapping search visits thousands of candidates per tune, and under
// the legacy oracles every one of them re-ran the FunctionSpec's
// dependence callbacks (an allocation per point), re-walked the NoC for
// every hop, and rebuilt a hash set of delivered values.  fm/compiled.hpp
// folds everything that does not depend on the candidate into flat
// arrays once per (spec, machine, input-homes) triple; the inner loop
// then evaluates an AffineMap against those tables with zero allocation.
//
// E22.a measures the search's three-gate inner loop per candidate —
// sampled causality, legality, cost evaluation — through both paths
// over the identical candidate list.  The legacy pass is the
// pre-compiled search inner loop verbatim (spec callbacks, a Mapping
// object per candidate, the full report-building verifier); the
// compiled pass is what search_affine runs today (flat tables and the
// report-free short-circuit legality gate).  Both accumulate an exact checksum (gate counts, summed
// makespan, summed energy bits) that must agree.
//
// E22.b runs the full search serially and across fork-join lanes
// sharing one pre-compiled spec, confirming the lanes return the serial
// result bit-for-bit while the wall clock drops.  Two scaling columns:
// measured wall-clock speedup (meaningful only when the host has that
// many hardware threads — the JSON records hardware_threads so a reader
// can tell) and a *modeled* speedup from a WorkSpanCtx replay of the
// exact search_lanes grain schedule (static head partition + ticketed
// tail) with one work unit per slot — deterministic on any host, so the
// CI scaling floor keys on it and never flakes on a small container.
//
// Flags:
//   --smoke   shrink the kernels and the measurement window (CI's perf
//             label runs this; the numbers are still real, just noisy)
//   --json    print a single machine-readable JSON object instead of
//             the ASCII tables (BENCH_e22_cost_eval.json is this output)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "fm/compiled.hpp"
#include "fm/cost.hpp"
#include "fm/idioms.hpp"
#include "fm/legality.hpp"
#include "fm/search.hpp"
#include "sched/scheduler.hpp"
#include "sched/workspan.hpp"
#include "support/table.hpp"

using namespace harmony;
using BenchClock = std::chrono::steady_clock;

namespace {

/// The candidate list the search would enumerate for `cs`: the affine
/// family over time coefficients {0,1,2} and space coefficients
/// {-1,0,1}, time offsets normalized so every schedule starts at cycle 0
/// — the same maps, in the same slot order, as search_affine's
/// enumeration.  (The input-arrival shift is applied inside the timed
/// inner loops, as the search applies it.)
std::vector<fm::AffineMap> enumerate_candidates(const fm::IndexDomain& dom,
                                                int cols, int rows,
                                                double makespan_bound) {
  const bool use_j = dom.rank() >= 2;
  const bool use_k = dom.rank() >= 3;
  const std::vector<std::int64_t> zero{0};
  const std::vector<std::int64_t> tc{0, 1, 2};
  const std::vector<std::int64_t> sc{-1, 0, 1};
  const auto& tcj = use_j ? tc : zero;
  const auto& tck = use_k ? tc : zero;
  const auto& scj = use_j ? sc : zero;
  const auto& sck = use_k ? sc : zero;
  const auto& scy = rows > 1 ? sc : zero;
  const auto& scyj = rows > 1 ? scj : zero;
  const auto& scyk = rows > 1 ? sck : zero;

  std::vector<fm::AffineMap> out;
  for (std::int64_t ti : tc) {
    for (std::int64_t tj : tcj) {
      for (std::int64_t tk : tck) {
        // Offset normalization: extremes over the domain corners.
        std::int64_t lo = 0, hi = 0;
        const std::int64_t is[2] = {0, dom.extent(0) - 1};
        const std::int64_t js[2] = {0, dom.extent(1) - 1};
        const std::int64_t ks[2] = {0, dom.extent(2) - 1};
        bool first = true;
        for (std::int64_t i : is) {
          for (std::int64_t j : js) {
            for (std::int64_t k : ks) {
              const std::int64_t v = ti * i + tj * j + tk * k;
              lo = first ? v : std::min(lo, v);
              hi = first ? v : std::max(hi, v);
              first = false;
            }
          }
        }
        if (static_cast<double>(hi - lo + 1) > makespan_bound) continue;
        for (std::int64_t xi : sc) {
          for (std::int64_t xj : scj) {
            for (std::int64_t xk : sck) {
              for (std::int64_t yi : scy) {
                for (std::int64_t yj : scyj) {
                  for (std::int64_t yk : scyk) {
                    out.push_back(fm::AffineMap{
                        .ti = ti, .tj = tj, .tk = tk, .t0 = -lo,
                        .xi = xi, .xj = xj, .xk = xk, .x0 = 0,
                        .yi = yi, .yj = yj, .yk = yk, .y0 = 0,
                        .cols = cols, .rows = rows});
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

/// Exact accumulator both paths must agree on: the three gate counters
/// plus the sum of every legal candidate's makespan and energy (doubles
/// summed in candidate order, so bit-equality is meaningful).
struct Checksum {
  std::uint64_t quick_rejected = 0;
  std::uint64_t verify_rejected = 0;
  std::uint64_t legal = 0;
  std::int64_t cycles = 0;
  double energy_fj = 0.0;
  bool operator==(const Checksum& o) const {
    return quick_rejected == o.quick_rejected &&
           verify_rejected == o.verify_rejected && legal == o.legal &&
           cycles == o.cycles && energy_fj == o.energy_fj;
  }
};

/// Runs `pass` (one sweep over the candidate list, returning its
/// Checksum) until `min_seconds` of wall clock accumulate.
template <typename Pass>
void run_timed(Pass&& pass, double min_seconds, std::uint64_t& sweeps,
               double& seconds, Checksum& sum) {
  sweeps = 0;
  const BenchClock::time_point t0 = BenchClock::now();
  do {
    sum = pass();
    ++sweeps;
    seconds =
        std::chrono::duration<double>(BenchClock::now() - t0).count();
  } while (seconds < min_seconds);
}

struct Kernel {
  std::string name;
  fm::FunctionSpec spec;
  int cols;
  int rows;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") json = true;
    if (a == "--smoke") smoke = true;
  }
  if (!json) {
    std::cout << "E22: compile-once candidate evaluation — legacy oracles "
                 "vs the flat fast path\n\n";
  }
  const double min_seconds = smoke ? 0.02 : 0.5;

  std::vector<Kernel> kernels;
  {
    algos::SwScores s;
    if (smoke) {
      kernels.push_back({"editdist 8x8", algos::editdist_spec(8, 8, s),
                         8, 1});
      kernels.push_back({"stencil1d n=8 T=6", algos::stencil1d_spec(8, 6),
                         8, 1});
      kernels.push_back({"matmul 4^3", algos::matmul_spec(4), 4, 4});
    } else {
      kernels.push_back({"editdist 16x16", algos::editdist_spec(16, 16, s),
                         16, 1});
      kernels.push_back({"stencil1d n=16 T=12",
                         algos::stencil1d_spec(16, 12), 16, 1});
      kernels.push_back({"matmul 8^3", algos::matmul_spec(8), 8, 8});
    }
  }

  // ── E22.a: per-candidate inner-loop throughput, legacy vs compiled ──
  Table t({"kernel", "candidates", "legal", "legacy_evals_per_s",
           "compiled_evals_per_s", "speedup"});
  t.title("E22.a — search inner loop (quick gate + verify + cost) "
          "evaluations per second");
  double min_speedup = 0.0;
  bool first_kernel = true;
  bool all_match = true;

  for (Kernel& k : kernels) {
    const fm::MachineConfig cfg = fm::make_machine(k.cols, k.rows);
    const fm::TensorId target = k.spec.computed_tensors()[0];
    const fm::IndexDomain& dom = k.spec.domain(target);
    fm::Mapping proto;
    for (fm::TensorId in : k.spec.input_tensors()) {
      proto.set_input(in,
                      fm::InputHome::distributed(
                          fm::block_distribution(k.spec.domain(in),
                                                 cfg.geom).place));
    }
    const std::shared_ptr<const fm::CompiledSpec> cs =
        fm::compile_spec(k.spec, cfg, proto);
    const double bound = static_cast<double>(dom.size()) * 4.0 + 1.0;
    const std::vector<fm::AffineMap> maps =
        enumerate_candidates(dom, k.cols, k.rows, bound);

    // Quick-gate sample points, as search_affine picks them.
    std::vector<fm::Point> sample_pts;
    std::vector<std::int64_t> sample_lins;
    {
      const std::int64_t n = dom.size();
      const std::int64_t stride = std::max<std::int64_t>(1, n / 64);
      for (std::int64_t lin = 0; lin < n; lin += stride) {
        sample_pts.push_back(dom.delinearize(lin));
        sample_lins.push_back(lin);
      }
      sample_pts.push_back(dom.delinearize(n - 1));
      sample_lins.push_back(n - 1);
    }

    // Legacy inner loop: the pre-compiled search Evaluator verbatim —
    // spec dependence callbacks in the quick gate and the arrival
    // shift, a Mapping object per candidate, callback-driven oracles.
    const auto legacy_pass = [&] {
      Checksum sum;
      for (const fm::AffineMap& cand : maps) {
        fm::AffineMap map = cand;
        bool plausible = true;
        for (const fm::Point& p : sample_pts) {
          const fm::Cycle when = map.time(p);
          for (const fm::ValueRef& d : k.spec.deps(target, p)) {
            if (k.spec.is_input(d.tensor)) continue;
            const noc::Coord here = map.place(p);
            const noc::Coord there = map.place(d.point);
            const fm::Cycle need =
                map.time(d.point) +
                std::max<fm::Cycle>(1, cfg.transit_cycles(there, here));
            if (when < need) {
              plausible = false;
              break;
            }
          }
          if (!plausible) break;
        }
        if (!plausible) {
          ++sum.quick_rejected;
          continue;
        }
        fm::Cycle deficit = 0;
        dom.for_each([&](const fm::Point& p) {
          const fm::Cycle when = map.time(p);
          const noc::Coord here = map.place(p);
          for (const fm::ValueRef& d : k.spec.deps(target, p)) {
            if (!k.spec.is_input(d.tensor)) continue;
            const fm::InputHome& home = proto.input_home(d.tensor);
            const fm::Cycle need =
                home.kind == fm::InputHome::Kind::kDram
                    ? cfg.dram_cycles(here)
                    : cfg.transit_cycles(home.home_of(d.point), here);
            deficit = std::max(deficit, need - when);
          }
        });
        map.t0 += deficit;
        fm::Mapping m;
        m.set_computed(target, map.place_fn(), map.time_fn());
        for (fm::TensorId in : k.spec.input_tensors()) {
          m.set_input(in, proto.input_home(in));
        }
        const fm::LegalityReport lr = fm::verify(k.spec, m, cfg);
        if (!lr.ok) {
          ++sum.verify_rejected;
          continue;
        }
        const fm::CostReport cr = fm::evaluate_cost(k.spec, m, cfg);
        ++sum.legal;
        sum.cycles += cr.makespan_cycles;
        sum.energy_fj += cr.total_energy().femtojoules();
      }
      return sum;
    };

    // Compiled inner loop: the same three gates on the flat tables
    // (what search_affine runs per slot today).
    fm::EvalContext ctx(*cs);
    const std::size_t P = cs->num_pes;
    const auto compiled_pass = [&] {
      Checksum sum;
      for (const fm::AffineMap& cand : maps) {
        fm::AffineMap map = cand;
        bool plausible = true;
        for (std::size_t idx = 0; idx < sample_pts.size(); ++idx) {
          const fm::Point& p = sample_pts[idx];
          const fm::Cycle when = map.time(p);
          const auto lin = static_cast<std::size_t>(sample_lins[idx]);
          for (std::uint64_t o = cs->dep_offsets[lin];
               o < cs->dep_offsets[lin + 1]; ++o) {
            const fm::CompiledDep& d = cs->deps[o];
            if (d.kind != fm::CompiledDep::kComputed) continue;
            const std::size_t here = cs->pe_index(map.place(p));
            const fm::Point dp = d.point();
            const std::size_t there = cs->pe_index(map.place(dp));
            const fm::Cycle need =
                map.time(dp) +
                std::max<fm::Cycle>(1, cs->transit[there * P + here]);
            if (when < need) {
              plausible = false;
              break;
            }
          }
          if (!plausible) break;
        }
        if (!plausible) {
          ++sum.quick_rejected;
          continue;
        }
        if (cs->has_input_deps) {
          fm::Cycle deficit = 0;
          std::int64_t lin = 0;
          cs->domain.for_each([&](const fm::Point& p) {
            const auto v = static_cast<std::size_t>(lin++);
            const std::uint64_t dlo = cs->dep_offsets[v];
            const std::uint64_t dhi = cs->dep_offsets[v + 1];
            if (dlo == dhi) return;
            const fm::Cycle when = map.time(p);
            const std::size_t here = cs->pe_index(map.place(p));
            for (std::uint64_t o = dlo; o < dhi; ++o) {
              const fm::CompiledDep& d = cs->deps[o];
              if (d.kind == fm::CompiledDep::kComputed) continue;
              const fm::Cycle need =
                  d.kind == fm::CompiledDep::kInputDram
                      ? cs->dram_cycles[here]
                      : cs->transit[static_cast<std::size_t>(d.home_pe) *
                                        P + here];
              deficit = std::max(deficit, need - when);
            }
          });
          map.t0 += deficit;
        }
        if (!fm::verify_ok(*cs, map, ctx)) {
          ++sum.verify_rejected;
          continue;
        }
        const fm::CostReport cr = fm::evaluate_cost(*cs, map, ctx);
        ++sum.legal;
        sum.cycles += cr.makespan_cycles;
        sum.energy_fj += cr.total_energy().femtojoules();
      }
      return sum;
    };

    std::uint64_t legacy_sweeps = 0, compiled_sweeps = 0;
    double legacy_s = 0.0, compiled_s = 0.0;
    Checksum legacy_sum, compiled_sum;
    run_timed(legacy_pass, min_seconds, legacy_sweeps, legacy_s,
              legacy_sum);
    run_timed(compiled_pass, min_seconds, compiled_sweeps, compiled_s,
              compiled_sum);
    all_match &= legacy_sum == compiled_sum;

    const double n = static_cast<double>(maps.size());
    const double legacy_rate =
        static_cast<double>(legacy_sweeps) * n / legacy_s;
    const double compiled_rate =
        static_cast<double>(compiled_sweeps) * n / compiled_s;
    const double speedup = compiled_rate / legacy_rate;
    if (first_kernel || speedup < min_speedup) min_speedup = speedup;
    first_kernel = false;
    t.add_row({k.name, static_cast<std::int64_t>(maps.size()),
               static_cast<std::int64_t>(legacy_sum.legal), legacy_rate,
               compiled_rate, speedup});
  }

  // ── E22.b: the full search, serial vs lanes over one CompiledSpec ───
  // Workload: the matmul family — its slot space is the full 3^9
  // coefficient cross (19683 candidates, independent of n), so the
  // parallel driver has real work to spread instead of the handful of
  // slots a rank-2 kernel leaves after triple filtering.
  Table sc({"workers", "elapsed_ms", "candidates_per_s",
            "measured_speedup", "modeled_speedup", "identical"});
  const unsigned hw_threads = std::thread::hardware_concurrency();
  double modeled_8w = 0.0;
  double measured_8w = 0.0;
  {
    const int n = smoke ? 4 : 6;
    const fm::FunctionSpec spec = algos::matmul_spec(n);
    const fm::MachineConfig cfg = fm::make_machine(n, n);
    fm::Mapping proto;
    for (fm::TensorId in : spec.input_tensors()) {
      proto.set_input(in, fm::InputHome::distributed(
                              fm::block_distribution(spec.domain(in),
                                                     cfg.geom).place));
    }
    fm::SearchOptions base;
    base.fom = fm::FigureOfMerit::kTime;
    // One compile shared by every run below — what serve's compile
    // cache does for repeated tunes of the same triple.
    base.compiled = fm::compile_spec(spec, cfg, proto);

    const BenchClock::time_point s0 = BenchClock::now();
    const fm::SearchResult serial = search_affine(spec, cfg, proto, base);
    const double serial_ms =
        std::chrono::duration<double, std::milli>(BenchClock::now() - s0)
            .count();
    sc.title("E22.b — precompiled search scaling, matmul " +
             std::to_string(n) + "^3 (" +
             std::to_string(serial.enumerated) + " candidates; host has " +
             std::to_string(hw_threads) +
             " hardware threads — measured speedup is bounded by that, "
             "modeled speedup replays the exact grain schedule on ideal "
             "processors)");
    sc.add_row({std::string("serial"), serial_ms,
                static_cast<double>(serial.enumerated) /
                    (serial_ms / 1e3),
                1.0, 1.0, std::string("-")});

    // Modeled speedup: replay fm::search_lanes under the work-span
    // analyzer with the same auto-grain sizing the driver uses and one
    // work unit per slot, then ask Brent's greedy scheduler what w
    // ideal processors do with that exact DAG.  Deterministic — the
    // number depends only on the slot count and the grain schedule, so
    // it is the honest "is the partitioning near-linear?" answer even
    // on a 1-thread container (where measured speedup cannot move).
    const std::uint64_t total_slots = serial.enumerated;
    const auto modeled_speedup = [&](unsigned w) {
      sched::WorkSpanCtx ws;
      const std::uint64_t grain = fm::auto_grain_slots(total_slots, w);
      const std::uint64_t grains = (total_slots + grain - 1) / grain;
      std::vector<fm::SearchTally> tallies(w);
      std::vector<std::uint8_t> processed(grains, 0);
      fm::search_lanes(ws, w, std::uint64_t{0}, total_slots, grain,
                       /*cancel=*/{}, tallies.data(), processed.data(),
                       [&](std::uint64_t lo, std::uint64_t hi,
                           unsigned /*lane*/, fm::SearchTally&) {
                         ws.work(static_cast<double>(hi - lo));
                       });
      const double greedy = ws.greedy_time(w);
      return greedy > 0.0 ? ws.total_work() / greedy : 0.0;
    };

    sched::Scheduler pool(8);
    for (const unsigned w : {2u, 4u, 8u}) {
      fm::SearchOptions opts = base;
      opts.scheduler = &pool;
      opts.num_workers = w;
      const BenchClock::time_point p0 = BenchClock::now();
      const fm::SearchResult par = search_affine(spec, cfg, proto, opts);
      const double par_ms =
          std::chrono::duration<double, std::milli>(BenchClock::now() - p0)
              .count();
      const bool identical =
          par.found == serial.found && par.best.slot == serial.best.slot &&
          par.best.merit == serial.best.merit &&
          par.enumerated == serial.enumerated && par.legal == serial.legal;
      all_match &= identical;
      const double measured = par_ms > 0 ? serial_ms / par_ms : 0.0;
      const double modeled = modeled_speedup(w);
      if (w == 8u) {
        measured_8w = measured;
        modeled_8w = modeled;
      }
      sc.add_row({static_cast<std::int64_t>(par.workers_used), par_ms,
                  static_cast<double>(par.enumerated) / (par_ms / 1e3),
                  measured, modeled,
                  std::string(identical ? "yes" : "NO")});
    }
  }

  // Conservative scaling floor (CI's perf label enforces the exit
  // code): the modeled number is deterministic and must show the grain
  // schedule keeping 8 ideal processors at least 2x busy; the measured
  // number is additionally held to the same floor only when the host
  // actually has 8 hardware threads to run on.
  const bool modeled_ok = modeled_8w >= 2.0;
  const bool measured_ok = hw_threads < 8 || measured_8w >= 2.0;

  if (json) {
    std::ostringstream ja, jb;
    t.print_json(ja);
    sc.print_json(jb);
    std::cout << "{\n\"bench\": \"e22_cost_eval\",\n\"smoke\": "
              << (smoke ? "true" : "false") << ",\n\"paths_agree\": "
              << (all_match ? "true" : "false")
              << ",\n\"min_eval_speedup\": " << min_speedup
              << ",\n\"hardware_threads\": " << hw_threads
              << ",\n\"modeled_speedup_8w\": " << modeled_8w
              << ",\n\"measured_speedup_8w\": " << measured_8w
              << ",\n\"eval_throughput\": " << ja.str()
              << ",\n\"parallel_search\": " << jb.str() << "\n}\n";
  } else {
    t.print(std::cout);
    std::cout << '\n';
    sc.print(std::cout);
    std::cout << "\nShape check: the compiled path re-derives every gate "
                 "decision and every legal candidate's report bit-for-bit "
                 "(paths_agree) while evaluating candidates several times "
                 "faster; lanes sharing one CompiledSpec return the "
                 "serial winner byte-identically, and the grain schedule "
                 "keeps ideal processors busy (modeled_speedup).\n";
  }
  if (!all_match) {
    std::cerr << "ERROR: compiled path diverged from the legacy oracles\n";
    return 1;
  }
  if (!modeled_ok) {
    std::cerr << "ERROR: modeled 8-worker speedup " << modeled_8w
              << " below the 2x scaling floor — the grain schedule is "
                 "starving lanes\n";
    return 1;
  }
  if (!measured_ok) {
    std::cerr << "ERROR: measured 8-worker speedup " << measured_8w
              << " below the 2x floor on a host with " << hw_threads
              << " hardware threads\n";
    return 1;
  }
  return 0;
}
