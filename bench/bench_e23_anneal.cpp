// E23 — stochastic mapping search over non-affine spaces (DESIGN.md §13).
//
// search_affine() is exhaustive over the AffineMap family; that family
// cannot express per-op schedules, so on an irregular DAG the best it
// can do is whatever affine skeleton happens to be legal.  search_table()
// explores the TableMap space (per-op (pe, cycle) placement plus
// per-value input homes) with annealed / beamed mutation moves scored by
// the delta evaluator.  Three experiments:
//
// E23.a runs both searches on an affine-reachable kernel (editdist).
// The table space contains every affine schedule, so the anneal must
// match (or beat) the exhaustive affine optimum — a ground-truth check
// that the mutation search actually converges.
//
// E23.b runs an irregular-fanin DAG (algos::irregular_dag_spec) that no
// affine map schedules well.  The exhaustive affine search gets a wall-
// clock deadline (the serving layer's deadline-cut, via cancel) and
// reports its best-so-far; the anneal runs a fixed mutation budget and
// must land a strictly better mapping.  The beam runs for comparison
// and is not gated: a beam generation advances each survivor by one
// move, so its search depth equals its generation count — good for
// refining a decent schedule, far too shallow to restructure the
// serial seed this space starts from (the table records that honestly).
//
// E23.c measures the inner loop: candidates per second through
// DeltaEval::apply_move + legal() + makespan vs the same trajectory
// re-scored per candidate by the full compiled oracles
// (verify_ok + evaluate_cost).  Both passes walk the identical
// keep-if-legal trajectory and must agree on an exact checksum; the
// delta path must be at least 5x faster.
//
// Flags:
//   --smoke   shrink the kernels and budgets (CI's perf label runs this)
//   --json    print one machine-readable JSON object instead of the
//             ASCII tables (BENCH_e23_anneal.json is this output)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/specs.hpp"
#include "fm/compiled.hpp"
#include "fm/cost.hpp"
#include "fm/idioms.hpp"
#include "fm/legality.hpp"
#include "fm/search.hpp"
#include "fm/strategy/delta.hpp"
#include "fm/strategy/strategy.hpp"
#include "fm/strategy/table_map.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;
using BenchClock = std::chrono::steady_clock;

namespace {

/// Input proto with every input tensor block-distributed over the grid —
/// the same homes the tests seed their fixtures with.
fm::Mapping distributed_proto(const fm::FunctionSpec& spec,
                              const fm::MachineConfig& cfg) {
  fm::Mapping proto;
  for (fm::TensorId in : spec.input_tensors()) {
    proto.set_input(in, fm::InputHome::distributed(
                            fm::block_distribution(spec.domain(in),
                                                   cfg.geom).place));
  }
  return proto;
}

double elapsed_ms(BenchClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(BenchClock::now() - t0)
      .count();
}

/// One random mutation drawn uniformly from the move set, bounded by the
/// strategy spec's move space (same distribution as the tests' parity
/// driver — the bench measures scoring cost, not proposal policy).
fm::Move random_move(const fm::StrategySpec& ss, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(ss.cs->num_points);
  const auto P = static_cast<std::uint64_t>(ss.cs->num_pes);
  const auto bound = static_cast<std::uint64_t>(ss.cycle_bound);
  std::uint64_t kind = rng.next_below(3);
  if (kind == 2 && ss.pe_homed.empty()) kind = 0;
  if (kind == 1 && n < 2) kind = 0;
  fm::Move m;
  switch (kind) {
    case 1:
      m.kind = fm::MoveKind::kSwapOps;
      m.a = static_cast<std::int64_t>(rng.next_below(n));
      m.b = static_cast<std::int64_t>(rng.next_below(n));
      break;
    case 2:
      m.kind = fm::MoveKind::kShiftHome;
      m.a = static_cast<std::int64_t>(
          ss.pe_homed[rng.next_below(ss.pe_homed.size())]);
      m.pe = static_cast<std::int32_t>(rng.next_below(P));
      break;
    default:
      m.kind = fm::MoveKind::kReplaceOp;
      m.a = static_cast<std::int64_t>(rng.next_below(n));
      m.pe = static_cast<std::int32_t>(rng.next_below(P));
      m.cycle = static_cast<fm::Cycle>(rng.next_below(bound));
      break;
  }
  return m;
}

/// Exact trajectory checksum both E23.c passes must agree on.
struct Checksum {
  std::uint64_t legal = 0;
  std::int64_t cycles = 0;
  bool operator==(const Checksum& o) const {
    return legal == o.legal && cycles == o.cycles;
  }
};

template <typename Pass>
void run_timed(Pass&& pass, double min_seconds, std::uint64_t& sweeps,
               double& seconds, Checksum& sum) {
  sweeps = 0;
  const BenchClock::time_point t0 = BenchClock::now();
  do {
    sum = pass();
    ++sweeps;
    seconds =
        std::chrono::duration<double>(BenchClock::now() - t0).count();
  } while (seconds < min_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") json = true;
    if (a == "--smoke") smoke = true;
  }
  if (!json) {
    std::cout << "E23: stochastic table search (anneal | beam) vs the "
                 "exhaustive affine family\n\n";
  }
  bool all_ok = true;

  // ── E23.a: ground truth — anneal must reach the affine optimum ──────
  Table ta({"kernel", "affine_candidates", "affine_optimum_merit",
            "anneal_moves", "anneal_merit", "matches"});
  bool anneal_matches = false;
  {
    algos::SwScores s;
    const int n = smoke ? 4 : 6;
    const fm::FunctionSpec spec = algos::editdist_spec(n, n, s);
    const fm::MachineConfig cfg = fm::make_machine(n, 1);
    const fm::Mapping proto = distributed_proto(spec, cfg);

    // Default energy-delay merit — the figure the search tests pin.
    fm::SearchOptions so;
    const fm::SearchResult affine = search_affine(spec, cfg, proto, so);

    fm::StrategyOptions ao;
    ao.chains = smoke ? 4 : 6;
    ao.epochs = smoke ? 48 : 96;
    ao.iters_per_epoch = smoke ? 256 : 512;
    const fm::StrategyResult anneal = fm::search_table(
        spec, cfg, proto, fm::StrategyKind::kAnneal, ao);

    // The table space contains every affine schedule, so the anneal is
    // allowed to beat the affine optimum but never to miss it.  Both
    // merits come from evaluate_cost, so equality is exact.
    anneal_matches = affine.found && anneal.found &&
                     anneal.merit <= affine.best.merit;
    all_ok &= anneal_matches;
    ta.title("E23.a — affine-reachable kernel (energy-delay merit): the "
             "anneal must reach the exhaustive optimum");
    ta.add_row({"editdist " + std::to_string(n) + "x" + std::to_string(n),
                static_cast<std::int64_t>(affine.enumerated),
                affine.best.merit,
                static_cast<std::int64_t>(anneal.moves_tried),
                anneal.merit,
                std::string(anneal_matches ? "yes" : "NO")});
  }

  // ── E23.b: irregular DAG — stochastic search beats the affine cut ───
  Table tb({"strategy", "merit", "makespan_cycles", "candidates",
            "elapsed_ms", "completed", "beats_exhaustive"});
  bool anneal_beats = false;
  bool beam_beats = false;
  {
    const int n = smoke ? 32 : 96;
    const fm::FunctionSpec spec = algos::irregular_dag_spec(n, 3, 0xD46u);
    const fm::MachineConfig cfg = fm::make_machine(4, 2);
    const fm::Mapping proto = distributed_proto(spec, cfg);
    const double deadline_ms = smoke ? 50.0 : 250.0;

    // The serving layer's deadline-cut, reproduced: the exhaustive
    // affine search gets a wall-clock budget and answers best-so-far.
    // Default energy-delay merit throughout.
    fm::SearchOptions so;
    const BenchClock::time_point e0 = BenchClock::now();
    so.cancel = [&] { return elapsed_ms(e0) >= deadline_ms; };
    const fm::SearchResult ex = search_affine(spec, cfg, proto, so);
    const double ex_ms = elapsed_ms(e0);

    fm::StrategyOptions ao;
    ao.chains = smoke ? 4 : 6;
    ao.epochs = smoke ? 24 : 96;
    ao.iters_per_epoch = smoke ? 256 : 512;
    const BenchClock::time_point a0 = BenchClock::now();
    const fm::StrategyResult anneal = fm::search_table(
        spec, cfg, proto, fm::StrategyKind::kAnneal, ao);
    const double anneal_ms = elapsed_ms(a0);

    // Comparison row, not a gate: the beam's depth is its generation
    // count (one move per survivor per generation), so even with twice
    // the anneal's proposal budget it cannot restructure the serial
    // seed — see the file comment.
    fm::StrategyOptions bo;
    bo.beam_width = 8;
    bo.beam_moves = 32;
    bo.epochs = smoke ? 192 : 512;
    const BenchClock::time_point b0 = BenchClock::now();
    const fm::StrategyResult beam = fm::search_table(
        spec, cfg, proto, fm::StrategyKind::kBeam, bo);
    const double beam_ms = elapsed_ms(b0);

    // "Beats": a strictly better mapping than the affine family's best
    // within its deadline — or a mapping at all when the affine family
    // has no legal member.  Only the anneal is gated.
    anneal_beats =
        anneal.found && (!ex.found || anneal.merit < ex.best.merit);
    beam_beats = beam.found && (!ex.found || beam.merit < ex.best.merit);
    all_ok &= anneal_beats;

    tb.title("E23.b — irregular DAG (n=" + std::to_string(n) +
             ", fanin<=3) on a 4x2 grid, energy-delay merit: "
             "deadline-cut exhaustive affine vs fixed-budget "
             "anneal/beam");
    tb.add_row({std::string("exhaustive (affine, deadline)"),
                ex.found ? Cell{ex.best.merit} : Cell{std::string("-")},
                ex.found ? Cell{ex.best.cost.makespan_cycles}
                         : Cell{std::string("-")},
                static_cast<std::int64_t>(ex.enumerated), ex_ms,
                std::string(ex.exhausted ? "yes" : "cut"),
                std::string("-")});
    tb.add_row({std::string("anneal"), anneal.merit,
                anneal.cost.makespan_cycles,
                static_cast<std::int64_t>(anneal.moves_tried), anneal_ms,
                std::string(anneal.completed ? "yes" : "cut"),
                std::string(anneal_beats ? "yes" : "NO")});
    tb.add_row({std::string("beam"), beam.merit,
                beam.cost.makespan_cycles,
                static_cast<std::int64_t>(beam.moves_tried), beam_ms,
                std::string(beam.completed ? "yes" : "cut"),
                std::string(beam_beats ? "yes" : "NO")});
  }

  // ── E23.c: delta-eval vs full re-evaluation per candidate ───────────
  Table tc({"fixture", "moves", "full_cands_per_s", "delta_cands_per_s",
            "speedup", "agree"});
  double delta_speedup = 0.0;
  bool paths_agree = true;
  {
    const int n = smoke ? 96 : 128;
    const fm::FunctionSpec spec = algos::irregular_dag_spec(n, 3, 0xD46u);
    const fm::MachineConfig cfg = fm::make_machine(4, 2);
    const fm::Mapping proto = distributed_proto(spec, cfg);
    const std::shared_ptr<const fm::CompiledSpec> cs =
        fm::compile_spec(spec, cfg, proto);
    const std::shared_ptr<const fm::StrategySpec> ss =
        fm::build_strategy_spec(cs);
    const fm::TableMap seed = fm::seed_table(*ss);

    // One fixed move sequence; both passes replay it with the same
    // keep-if-legal policy, so they visit identical tables.
    std::vector<fm::Move> moves;
    {
      Rng rng(0xE23u);
      const std::size_t count = smoke ? 1024 : 4096;
      moves.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        moves.push_back(random_move(*ss, rng));
      }
    }

    // Full pass: mutate a plain TableMap and re-run the compiled
    // oracles per candidate — what a mutation search without the delta
    // evaluator would have to do.
    fm::EvalContext ctx(*cs);
    const auto full_pass = [&] {
      Checksum sum;
      fm::TableMap cur = seed;
      for (const fm::Move& m : moves) {
        const auto a = static_cast<std::size_t>(m.a);
        std::int32_t old_pe = 0;
        fm::Cycle old_cycle = 0;
        switch (m.kind) {
          case fm::MoveKind::kReplaceOp:
            old_pe = cur.pe[a];
            old_cycle = cur.cycle[a];
            cur.pe[a] = m.pe;
            cur.cycle[a] = m.cycle;
            break;
          case fm::MoveKind::kSwapOps: {
            const auto b = static_cast<std::size_t>(m.b);
            std::swap(cur.pe[a], cur.pe[b]);
            std::swap(cur.cycle[a], cur.cycle[b]);
            break;
          }
          case fm::MoveKind::kShiftHome:
            old_pe = cur.input_home[a];
            cur.input_home[a] = m.pe;
            break;
        }
        if (fm::verify_ok(*cs, cur, ctx)) {
          const fm::CostReport cr = fm::evaluate_cost(*cs, cur, ctx);
          ++sum.legal;
          sum.cycles += cr.makespan_cycles;
          continue;  // keep
        }
        switch (m.kind) {  // undo
          case fm::MoveKind::kReplaceOp:
            cur.pe[a] = old_pe;
            cur.cycle[a] = old_cycle;
            break;
          case fm::MoveKind::kSwapOps: {
            const auto b = static_cast<std::size_t>(m.b);
            std::swap(cur.pe[a], cur.pe[b]);
            std::swap(cur.cycle[a], cur.cycle[b]);
            break;
          }
          case fm::MoveKind::kShiftHome:
            cur.input_home[a] = old_pe;
            break;
        }
      }
      return sum;
    };

    // Delta pass: the strategy drivers' actual inner loop.
    fm::DeltaEval de(ss);
    const auto delta_pass = [&] {
      Checksum sum;
      de.reset(seed);
      for (const fm::Move& m : moves) {
        const fm::Move inv = de.apply_move(m);
        if (de.legal()) {
          ++sum.legal;
          sum.cycles += de.makespan_cycles();
        } else {
          de.undo_move(inv);
        }
      }
      return sum;
    };

    const double min_seconds = smoke ? 0.02 : 0.5;
    std::uint64_t full_sweeps = 0, delta_sweeps = 0;
    double full_s = 0.0, delta_s = 0.0;
    Checksum full_sum, delta_sum;
    run_timed(full_pass, min_seconds, full_sweeps, full_s, full_sum);
    run_timed(delta_pass, min_seconds, delta_sweeps, delta_s, delta_sum);
    paths_agree = full_sum == delta_sum;
    all_ok &= paths_agree;

    const double nm = static_cast<double>(moves.size());
    const double full_rate =
        static_cast<double>(full_sweeps) * nm / full_s;
    const double delta_rate =
        static_cast<double>(delta_sweeps) * nm / delta_s;
    delta_speedup = delta_rate / full_rate;
    all_ok &= delta_speedup >= 5.0;
    tc.title("E23.c — candidate scoring throughput: full compiled "
             "oracles vs DeltaEval on the identical trajectory "
             "(contract: >= 5x)");
    tc.add_row({"irregular_dag n=" + std::to_string(n) + " on 4x2",
                static_cast<std::int64_t>(moves.size()), full_rate,
                delta_rate, delta_speedup,
                std::string(paths_agree ? "yes" : "NO")});
  }

  if (json) {
    std::ostringstream ja, jb, jc;
    ta.print_json(ja);
    tb.print_json(jb);
    tc.print_json(jc);
    std::cout << "{\n\"bench\": \"e23_anneal\",\n\"smoke\": "
              << (smoke ? "true" : "false")
              << ",\n\"anneal_matches_affine_optimum\": "
              << (anneal_matches ? "true" : "false")
              << ",\n\"anneal_beats_deadline_exhaustive\": "
              << (anneal_beats ? "true" : "false")
              << ",\n\"beam_beats_deadline_exhaustive\": "
              << (beam_beats ? "true" : "false")
              << ",\n\"delta_eval_speedup\": " << delta_speedup
              << ",\n\"paths_agree\": " << (paths_agree ? "true" : "false")
              << ",\n\"affine_ground_truth\": " << ja.str()
              << ",\n\"irregular_dag\": " << jb.str()
              << ",\n\"throughput\": " << jc.str() << "\n}\n";
  } else {
    ta.print(std::cout);
    std::cout << '\n';
    tb.print(std::cout);
    std::cout << '\n';
    tc.print(std::cout);
    std::cout << "\nShape check: the anneal recovers the exhaustive "
                 "affine optimum where one exists and beats the "
                 "deadline-cut affine search on the irregular DAG "
                 "(the depth-limited beam is reported for comparison), "
                 "and the delta evaluator scores the identical "
                 "candidate trajectory several times faster than full "
                 "re-evaluation.\n";
  }
  if (!all_ok) {
    std::cerr << "ERROR: E23 acceptance contract failed (convergence, "
                 "dominance, agreement, or speedup)\n";
    return 1;
  }
  return 0;
}
