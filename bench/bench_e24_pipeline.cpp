// E24 — multi-kernel pipeline tuning: greedy stage-by-stage vs the
// co-optimizing paired tuner (DESIGN.md §16).
//
// Tuning each kernel of a chain in isolation leaves the inter-stage
// data-movement cost on the table: where a producer's output lives
// determines its consumer's cheapest mapping, and the producer's
// locally-best layout can be the consumer's worst.  fm::Pipeline makes
// the handoff a first-class cost (producer winners become distributed
// input homes, priced through the compiled P×P route/energy tables);
// this benchmark measures how much the co-optimizing tuner
// (tune_pipeline_paired — each stage's top candidates scored by own
// merit plus consumer probe searches) recovers over the greedy baseline
// (tune_pipeline_greedy — each stage commits its local best).
//
// Three scenarios, the ISSUE's list:
//   E24.a  FFT -> bit-reverse shuffle -> FFT   (exhaustive affine stages)
//   E24.b  scan -> pointwise filter -> scan    (exhaustive affine stages)
//   E24.c  irregular conv->conv chain from the DAG generator
//          (anneal strategy stages — the non-affine space)
//
// Acceptance contract (exit code, CI's perf leg runs --smoke):
//   * every scenario tunes to a full legal chain under both tuners,
//   * the paired tuner's total merit strictly beats greedy's on at
//     least 2 of the 3 scenarios (and never loses on any),
//   * every committed stage winner of BOTH tuners is certified clean by
//     analyze::ExecChecker against its resolved (producer-substituted)
//     input homes — the independent relational model agrees every
//     handoff the cost model priced is legal.
//
// Flags:
//   --smoke   shrink sizes and budgets (CI's perf label runs this)
//   --json    one machine-readable JSON object instead of ASCII tables
//             (BENCH_e24_pipeline.json is this output)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/pipelines.hpp"
#include "analyze/exec.hpp"
#include "fm/compiled.hpp"
#include "fm/pipeline.hpp"
#include "support/table.hpp"

using namespace harmony;
using BenchClock = std::chrono::steady_clock;

namespace {

double elapsed_ms(BenchClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(BenchClock::now() - t0)
      .count();
}

/// ExecChecker errors summed over every committed stage winner, each
/// replayed against the input homes the tuner actually priced it with
/// (external bindings as given, producer bindings distributed over the
/// producer's winning place function).  0 == the chain is certified.
std::uint64_t certify_errors(const fm::Pipeline& pipe,
                             const fm::MachineConfig& cfg,
                             fm::StrategyKind strategy,
                             const fm::PipelineResult& result) {
  std::uint64_t errors = 0;
  for (std::size_t s = 0; s < pipe.size(); ++s) {
    const fm::StageResult& st = result.stages[s];
    const fm::Mapping proto =
        fm::stage_input_proto(pipe, s, strategy, result);
    const auto cs = fm::compile_spec(*pipe.stage(s).spec, cfg, proto);
    const analyze::ExecWitness witness =
        strategy == fm::StrategyKind::kExhaustive
            ? analyze::build_exec_witness(*cs, st.affine)
            : analyze::build_exec_witness(*cs, st.table);
    errors += analyze::ExecChecker().check(witness).errors;
  }
  return errors;
}

struct Outcome {
  std::string name;
  std::size_t stages = 0;
  fm::PipelineResult greedy;
  fm::PipelineResult paired;
  double greedy_ms = 0.0;
  double paired_ms = 0.0;
  bool found = false;       ///< both tuners committed a full legal chain
  bool paired_wins = false; ///< strict: paired.merit < greedy.merit
  bool never_loses = false; ///< paired.merit <= greedy.merit (+epsilon)
  bool certified = false;   ///< both chains ExecChecker-clean
  double gap_pct = 0.0;     ///< (greedy - paired) / greedy, in percent
};

Outcome run_scenario(std::string name, const fm::Pipeline& pipe,
                     const fm::MachineConfig& cfg,
                     const fm::PipelineOptions& opts) {
  Outcome o;
  o.name = std::move(name);
  o.stages = pipe.size();
  const BenchClock::time_point g0 = BenchClock::now();
  o.greedy = fm::tune_pipeline_greedy(pipe, cfg, opts);
  o.greedy_ms = elapsed_ms(g0);
  const BenchClock::time_point p0 = BenchClock::now();
  o.paired = fm::tune_pipeline_paired(pipe, cfg, opts);
  o.paired_ms = elapsed_ms(p0);
  o.found = o.greedy.found && o.paired.found;
  if (!o.found) return o;
  o.paired_wins = o.paired.merit < o.greedy.merit;
  o.never_loses = o.paired.merit <= o.greedy.merit * (1.0 + 1e-9);
  o.gap_pct = (o.greedy.merit - o.paired.merit) / o.greedy.merit * 100.0;
  o.certified =
      certify_errors(pipe, cfg, opts.strategy, o.greedy) == 0 &&
      certify_errors(pipe, cfg, opts.strategy, o.paired) == 0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") json = true;
    if (a == "--smoke") smoke = true;
  }
  if (!json) {
    std::cout << "E24: pipeline tuning — greedy stage-by-stage vs the "
                 "co-optimizing paired tuner\n\n";
  }

  std::vector<Outcome> outcomes;

  // ── E24.a: FFT -> bit-reverse shuffle -> FFT ────────────────────────
  // The shuffle stage is pure data movement: its own cost barely
  // discriminates between layouts, but the layout it commits decides
  // both handoffs around it — the paired tuner's home turf.  The grid
  // has two rows on purpose: on a 1-row mesh every spread layout in the
  // small affine space is a mirror image of every other, so consumers
  // adapt to any producer choice equally and the tuners tie exactly;
  // two rows break that symmetry and make the row split of the
  // producer's output a real decision the greedy tuner gets wrong.
  {
    const std::int64_t n = smoke ? 16 : 64;
    const fm::MachineConfig cfg = fm::make_machine(smoke ? 2 : 4, 2);
    fm::PipelineOptions opts;
    opts.pair_candidates = smoke ? 4 : 6;
    outcomes.push_back(run_scenario("fft-shuffle-fft n=" + std::to_string(n),
                                    algos::fft_shuffle_fft_pipeline(n), cfg,
                                    opts));
  }

  // ── E24.b: scan -> filter -> scan ───────────────────────────────────
  // The honest control: the serial recurrences pin both scans to a
  // near-serial schedule, and the pointwise filter's cheapest layout is
  // whatever matches its producer (zero-hop handoff), so the greedy
  // commitment is already globally optimal and the co-tuner's job is to
  // *not lose* while paying its probe overhead.  A measured gap of 0
  // here is the expected result, not a failure — the acceptance gate
  // asks for strict wins on 2 of the 3 chains.
  {
    const std::int64_t n = smoke ? 16 : 64;
    const fm::MachineConfig cfg = fm::make_machine(smoke ? 2 : 4, 2);
    fm::PipelineOptions opts;
    opts.pair_candidates = smoke ? 4 : 6;
    outcomes.push_back(run_scenario("scan-filter-scan n=" + std::to_string(n),
                                    algos::scan_filter_scan_pipeline(n), cfg,
                                    opts));
  }

  // ── E24.c: irregular conv->conv chain (anneal stages) ───────────────
  // No affine map schedules the DAG generator's fanin pattern well, so
  // both tuners search the TableMap space; the paired tuner ranks each
  // restart's table by what it does to the downstream stage.
  {
    const std::int64_t n = smoke ? 24 : 64;
    const fm::MachineConfig cfg = fm::make_machine(4, smoke ? 1 : 2);
    fm::PipelineOptions opts;
    opts.strategy = fm::StrategyKind::kAnneal;
    opts.strategy_opts.chains = smoke ? 2 : 4;
    opts.strategy_opts.epochs = smoke ? 8 : 32;
    opts.strategy_opts.iters_per_epoch = smoke ? 64 : 256;
    opts.pair_candidates = smoke ? 2 : 4;
    outcomes.push_back(
        run_scenario("irregular-chain n=" + std::to_string(n),
                     algos::irregular_chain_pipeline(n, 3, 0xE24u), cfg,
                     opts));
  }

  // ── acceptance ──────────────────────────────────────────────────────
  int wins = 0;
  bool all_found = true, all_certified = true, none_lose = true;
  for (const Outcome& o : outcomes) {
    all_found &= o.found;
    all_certified &= o.found && o.certified;
    none_lose &= o.found && o.never_loses;
    wins += o.found && o.paired_wins ? 1 : 0;
  }
  const bool all_ok =
      all_found && all_certified && none_lose && wins >= 2;

  Table t({"scenario", "stages", "greedy_merit", "paired_merit", "gap_pct",
           "probe_searches", "greedy_ms", "paired_ms", "paired_wins",
           "exec_certified"});
  t.title("E24 — chain total merit (energy-delay), greedy vs paired; "
          "gap_pct = share of the greedy total the co-tuner recovers");
  for (const Outcome& o : outcomes) {
    t.add_row({o.name, static_cast<std::int64_t>(o.stages),
               o.found ? Cell{o.greedy.merit} : Cell{std::string("-")},
               o.found ? Cell{o.paired.merit} : Cell{std::string("-")},
               o.gap_pct,
               static_cast<std::int64_t>(o.paired.probe_searches),
               o.greedy_ms, o.paired_ms,
               std::string(!o.found ? "-" : o.paired_wins ? "yes" : "no"),
               std::string(!o.found ? "-" : o.certified ? "yes" : "NO")});
  }

  if (json) {
    std::ostringstream jt;
    t.print_json(jt);
    std::cout << "{\n\"bench\": \"e24_pipeline\",\n\"smoke\": "
              << (smoke ? "true" : "false")
              << ",\n\"scenarios\": " << outcomes.size()
              << ",\n\"paired_strict_wins\": " << wins
              << ",\n\"paired_never_loses\": "
              << (none_lose ? "true" : "false")
              << ",\n\"all_chains_found\": "
              << (all_found ? "true" : "false")
              << ",\n\"all_winners_exec_certified\": "
              << (all_certified ? "true" : "false")
              << ",\n\"results\": " << jt.str() << "\n}\n";
  } else {
    t.print(std::cout);
    std::cout << "\nShape check: the co-optimizing tuner strictly beats "
                 "greedy on at least 2 of 3 chains and never loses "
                 "(its pair scores include the greedy choice), and "
                 "every committed stage winner of both tuners passes "
                 "the independent ExecChecker replay with its "
                 "producer-substituted input homes.\n";
  }
  if (!all_ok) {
    std::cerr << "ERROR: E24 acceptance contract failed (chain "
                 "legality, paired dominance, or certification)\n";
    return 1;
  }
  return 0;
}
