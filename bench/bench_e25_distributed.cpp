// E25 — distributed serve tier under open-loop load (DESIGN.md §17).
//
// A closed-loop client (submit, wait, repeat) can never observe a
// saturation knee: its own blocking throttles the offered load to
// whatever the server sustains.  This bench drives the router + worker
// shards the way the world does — *open loop*: arrivals are scheduled
// on a clock at a fixed offered rate regardless of completions, and
// latency is measured from the scheduled arrival, so queueing delay
// shows up in the tail exactly when the tier saturates.
//
// Three phases:
//
// E25.a calibrates single-shard capacity with a windowed closed-loop
// burst of distinct cost-eval keys (each arrival is fresh work — the
// keys differ, so the result cache cannot flatter throughput).
//
// E25.b sweeps offered load as multiples of that single-shard
// saturation rate over fleets of 1/2/4/8 shards, reporting exact
// (sorted, not histogram-bucketed) P50/P99/P999 per point and the
// knee: the first offered fraction where P99 exceeds 5x the fleet's
// own low-load P99 or admission control starts shedding.  The headline
// acceptance gate — enforced in full runs, where pacing is accurate —
// is that at 80% of single-shard saturation a 4-shard fleet's P99 is
// at least 2x better than the single shard's.
//
// E25.c restarts a shard from its CacheSnapshot and verifies the
// warm-start contract (enforced in smoke runs too): the restore-time
// compile misses are bounded by what the source shard paid, and
// replaying the snapshot's keys afterwards is pure cache hits — zero
// new compiles, no stampede.
//
// Flags:
//   --smoke   shrink the sweep (CI's perf label runs this); the 2x
//             P99 gate is reported but not enforced
//   --json    print one machine-readable JSON object instead of the
//             ASCII tables (BENCH_e25_distributed.json is this output)
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.hpp"
#include "serve/router.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "support/table.hpp"

using namespace harmony;
using BenchClock = std::chrono::steady_clock;

namespace {

constexpr auto kOk = static_cast<std::uint8_t>(serve::Status::kOk);
constexpr auto kRejected =
    static_cast<std::uint8_t>(serve::Status::kRejected);

/// A router fronting `n` in-process worker shards over loopback
/// channels (the same full wire path the tests pin; no fork, so the
/// bench runs anywhere CI does).
struct Fleet {
  serve::Router router;
  std::vector<std::unique_ptr<serve::Worker>> workers;
  std::vector<std::thread> threads;

  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      serve::WorkerConfig wcfg;
      wcfg.service.num_workers = 2;
      workers.push_back(std::make_unique<serve::Worker>(wcfg));
      serve::ChannelPair pair = serve::make_loopback_pair();
      threads.emplace_back(
          [w = workers.back().get(), ch = pair.right] { w->serve(ch); });
      router.add_shard("shard" + std::to_string(i), pair.left);
    }
  }

  ~Fleet() {
    router.shutdown();
    for (std::thread& t : threads) t.join();
  }
};

/// Distinct-key cost-eval workload: every arrival shifts the map's time
/// offset, so each request is a fresh routing/cache key doing the same
/// amount of oracle work.  The global counter keeps keys unique across
/// phases.
std::uint64_t g_next_key = 0;

serve::WireRequest fresh_cost_req() {
  serve::WireRequest req;
  req.kind = serve::RequestKind::kCostEval;
  req.spec = "editdist:8x6";
  req.machine_cols = 4;
  req.machine_rows = 1;
  req.inputs = {serve::InputPlacement::at({0, 0}),
                serve::InputPlacement::at({0, 0})};
  req.map = fm::AffineMap{.ti = 1, .tj = 1, .xi = 1, .cols = 4, .rows = 1};
  req.map.t0 = static_cast<std::int64_t>(g_next_key++);
  return req;
}

serve::WireRequest tune_req(const std::string& spec, int pes) {
  serve::WireRequest req;
  req.kind = serve::RequestKind::kTune;
  req.spec = spec;
  req.machine_cols = pes;
  req.machine_rows = 1;
  req.inputs = {serve::InputPlacement::at({0, 0}),
                serve::InputPlacement::at({0, 0})};
  req.quick_sample = 16;
  req.top_k = 2;
  return req;
}

/// Pays every cold-start cost — worker threads, scheduler spin-up, spec
/// memoization — before a timed phase, so the sweep measures steady
/// state rather than fleet boot.
void warm_fleet(Fleet& fleet, std::size_t n) {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  for (std::size_t i = 0; i < n; ++i) {
    fleet.router.submit(fresh_cost_req(), [&](const serve::WireResponse&) {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == n; });
}

/// E25.a — windowed closed-loop burst; returns sustained requests/s.
double measure_capacity(std::size_t n_requests) {
  Fleet fleet(1);
  warm_fleet(fleet, 128);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t inflight = 0, done = 0;
  constexpr std::size_t kWindow = 256;

  const auto t0 = BenchClock::now();
  for (std::size_t i = 0; i < n_requests; ++i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return inflight < kWindow; });
      ++inflight;
    }
    fleet.router.submit(fresh_cost_req(),
                        [&](const serve::WireResponse&) {
                          std::lock_guard<std::mutex> lock(mu);
                          --inflight;
                          ++done;
                          cv.notify_all();
                        });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == n_requests; });
  const double secs =
      std::chrono::duration<double>(BenchClock::now() - t0).count();
  return static_cast<double>(n_requests) / secs;
}

struct SweepPoint {
  std::size_t shards = 0;
  double fraction = 0;  ///< offered rate as multiple of sat1
  double offered_rps = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t stolen = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

/// E25.b inner loop — one open-loop point: `n` arrivals paced at
/// `rate_rps` against a fresh `shards`-wide fleet.
SweepPoint run_open_loop(std::size_t shards, double fraction, double rate_rps,
                         std::size_t n) {
  Fleet fleet(shards);
  warm_fleet(fleet, 64 * shards);
  std::vector<double> latency_us(n, 0.0);
  std::vector<std::uint8_t> status(n, 0);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;

  const auto start = BenchClock::now() + std::chrono::milliseconds(5);
  const double ns_per_arrival = 1e9 / rate_rps;
  for (std::size_t i = 0; i < n; ++i) {
    const auto scheduled =
        start + std::chrono::nanoseconds(
                    static_cast<std::int64_t>(ns_per_arrival * i));
    // Sleep, never spin: on a core-starved host a spinning pacer steals
    // the very CPU the shards need, poisoning the measurement.  The
    // schedule is absolute, so sleep overshoot does not accumulate —
    // and submitter lag counts against latency, as open loop demands.
    std::this_thread::sleep_until(scheduled);
    fleet.router.submit(
        fresh_cost_req(),
        [&, i, scheduled](const serve::WireResponse& r) {
          // Open-loop latency: from the *scheduled* arrival, so both
          // the shard's service time and any router/admission queueing
          // (including submitter lag at overload) count.
          const double us =
              std::chrono::duration<double, std::micro>(BenchClock::now() -
                                                        scheduled)
                  .count();
          std::lock_guard<std::mutex> lock(mu);
          latency_us[i] = us;
          status[i] = r.status;
          ++done;
          cv.notify_all();
        });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == n; });
  }

  SweepPoint pt;
  pt.shards = shards;
  pt.fraction = fraction;
  pt.offered_rps = rate_rps;
  std::vector<double> ok_us;
  ok_us.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] == kOk) {
      ok_us.push_back(latency_us[i]);
    } else if (status[i] == kRejected) {
      ++pt.rejected;
    } else {
      ++pt.errors;
    }
  }
  pt.completed = ok_us.size();
  pt.stolen = fleet.router.stats().stolen;
  std::sort(ok_us.begin(), ok_us.end());
  pt.p50_us = percentile(ok_us, 0.50);
  pt.p99_us = percentile(ok_us, 0.99);
  pt.p999_us = percentile(ok_us, 0.999);
  return pt;
}

struct WarmRestart {
  std::uint64_t source_compile_misses = 0;
  std::uint64_t restore_compile_misses = 0;
  std::uint64_t replay_new_misses = 0;
  std::uint64_t replay_cache_hits = 0;
  std::uint64_t restored_entries = 0;
  bool pass = false;
};

/// E25.c — snapshot/restore warm-start contract.
WarmRestart run_warm_restart() {
  const std::vector<serve::WireRequest> tunes = {
      tune_req("editdist:4x4", 4), tune_req("matmul:3", 4),
      tune_req("conv:16,3", 4)};

  WarmRestart wr;
  std::vector<std::uint8_t> snapshot;
  {
    Fleet source(1);
    for (const serve::WireRequest& t : tunes) {
      if (source.router.call(t).status != kOk) return wr;
    }
    wr.source_compile_misses =
        source.router.shard_metrics(0).compile_misses;
    snapshot = source.router.snapshot_shard(0);
  }

  Fleet restored(1);
  wr.restored_entries = restored.router.restore_shard(0, snapshot);
  wr.restore_compile_misses =
      restored.router.shard_metrics(0).compile_misses;

  bool replay_all_hits = true;
  for (const serve::WireRequest& t : tunes) {
    const serve::WireResponse r = restored.router.call(t);
    replay_all_hits = replay_all_hits && r.status == kOk && r.cache_hit;
  }
  const serve::WireMetrics after = restored.router.shard_metrics(0);
  wr.replay_new_misses = after.compile_misses - wr.restore_compile_misses;
  wr.replay_cache_hits = after.cache_hits;

  wr.pass = replay_all_hits && wr.replay_new_misses == 0 &&
            wr.restore_compile_misses <= wr.source_compile_misses &&
            wr.restored_entries == tunes.size();
  return wr;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--json") json = true;
  }

  if (!json) {
    std::cout << "E25: distributed serve tier — open-loop saturation\n"
              << (smoke ? "(smoke run)\n" : "") << "\n";
  }

  // E25.a — single-shard capacity.
  const std::size_t cap_n = smoke ? 400 : 4000;
  const double sat1_rps = measure_capacity(cap_n);

  // E25.b — offered-load sweep.  Every fleet size sees the common
  // comparison fractions (the 0.8 point feeds the acceptance gate) plus
  // its own saturation region at S x the single-shard rate.
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t sweep_n = smoke ? 150 : 1500;
  std::vector<SweepPoint> sweep;
  for (const std::size_t s : shard_counts) {
    std::vector<double> fractions = {0.4, 0.8};
    const auto sd = static_cast<double>(s);
    for (const double f : {0.6 * sd, 1.0 * sd, 1.3 * sd, 2.0 * sd}) {
      if (f > fractions.back()) fractions.push_back(f);
    }
    for (const double f : fractions) {
      sweep.push_back(run_open_loop(s, f, f * sat1_rps, sweep_n));
    }
  }

  // Knee per fleet size: first offered fraction where P99 blows past
  // 5x the fleet's own low-load P99, or admission control sheds.
  Table knees({"shards", "knee_x_sat1", "knee_p99_us"});
  std::vector<std::string> knee_strs;
  for (const std::size_t s : shard_counts) {
    double base_p99 = 0;
    std::string knee = "none";
    double knee_p99 = 0;
    for (const SweepPoint& pt : sweep) {
      if (pt.shards != s) continue;
      if (base_p99 == 0) base_p99 = pt.p99_us;
      if (pt.p99_us > 5.0 * base_p99 || pt.rejected > 0) {
        knee = fmt(pt.fraction);
        knee_p99 = pt.p99_us;
        break;
      }
    }
    knees.add_row({std::to_string(s), knee, knee_p99});
    knee_strs.push_back(knee);
  }

  // Acceptance gate: at 0.8 x single-shard saturation, four shards must
  // cut P99 by at least 2x.  Enforced only in full runs on hardware
  // that can actually run the shards in parallel — on a 1-core host
  // four shards timeshare one CPU and no sharding scheme can beat the
  // single shard; the numbers are still reported.
  double p99_1 = 0, p99_dist = 0;
  const std::size_t gate_shards = smoke ? 2 : 4;
  for (const SweepPoint& pt : sweep) {
    if (pt.fraction == 0.8 && pt.shards == 1) p99_1 = pt.p99_us;
    if (pt.fraction == 0.8 && pt.shards == gate_shards) {
      p99_dist = pt.p99_us;
    }
  }
  const double speedup = p99_dist > 0 ? p99_1 / p99_dist : 0.0;
  const bool gate_p99 = speedup >= 2.0;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool gate_enforced = !smoke && hw_threads >= 2 * gate_shards;

  std::uint64_t total_errors = 0;
  for (const SweepPoint& pt : sweep) total_errors += pt.errors;

  // E25.c — warm restart (enforced in smoke too: it is timing-free).
  const WarmRestart wr = run_warm_restart();

  Table sweep_t({"shards", "offered_x_sat1", "offered_rps", "completed",
                 "rejected", "stolen", "p50_us", "p99_us", "p999_us"});
  for (const SweepPoint& pt : sweep) {
    sweep_t.add_row({std::to_string(pt.shards), pt.fraction, pt.offered_rps,
                     static_cast<std::int64_t>(pt.completed),
                     static_cast<std::int64_t>(pt.rejected),
                     static_cast<std::int64_t>(pt.stolen), pt.p50_us,
                     pt.p99_us, pt.p999_us});
  }

  Table warm_t({"metric", "value"});
  warm_t.add_row({std::string("source_compile_misses"),
                  static_cast<std::int64_t>(wr.source_compile_misses)});
  warm_t.add_row({std::string("restore_compile_misses"),
                  static_cast<std::int64_t>(wr.restore_compile_misses)});
  warm_t.add_row({std::string("replay_new_misses"),
                  static_cast<std::int64_t>(wr.replay_new_misses)});
  warm_t.add_row({std::string("replay_cache_hits"),
                  static_cast<std::int64_t>(wr.replay_cache_hits)});
  warm_t.add_row({std::string("restored_entries"),
                  static_cast<std::int64_t>(wr.restored_entries)});

  if (json) {
    std::ostringstream js, jk, jw;
    sweep_t.print_json(js);
    knees.print_json(jk);
    warm_t.print_json(jw);
    std::cout << "{\n\"bench\": \"e25_distributed\",\n\"smoke\": "
              << (smoke ? "true" : "false")
              << ",\n\"single_shard_sat_rps\": " << sat1_rps
              << ",\n\"p99_us_1shard_at_0p8\": " << p99_1
              << ",\n\"p99_us_" << gate_shards
              << "shard_at_0p8\": " << p99_dist
              << ",\n\"dist_p99_speedup_at_0p8\": " << speedup
              << ",\n\"hw_threads\": " << hw_threads
              << ",\n\"p99_gate_2x\": " << (gate_p99 ? "true" : "false")
              << ",\n\"p99_gate_enforced\": "
              << (gate_enforced ? "true" : "false")
              << ",\n\"sweep_errors\": " << total_errors
              << ",\n\"warm_restart_pass\": " << (wr.pass ? "true" : "false")
              << ",\n\"sweep\": " << js.str() << ",\n\"knees\": " << jk.str()
              << ",\n\"warm_restart\": " << jw.str() << "\n}\n";
  } else {
    std::cout << "E25.a single-shard saturation: " << sat1_rps
              << " requests/s (closed-loop, window 256)\n\n";
    std::cout << "E25.b open-loop sweep (latency from scheduled arrival):\n";
    sweep_t.print(std::cout);
    std::cout << "\nKnees (first offered fraction with P99 > 5x low-load "
                 "P99 or load shedding):\n";
    knees.print(std::cout);
    std::cout << "\nP99 @ 0.8 x sat1: 1 shard = " << p99_1 << " us, "
              << gate_shards << " shards = " << p99_dist
              << " us, speedup = " << speedup << " ("
              << (gate_enforced
                      ? ">= 2x gate enforced"
                      : smoke ? "not gated in smoke"
                              : "gate skipped: insufficient hw threads")
              << ", hw_threads = " << hw_threads << ")\n";
    std::cout << "\nE25.c warm restart:\n";
    warm_t.print(std::cout);
    std::cout << "\n";
  }

  bool ok = wr.pass && total_errors == 0;
  if (!wr.pass) {
    std::cerr << "FAIL: warm-restart contract violated (replay misses "
              << wr.replay_new_misses << ", restore misses "
              << wr.restore_compile_misses << " vs source "
              << wr.source_compile_misses << ")\n";
  }
  if (total_errors != 0) {
    std::cerr << "FAIL: " << total_errors << " kError responses in sweep\n";
  }
  if (gate_enforced && !gate_p99) {
    std::cerr << "FAIL: 4-shard P99 at 0.8 x sat1 not 2x better ("
              << speedup << "x)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
