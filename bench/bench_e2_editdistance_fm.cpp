// E2 — the paper's edit-distance example mapped as marching
// anti-diagonals on P processors (§3's code fragment).
//
// For each (N, P): build the DP FunctionSpec, map it with the corrected
// wavefront schedule, *verify* the mapping, price it with the analytic
// cost evaluator, and compare against the serial (one-PE) mapping.
// At one configuration the mapped computation is also executed on the
// grid machine and validated against the host Smith-Waterman.
//
// Expected shape: makespan ~ N^2/P + O(N); near-linear speedup while
// P << N; energy roughly flat in P (compute-dominated, neighbour-only
// movement).
#include <iostream>
#include <string>

#include "algos/editdist.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {

std::string random_dna(std::size_t n, std::uint64_t seed) {
  static const char kBases[] = "ACGT";
  Rng rng(seed);
  std::string s(n, 'A');
  for (auto& c : s) c = kBases[rng.next_below(4)];
  return s;
}

fm::Mapping wavefront_mapping(const fm::FunctionSpec& spec, fm::TensorId h,
                              std::int64_t n_cols, int pes) {
  fm::Mapping m;
  const fm::WavefrontMap wf = fm::wavefront_map(n_cols, pes);
  m.set_computed(h, wf.place_fn(), wf.time_fn());
  for (fm::TensorId t : spec.input_tensors()) {
    m.set_input(t, fm::InputHome::at({0, 0}));
  }
  return m;
}

}  // namespace

int main() {
  std::cout << "E2: DP edit-distance recurrence, serial vs anti-diagonal "
               "wavefront on P PEs\n(paper: \"Map H(i,j) at i % P ...\"; "
               "schedule corrected with the +i%P skew, see DESIGN.md)\n\n";

  Table t({"N", "P", "mapping", "verified", "cycles", "time_us",
           "speedup", "energy_nJ", "energy_vs_serial"});
  t.title("E2 — makespan and energy of (function, mapping) pairs");

  for (std::int64_t n : {128, 256, 512}) {
    algos::SwScores scores;
    fm::TensorId rt;
    fm::TensorId qt;
    fm::TensorId ht;
    const auto spec = algos::editdist_spec(n, n, scores, &rt, &qt, &ht);

    // Serial baseline on a 1-PE machine.
    const fm::MachineConfig serial_cfg = fm::make_machine(1, 1);
    const fm::Mapping serial = fm::serial_mapping(spec);
    const fm::CostReport base = evaluate_cost(spec, serial, serial_cfg);
    t.add_row({n, std::int64_t{1}, std::string("serial"),
               std::string("yes"), base.makespan_cycles,
               base.makespan.microseconds(), 1.0,
               base.total_energy().nanojoules(), 1.0});

    for (int p : {2, 4, 8, 16, 32}) {
      const fm::MachineConfig cfg = fm::make_machine(p, 1);
      const fm::Mapping wf = wavefront_mapping(spec, ht, n, p);
      // Full verification on the smaller sizes; causality/exclusivity
      // always (storage sweep is O(cells) memory).
      fm::VerifyOptions vo;
      vo.check_storage = n <= 256;
      vo.check_bandwidth = n <= 256;
      const fm::LegalityReport rep = verify(spec, wf, cfg, vo);
      const fm::CostReport cost = evaluate_cost(spec, wf, cfg);
      t.add_row({n, p, std::string("wavefront"),
                 std::string(rep.ok ? "yes" : "NO"), cost.makespan_cycles,
                 cost.makespan.microseconds(),
                 static_cast<double>(base.makespan_cycles) /
                     static_cast<double>(cost.makespan_cycles),
                 cost.total_energy().nanojoules(),
                 cost.total_energy() / base.total_energy()});
    }
  }
  t.print(std::cout);

  // Execution validation at one configuration.
  {
    const std::int64_t n = 128;
    const int p = 8;
    const std::string r = random_dna(static_cast<std::size_t>(n), 1);
    const std::string q = random_dna(static_cast<std::size_t>(n), 2);
    algos::SwScores scores;
    fm::TensorId rt;
    fm::TensorId qt;
    fm::TensorId ht;
    const auto spec = algos::editdist_spec(n, n, scores, &rt, &qt, &ht);
    const fm::MachineConfig cfg = fm::make_machine(p, 1);
    const auto res = fm::GridMachine(cfg).run(
        spec, wavefront_mapping(spec, ht, n, p),
        {algos::encode_string(r), algos::encode_string(q)});
    const auto expect = algos::smith_waterman_serial(r, q, scores);
    const bool match = res.outputs[0] == expect;
    std::cout << "\nValidation (N=128, P=8): grid-machine H matrix "
              << (match ? "MATCHES" : "DIFFERS FROM")
              << " host Smith-Waterman.\n";
    if (!match) return 1;
  }

  std::cout << "Shape check: speedup ~P while P << N; wavefront energy a "
               "small multiple of serial (2-6x), growing slowly with P — "
               "the extra is operand hops, input distribution to more "
               "PEs, and the (P-1)-hop return wire at each block "
               "boundary.\n";
  return 0;
}
