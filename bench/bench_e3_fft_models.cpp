// E3 — FFT variants under unit-cost (RAM) vs communication-aware (F&M)
// models (§3: "When comparing two FFT algorithms that are both
// O(NlogN), the one that is 50,000x more efficient is preferred";
// "decimation in time vs decimation in space FFT, or different radix").
//
// Three comparisons:
//   a) RAM ranking: radix-2 vs radix-4 flop counts — the only thing the
//      unit-cost model can see.
//   b) F&M ranking of *mappings* of the same radix-2 function: serial
//      1-PE, parallel sqrt(n) x sqrt(n) grid with on-chip inputs, and
//      the same grid with DRAM-resident inputs.  Unit cost calls these
//      identical; the F&M model separates them by orders of magnitude.
//   c) DIT vs DIF dataflow: same ops, same total bit-hops under an
//      identity placement, but mirrored per-stage wire-length profiles
//      (DIT's longest wires come last, DIF's first) — the per-stage
//      max-hop table shows why their pipelined schedules differ.
#include <cmath>
#include <iostream>

#include "algos/fft.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {

struct GridMapSpec {
  fm::Mapping mapping;
  fm::MachineConfig cfg;
};

/// Identity placement of element j on a g x g grid (g = sqrt(n)), one
/// stage per time block (block length covers the worst transit).
GridMapSpec grid_mapping(const fm::FunctionSpec& spec, std::int64_t n,
                         bool inputs_from_dram) {
  const int g = static_cast<int>(std::llround(std::sqrt(
      static_cast<double>(n))));
  fm::MachineConfig cfg = fm::make_machine(g, g);
  const auto block = static_cast<fm::Cycle>(
      std::ceil(0.8 * 2.0 * g) * 2 + 8);
  fm::Mapping m;
  for (fm::TensorId t : spec.computed_tensors()) {
    m.set_computed(
        t,
        [g](const fm::Point& p) {
          return noc::Coord{static_cast<int>(p.j % g),
                            static_cast<int>((p.j / g) % g)};
        },
        [block, t](const fm::Point& p) {
          return block + p.i * block + (t % 2 == 0 ? 0 : 1);
        });
  }
  for (fm::TensorId t : spec.input_tensors()) {
    m.set_input(t, inputs_from_dram ? fm::InputHome::dram()
                                    : fm::InputHome::at({0, 0}));
  }
  return {std::move(m), cfg};
}

}  // namespace

int main() {
  std::cout << "E3: FFT under unit-cost vs communication-aware models\n\n";

  // (a) RAM / unit-cost view: flop counts.
  Table a({"n", "radix2_mults", "radix2_adds", "radix4_mults",
           "radix4_adds", "mult_ratio_r2_over_r4"});
  a.title("E3.a — the RAM model's entire vocabulary: flop counts");
  for (std::int64_t n : {256, 1024, 4096}) {
    const auto r2 = algos::fft_flops_radix2(n);
    const auto r4 = algos::fft_flops_radix4(n);
    a.add_row({n, r2.mults, r2.adds, r4.mults, r4.adds,
               r2.mults / r4.mults});
  }
  a.print(std::cout);

  // (b) F&M view: same function, three mappings.
  std::cout << '\n';
  Table b({"n", "mapping", "verified", "RAM_ops", "fm_time_us",
           "fm_energy_nJ", "energy_vs_onchip"});
  b.title("E3.b — one O(n log n) function, three mappings (radix-2 DIT)");
  for (std::int64_t n : {256, 1024}) {
    const auto spec = algos::fft_spec(n, /*dif=*/false);
    const double ram_ops = spec.total_ops();

    auto onchip = grid_mapping(spec, n, /*dram=*/false);
    const fm::LegalityReport rep_on =
        verify(spec, onchip.mapping, onchip.cfg);
    const fm::CostReport c_on =
        evaluate_cost(spec, onchip.mapping, onchip.cfg);

    const fm::MachineConfig cfg1 = fm::make_machine(1, 1);
    const fm::Mapping serial = fm::serial_mapping(spec);
    const fm::CostReport c_ser = evaluate_cost(spec, serial, cfg1);

    auto dram = grid_mapping(spec, n, /*dram=*/true);
    const fm::CostReport c_dram =
        evaluate_cost(spec, dram.mapping, dram.cfg);

    b.add_row({n, std::string("grid, inputs on-chip"),
               std::string(rep_on.ok ? "yes" : "NO"), ram_ops,
               c_on.makespan.microseconds(),
               c_on.total_energy().nanojoules(), 1.0});
    b.add_row({n, std::string("serial 1 PE"), std::string("yes"), ram_ops,
               c_ser.makespan.microseconds(),
               c_ser.total_energy().nanojoules(),
               c_ser.total_energy() / c_on.total_energy()});
    b.add_row({n, std::string("grid, inputs in DRAM"), std::string("yes"),
               ram_ops, c_dram.makespan.microseconds(),
               c_dram.total_energy().nanojoules(),
               c_dram.total_energy() / c_on.total_energy()});
  }
  b.print(std::cout);

  // (c) DIT vs DIF: totals and per-stage wire profile.
  std::cout << '\n';
  const std::int64_t n = 1024;
  const auto dit = algos::fft_spec(n, false);
  const auto dif = algos::fft_spec(n, true);
  auto mdit = grid_mapping(dit, n, false);
  auto mdif = grid_mapping(dif, n, false);
  const fm::CostReport cdit = evaluate_cost(dit, mdit.mapping, mdit.cfg);
  const fm::CostReport cdif = evaluate_cost(dif, mdif.mapping, mdif.cfg);
  Table c({"dataflow", "total_ops", "bit_hops", "energy_nJ"});
  c.title("E3.c — DIT vs DIF totals (identity placement, n = 1024)");
  c.add_row({std::string("DIT (spans 1 -> n/2)"), cdit.total_ops,
             static_cast<std::int64_t>(cdit.bit_hops),
             cdit.total_energy().nanojoules()});
  c.add_row({std::string("DIF (spans n/2 -> 1)"), cdif.total_ops,
             static_cast<std::int64_t>(cdif.bit_hops),
             cdif.total_energy().nanojoules()});
  c.print(std::cout);

  std::cout << '\n';
  Table d({"stage", "DIT_span", "DIT_max_hops", "DIF_span",
           "DIF_max_hops"});
  d.title("E3.d — per-stage butterfly span / worst wire (n = 1024, "
          "32 x 32 grid)");
  const int g = 32;
  const int stages = 10;
  for (int s = 1; s <= stages; ++s) {
    const std::int64_t span_dit = std::int64_t{1} << (s - 1);
    const std::int64_t span_dif = n >> s;
    auto hops = [g](std::int64_t span) {
      // Distance between j and j ^ span under the g x g identity map.
      const std::int64_t dx = span % g;
      const std::int64_t dy = (span / g) % g;
      return dx + dy;
    };
    d.add_row({static_cast<std::int64_t>(s), span_dit, hops(span_dit),
               span_dif, hops(span_dif)});
  }
  d.print(std::cout);

  std::cout << "\nShape check: unit cost ranks all mappings equal (same "
               "RAM_ops); under F&M the grid wins time ~10-20x while the "
               "serial PE wins energy ~10x (no wires), and streaming "
               "inputs from DRAM costs an order of magnitude-plus extra "
               "energy — rankings the unit-cost model cannot express at "
               "all.  DIT and DIF tie in totals but mirror each other "
               "stage by stage.\n";
  return 0;
}
