// E4 — communication avoidance as a first-class metric (Yelick, §6):
// distributed matmul measured in words moved and messages against the
// Irony-Toledo-Tiskin / 2.5D lower bounds, priced by the alpha-beta
// model.
//
// Expected shape: naive >> SUMMA >> 2.5D in words per process; the
// communication-optimal variants sit within a small constant of the
// bound; replication (c > 1) trades memory for bandwidth and only pays
// off once P is large enough — the crossover is part of the result.
#include <iostream>

#include "algos/matmul.hpp"
#include "comm/lower_bounds.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(n * n);
  for (auto& v : m) v = rng.next_double(-1, 1);
  return m;
}

bool close(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-6) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::cout << "E4: communication-avoiding matmul vs lower bounds "
               "(alpha-beta / BSP machine)\n\n";

  Table t({"n", "P", "algorithm", "ok", "words_per_proc", "msgs_per_proc",
           "bound_words", "words_over_bound", "time_ms", "energy_uJ"});
  t.title("E4.a — words moved per process vs the bandwidth lower bound");

  for (std::size_t n : {64u, 128u}) {
    const auto a = random_matrix(n, 100 + n);
    const auto b = random_matrix(n, 200 + n);
    const auto expect = algos::matmul_serial(a, b, n);

    struct Variant {
      std::string name;
      int procs;
      int c;  // 0 = naive, 1 = summa, >1 = 2.5D
    };
    const Variant variants[] = {
        {"naive (owner rows)", 16, 0}, {"SUMMA 4x4", 16, 1},
        {"naive (owner rows)", 64, 0}, {"SUMMA 8x8", 64, 1},
        {"2.5D c=2 (P=128)", 128, 2},  {"2.5D c=4 (P=256)", 256, 4},
    };
    for (const Variant& v : variants) {
      algos::BspMatmulResult res;
      double c_for_bound = 1.0;
      if (v.c == 0) {
        res = algos::bsp_matmul_naive(a, b, n, v.procs);
      } else if (v.c == 1) {
        res = algos::bsp_matmul_summa(a, b, n, v.procs);
      } else {
        res = algos::bsp_matmul_25d(a, b, n, v.procs, v.c);
        c_for_bound = v.c;
      }
      const double per_proc =
          static_cast<double>(res.stats.total_words) / v.procs;
      const double per_proc_msgs =
          static_cast<double>(res.stats.total_messages) / v.procs;
      const double bound = comm::matmul_25d_bandwidth_bound(
          static_cast<double>(n), v.procs, c_for_bound);
      t.add_row({static_cast<std::int64_t>(n),
                 static_cast<std::int64_t>(v.procs), v.name,
                 std::string(close(res.c, expect) ? "yes" : "NO"),
                 per_proc, per_proc_msgs, bound, per_proc / bound,
                 res.stats.time.nanoseconds() * 1e-6,
                 res.stats.energy.nanojoules() * 1e-3});
    }
  }
  t.print(std::cout);

  // Replication sweep at fixed P: where does c > 1 start to win?
  std::cout << '\n';
  Table s({"P", "c", "words_per_proc", "vs_c1"});
  s.title("E4.b — 2.5D replication sweep, n = 64 (crossover in P)");
  for (int procs : {16, 64, 256}) {
    double base = 0.0;
    for (int c : {1, 2, 4}) {
      // Validity: c | P, sqrt(P/c) integral, c | sqrt(P/c), bs | n.
      const int layer = procs / c;
      const int grid = static_cast<int>(std::llround(std::sqrt(layer)));
      if (grid * grid != layer || grid % c != 0 || 64 % grid != 0) continue;
      const auto a = random_matrix(64, 7);
      const auto b = random_matrix(64, 8);
      const auto res = algos::bsp_matmul_25d(a, b, 64, procs, c);
      const double per_proc =
          static_cast<double>(res.stats.total_words) / procs;
      if (c == 1) base = per_proc;
      s.add_row({static_cast<std::int64_t>(procs),
                 static_cast<std::int64_t>(c), per_proc,
                 base > 0 ? per_proc / base : 1.0});
    }
  }
  s.print(std::cout);

  std::cout << "\nShape check: SUMMA within ~4x of its bound and well "
               "under naive; 2.5D words fall as sqrt(c) once P is large "
               "(crossover visible between P=16 and P=256).\n";
  return 0;
}
