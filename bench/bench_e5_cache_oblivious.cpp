// E5 — "it is easy to add a one level cache to the RAM model ... when
// algorithms ... satisfy a property of being cache oblivious, they will
// also work effectively on a multilevel cache" (Blelloch, §2).
//
// Transpose and matmul in three disciplines (naive / cache-aware blocked
// / cache-oblivious), measured on a one-level cache and on a three-level
// hierarchy, against the ideal-cache Q(n; M, B) bounds.
//
// Expected shape: naive ~ Theta(n^2) resp. Theta(n^3/B) misses once the
// working set spills; blocked and oblivious within a small constant of
// the ideal bound on L1 — and the *same* oblivious binary stays near the
// bound at every level of the 3-level hierarchy (that is the claim).
#include <functional>
#include <iostream>

#include "algos/matmul.hpp"
#include "algos/transpose.hpp"
#include "cache/cache.hpp"
#include "cache/ideal.hpp"
#include "cache/traced.hpp"
#include "support/table.hpp"

using namespace harmony;
using cache::CacheHierarchy;
using cache::TracedArray;

namespace {

struct MissProfile {
  std::vector<std::uint64_t> misses;  // per level
  std::uint64_t mem_lines = 0;
};

template <typename Kernel>
MissProfile run_transpose(std::size_t n, CacheHierarchy h, Kernel kernel) {
  cache::CacheSink sink(h);
  cache::AddressSpace space;
  TracedArray<double> in(n * n, space, sink);
  TracedArray<double> out(n * n, space, sink);
  kernel(in, out, n);
  MissProfile p;
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    p.misses.push_back(h.level_stats(l).misses());
  }
  p.mem_lines = h.memory_traffic_lines();
  return p;
}

template <typename Kernel>
MissProfile run_matmul(std::size_t n, CacheHierarchy h, Kernel kernel) {
  cache::CacheSink sink(h);
  cache::AddressSpace space;
  TracedArray<double> a(n * n, space, sink);
  TracedArray<double> b(n * n, space, sink);
  TracedArray<double> c(n * n, space, sink);
  kernel(a, b, c, n);
  MissProfile p;
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    p.misses.push_back(h.level_stats(l).misses());
  }
  p.mem_lines = h.memory_traffic_lines();
  return p;
}

}  // namespace

int main() {
  std::cout << "E5: cache-aware vs cache-oblivious kernels on one- and "
               "three-level hierarchies\n\n";

  // --- transpose on a single level -------------------------------------
  Table t({"n", "kernel", "L1_misses", "ideal_Q", "misses_over_Q"});
  t.title("E5.a — transpose, 32 KiB single-level cache, 64 B lines");
  for (std::size_t n : {128u, 256u, 512u}) {
    const cache::IdealCache ideal{32.0 * 1024, 64.0};
    const double q = cache::transpose_misses(
        ideal, static_cast<double>(n), sizeof(double));
    struct K {
      const char* name;
      std::function<void(TracedArray<double>&, TracedArray<double>&,
                         std::size_t)> fn;
    };
    const K kernels[] = {
        {"naive", [](auto& i, auto& o, std::size_t m) {
           algos::transpose_naive(i, o, m);
         }},
        {"blocked B=32 (aware)", [](auto& i, auto& o, std::size_t m) {
           algos::transpose_blocked(i, o, m, 32);
         }},
        {"cache-oblivious", [](auto& i, auto& o, std::size_t m) {
           algos::transpose_oblivious(i, o, m);
         }},
    };
    for (const K& k : kernels) {
      const auto p = run_transpose(n, cache::make_single_level(32 * 1024, 64),
                                   k.fn);
      t.add_row({static_cast<std::int64_t>(n), std::string(k.name),
                 static_cast<std::int64_t>(p.misses[0]), q,
                 static_cast<double>(p.misses[0]) / q});
    }
  }
  t.print(std::cout);

  // --- the multilevel claim: one oblivious binary, three levels --------
  std::cout << '\n';
  Table m({"n", "kernel", "L1_misses", "L2_misses", "L3_misses",
           "L1_over_Q1", "L2_over_Q2", "L3_over_Q3"});
  m.title("E5.b — transpose on the 3-level hierarchy (32K/512K/8M): "
          "misses at *every* level vs that level's ideal bound");
  for (std::size_t n : {256u, 512u, 1024u}) {
    struct K {
      const char* name;
      std::function<void(TracedArray<double>&, TracedArray<double>&,
                         std::size_t)> fn;
    };
    const K kernels[] = {
        {"naive", [](auto& i, auto& o, std::size_t mm) {
           algos::transpose_naive(i, o, mm);
         }},
        {"cache-oblivious", [](auto& i, auto& o, std::size_t mm) {
           algos::transpose_oblivious(i, o, mm);
         }},
    };
    const double sizes[] = {32.0 * 1024, 512.0 * 1024, 8192.0 * 1024};
    for (const K& k : kernels) {
      const auto p = run_transpose(n, cache::make_three_level(), k.fn);
      std::vector<Cell> row{static_cast<std::int64_t>(n),
                            std::string(k.name)};
      for (int l = 0; l < 3; ++l) {
        row.push_back(static_cast<std::int64_t>(
            p.misses[static_cast<std::size_t>(l)]));
      }
      for (int l = 0; l < 3; ++l) {
        const double q = cache::transpose_misses(
            cache::IdealCache{sizes[l], 64.0}, static_cast<double>(n),
            sizeof(double));
        row.push_back(static_cast<double>(
                          p.misses[static_cast<std::size_t>(l)]) / q);
      }
      m.add_row(std::move(row));
    }
  }
  m.print(std::cout);

  // --- matmul ----------------------------------------------------------
  std::cout << '\n';
  Table mm({"n", "kernel", "L1_misses", "ideal_Q", "misses_over_Q"});
  mm.title("E5.c — matmul, 32 KiB single-level cache");
  for (std::size_t n : {64u, 128u, 192u}) {
    const cache::IdealCache ideal{32.0 * 1024, 64.0};
    const double q = cache::matmul_misses(ideal, static_cast<double>(n),
                                          sizeof(double));
    struct K {
      const char* name;
      std::function<void(TracedArray<double>&, TracedArray<double>&,
                         TracedArray<double>&, std::size_t)> fn;
    };
    const K kernels[] = {
        {"naive ijk", [](auto& a, auto& b, auto& c, std::size_t m) {
           algos::matmul_naive(a, b, c, m);
         }},
        {"blocked B=16 (aware)", [](auto& a, auto& b, auto& c,
                                    std::size_t m) {
           algos::matmul_blocked(a, b, c, m, 16);
         }},
        {"cache-oblivious", [](auto& a, auto& b, auto& c, std::size_t m) {
           algos::matmul_oblivious(a, b, c, m);
         }},
    };
    for (const K& k : kernels) {
      const auto p = run_matmul(n, cache::make_single_level(32 * 1024, 64),
                                k.fn);
      mm.add_row({static_cast<std::int64_t>(n), std::string(k.name),
                  static_cast<std::int64_t>(p.misses[0]), q,
                  static_cast<double>(p.misses[0]) / q});
    }
  }
  mm.print(std::cout);

  std::cout << "\nShape check: oblivious within a small constant of Q at "
               "every level and every size; naive degrades by ~B (=8 "
               "doubles/line) or worse once n^2 exceeds the level.\n";
  return 0;
}
