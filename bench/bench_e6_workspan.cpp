// E6 — the work-depth model's cost mapping (Blelloch, §2): "there are
// parallel models that are simple ... and support cost mappings down to
// the machine level that reasonably capture real performance."
//
// For scan, mergesort, and matmul: record W and D with the analyzer,
// simulate a greedy schedule at each P, and audit Brent's bound
// max(W/P, D) <= T_P <= W/P + D.  A google-benchmark section then times
// the same source code on the real work-stealing scheduler (wall-clock
// speedups are hardware-dependent; on a 1-core CI box they are ~1x, and
// the model numbers are the deliverable).
#include <benchmark/benchmark.h>

#include <iostream>

#include "algos/matmul.hpp"
#include "algos/scan.hpp"
#include "algos/sort.hpp"
#include "sched/parallel_ops.hpp"
#include "sched/scheduler.hpp"
#include "sched/workspan.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {

struct Recorded {
  std::string name;
  sched::WorkSpanCtx ctx;
};

std::vector<Recorded> record_all() {
  std::vector<Recorded> out;
  {
    Recorded r{"scan n=2^16", {}};
    std::vector<double> data(1 << 16, 1.0);
    algos::exclusive_scan(r.ctx, data, 256);
    out.push_back(std::move(r));
  }
  {
    Recorded r{"mergesort n=2^14", {}};
    auto keys = algos::random_keys(1 << 14, 42);
    algos::merge_sort_par(r.ctx, keys, 256);
    out.push_back(std::move(r));
  }
  {
    Recorded r{"matmul n=96", {}};
    std::vector<double> a(96 * 96, 1.0);
    std::vector<double> b(96 * 96, 2.0);
    std::vector<double> c;
    algos::matmul_par(r.ctx, a, b, c, 96, 4);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E6: work-span model -> greedy schedule -> Brent bound "
               "audit\n\n";

  auto recorded = record_all();

  Table t({"algorithm", "work_W", "span_D", "parallelism", "P", "T_P",
           "W/P", "W/P+D", "brent_ok", "speedup_T1/T_P"});
  t.title("E6.a — greedy P-processor schedules vs Brent's bound");
  for (auto& r : recorded) {
    const double w = r.ctx.total_work();
    const double d = r.ctx.span();
    const double t1 = r.ctx.greedy_time(1);
    for (unsigned p : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const double tp = r.ctx.greedy_time(p);
      const bool ok = tp + 1e-6 >= std::max(w / p, d) &&
                      tp <= w / p + d + 1e-6;
      t.add_row({r.name, w, d, r.ctx.parallelism(),
                 static_cast<std::int64_t>(p), tp, w / p, w / p + d,
                 std::string(ok ? "yes" : "NO"), t1 / tp});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: T_P tracks W/P until P approaches W/D, "
               "then flattens at D — the work-depth model's promised "
               "cost translation.\n\n";

  // Wall-clock section (real scheduler).
  std::cout << "E6.b — wall-clock on the work-stealing scheduler "
               "(hardware-dependent; informative only):\n";
  benchmark::RegisterBenchmark("real/scan_2e16", [](benchmark::State& st) {
    sched::Scheduler sched(
        std::max(1u, std::thread::hardware_concurrency()));
    sched::RealCtx ctx;
    for (auto _ : st) {
      std::vector<double> data(1 << 16, 1.0);
      double total = 0;
      sched.run([&] { total = algos::exclusive_scan(ctx, data, 1024); });
      benchmark::DoNotOptimize(total);
    }
  });
  benchmark::RegisterBenchmark("serial/scan_2e16",
                               [](benchmark::State& st) {
    for (auto _ : st) {
      std::vector<double> in(1 << 16, 1.0);
      std::vector<double> out;
      const double total = algos::exclusive_scan_seq(in, out);
      benchmark::DoNotOptimize(total);
    }
  });
  benchmark::RegisterBenchmark("real/mergesort_2e14",
                               [](benchmark::State& st) {
    sched::Scheduler sched(
        std::max(1u, std::thread::hardware_concurrency()));
    sched::RealCtx ctx;
    for (auto _ : st) {
      st.PauseTiming();
      auto keys = algos::random_keys(1 << 14, 7);
      st.ResumeTiming();
      sched.run([&] { algos::merge_sort_par(ctx, keys, 1024); });
      benchmark::DoNotOptimize(keys.data());
    }
  });
  benchmark::RegisterBenchmark("serial/mergesort_2e14",
                               [](benchmark::State& st) {
    for (auto _ : st) {
      st.PauseTiming();
      auto keys = algos::random_keys(1 << 14, 7);
      st.ResumeTiming();
      algos::merge_sort_seq(keys);
      benchmark::DoNotOptimize(keys.data());
    }
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
