// E7 — Vishkin's BFS example (§5): "breadth-first search on graphs had
// been tied to a first-in first-out queue for no good reason other than
// enforcing serialization."
//
// Serial queue BFS vs dense level-synchronous PRAM BFS vs XMT frontier
// BFS with the ps() primitive, on low-diameter random graphs and a
// high-diameter grid.
//
// Expected shape: PRAM depth ~ diameter (vs serial depth ~ n+m) but its
// dense relaxation is NOT work-efficient (work ~ n * levels); the XMT
// frontier version restores work O(n+m) while keeping depth ~ levels —
// Vishkin's argument that hardware primitives make the PRAM abstraction
// work-efficient in practice.
#include <iostream>

#include "algos/graph.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E7: three BFS expressions over one CSR graph\n\n";

  struct Workload {
    std::string name;
    algos::CsrGraph g;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"random n=4096 m~24k", algos::random_graph(
                                                  4096, 12288, 99)});
  workloads.push_back({"random n=16384 m~98k", algos::random_graph(
                                                   16384, 49152, 17)});
  workloads.push_back({"grid 64x64 (diam 126)", algos::grid_graph(64, 64)});

  Table t({"graph", "algorithm", "levels", "depth_metric", "work_metric",
           "work_vs_serial"});
  t.title("E7 — BFS work and depth across execution models");
  for (auto& w : workloads) {
    const auto serial = algos::bfs_serial(w.g, 0);
    std::int64_t levels = 0;
    for (std::int64_t dv : serial.dist) levels = std::max(levels, dv);
    ++levels;

    t.add_row({w.name, std::string("serial FIFO queue"), levels,
               static_cast<double>(serial.work),
               static_cast<double>(serial.work), 1.0});

    const auto pram = algos::bfs_pram(w.g, 0, 64);
    const bool pram_ok = pram.dist == serial.dist;
    const auto pram_work =
        static_cast<double>(pram.stats.reads + pram.stats.writes);
    t.add_row({w.name,
               std::string(pram_ok ? "PRAM level-sync (CRCW, P=64)"
                                   : "PRAM level-sync [WRONG]"),
               pram.levels, static_cast<double>(pram.stats.steps),
               pram_work,
               pram_work / static_cast<double>(serial.work)});

    pram::XmtConfig cfg;
    cfg.num_tcus = 64;
    const auto xmt = algos::bfs_xmt(w.g, 0, cfg);
    const bool xmt_ok = xmt.dist == serial.dist;
    t.add_row({w.name,
               std::string(xmt_ok ? "XMT frontier + ps (64 TCUs)"
                                  : "XMT frontier [WRONG]"),
               xmt.levels, static_cast<double>(xmt.stats.estimated_cycles),
               static_cast<double>(xmt.stats.work),
               static_cast<double>(xmt.stats.work) /
                   static_cast<double>(serial.work)});
  }
  t.print(std::cout);

  std::cout << "\nShape check: all three agree on distances; PRAM "
               "level-sync work blows up with diameter (grid row) while "
               "XMT stays within a small constant of serial work; XMT "
               "depth ~ levels, not n+m.\n";
  return 0;
}
