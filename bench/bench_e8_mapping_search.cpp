// E8 — systematic mapping search (Dally, §3): "One can systematically
// search the space of possible mappings to optimize a given figure of
// merit: execution time, energy per op, memory footprint, or some
// combination."
//
// The autotuner enumerates the affine space-time family for three
// kernels (DP edit distance, 1-D stencil, matmul) under each figure of
// merit, and reports the winner against the serial and default-mapper
// baselines.  Expected shape: the search rediscovers the classic
// schedules (the DP wavefront t = i + j; the stencil's time-major scan;
// a k-serial projection for matmul) and beats serial by ~N on time
// while never losing on the chosen merit.
#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "fm/cost.hpp"
#include "fm/default_mapper.hpp"
#include "fm/idioms.hpp"
#include "fm/search.hpp"
#include "sched/scheduler.hpp"
#include "support/table.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace harmony;

namespace {

std::string coeffs(const fm::AffineMap& m) {
  std::ostringstream os;
  os << "t=" << m.ti << "i+" << m.tj << "j+" << m.tk << "k"
     << " x=" << m.xi << "i+" << m.xj << "j+" << m.xk << "k";
  return os.str();
}

const char* fom_name(fm::FigureOfMerit f) {
  switch (f) {
    case fm::FigureOfMerit::kTime:
      return "time";
    case fm::FigureOfMerit::kEnergy:
      return "energy";
    case fm::FigureOfMerit::kEnergyDelay:
      return "energy-delay";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  // --trace out.json captures the E8.c parallel section: per-grain
  // search spans over the worker pool, plus run/steal/sleep scheduler
  // spans.  When absent, every event site is one relaxed atomic load.
  // --json prints one machine-readable object (winners, Pareto front,
  // scaling table) instead of the ASCII tables —
  // BENCH_e8_mapping_search.json is this output.
  const std::string trace_path = trace::trace_flag(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") json = true;
  }
  std::optional<trace::TraceSession> session;
  if (!trace_path.empty()) session.emplace();

  if (!json) {
    std::cout << "E8: autotuning space-time mappings per figure of merit\n\n";
  }
  std::ostringstream jwinners, jpareto, jscaling;

  Table t({"kernel", "merit", "best_map", "enumerated", "legal", "cycles",
           "energy_nJ", "cycles_vs_serial", "cycles_vs_default"});
  t.title("E8 — search winners vs serial and default-mapper baselines");

  struct Kernel {
    std::string name;
    fm::FunctionSpec spec;
    int cols;
    int rows;
  };
  std::vector<Kernel> kernels;
  {
    algos::SwScores s;
    kernels.push_back(
        {"editdist 16x16", algos::editdist_spec(16, 16, s), 16, 1});
  }
  kernels.push_back(
      {"stencil1d n=16 T=12", algos::stencil1d_spec(16, 12), 16, 1});
  kernels.push_back({"matmul 8^3", algos::matmul_spec(8), 8, 8});

  for (auto& k : kernels) {
    const fm::MachineConfig cfg = fm::make_machine(k.cols, k.rows);
    fm::Mapping proto;
    for (fm::TensorId in : k.spec.input_tensors()) {
      // Inputs pre-loaded block-wise across the PE SRAMs (a single-PE
      // home is a bandwidth hot-spot the verifier rightly rejects).
      proto.set_input(in,
                      fm::InputHome::distributed(
                          fm::block_distribution(k.spec.domain(in),
                                                 cfg.geom).place));
    }
    const fm::CostReport serial =
        evaluate_cost(k.spec, fm::serial_mapping(k.spec), cfg);
    const fm::CostReport def =
        evaluate_cost(k.spec, fm::default_mapping(k.spec, cfg), cfg);

    for (auto fom : {fm::FigureOfMerit::kTime, fm::FigureOfMerit::kEnergy,
                     fm::FigureOfMerit::kEnergyDelay}) {
      fm::SearchOptions opts;
      opts.fom = fom;
      opts.space.time_coeffs = {0, 1, 2};
      opts.space.space_coeffs = {-1, 0, 1};
      const fm::SearchResult res =
          search_affine(k.spec, cfg, proto, opts);
      if (!res.found) {
        t.add_row({k.name, std::string(fom_name(fom)),
                   std::string("NONE FOUND"),
                   static_cast<std::int64_t>(res.enumerated),
                   static_cast<std::int64_t>(res.legal), std::int64_t{0},
                   0.0, 0.0, 0.0});
        continue;
      }
      t.add_row({k.name, std::string(fom_name(fom)), coeffs(res.best.map),
                 static_cast<std::int64_t>(res.enumerated),
                 static_cast<std::int64_t>(res.legal),
                 res.best.cost.makespan_cycles,
                 res.best.cost.total_energy().nanojoules(),
                 static_cast<double>(serial.makespan_cycles) /
                     static_cast<double>(res.best.cost.makespan_cycles),
                 static_cast<double>(def.makespan_cycles) /
                     static_cast<double>(res.best.cost.makespan_cycles)});
    }
  }
  if (json) {
    t.print_json(jwinners);
  } else {
    t.print(std::cout);
  }

  // The "or some combination" claim: the legal mappings' (time, energy)
  // Pareto front for the DP kernel.
  if (!json) std::cout << '\n';
  {
    algos::SwScores s;
    const auto spec = algos::editdist_spec(16, 16, s);
    const fm::MachineConfig cfg = fm::make_machine(16, 1);
    fm::Mapping proto;
    for (fm::TensorId in : spec.input_tensors()) {
      proto.set_input(in, fm::InputHome::distributed(
                              fm::block_distribution(spec.domain(in),
                                                     cfg.geom).place));
    }
    fm::SearchOptions opts;
    opts.keep_all_legal = true;
    const fm::SearchResult res = search_affine(spec, cfg, proto, opts);
    const auto front = fm::pareto_front(res.all_legal);
    Table p({"pareto_point", "map", "cycles", "energy_nJ"});
    p.title("E8.b — (time, energy) Pareto front, editdist 16x16 (" +
            std::to_string(res.all_legal.size()) + " legal mappings)");
    std::int64_t idx = 0;
    for (const fm::Candidate& c : front) {
      p.add_row({idx++, coeffs(c.map), c.cost.makespan_cycles,
                 c.cost.total_energy().nanojoules()});
    }
    if (json) {
      p.print_json(jpareto);
    } else {
      p.print(std::cout);
    }
  }

  // E8.c — the same search spread over the work-stealing scheduler.
  // The enumeration is slot-numbered, so the parallel backend must
  // return the byte-identical top-k; this section measures what the
  // determinism costs (nothing) and what the lanes buy (wall clock).
  if (!json) std::cout << '\n';
  {
    using BenchClock = std::chrono::steady_clock;
    algos::SwScores s;
    const auto spec = algos::editdist_spec(20, 20, s);
    const fm::MachineConfig cfg = fm::make_machine(20, 1);
    fm::Mapping proto;
    for (fm::TensorId in : spec.input_tensors()) {
      proto.set_input(in, fm::InputHome::distributed(
                              fm::block_distribution(spec.domain(in),
                                                     cfg.geom).place));
    }
    fm::SearchOptions base;
    base.fom = fm::FigureOfMerit::kTime;

    const BenchClock::time_point s0 = BenchClock::now();
    const fm::SearchResult serial = search_affine(spec, cfg, proto, base);
    const double serial_ms =
        std::chrono::duration<double, std::milli>(BenchClock::now() - s0)
            .count();

    Table sc({"workers", "elapsed_ms", "speedup_vs_serial", "identical"});
    sc.title("E8.c — parallel search scaling, editdist 20x20 (" +
             std::to_string(serial.enumerated) + " candidates; host has " +
             std::to_string(std::thread::hardware_concurrency()) +
             " hardware threads)");
    sc.add_row({std::string("serial"), serial_ms, 1.0, std::string("-")});

    sched::Scheduler pool(8);
    bool all_identical = true;
    for (const unsigned w : {1u, 2u, 4u, 8u}) {
      fm::SearchOptions opts = base;
      opts.scheduler = &pool;
      opts.num_workers = w;
      const BenchClock::time_point p0 = BenchClock::now();
      const fm::SearchResult par = search_affine(spec, cfg, proto, opts);
      const double par_ms =
          std::chrono::duration<double, std::milli>(BenchClock::now() - p0)
              .count();
      const bool identical =
          par.found == serial.found && par.best.slot == serial.best.slot &&
          par.best.merit == serial.best.merit &&
          par.enumerated == serial.enumerated && par.legal == serial.legal;
      all_identical &= identical;
      sc.add_row({static_cast<std::int64_t>(par.workers_used), par_ms,
                  par_ms > 0 ? serial_ms / par_ms : 0.0,
                  std::string(identical ? "yes" : "NO")});
    }
    if (json) {
      sc.print_json(jscaling);
    } else {
      sc.print(std::cout);
    }
    if (session) {
      // Scope note: `pool` is still alive here, so stop() only — the
      // capture happens after the pool's destructor joins its workers.
      session->stop();
    }
    if (json) {
      std::cout << "{\n\"bench\": \"e8_mapping_search\",\n"
                << "\"all_identical\": "
                << (all_identical ? "true" : "false")
                << ",\n\"hardware_threads\": "
                << std::thread::hardware_concurrency()
                << ",\n\"winners\": " << jwinners.str()
                << ",\n\"pareto_front\": " << jpareto.str()
                << ",\n\"parallel_search\": " << jscaling.str() << "\n}\n";
    } else {
      std::cout << (all_identical
                        ? "\nAll lane counts returned the serial result "
                          "bit-for-bit; speedup tracks the host's real "
                          "parallelism (a 1-core host honestly reports "
                          "~1x).\n"
                        : "\nERROR: a parallel run diverged from serial.\n");
    }
    if (!all_identical) return 1;
  }

  if (session) {
    session->stop();  // idempotent; E8.c's pool is destroyed by now
    const trace::Capture cap = session->capture();
    trace::write_chrome_json_file(trace_path, cap);
    std::cout << '\n';
    trace::summary_table(trace::summarize(cap)).print(std::cout);
    std::cout << "trace: " << cap.events.size() << " events -> " << trace_path
              << " (open in ui.perfetto.dev)\n";
  }

  if (!json) {
    std::cout << "\nShape check: on the time merit the DP kernel's winner "
                 "is the wavefront (t = i + j); searched mappings dominate "
                 "serial by ~N and at least match the default mapper on "
                 "their own merit.\n";
  }
  return 0;
}
