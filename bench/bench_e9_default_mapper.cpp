// E9 — "Programmers that don't want to bother with mapping can use a
// default mapper — with results no worse than with today's
// abstractions" (Dally, §3).
//
// The automatic block-placement + ASAP-schedule mapper is compared with
// the serial one-PE mapping (the conventional-architecture stand-in)
// across the algorithm suite, on time and energy.  Expected shape:
// default-mapper time <= serial time on every kernel (the "no worse"
// claim), with energy within a small factor (ASAP placement pays some
// extra movement).
#include <iostream>

#include "algos/editdist.hpp"
#include "algos/fft.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "fm/cost.hpp"
#include "fm/default_mapper.hpp"
#include "fm/legality.hpp"
#include "support/table.hpp"

using namespace harmony;

int main() {
  std::cout << "E9: default mapper vs the serial-RAM baseline mapping\n\n";

  struct Kernel {
    std::string name;
    fm::FunctionSpec spec;
  };
  std::vector<Kernel> kernels;
  {
    algos::SwScores s;
    kernels.push_back({"editdist 32x32", algos::editdist_spec(32, 32, s)});
  }
  kernels.push_back({"fft DIT n=64", algos::fft_spec(64, false)});
  kernels.push_back({"fft DIF n=64", algos::fft_spec(64, true)});
  kernels.push_back({"stencil1d n=64 T=16", algos::stencil1d_spec(64, 16)});
  kernels.push_back({"conv1d n=64 k=8", algos::conv1d_spec(64, 8)});
  kernels.push_back({"matmul 12^3", algos::matmul_spec(12)});

  Table t({"kernel", "grid", "verified", "serial_cycles", "default_cycles",
           "time_ratio", "serial_nJ", "default_nJ", "energy_ratio",
           "no_worse"});
  t.title("E9 — ASAP default mapping vs serial mapping (8x4 grid)");
  bool all_no_worse = true;
  for (auto& k : kernels) {
    const fm::MachineConfig cfg = fm::make_machine(8, 4);
    const fm::Mapping def = fm::default_mapping(k.spec, cfg);
    const fm::LegalityReport rep = verify(k.spec, def, cfg);
    const fm::CostReport d = evaluate_cost(k.spec, def, cfg);
    const fm::CostReport s =
        evaluate_cost(k.spec, fm::serial_mapping(k.spec), cfg);
    const bool no_worse = d.makespan_cycles <= s.makespan_cycles;
    all_no_worse = all_no_worse && no_worse && rep.ok;
    t.add_row({k.name, std::string("8x4"),
               std::string(rep.ok ? "yes" : "NO"), s.makespan_cycles,
               d.makespan_cycles,
               static_cast<double>(d.makespan_cycles) /
                   static_cast<double>(s.makespan_cycles),
               s.total_energy().nanojoules(),
               d.total_energy().nanojoules(),
               d.total_energy() / s.total_energy(),
               std::string(no_worse ? "yes" : "NO")});
  }
  t.print(std::cout);

  std::cout << "\nShape check: every row verified and 'no_worse' = yes ("
            << (all_no_worse ? "HOLDS" : "VIOLATED")
            << "); time ratios well below 1 for the parallel-friendly "
               "kernels.\n";
  return all_no_worse ? 0 : 1;
}
