file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_memmodel.dir/bench_e10_memmodel.cpp.o"
  "CMakeFiles/bench_e10_memmodel.dir/bench_e10_memmodel.cpp.o.d"
  "bench_e10_memmodel"
  "bench_e10_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
