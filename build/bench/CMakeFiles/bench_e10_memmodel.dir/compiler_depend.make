# Empty compiler generated dependencies file for bench_e10_memmodel.
# This may be replaced when dependencies are built.
