file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_asymmetric.dir/bench_e11_asymmetric.cpp.o"
  "CMakeFiles/bench_e11_asymmetric.dir/bench_e11_asymmetric.cpp.o.d"
  "bench_e11_asymmetric"
  "bench_e11_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
