# Empty compiler generated dependencies file for bench_e11_asymmetric.
# This may be replaced when dependencies are built.
