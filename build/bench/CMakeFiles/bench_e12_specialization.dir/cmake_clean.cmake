file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_specialization.dir/bench_e12_specialization.cpp.o"
  "CMakeFiles/bench_e12_specialization.dir/bench_e12_specialization.cpp.o.d"
  "bench_e12_specialization"
  "bench_e12_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
