file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_xmt_ps.dir/bench_e13_xmt_ps.cpp.o"
  "CMakeFiles/bench_e13_xmt_ps.dir/bench_e13_xmt_ps.cpp.o.d"
  "bench_e13_xmt_ps"
  "bench_e13_xmt_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_xmt_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
