# Empty dependencies file for bench_e13_xmt_ps.
# This may be replaced when dependencies are built.
