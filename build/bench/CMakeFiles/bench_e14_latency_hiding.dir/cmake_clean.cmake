file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_latency_hiding.dir/bench_e14_latency_hiding.cpp.o"
  "CMakeFiles/bench_e14_latency_hiding.dir/bench_e14_latency_hiding.cpp.o.d"
  "bench_e14_latency_hiding"
  "bench_e14_latency_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_latency_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
