file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_collectives.dir/bench_e15_collectives.cpp.o"
  "CMakeFiles/bench_e15_collectives.dir/bench_e15_collectives.cpp.o.d"
  "bench_e15_collectives"
  "bench_e15_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
