# Empty dependencies file for bench_e15_collectives.
# This may be replaced when dependencies are built.
