# Empty dependencies file for bench_e16_cache_policies.
# This may be replaced when dependencies are built.
