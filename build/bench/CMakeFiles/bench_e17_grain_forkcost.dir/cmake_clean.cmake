file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_grain_forkcost.dir/bench_e17_grain_forkcost.cpp.o"
  "CMakeFiles/bench_e17_grain_forkcost.dir/bench_e17_grain_forkcost.cpp.o.d"
  "bench_e17_grain_forkcost"
  "bench_e17_grain_forkcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_grain_forkcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
