# Empty dependencies file for bench_e17_grain_forkcost.
# This may be replaced when dependencies are built.
