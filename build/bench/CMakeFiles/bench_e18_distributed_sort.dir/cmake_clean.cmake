file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_distributed_sort.dir/bench_e18_distributed_sort.cpp.o"
  "CMakeFiles/bench_e18_distributed_sort.dir/bench_e18_distributed_sort.cpp.o.d"
  "bench_e18_distributed_sort"
  "bench_e18_distributed_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_distributed_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
