# Empty dependencies file for bench_e18_distributed_sort.
# This may be replaced when dependencies are built.
