file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_energy_ratios.dir/bench_e1_energy_ratios.cpp.o"
  "CMakeFiles/bench_e1_energy_ratios.dir/bench_e1_energy_ratios.cpp.o.d"
  "bench_e1_energy_ratios"
  "bench_e1_energy_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_energy_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
