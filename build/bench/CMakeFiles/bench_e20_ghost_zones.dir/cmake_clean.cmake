file(REMOVE_RECURSE
  "CMakeFiles/bench_e20_ghost_zones.dir/bench_e20_ghost_zones.cpp.o"
  "CMakeFiles/bench_e20_ghost_zones.dir/bench_e20_ghost_zones.cpp.o.d"
  "bench_e20_ghost_zones"
  "bench_e20_ghost_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e20_ghost_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
