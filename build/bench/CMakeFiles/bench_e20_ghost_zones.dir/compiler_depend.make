# Empty compiler generated dependencies file for bench_e20_ghost_zones.
# This may be replaced when dependencies are built.
