file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_editdistance_fm.dir/bench_e2_editdistance_fm.cpp.o"
  "CMakeFiles/bench_e2_editdistance_fm.dir/bench_e2_editdistance_fm.cpp.o.d"
  "bench_e2_editdistance_fm"
  "bench_e2_editdistance_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_editdistance_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
