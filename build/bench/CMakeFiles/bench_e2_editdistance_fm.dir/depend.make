# Empty dependencies file for bench_e2_editdistance_fm.
# This may be replaced when dependencies are built.
