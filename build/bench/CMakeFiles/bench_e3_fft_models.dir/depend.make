# Empty dependencies file for bench_e3_fft_models.
# This may be replaced when dependencies are built.
