
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_comm_avoiding.cpp" "bench/CMakeFiles/bench_e4_comm_avoiding.dir/bench_e4_comm_avoiding.cpp.o" "gcc" "bench/CMakeFiles/bench_e4_comm_avoiding.dir/bench_e4_comm_avoiding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/harmony_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/harmony_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/harmony_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/harmony_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/harmony_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/harmony_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/harmony_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/memmodel/CMakeFiles/harmony_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/harmony_algos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
