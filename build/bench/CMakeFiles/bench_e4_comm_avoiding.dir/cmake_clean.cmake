file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_comm_avoiding.dir/bench_e4_comm_avoiding.cpp.o"
  "CMakeFiles/bench_e4_comm_avoiding.dir/bench_e4_comm_avoiding.cpp.o.d"
  "bench_e4_comm_avoiding"
  "bench_e4_comm_avoiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_comm_avoiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
