# Empty compiler generated dependencies file for bench_e4_comm_avoiding.
# This may be replaced when dependencies are built.
