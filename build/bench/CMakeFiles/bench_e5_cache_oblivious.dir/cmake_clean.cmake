file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_cache_oblivious.dir/bench_e5_cache_oblivious.cpp.o"
  "CMakeFiles/bench_e5_cache_oblivious.dir/bench_e5_cache_oblivious.cpp.o.d"
  "bench_e5_cache_oblivious"
  "bench_e5_cache_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_cache_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
