# Empty compiler generated dependencies file for bench_e5_cache_oblivious.
# This may be replaced when dependencies are built.
