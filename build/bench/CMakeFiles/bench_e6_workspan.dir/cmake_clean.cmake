file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_workspan.dir/bench_e6_workspan.cpp.o"
  "CMakeFiles/bench_e6_workspan.dir/bench_e6_workspan.cpp.o.d"
  "bench_e6_workspan"
  "bench_e6_workspan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_workspan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
