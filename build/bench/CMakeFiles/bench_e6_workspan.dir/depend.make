# Empty dependencies file for bench_e6_workspan.
# This may be replaced when dependencies are built.
