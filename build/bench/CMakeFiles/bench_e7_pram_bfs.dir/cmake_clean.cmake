file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_pram_bfs.dir/bench_e7_pram_bfs.cpp.o"
  "CMakeFiles/bench_e7_pram_bfs.dir/bench_e7_pram_bfs.cpp.o.d"
  "bench_e7_pram_bfs"
  "bench_e7_pram_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_pram_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
