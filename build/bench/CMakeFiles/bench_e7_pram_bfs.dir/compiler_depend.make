# Empty compiler generated dependencies file for bench_e7_pram_bfs.
# This may be replaced when dependencies are built.
