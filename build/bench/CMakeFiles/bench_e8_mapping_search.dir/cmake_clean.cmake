file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_mapping_search.dir/bench_e8_mapping_search.cpp.o"
  "CMakeFiles/bench_e8_mapping_search.dir/bench_e8_mapping_search.cpp.o.d"
  "bench_e8_mapping_search"
  "bench_e8_mapping_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_mapping_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
