# Empty compiler generated dependencies file for bench_e8_mapping_search.
# This may be replaced when dependencies are built.
