file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_default_mapper.dir/bench_e9_default_mapper.cpp.o"
  "CMakeFiles/bench_e9_default_mapper.dir/bench_e9_default_mapper.cpp.o.d"
  "bench_e9_default_mapper"
  "bench_e9_default_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_default_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
