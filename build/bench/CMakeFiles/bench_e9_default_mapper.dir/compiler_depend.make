# Empty compiler generated dependencies file for bench_e9_default_mapper.
# This may be replaced when dependencies are built.
