file(REMOVE_RECURSE
  "CMakeFiles/comm_avoiding_matmul.dir/comm_avoiding_matmul.cpp.o"
  "CMakeFiles/comm_avoiding_matmul.dir/comm_avoiding_matmul.cpp.o.d"
  "comm_avoiding_matmul"
  "comm_avoiding_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_avoiding_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
