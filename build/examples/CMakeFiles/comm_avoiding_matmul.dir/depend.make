# Empty dependencies file for comm_avoiding_matmul.
# This may be replaced when dependencies are built.
