file(REMOVE_RECURSE
  "CMakeFiles/editdistance_systolic.dir/editdistance_systolic.cpp.o"
  "CMakeFiles/editdistance_systolic.dir/editdistance_systolic.cpp.o.d"
  "editdistance_systolic"
  "editdistance_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/editdistance_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
