# Empty compiler generated dependencies file for editdistance_systolic.
# This may be replaced when dependencies are built.
