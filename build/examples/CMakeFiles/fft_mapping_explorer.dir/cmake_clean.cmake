file(REMOVE_RECURSE
  "CMakeFiles/fft_mapping_explorer.dir/fft_mapping_explorer.cpp.o"
  "CMakeFiles/fft_mapping_explorer.dir/fft_mapping_explorer.cpp.o.d"
  "fft_mapping_explorer"
  "fft_mapping_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_mapping_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
