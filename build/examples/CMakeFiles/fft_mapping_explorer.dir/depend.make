# Empty dependencies file for fft_mapping_explorer.
# This may be replaced when dependencies are built.
