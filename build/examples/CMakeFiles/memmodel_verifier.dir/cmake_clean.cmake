file(REMOVE_RECURSE
  "CMakeFiles/memmodel_verifier.dir/memmodel_verifier.cpp.o"
  "CMakeFiles/memmodel_verifier.dir/memmodel_verifier.cpp.o.d"
  "memmodel_verifier"
  "memmodel_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memmodel_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
