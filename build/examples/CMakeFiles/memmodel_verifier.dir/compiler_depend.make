# Empty compiler generated dependencies file for memmodel_verifier.
# This may be replaced when dependencies are built.
