file(REMOVE_RECURSE
  "CMakeFiles/pram_graph_toolkit.dir/pram_graph_toolkit.cpp.o"
  "CMakeFiles/pram_graph_toolkit.dir/pram_graph_toolkit.cpp.o.d"
  "pram_graph_toolkit"
  "pram_graph_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pram_graph_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
