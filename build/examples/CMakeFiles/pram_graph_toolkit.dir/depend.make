# Empty dependencies file for pram_graph_toolkit.
# This may be replaced when dependencies are built.
