file(REMOVE_RECURSE
  "CMakeFiles/program_pipeline.dir/program_pipeline.cpp.o"
  "CMakeFiles/program_pipeline.dir/program_pipeline.cpp.o.d"
  "program_pipeline"
  "program_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
