# Empty dependencies file for program_pipeline.
# This may be replaced when dependencies are built.
