
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/bsp_stencil.cpp" "src/algos/CMakeFiles/harmony_algos.dir/bsp_stencil.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/bsp_stencil.cpp.o.d"
  "/root/repo/src/algos/connectivity.cpp" "src/algos/CMakeFiles/harmony_algos.dir/connectivity.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/connectivity.cpp.o.d"
  "/root/repo/src/algos/editdist.cpp" "src/algos/CMakeFiles/harmony_algos.dir/editdist.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/editdist.cpp.o.d"
  "/root/repo/src/algos/fft.cpp" "src/algos/CMakeFiles/harmony_algos.dir/fft.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/fft.cpp.o.d"
  "/root/repo/src/algos/graph.cpp" "src/algos/CMakeFiles/harmony_algos.dir/graph.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/graph.cpp.o.d"
  "/root/repo/src/algos/listrank.cpp" "src/algos/CMakeFiles/harmony_algos.dir/listrank.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/listrank.cpp.o.d"
  "/root/repo/src/algos/matmul.cpp" "src/algos/CMakeFiles/harmony_algos.dir/matmul.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/matmul.cpp.o.d"
  "/root/repo/src/algos/pram_scan.cpp" "src/algos/CMakeFiles/harmony_algos.dir/pram_scan.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/pram_scan.cpp.o.d"
  "/root/repo/src/algos/samplesort.cpp" "src/algos/CMakeFiles/harmony_algos.dir/samplesort.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/samplesort.cpp.o.d"
  "/root/repo/src/algos/sort.cpp" "src/algos/CMakeFiles/harmony_algos.dir/sort.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/sort.cpp.o.d"
  "/root/repo/src/algos/specs.cpp" "src/algos/CMakeFiles/harmony_algos.dir/specs.cpp.o" "gcc" "src/algos/CMakeFiles/harmony_algos.dir/specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/harmony_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/harmony_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/harmony_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/harmony_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/harmony_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/harmony_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/harmony_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
