file(REMOVE_RECURSE
  "CMakeFiles/harmony_algos.dir/bsp_stencil.cpp.o"
  "CMakeFiles/harmony_algos.dir/bsp_stencil.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/connectivity.cpp.o"
  "CMakeFiles/harmony_algos.dir/connectivity.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/editdist.cpp.o"
  "CMakeFiles/harmony_algos.dir/editdist.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/fft.cpp.o"
  "CMakeFiles/harmony_algos.dir/fft.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/graph.cpp.o"
  "CMakeFiles/harmony_algos.dir/graph.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/listrank.cpp.o"
  "CMakeFiles/harmony_algos.dir/listrank.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/matmul.cpp.o"
  "CMakeFiles/harmony_algos.dir/matmul.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/pram_scan.cpp.o"
  "CMakeFiles/harmony_algos.dir/pram_scan.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/samplesort.cpp.o"
  "CMakeFiles/harmony_algos.dir/samplesort.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/sort.cpp.o"
  "CMakeFiles/harmony_algos.dir/sort.cpp.o.d"
  "CMakeFiles/harmony_algos.dir/specs.cpp.o"
  "CMakeFiles/harmony_algos.dir/specs.cpp.o.d"
  "libharmony_algos.a"
  "libharmony_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
