file(REMOVE_RECURSE
  "libharmony_algos.a"
)
