# Empty compiler generated dependencies file for harmony_algos.
# This may be replaced when dependencies are built.
