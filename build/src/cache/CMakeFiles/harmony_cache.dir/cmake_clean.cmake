file(REMOVE_RECURSE
  "CMakeFiles/harmony_cache.dir/cache.cpp.o"
  "CMakeFiles/harmony_cache.dir/cache.cpp.o.d"
  "CMakeFiles/harmony_cache.dir/reuse.cpp.o"
  "CMakeFiles/harmony_cache.dir/reuse.cpp.o.d"
  "libharmony_cache.a"
  "libharmony_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
