file(REMOVE_RECURSE
  "libharmony_cache.a"
)
