# Empty compiler generated dependencies file for harmony_cache.
# This may be replaced when dependencies are built.
