file(REMOVE_RECURSE
  "CMakeFiles/harmony_comm.dir/bsp.cpp.o"
  "CMakeFiles/harmony_comm.dir/bsp.cpp.o.d"
  "CMakeFiles/harmony_comm.dir/collectives.cpp.o"
  "CMakeFiles/harmony_comm.dir/collectives.cpp.o.d"
  "libharmony_comm.a"
  "libharmony_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
