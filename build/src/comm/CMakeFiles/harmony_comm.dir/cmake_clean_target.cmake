file(REMOVE_RECURSE
  "libharmony_comm.a"
)
