# Empty compiler generated dependencies file for harmony_comm.
# This may be replaced when dependencies are built.
