
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fm/cost.cpp" "src/fm/CMakeFiles/harmony_fm.dir/cost.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/cost.cpp.o.d"
  "/root/repo/src/fm/default_mapper.cpp" "src/fm/CMakeFiles/harmony_fm.dir/default_mapper.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/default_mapper.cpp.o.d"
  "/root/repo/src/fm/idioms.cpp" "src/fm/CMakeFiles/harmony_fm.dir/idioms.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/idioms.cpp.o.d"
  "/root/repo/src/fm/legality.cpp" "src/fm/CMakeFiles/harmony_fm.dir/legality.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/legality.cpp.o.d"
  "/root/repo/src/fm/lower.cpp" "src/fm/CMakeFiles/harmony_fm.dir/lower.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/lower.cpp.o.d"
  "/root/repo/src/fm/machine.cpp" "src/fm/CMakeFiles/harmony_fm.dir/machine.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/machine.cpp.o.d"
  "/root/repo/src/fm/mapping.cpp" "src/fm/CMakeFiles/harmony_fm.dir/mapping.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/mapping.cpp.o.d"
  "/root/repo/src/fm/program.cpp" "src/fm/CMakeFiles/harmony_fm.dir/program.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/program.cpp.o.d"
  "/root/repo/src/fm/recompute.cpp" "src/fm/CMakeFiles/harmony_fm.dir/recompute.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/recompute.cpp.o.d"
  "/root/repo/src/fm/search.cpp" "src/fm/CMakeFiles/harmony_fm.dir/search.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/search.cpp.o.d"
  "/root/repo/src/fm/spec.cpp" "src/fm/CMakeFiles/harmony_fm.dir/spec.cpp.o" "gcc" "src/fm/CMakeFiles/harmony_fm.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/harmony_support.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/harmony_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
