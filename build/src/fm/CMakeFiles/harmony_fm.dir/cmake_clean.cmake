file(REMOVE_RECURSE
  "CMakeFiles/harmony_fm.dir/cost.cpp.o"
  "CMakeFiles/harmony_fm.dir/cost.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/default_mapper.cpp.o"
  "CMakeFiles/harmony_fm.dir/default_mapper.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/idioms.cpp.o"
  "CMakeFiles/harmony_fm.dir/idioms.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/legality.cpp.o"
  "CMakeFiles/harmony_fm.dir/legality.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/lower.cpp.o"
  "CMakeFiles/harmony_fm.dir/lower.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/machine.cpp.o"
  "CMakeFiles/harmony_fm.dir/machine.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/mapping.cpp.o"
  "CMakeFiles/harmony_fm.dir/mapping.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/program.cpp.o"
  "CMakeFiles/harmony_fm.dir/program.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/recompute.cpp.o"
  "CMakeFiles/harmony_fm.dir/recompute.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/search.cpp.o"
  "CMakeFiles/harmony_fm.dir/search.cpp.o.d"
  "CMakeFiles/harmony_fm.dir/spec.cpp.o"
  "CMakeFiles/harmony_fm.dir/spec.cpp.o.d"
  "libharmony_fm.a"
  "libharmony_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
