file(REMOVE_RECURSE
  "libharmony_fm.a"
)
