# Empty dependencies file for harmony_fm.
# This may be replaced when dependencies are built.
