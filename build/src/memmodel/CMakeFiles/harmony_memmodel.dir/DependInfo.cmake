
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memmodel/axiomatic.cpp" "src/memmodel/CMakeFiles/harmony_memmodel.dir/axiomatic.cpp.o" "gcc" "src/memmodel/CMakeFiles/harmony_memmodel.dir/axiomatic.cpp.o.d"
  "/root/repo/src/memmodel/litmus.cpp" "src/memmodel/CMakeFiles/harmony_memmodel.dir/litmus.cpp.o" "gcc" "src/memmodel/CMakeFiles/harmony_memmodel.dir/litmus.cpp.o.d"
  "/root/repo/src/memmodel/operational.cpp" "src/memmodel/CMakeFiles/harmony_memmodel.dir/operational.cpp.o" "gcc" "src/memmodel/CMakeFiles/harmony_memmodel.dir/operational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/harmony_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
