file(REMOVE_RECURSE
  "CMakeFiles/harmony_memmodel.dir/axiomatic.cpp.o"
  "CMakeFiles/harmony_memmodel.dir/axiomatic.cpp.o.d"
  "CMakeFiles/harmony_memmodel.dir/litmus.cpp.o"
  "CMakeFiles/harmony_memmodel.dir/litmus.cpp.o.d"
  "CMakeFiles/harmony_memmodel.dir/operational.cpp.o"
  "CMakeFiles/harmony_memmodel.dir/operational.cpp.o.d"
  "libharmony_memmodel.a"
  "libharmony_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
