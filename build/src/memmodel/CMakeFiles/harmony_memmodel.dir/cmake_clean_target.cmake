file(REMOVE_RECURSE
  "libharmony_memmodel.a"
)
