# Empty dependencies file for harmony_memmodel.
# This may be replaced when dependencies are built.
