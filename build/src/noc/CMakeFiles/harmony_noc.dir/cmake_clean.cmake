file(REMOVE_RECURSE
  "CMakeFiles/harmony_noc.dir/mesh.cpp.o"
  "CMakeFiles/harmony_noc.dir/mesh.cpp.o.d"
  "libharmony_noc.a"
  "libharmony_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
