file(REMOVE_RECURSE
  "libharmony_noc.a"
)
