# Empty dependencies file for harmony_noc.
# This may be replaced when dependencies are built.
