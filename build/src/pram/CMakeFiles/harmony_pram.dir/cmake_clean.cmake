file(REMOVE_RECURSE
  "CMakeFiles/harmony_pram.dir/pram.cpp.o"
  "CMakeFiles/harmony_pram.dir/pram.cpp.o.d"
  "CMakeFiles/harmony_pram.dir/xmt.cpp.o"
  "CMakeFiles/harmony_pram.dir/xmt.cpp.o.d"
  "libharmony_pram.a"
  "libharmony_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
