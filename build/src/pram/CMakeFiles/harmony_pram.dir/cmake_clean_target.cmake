file(REMOVE_RECURSE
  "libharmony_pram.a"
)
