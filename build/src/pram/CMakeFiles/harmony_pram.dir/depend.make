# Empty dependencies file for harmony_pram.
# This may be replaced when dependencies are built.
