file(REMOVE_RECURSE
  "CMakeFiles/harmony_sched.dir/scheduler.cpp.o"
  "CMakeFiles/harmony_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/harmony_sched.dir/workspan.cpp.o"
  "CMakeFiles/harmony_sched.dir/workspan.cpp.o.d"
  "libharmony_sched.a"
  "libharmony_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
