file(REMOVE_RECURSE
  "libharmony_sched.a"
)
