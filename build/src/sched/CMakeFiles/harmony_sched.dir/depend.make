# Empty dependencies file for harmony_sched.
# This may be replaced when dependencies are built.
