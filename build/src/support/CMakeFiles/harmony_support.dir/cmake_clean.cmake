file(REMOVE_RECURSE
  "CMakeFiles/harmony_support.dir/stats.cpp.o"
  "CMakeFiles/harmony_support.dir/stats.cpp.o.d"
  "CMakeFiles/harmony_support.dir/table.cpp.o"
  "CMakeFiles/harmony_support.dir/table.cpp.o.d"
  "libharmony_support.a"
  "libharmony_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
