file(REMOVE_RECURSE
  "libharmony_support.a"
)
