# Empty dependencies file for harmony_support.
# This may be replaced when dependencies are built.
