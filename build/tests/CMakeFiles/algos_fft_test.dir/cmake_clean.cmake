file(REMOVE_RECURSE
  "CMakeFiles/algos_fft_test.dir/algos_fft_test.cpp.o"
  "CMakeFiles/algos_fft_test.dir/algos_fft_test.cpp.o.d"
  "algos_fft_test"
  "algos_fft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
