# Empty dependencies file for algos_fft_test.
# This may be replaced when dependencies are built.
