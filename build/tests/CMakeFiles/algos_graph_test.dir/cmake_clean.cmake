file(REMOVE_RECURSE
  "CMakeFiles/algos_graph_test.dir/algos_graph_test.cpp.o"
  "CMakeFiles/algos_graph_test.dir/algos_graph_test.cpp.o.d"
  "algos_graph_test"
  "algos_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
