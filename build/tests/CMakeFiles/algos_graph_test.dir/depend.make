# Empty dependencies file for algos_graph_test.
# This may be replaced when dependencies are built.
