file(REMOVE_RECURSE
  "CMakeFiles/algos_scan_sort_test.dir/algos_scan_sort_test.cpp.o"
  "CMakeFiles/algos_scan_sort_test.dir/algos_scan_sort_test.cpp.o.d"
  "algos_scan_sort_test"
  "algos_scan_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_scan_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
