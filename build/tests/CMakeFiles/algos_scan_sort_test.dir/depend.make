# Empty dependencies file for algos_scan_sort_test.
# This may be replaced when dependencies are built.
