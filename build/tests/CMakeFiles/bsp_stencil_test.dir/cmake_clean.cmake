file(REMOVE_RECURSE
  "CMakeFiles/bsp_stencil_test.dir/bsp_stencil_test.cpp.o"
  "CMakeFiles/bsp_stencil_test.dir/bsp_stencil_test.cpp.o.d"
  "bsp_stencil_test"
  "bsp_stencil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_stencil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
