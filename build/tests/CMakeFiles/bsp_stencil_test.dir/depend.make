# Empty dependencies file for bsp_stencil_test.
# This may be replaced when dependencies are built.
