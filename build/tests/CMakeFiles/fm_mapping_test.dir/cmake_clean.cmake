file(REMOVE_RECURSE
  "CMakeFiles/fm_mapping_test.dir/fm_mapping_test.cpp.o"
  "CMakeFiles/fm_mapping_test.dir/fm_mapping_test.cpp.o.d"
  "fm_mapping_test"
  "fm_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
