# Empty dependencies file for fm_mapping_test.
# This may be replaced when dependencies are built.
