file(REMOVE_RECURSE
  "CMakeFiles/fm_program_test.dir/fm_program_test.cpp.o"
  "CMakeFiles/fm_program_test.dir/fm_program_test.cpp.o.d"
  "fm_program_test"
  "fm_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
