# Empty compiler generated dependencies file for fm_program_test.
# This may be replaced when dependencies are built.
