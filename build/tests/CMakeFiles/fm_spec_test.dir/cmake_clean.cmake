file(REMOVE_RECURSE
  "CMakeFiles/fm_spec_test.dir/fm_spec_test.cpp.o"
  "CMakeFiles/fm_spec_test.dir/fm_spec_test.cpp.o.d"
  "fm_spec_test"
  "fm_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
