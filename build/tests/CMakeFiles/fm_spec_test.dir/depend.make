# Empty dependencies file for fm_spec_test.
# This may be replaced when dependencies are built.
