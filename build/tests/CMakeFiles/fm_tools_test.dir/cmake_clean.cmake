file(REMOVE_RECURSE
  "CMakeFiles/fm_tools_test.dir/fm_tools_test.cpp.o"
  "CMakeFiles/fm_tools_test.dir/fm_tools_test.cpp.o.d"
  "fm_tools_test"
  "fm_tools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
