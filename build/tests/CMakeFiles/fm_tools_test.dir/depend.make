# Empty dependencies file for fm_tools_test.
# This may be replaced when dependencies are built.
