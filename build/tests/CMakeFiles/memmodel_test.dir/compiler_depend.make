# Empty compiler generated dependencies file for memmodel_test.
# This may be replaced when dependencies are built.
