# Empty compiler generated dependencies file for pram_test.
# This may be replaced when dependencies are built.
