file(REMOVE_RECURSE
  "CMakeFiles/sched_robustness_test.dir/sched_robustness_test.cpp.o"
  "CMakeFiles/sched_robustness_test.dir/sched_robustness_test.cpp.o.d"
  "sched_robustness_test"
  "sched_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
