# Empty dependencies file for sched_robustness_test.
# This may be replaced when dependencies are built.
