file(REMOVE_RECURSE
  "CMakeFiles/workspan_test.dir/workspan_test.cpp.o"
  "CMakeFiles/workspan_test.dir/workspan_test.cpp.o.d"
  "workspan_test"
  "workspan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workspan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
