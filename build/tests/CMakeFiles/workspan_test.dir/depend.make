# Empty dependencies file for workspan_test.
# This may be replaced when dependencies are built.
