// comm_avoiding_matmul — Yelick's communication-avoidance programme on
// the BSP machine: the same product computed with three communication
// schedules, with words/messages beside the answers.
//
//   $ ./comm_avoiding_matmul [n] [P]   (P square, P | n; default 64 16)
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "algos/matmul.hpp"
#include "comm/lower_bounds.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

int main(int argc, char** argv) {
  std::size_t n = 64;
  int procs = 16;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) procs = std::atoi(argv[2]);
  const int grid = static_cast<int>(std::llround(std::sqrt(procs)));
  if (n < 4 || grid * grid != procs || n % static_cast<std::size_t>(grid)
      || n % static_cast<std::size_t>(procs)) {
    std::cerr << "usage: " << argv[0]
              << " [n] [P]  with P a square, sqrt(P) | n, P | n\n";
    return 2;
  }

  Rng rng(3);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  const auto expect = algos::matmul_serial(a, b, n);
  auto check = [&](const std::vector<double>& c) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (std::abs(c[i] - expect[i]) > 1e-6) return "NO";
    }
    return "yes";
  };

  const auto naive = algos::bsp_matmul_naive(a, b, n, procs);
  const auto summa = algos::bsp_matmul_summa(a, b, n, procs);

  Table t({"algorithm", "correct", "words_per_proc", "messages",
           "supersteps", "time_ms"});
  t.title("matmul n=" + std::to_string(n) + ", P=" + std::to_string(procs));
  t.add_row({std::string("naive (fetch all of B)"), std::string(
                 check(naive.c)),
             static_cast<double>(naive.stats.total_words) / procs,
             static_cast<std::int64_t>(naive.stats.total_messages),
             naive.stats.supersteps,
             naive.stats.time.nanoseconds() * 1e-6});
  t.add_row({std::string("SUMMA (2D grid)"), std::string(check(summa.c)),
             static_cast<double>(summa.stats.total_words) / procs,
             static_cast<std::int64_t>(summa.stats.total_messages),
             summa.stats.supersteps,
             summa.stats.time.nanoseconds() * 1e-6});
  // 2.5D when the shape allows c = 4 at 4x the processes.
  {
    const int p25 = procs * 4;
    const int layer = p25 / 4;
    const int g25 = static_cast<int>(std::llround(std::sqrt(layer)));
    if (g25 * g25 == layer && g25 % 4 == 0 &&
        n % static_cast<std::size_t>(g25) == 0) {
      const auto d = algos::bsp_matmul_25d(a, b, n, p25, 4);
      t.add_row({std::string("2.5D c=4 (P=" + std::to_string(p25) + ")"),
                 std::string(check(d.c)),
                 static_cast<double>(d.stats.total_words) / p25,
                 static_cast<std::int64_t>(d.stats.total_messages),
                 d.stats.supersteps, d.stats.time.nanoseconds() * 1e-6});
    }
  }
  t.print(std::cout);

  const double bound = comm::matmul_25d_bandwidth_bound(
      static_cast<double>(n), procs, 1.0);
  std::cout << "\nbandwidth lower bound (c=1): " << bound
            << " words/proc — SUMMA sits within a small constant of it; "
               "the naive schedule does not.\n";
  return 0;
}
