// editdistance_systolic — the paper's worked example as a tool.
//
// Builds the DP recurrence for two (random or given) strings, maps it as
// marching anti-diagonals on P processors, verifies, prices, executes,
// and finally lowers the mapping to a Verilog-flavoured structural
// skeleton ("lowering the specification to hardware is a mechanical
// process").
//
//   $ ./editdistance_systolic [N] [P] [--verilog]
//   $ ./editdistance_systolic 256 16
#include <cstdlib>
#include <iostream>
#include <string>

#include "algos/editdist.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/lower.hpp"
#include "fm/machine.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {
std::string random_dna(std::size_t n, std::uint64_t seed) {
  static const char kBases[] = "ACGT";
  Rng rng(seed);
  std::string s(n, 'A');
  for (auto& c : s) c = kBases[rng.next_below(4)];
  return s;
}
}  // namespace

int main(int argc, char** argv) {
  std::int64_t n = 128;
  int pes = 8;
  bool emit_verilog = false;
  if (argc > 1) n = std::atoll(argv[1]);
  if (argc > 2) pes = std::atoi(argv[2]);
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--verilog") emit_verilog = true;
  }
  if (n < 2 || pes < 1) {
    std::cerr << "usage: " << argv[0] << " [N>=2] [P>=1] [--verilog]\n";
    return 2;
  }

  const std::string r = random_dna(static_cast<std::size_t>(n), 11);
  const std::string q = random_dna(static_cast<std::size_t>(n), 22);
  algos::SwScores scores;
  fm::TensorId rt;
  fm::TensorId qt;
  fm::TensorId ht;
  const auto spec = algos::editdist_spec(n, n, scores, &rt, &qt, &ht);
  const fm::MachineConfig cfg = fm::make_machine(pes, 1);

  fm::Mapping mapping;
  const fm::WavefrontMap wf = fm::wavefront_map(n, pes);
  mapping.set_computed(ht, wf.place_fn(), wf.time_fn());
  mapping.set_input(rt, fm::InputHome::at({0, 0}));
  mapping.set_input(qt, fm::InputHome::at({0, 0}));

  fm::VerifyOptions vo;
  vo.check_storage = n <= 512;
  vo.check_bandwidth = n <= 512;
  const fm::LegalityReport rep = verify(spec, mapping, cfg, vo);
  std::cout << "legality: " << (rep.ok ? "ok" : "REJECTED") << "\n";
  if (!rep.ok) {
    for (const auto& d : rep.diagnostics)
      std::cout << "  [" << d.rule_id << "] " << d.message << "\n";
    return 1;
  }

  const fm::CostReport wave = evaluate_cost(spec, mapping, cfg);
  const fm::CostReport serial =
      evaluate_cost(spec, fm::serial_mapping(spec), fm::make_machine(1, 1));

  Table t({"mapping", "PEs", "cycles", "time_us", "energy_nJ",
           "energy_per_cell_fJ"});
  t.title("edit distance " + std::to_string(n) + " x " + std::to_string(n));
  t.add_row({std::string("serial RAM"), std::int64_t{1},
             serial.makespan_cycles, serial.makespan.microseconds(),
             serial.total_energy().nanojoules(),
             serial.total_energy().femtojoules() /
                 static_cast<double>(n * n)});
  t.add_row({std::string("anti-diagonal wavefront"),
             static_cast<std::int64_t>(pes), wave.makespan_cycles,
             wave.makespan.microseconds(),
             wave.total_energy().nanojoules(),
             wave.total_energy().femtojoules() /
                 static_cast<double>(n * n)});
  t.print(std::cout);
  std::cout << "speedup: "
            << static_cast<double>(serial.makespan_cycles) /
                   static_cast<double>(wave.makespan_cycles)
            << "x on " << pes << " PEs\n";

  if (n <= 256) {
    const auto res = fm::GridMachine(cfg).run(
        spec, mapping,
        {algos::encode_string(r), algos::encode_string(q)});
    const auto expect = algos::smith_waterman_serial(r, q, scores);
    std::cout << "execution check: "
              << (res.outputs[0] == expect ? "matches host reference"
                                           : "MISMATCH")
              << "\n";
  }

  const fm::HardwareSpec hw = lower(spec, mapping, cfg, "editdist");
  std::cout << "lowered: " << hw.active_pes() << " active PEs, "
            << hw.schedule_length << "-cycle schedule, ~"
            << hw.estimated_area().mm2() << " mm^2\n";
  if (emit_verilog) {
    std::cout << "\n";
    hw.emit_verilog(std::cout);
  }
  return 0;
}
