// fft_mapping_explorer — compare FFT dataflows and mappings under the
// F&M cost model, and let the autotuner search the affine family for a
// single butterfly stage.
//
//   $ ./fft_mapping_explorer [n]      (n = power of two, default 256)
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "algos/fft.hpp"
#include "fm/cost.hpp"
#include "fm/default_mapper.hpp"
#include "fm/legality.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

int main(int argc, char** argv) {
  std::int64_t n = 256;
  if (argc > 1) n = std::atoll(argv[1]);
  if (n < 4 || (n & (n - 1)) != 0) {
    std::cerr << "usage: " << argv[0] << " [n = power of two >= 4]\n";
    return 2;
  }

  // Execute both dataflows numerically and check them against the DFT.
  {
    Rng rng(1);
    std::vector<algos::Complex> x(static_cast<std::size_t>(n));
    for (auto& v : x) {
      v = algos::Complex{rng.next_double(-1, 1), rng.next_double(-1, 1)};
    }
    const auto expect = algos::dft_naive(x);
    auto a = x;
    algos::fft_dit_radix2(a);
    auto b = x;
    algos::fft_dif_radix2(b);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err = std::max(err, std::abs(a[i] - expect[i]));
      err = std::max(err, std::abs(b[i] - expect[i]));
    }
    std::cout << "numeric check (DIT & DIF vs naive DFT): max error "
              << err << "\n\n";
  }

  // Price the dataflows under serial and default-mapper mappings.
  Table t({"dataflow", "mapping", "verified", "cycles", "energy_nJ"});
  t.title("FFT n=" + std::to_string(n) + " under the F&M cost model");
  for (bool dif : {false, true}) {
    const auto spec = algos::fft_spec(n, dif);
    const std::string name = dif ? "DIF" : "DIT";
    {
      const fm::MachineConfig cfg = fm::make_machine(1, 1);
      const fm::CostReport c =
          evaluate_cost(spec, fm::serial_mapping(spec), cfg);
      t.add_row({name, std::string("serial 1 PE"), std::string("yes"),
                 c.makespan_cycles, c.total_energy().nanojoules()});
    }
    {
      const int g = static_cast<int>(std::llround(
          std::sqrt(static_cast<double>(std::min<std::int64_t>(n, 64)))));
      const fm::MachineConfig cfg = fm::make_machine(g, g);
      const fm::Mapping m = fm::default_mapping(spec, cfg);
      const fm::LegalityReport rep = verify(spec, m, cfg);
      const fm::CostReport c = evaluate_cost(spec, m, cfg);
      t.add_row({name,
                 std::string("default mapper ") + std::to_string(g) + "x" +
                     std::to_string(g),
                 std::string(rep.ok ? "yes" : "NO"), c.makespan_cycles,
                 c.total_energy().nanojoules()});
    }
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: identical op counts; every difference in the "
               "table is data movement.\n";
  return 0;
}
