// harmony-lint: the mapping linter as a command-line tool.
//
// Loads a (FunctionSpec, Mapping, MachineConfig) triple from the
// command line, runs analyze::lint_mapping, and prints the structured
// diagnostics — as a table for humans or JSON (--json) for machines.
// Exit status: 0 clean, 1 warnings only, 2 errors (illegal mapping).
//
//   harmony-lint --spec=editdist:64x64 --machine=8x1 --map=wavefront
//   harmony-lint --spec=editdist:16x16 --machine=4x4 --map=serial --json
//   harmony-lint --spec=conv:256,8 --machine=8x1 --map=affine:0,1,8,1,0,0
//   harmony-lint --spec=stencil:64,8 --machine=4x1 --map=table --check-exec
//   harmony-lint --pipeline=scanchain:16 --machine=4x1
//   harmony-lint --pipeline=irregular:24,3,7 --machine=4x1 --tuner=greedy
//
// Specs: editdist:NxM, stencil:n,steps, conv:n_out,k_taps.
// Maps:  serial | wavefront (editdist only) | affine:ti,tj,t0,xi,xj,x0 |
//        table (the stochastic searchers' serial seed TableMap).
// Knobs: --pe-capacity=N, --link-bits=B, --max-diagnostics=N.
//
// --check-exec additionally replays the triple through the compiled
// oracles' timing model into an execution witness and checks it against
// the relational axioms (analyze::ExecChecker, EXEC001–EXEC005) — an
// independent second opinion that shares no code with the linter's
// legality gate.  Its diagnostics merge into the output and exit code.
//
// --pipeline=<scenario> switches to multi-kernel mode: it tunes one of
// the canned stage DAGs (fft:N | scanchain:N | diamond:N with the
// exhaustive affine searcher; irregular:N,FANIN,SEED with the anneal
// strategy) end to end via fm::tune_pipeline_paired (--tuner=greedy for
// the stage-by-stage baseline), then certifies every committed stage
// winner — with its *resolved* input homes, i.e. the producer-fixed
// distributed layouts the tuner actually priced the handoffs against —
// through both the linter and ExecChecker.  Exec checking is always on
// in this mode; that certification is the point.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/pipelines.hpp"
#include "algos/specs.hpp"
#include "analyze/exec.hpp"
#include "analyze/lint.hpp"
#include "fm/compiled.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/pipeline.hpp"
#include "fm/strategy/delta.hpp"
#include "fm/strategy/table_map.hpp"
#include "support/table.hpp"

namespace {

using harmony::analyze::LintOptions;
using harmony::analyze::LintReport;

struct Args {
  std::string spec = "editdist:32x32";
  std::string machine = "4x1";
  std::string map = "serial";
  std::string pipeline;  ///< nonempty switches to multi-kernel mode
  bool paired = true;    ///< --tuner=paired (default) | greedy
  bool json = false;
  bool check_exec = false;
  std::optional<std::int64_t> pe_capacity;
  std::optional<double> link_bits;
  std::size_t max_diagnostics = 64;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--spec=editdist:NxM|stencil:n,steps|conv:n,k]\n"
         "       [--machine=CxR] [--map=serial|wavefront|affine:ti,tj,t0,"
         "xi,xj,x0|table]\n"
         "       [--pipeline=fft:N|scanchain:N|diamond:N|irregular:N,F,S]"
         " [--tuner=paired|greedy]\n"
         "       [--json] [--check-exec] [--pe-capacity=N] [--link-bits=B]"
         " [--max-diagnostics=N]\n";
  std::exit(2);
}

/// Splits "a,b,c" (or "AxB") on any of ",x" into int64 fields.
std::vector<std::int64_t> split_ints(const std::string& s) {
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find_first_of(",x", pos);
    if (end == std::string::npos) end = s.size();
    out.push_back(std::stoll(s.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--spec=", 0) == 0) {
      a.spec = value("--spec=");
    } else if (arg.rfind("--machine=", 0) == 0) {
      a.machine = value("--machine=");
    } else if (arg.rfind("--map=", 0) == 0) {
      a.map = value("--map=");
    } else if (arg.rfind("--pipeline=", 0) == 0) {
      a.pipeline = value("--pipeline=");
    } else if (arg.rfind("--tuner=", 0) == 0) {
      const std::string t = value("--tuner=");
      if (t == "paired") {
        a.paired = true;
      } else if (t == "greedy") {
        a.paired = false;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--json") {
      a.json = true;
    } else if (arg == "--check-exec") {
      a.check_exec = true;
    } else if (arg.rfind("--pe-capacity=", 0) == 0) {
      a.pe_capacity = std::stoll(value("--pe-capacity="));
    } else if (arg.rfind("--link-bits=", 0) == 0) {
      a.link_bits = std::stod(value("--link-bits="));
    } else if (arg.rfind("--max-diagnostics=", 0) == 0) {
      a.max_diagnostics =
          static_cast<std::size_t>(std::stoll(value("--max-diagnostics=")));
    } else {
      usage(argv[0]);
    }
  }
  return a;
}

/// Multi-kernel mode (--pipeline=...): tune one of the canned stage
/// DAGs end to end, then lint + exec-check every committed stage winner
/// against its resolved (producer-substituted) input homes.  Exit codes
/// match single-spec mode: 0 clean, 1 warnings, 2 errors / no mapping.
int run_pipeline(const Args& args, const harmony::fm::MachineConfig& machine,
                 const char* argv0) {
  namespace fm = harmony::fm;
  namespace algos = harmony::algos;
  namespace analyze = harmony::analyze;

  const std::size_t colon = args.pipeline.find(':');
  if (colon == std::string::npos) usage(argv0);
  const std::string family = args.pipeline.substr(0, colon);
  const auto dims = split_ints(args.pipeline.substr(colon + 1));

  fm::Pipeline pipe;
  fm::PipelineOptions opts;
  if (family == "fft" && dims.size() == 1) {
    pipe = algos::fft_shuffle_fft_pipeline(dims[0]);
  } else if (family == "scanchain" && dims.size() == 1) {
    pipe = algos::scan_filter_scan_pipeline(dims[0]);
  } else if (family == "diamond" && dims.size() == 1) {
    pipe = algos::diamond_pipeline(dims[0]);
  } else if (family == "irregular" && dims.size() == 3) {
    pipe = algos::irregular_chain_pipeline(
        dims[0], static_cast<int>(dims[1]),
        static_cast<std::uint64_t>(dims[2]));
    // Irregular dependence defeats the affine family; tune the chain
    // with the anneal strategy on a modest, deterministic budget.
    opts.strategy = fm::StrategyKind::kAnneal;
    opts.strategy_opts.chains = 2;
    opts.strategy_opts.epochs = 12;
    opts.strategy_opts.iters_per_epoch = 96;
  } else {
    usage(argv0);
  }

  fm::PipelineResult result;
  try {
    result = args.paired ? fm::tune_pipeline_paired(pipe, machine, opts)
                         : fm::tune_pipeline_greedy(pipe, machine, opts);
  } catch (const std::exception& e) {
    std::cerr << "harmony-lint: --pipeline: " << e.what() << "\n";
    return 2;
  }
  if (!result.found) {
    std::cerr << "harmony-lint: --pipeline=" << args.pipeline << " on "
              << args.machine << ": no legal mapping for every stage\n";
    return 2;
  }

  // Certify each stage winner with the input homes the tuner actually
  // priced its handoffs against — producer bindings resolve to
  // distributed homes over the producer's committed place function.
  std::uint64_t errors = 0, warnings = 0, dropped = 0;
  std::vector<analyze::Diagnostic> diags;
  std::vector<std::string> lines;
  for (std::size_t s = 0; s < pipe.size(); ++s) {
    const fm::StageResult& st = result.stages[s];
    const fm::FunctionSpec& spec = *pipe.stage(s).spec;
    std::uint64_t stage_errors = 0;
    try {
      const fm::Mapping proto =
          fm::stage_input_proto(pipe, s, opts.strategy, result);
      fm::Mapping full;
      if (opts.strategy == fm::StrategyKind::kExhaustive) {
        full = proto;
        full.set_computed(spec.computed_tensors().front(),
                          st.affine.place_fn(), st.affine.time_fn());
      } else {
        full = fm::to_mapping(spec, st.table);
      }
      LintOptions lopts;
      lopts.max_diagnostics = args.max_diagnostics;
      lopts.verify.max_messages = args.max_diagnostics;
      const LintReport rep = analyze::lint_mapping(spec, full, machine, lopts);

      const auto cs = fm::compile_spec(spec, machine, proto);
      const analyze::ExecWitness witness =
          opts.strategy == fm::StrategyKind::kExhaustive
              ? analyze::build_exec_witness(*cs, st.affine)
              : analyze::build_exec_witness(*cs, st.table);
      analyze::ExecOptions eopts;
      eopts.max_diagnostics = args.max_diagnostics;
      const analyze::ExecReport er = analyze::ExecChecker(eopts).check(witness);

      stage_errors = rep.errors + er.errors;
      errors += stage_errors;
      warnings += rep.warnings + er.warnings;
      dropped += rep.dropped + er.dropped;
      diags.insert(diags.end(), rep.diagnostics.begin(), rep.diagnostics.end());
      diags.insert(diags.end(), er.diagnostics.begin(), er.diagnostics.end());
    } catch (const std::exception& e) {
      std::cerr << "harmony-lint: --pipeline stage " << st.name << ": "
                << e.what() << "\n";
      return 2;
    }
    std::ostringstream line;
    line << "  stage " << s << " (" << st.name << "): merit " << st.merit
         << ", cycles [" << st.start_cycle << ", " << st.finish_cycle
         << ") — " << (stage_errors == 0 ? "certified" : "ILLEGAL");
    lines.push_back(line.str());
  }

  if (args.json) {
    std::cout << analyze::diagnostics_json(diags) << "\n";
  } else {
    std::cout << "harmony-lint: pipeline " << args.pipeline << " on "
              << args.machine << " via "
              << (args.paired ? "paired" : "greedy") << " tuner — "
              << (errors == 0 ? "legal" : "ILLEGAL") << ", " << errors
              << " error(s), " << warnings
              << " warning(s) [exec checked per stage]";
    if (dropped > 0) std::cout << " (" << dropped << " dropped)";
    std::cout << "\n";
    for (const std::string& l : lines) std::cout << l << "\n";
    std::cout << "  total: merit " << result.merit << ", makespan "
              << result.total.makespan_cycles << " cycles, "
              << result.probe_searches << " probe search(es)\n";
    if (!diags.empty()) {
      analyze::diagnostics_table(diags).print(std::cout);
    }
  }
  return errors > 0 ? 2 : (warnings > 0 ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  namespace fm = harmony::fm;
  namespace algos = harmony::algos;
  namespace analyze = harmony::analyze;

  const Args args = parse_args(argc, argv);

  // ---- machine -------------------------------------------------------
  const auto mdims = split_ints(args.machine);
  if (mdims.size() != 2 || mdims[0] < 1 || mdims[1] < 1) usage(argv[0]);
  fm::MachineConfig machine = fm::make_machine(static_cast<int>(mdims[0]),
                                               static_cast<int>(mdims[1]));
  if (args.pe_capacity) machine.pe_capacity_values = *args.pe_capacity;
  if (args.link_bits) machine.link_bits_per_cycle = *args.link_bits;

  // ---- multi-kernel mode ---------------------------------------------
  if (!args.pipeline.empty()) return run_pipeline(args, machine, argv[0]);

  // ---- spec ----------------------------------------------------------
  const std::size_t colon = args.spec.find(':');
  if (colon == std::string::npos) usage(argv[0]);
  const std::string family = args.spec.substr(0, colon);
  const auto dims = split_ints(args.spec.substr(colon + 1));

  fm::FunctionSpec spec;
  fm::TensorId computed = -1;
  std::vector<fm::TensorId> inputs;
  std::int64_t n_cols = 0;  // for the wavefront map
  if (family == "editdist" && dims.size() == 2) {
    fm::TensorId rt = -1, qt = -1, ht = -1;
    spec = algos::editdist_spec(dims[0], dims[1], algos::SwScores{}, &rt,
                                &qt, &ht);
    computed = ht;
    inputs = {rt, qt};
    n_cols = dims[1];
  } else if (family == "stencil" && dims.size() == 2) {
    algos::StencilSpecIds ids;
    spec = algos::stencil1d_spec(dims[0], dims[1], &ids);
    computed = ids.u;
    inputs = {ids.input};
  } else if (family == "conv" && dims.size() == 2) {
    algos::ConvSpecIds ids;
    spec = algos::conv1d_spec(dims[0], dims[1], &ids);
    computed = ids.y;
    inputs = {ids.x, ids.w};
  } else {
    usage(argv[0]);
  }

  // ---- mapping -------------------------------------------------------
  fm::Mapping mapping;
  // Kept alongside the lowered Mapping when available: --check-exec
  // builds the witness from the family-native form (exactly what serve
  // hands the checker), falling back to table_from_mapping for closure
  // maps (serial, wavefront).
  std::optional<fm::AffineMap> affine;
  std::optional<fm::TableMap> table;
  if (args.map == "serial") {
    mapping = fm::serial_mapping(spec);
  } else if (args.map == "table") {
    // The stochastic searchers' serial seed TableMap: the canonical
    // known-legal per-op table, lowered for the linter and kept for the
    // witness.  Inputs home in DRAM (the searchers' default proto).
    fm::Mapping proto;
    for (const fm::TensorId t : inputs) {
      proto.set_input(t, fm::InputHome::dram());
    }
    try {
      const auto cs = fm::compile_spec(spec, machine, proto);
      const auto ss = fm::build_strategy_spec(cs);
      table = fm::seed_table(*ss);
    } catch (const std::exception& e) {
      std::cerr << "harmony-lint: --map=table: " << e.what() << "\n";
      return 2;
    }
    mapping = fm::to_mapping(spec, *table);
  } else if (args.map == "wavefront") {
    if (family != "editdist") {
      std::cerr << "harmony-lint: --map=wavefront needs --spec=editdist\n";
      return 2;
    }
    const fm::WavefrontMap wf =
        fm::wavefront_map(n_cols, machine.geom.cols());
    mapping.set_computed(computed, wf.place_fn(), wf.time_fn());
    for (const fm::TensorId t : inputs) {
      mapping.set_input(t, fm::InputHome::at({0, 0}));
    }
  } else if (args.map.rfind("affine:", 0) == 0) {
    const auto c = split_ints(args.map.substr(7));
    if (c.size() != 6) usage(argv[0]);
    fm::AffineMap am;
    am.ti = c[0];
    am.tj = c[1];
    am.t0 = c[2];
    am.xi = c[3];
    am.xj = c[4];
    am.x0 = c[5];
    am.cols = machine.geom.cols();
    am.rows = machine.geom.rows();
    mapping.set_computed(computed, am.place_fn(), am.time_fn());
    for (const fm::TensorId t : inputs) {
      mapping.set_input(t, fm::InputHome::dram());
    }
    affine = am;
  } else {
    usage(argv[0]);
  }

  // ---- lint ----------------------------------------------------------
  LintOptions opts;
  opts.max_diagnostics = args.max_diagnostics;
  opts.verify.max_messages = args.max_diagnostics;
  LintReport rep;
  try {
    rep = analyze::lint_mapping(spec, mapping, machine, opts);
  } catch (const std::exception& e) {
    std::cerr << "harmony-lint: " << e.what() << "\n";
    return 2;
  }

  // ---- execution check (--check-exec) --------------------------------
  std::uint64_t errors = rep.errors;
  std::uint64_t warnings = rep.warnings;
  std::uint64_t dropped = rep.dropped;
  std::vector<analyze::Diagnostic> diags = std::move(rep.diagnostics);
  if (args.check_exec) {
    try {
      // Replay the triple through the compiled timing model into a
      // witness — from the family-native form when we have one, via
      // table_from_mapping for closure maps.
      const auto cs = fm::compile_spec(spec, machine, mapping);
      const analyze::ExecWitness witness =
          affine ? analyze::build_exec_witness(*cs, *affine)
                 : analyze::build_exec_witness(
                       *cs, table ? *table
                                  : fm::table_from_mapping(*cs, mapping));
      analyze::ExecOptions eopts;
      eopts.max_diagnostics = args.max_diagnostics;
      const analyze::ExecReport er = analyze::ExecChecker(eopts).check(witness);
      errors += er.errors;
      warnings += er.warnings;
      dropped += er.dropped;
      diags.insert(diags.end(), er.diagnostics.begin(), er.diagnostics.end());
    } catch (const std::exception& e) {
      std::cerr << "harmony-lint: --check-exec: " << e.what() << "\n";
      return 2;
    }
  }

  if (args.json) {
    std::cout << analyze::diagnostics_json(diags) << "\n";
  } else {
    std::cout << "harmony-lint: " << args.spec << " on " << args.machine
              << " via " << args.map << " — "
              << (errors == 0 ? "legal" : "ILLEGAL") << ", " << errors
              << " error(s), " << warnings << " warning(s)";
    if (args.check_exec) std::cout << " [exec checked]";
    if (dropped > 0) std::cout << " (" << dropped << " dropped)";
    std::cout << "\n";
    if (!diags.empty()) {
      analyze::diagnostics_table(diags).print(std::cout);
    }
  }
  return errors > 0 ? 2 : (warnings > 0 ? 1 : 0);
}
