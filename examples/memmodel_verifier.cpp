// memmodel_verifier — Martonosi's pillar as a tool: check a litmus test
// against SC / TSO / PSO with both formal engines, print a witness for
// anything allowed, and synthesize the minimal fences that forbid it.
//
//   $ ./memmodel_verifier           # run the classic suite
//   $ ./memmodel_verifier SB        # one test by name, with witness
#include <iostream>
#include <string>

#include "memmodel/litmus.hpp"
#include "support/table.hpp"

using namespace harmony;
using namespace harmony::memmodel;

namespace {

void explain(const LitmusTest& t) {
  std::cout << "test " << t.name << " (" << t.threads.size()
            << " threads)\n";
  for (std::size_t th = 0; th < t.threads.size(); ++th) {
    std::cout << "  T" << th << ":";
    for (const Op& op : t.threads[th]) {
      switch (op.type) {
        case OpType::kLoad:
          std::cout << " r=x" << op.loc << ";";
          break;
        case OpType::kStore:
          std::cout << " x" << op.loc << "=" << op.value << ";";
          break;
        case OpType::kFence:
          std::cout << " mfence;";
          break;
        case OpType::kRmw:
          std::cout << " rmw(x" << op.loc << ")" << ";";
          break;
      }
    }
    std::cout << "\n";
  }

  for (Model m : {Model::kSc, Model::kTso, Model::kPso}) {
    const char* name = m == Model::kSc ? "SC " : m == Model::kTso ? "TSO"
                                                                  : "PSO";
    const CheckResult op = check_operational(t, m);
    std::cout << "  " << name << ": "
              << (op.condition_reachable ? "ALLOWED" : "forbidden")
              << " (" << op.states_visited << " states)";
    if (!t.uses_rmw()) {
      const CheckResult ax = check_axiomatic(t, m);
      std::cout << " | axiomatic "
                << (ax.condition_reachable ? "ALLOWED" : "forbidden")
                << (ax.condition_reachable == op.condition_reachable
                        ? " [agree]"
                        : " [DISAGREE!]");
    }
    std::cout << "\n";
    if (op.condition_reachable && op.witness) {
      std::cout << "      witness:";
      for (const auto& step : *op.witness) std::cout << " " << step;
      std::cout << "\n";
      const FenceSynthesisResult fix = synthesize_fences(t, m);
      if (!fix.minimal_sets.empty()) {
        std::cout << "      minimal repair:";
        for (const FencePlacement& f : fix.minimal_sets[0]) {
          std::cout << " fence@T" << f.thread << "/op" << f.before_op;
        }
        std::cout << " (" << fix.minimal_sets.size()
                  << " minimal set(s), " << fix.candidates_tried
                  << " tried)\n";
      } else {
        std::cout << "      no fence placement forbids it (SC allows "
                     "it too)\n";
      }
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string want = argc > 1 ? argv[1] : "";
  bool found = false;
  for (const LitmusTest& t : classic_suite()) {
    if (!want.empty() && t.name != want) continue;
    found = true;
    explain(t);
  }
  if (!found) {
    std::cerr << "unknown test '" << want << "'; available:";
    for (const LitmusTest& t : classic_suite()) {
      std::cerr << " " << t.name;
    }
    std::cerr << "\n";
    return 2;
  }
  return 0;
}
