// pram_graph_toolkit — Vishkin's programme as a runnable demo: the same
// graph problems in serial, PRAM, and XMT styles, with work/depth
// numbers beside the answers.
//
//   $ ./pram_graph_toolkit [n] [avg_degree]
#include <cstdlib>
#include <iostream>

#include "algos/connectivity.hpp"
#include "algos/graph.hpp"
#include "algos/listrank.hpp"
#include "support/table.hpp"

using namespace harmony;

int main(int argc, char** argv) {
  std::int64_t n = 2048;
  std::int64_t deg = 6;
  if (argc > 1) n = std::atoll(argv[1]);
  if (argc > 2) deg = std::atoll(argv[2]);
  if (n < 4 || deg < 1) {
    std::cerr << "usage: " << argv[0] << " [n>=4] [avg_degree>=1]\n";
    return 2;
  }

  const algos::CsrGraph g = algos::random_graph(n, n * deg / 2, 2024);
  std::cout << "graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " directed edges\n\n";

  // --- BFS three ways -----------------------------------------------------
  const auto serial = algos::bfs_serial(g, 0);
  const auto pram = algos::bfs_pram(g, 0, 64);
  const auto xmt = algos::bfs_xmt(g, 0);
  const bool agree = pram.dist == serial.dist && xmt.dist == serial.dist;

  Table t({"algorithm", "model", "depth", "work", "correct"});
  t.title("BFS from vertex 0");
  t.add_row({std::string("FIFO queue"), std::string("RAM"),
             static_cast<double>(serial.work),
             static_cast<double>(serial.work), std::string("ref")});
  t.add_row({std::string("level-synchronous"),
             std::string("CRCW PRAM, P=64"),
             static_cast<double>(pram.stats.steps),
             static_cast<double>(pram.stats.reads + pram.stats.writes),
             std::string(pram.dist == serial.dist ? "yes" : "NO")});
  t.add_row({std::string("frontier + ps()"), std::string("XMT, 64 TCUs"),
             static_cast<double>(xmt.stats.estimated_cycles),
             static_cast<double>(xmt.stats.work),
             std::string(xmt.dist == serial.dist ? "yes" : "NO")});
  t.print(std::cout);

  // --- list ranking --------------------------------------------------------
  const algos::LinkedList list = algos::random_list(n, 7);
  const auto ser_rank = algos::list_rank_serial(list);
  const auto pj = algos::list_rank_pram(list, 64);
  std::cout << '\n';
  Table l({"algorithm", "model", "rounds", "work", "correct"});
  l.title("list ranking, n = " + std::to_string(n));
  l.add_row({std::string("traversal"), std::string("RAM"),
             static_cast<double>(n), static_cast<double>(n),
             std::string("ref")});
  l.add_row({std::string("pointer jumping"), std::string("CREW PRAM"),
             static_cast<double>(pj.rounds),
             static_cast<double>(pj.stats.reads + pj.stats.writes),
             std::string(pj.rank == ser_rank ? "yes" : "NO")});
  l.print(std::cout);

  // --- connected components (sparser graph so several exist) -------------
  const algos::CsrGraph sparse = algos::random_graph(n, n / 3 + 1, 4);
  const auto cc_serial = algos::components_serial(sparse);
  const auto cc_pram = algos::components_pram(sparse, 64);
  const bool cc_ok = algos::same_partition(cc_serial, cc_pram.label);
  std::cout << '\n';
  Table c({"algorithm", "model", "rounds", "work", "correct"});
  c.title("connected components (sparse graph)");
  c.add_row({std::string("union-find"), std::string("RAM"),
             static_cast<double>(sparse.num_vertices() +
                                 sparse.num_edges()),
             static_cast<double>(sparse.num_vertices() +
                                 sparse.num_edges()),
             std::string("ref")});
  c.add_row({std::string("hook + jump (SV-style)"),
             std::string("CRCW PRAM, P=64"),
             static_cast<double>(cc_pram.rounds),
             static_cast<double>(cc_pram.stats.reads +
                                 cc_pram.stats.writes),
             std::string(cc_ok ? "yes" : "NO")});
  c.print(std::cout);

  std::cout << "\nNote how the PRAM buys depth ~log n with extra work — "
               "the work-efficiency question Vishkin's statement turns "
               "on.\n";
  return agree && pj.rank == ser_rank && cc_ok ? 0 : 1;
}
