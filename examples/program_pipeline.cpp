// program_pipeline — modular composition on the grid machine: a
// three-stage program (2-D stencil -> 2-D stencil -> 1-D reduction
// sweep) with one aligned joint and one remap joint, every stage
// verified before it runs, every joint priced.
//
//   $ ./program_pipeline [rows] [cols]
#include <cstdlib>
#include <iostream>

#include "algos/specs.hpp"
#include "fm/default_mapper.hpp"
#include "fm/program.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace harmony;

namespace {

/// Stage 3's function: row sums of the field via a rank-2 recurrence
/// s(i,k) = s(i,k-1) + row_i[k].
fm::FunctionSpec rowsum_spec(std::int64_t rows, std::int64_t cols,
                             fm::TensorId* in_id, fm::TensorId* out_id) {
  fm::FunctionSpec spec;
  const fm::TensorId in =
      spec.add_input("field", fm::IndexDomain(rows, cols), 32);
  const fm::TensorId s = spec.add_computed(
      "rowsum", fm::IndexDomain(rows, cols),
      [in](const fm::Point& p) {
        std::vector<fm::ValueRef> deps{{in, fm::Point{p.i, p.j}}};
        if (p.j > 0) deps.push_back({in + 1, fm::Point{p.i, p.j - 1}});
        return deps;
      },
      [](const fm::Point& p, const std::vector<double>& v) {
        return p.j > 0 ? v[0] + v[1] : v[0];
      },
      fm::OpCost{.ops = 1.0, .bits = 32});
  spec.mark_output(s);
  if (in_id != nullptr) *in_id = in;
  if (out_id != nullptr) *out_id = s;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t rows = 12;
  std::int64_t cols = 12;
  if (argc > 1) rows = std::atoll(argv[1]);
  if (argc > 2) cols = std::atoll(argv[2]);
  if (rows < 2 || cols < 2) {
    std::cerr << "usage: " << argv[0] << " [rows>=2] [cols>=2]\n";
    return 2;
  }
  const std::int64_t t1 = 4;
  const std::int64_t t2 = 3;

  const fm::MachineConfig cfg = fm::make_machine(4, 4);
  const auto stage1 = algos::stencil2d_spec(rows, cols, t1);
  const auto stage2 = algos::stencil2d_spec(rows, cols, t2);
  fm::TensorId rs_in;
  fm::TensorId rs_out;
  const auto stage3 = rowsum_spec(rows, cols, &rs_in, &rs_out);

  const fm::Mapping m1 = fm::default_mapping(stage1, cfg);
  const fm::Mapping m2 = fm::default_mapping(stage2, cfg);
  const fm::Mapping m3 = fm::default_mapping(stage3, cfg);

  const fm::IndexDomain field(rows, cols);
  auto slice_last = [rows, cols](std::int64_t t) {
    return [rows, cols, t](const std::vector<std::vector<double>>& outs) {
      std::vector<double> last(
          outs[0].begin() + static_cast<std::ptrdiff_t>(t * rows * cols),
          outs[0].begin() +
              static_cast<std::ptrdiff_t>((t + 1) * rows * cols));
      return std::vector<std::vector<double>>{std::move(last)};
    };
  };

  fm::Joint j12;
  j12.adapt = slice_last(t1);
  j12.domain = field;
  j12.produced = fm::block_distribution(field, cfg.geom);
  j12.consumed = fm::block_distribution(field, cfg.geom);  // aligned

  fm::Joint j23;
  j23.adapt = slice_last(t2);
  j23.domain = field;
  j23.produced = fm::block_distribution(field, cfg.geom);
  j23.consumed = fm::cyclic_distribution(field, cfg.geom);  // remap!

  Rng rng(1);
  std::vector<double> u0(static_cast<std::size_t>(rows * cols));
  for (auto& v : u0) v = rng.next_double(0, 1);

  const fm::ProgramResult res = fm::run_program(
      {{"stencilA", &stage1, &m1},
       {"stencilB", &stage2, &m2},
       {"rowsum", &stage3, &m3}},
      {j12, j23}, cfg, {u0});

  // Validate end to end on the host.
  const auto field_ref = algos::stencil2d_reference(
      algos::stencil2d_reference(u0, rows, cols, t1), rows, cols, t2);
  bool ok = true;
  for (std::int64_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::int64_t k = 0; k < cols; ++k) {
      acc += field_ref[static_cast<std::size_t>(i * cols + k)];
      const double got =
          res.outputs[0][static_cast<std::size_t>(i * cols + k)];
      if (std::abs(got - acc) > 1e-9) ok = false;
    }
  }

  Table t({"stage", "cycles", "energy_nJ"});
  t.title("three-stage program on a 4x4 grid");
  for (std::size_t s = 0; s < res.per_stage.size(); ++s) {
    t.add_row({std::string(s == 0 ? "stencilA" : s == 1 ? "stencilB"
                                                        : "rowsum"),
               res.per_stage[s].makespan_cycles,
               res.per_stage[s].total_energy().nanojoules()});
  }
  t.print(std::cout);
  std::cout << "joints: stencilA->stencilB "
            << (res.joint_aligned[0] ? "aligned (free)" : "remapped")
            << "; stencilB->rowsum "
            << (res.joint_aligned[1] ? "aligned (free)" : "remapped")
            << " (" << res.remap_messages << " remap messages, "
            << res.remap_energy.nanojoules() << " nJ)\n";
  std::cout << "program total: " << res.total_cycles << " cycles, "
            << res.total_energy.nanojoules() << " nJ\n";
  std::cout << "end-to-end check vs host reference: "
            << (ok ? "MATCHES" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
