// quickstart — the harmony library in ~60 lines.
//
// Walks the full F&M pipeline on the paper's own example: specify the
// edit-distance recurrence as a *function*, attach a space-time
// *mapping*, verify it, execute it on the simulated grid machine, and
// read off time and energy.
//
//   $ ./quickstart
#include <iostream>

#include "algos/editdist.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"

int main() {
  using namespace harmony;

  // 1. The function: H(i,j) from H(i-1,j-1), H(i-1,j), H(i,j-1) and the
  //    two input strings (a Smith-Waterman recurrence).
  const std::string r = "GATTACAGATTACA";
  const std::string q = "GCATGCTTAGGCAT";
  algos::SwScores scores;
  fm::TensorId rt;
  fm::TensorId qt;
  fm::TensorId ht;
  const fm::FunctionSpec spec = algos::editdist_spec(
      static_cast<std::int64_t>(r.size()),
      static_cast<std::int64_t>(q.size()), scores, &rt, &qt, &ht);

  // 2. The machine: 8 PEs in a row, 0.2 mm apart, 5 nm constants.
  const fm::MachineConfig machine = fm::make_machine(/*cols=*/8, /*rows=*/1);

  // 3. The mapping: the paper's marching anti-diagonals
  //    (place = i mod P, time = wavefront skew).
  fm::Mapping mapping;
  const fm::WavefrontMap wf =
      fm::wavefront_map(static_cast<std::int64_t>(q.size()), 8);
  mapping.set_computed(ht, wf.place_fn(), wf.time_fn());
  mapping.set_input(rt, fm::InputHome::at({0, 0}));
  mapping.set_input(qt, fm::InputHome::at({0, 0}));

  // 4. Verify before running — causality, transit, storage, bandwidth.
  const fm::LegalityReport legality = verify(spec, mapping, machine);
  if (!legality.ok) {
    std::cerr << "mapping rejected: " << legality.first_message() << "\n";
    return 1;
  }
  std::cout << "mapping verified (peak live values/PE: "
            << legality.peak_live_values << ")\n";

  // 5. Execute on the grid machine with real data.
  const fm::GridMachine gm(machine);
  const fm::ExecutionResult result = gm.run(
      spec, mapping, {algos::encode_string(r), algos::encode_string(q)});

  // 6. Validate against the host algorithm and report costs.
  const auto expect = algos::smith_waterman_serial(r, q, scores);
  std::cout << "result " << (result.outputs[0] == expect ? "matches" :
                             "DIFFERS FROM")
            << " the host Smith-Waterman\n";
  std::cout << "makespan : " << result.makespan_cycles << " cycles ("
            << result.makespan.nanoseconds() << " ns)\n";
  std::cout << "energy   : " << result.total_energy().femtojoules()
            << " fJ (compute " << result.compute_energy.femtojoules()
            << ", movement "
            << result.onchip_movement_energy.femtojoules() << ")\n";
  std::cout << "messages : " << result.messages << " ("
            << result.bit_hops << " bit-hops)\n";
  return 0;
}
