// serve_demo — harmony::serve in ~80 lines.
//
// Stands up the mapping-tuning service over the edit-distance spec and
// walks its three request kinds: a cost eval (miss, then memoized hit),
// a legality check, and a deadline-cut tune — the case where the budget
// runs out before the search space does and the service answers with the
// best legal mapping found so far instead of failing.
//
//   $ ./serve_demo
//   $ ./serve_demo --trace serve.json   # then open in ui.perfetto.dev
#include <chrono>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "algos/editdist.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace harmony;
  using namespace std::chrono_literals;

  // --trace out.json records every request's lifecycle spans (admit →
  // queue wait → batch → cache probe → tune → reply) plus the scheduler
  // and search spans underneath them.
  const std::string trace_path = trace::trace_flag(argc, argv);
  std::optional<trace::TraceSession> session;
  if (!trace_path.empty()) session.emplace();

  serve::MetricsSnapshot snap;
  {
    // The function under management: a 32x32 edit-distance recurrence.
    algos::SwScores scores;
    const auto spec = std::make_shared<const fm::FunctionSpec>(
        algos::editdist_spec(32, 32, scores));

    serve::ServiceConfig cfg;
    cfg.num_workers = 4;
    serve::Service svc(cfg);

    // A request is (kind, spec, machine, merit, inputs, payload).
    serve::Request base;
    base.spec = spec;
    base.machine = fm::make_machine(/*cols=*/32, /*rows=*/1);
    base.inputs = {serve::InputPlacement::at({0, 0}),
                   serve::InputPlacement::at({0, 0})};

    // 1. Cost eval: price the wavefront mapping.  The first call runs the
    //    oracle; the second is answered from the result cache on the
    //    caller's thread.
    serve::Request eval = base;
    eval.kind = serve::RequestKind::kCostEval;
    eval.map = fm::AffineMap{.ti = 1, .tj = 1, .tk = 0, .t0 = 0,
                             .xi = 1, .xj = 0, .xk = 0, .x0 = 0,
                             .yi = 0, .yj = 0, .yk = 0, .y0 = 0,
                             .cols = 32, .rows = 1};
    serve::Response r = svc.call(eval);
    std::cout << "cost eval: " << r.cost.makespan_cycles << " cycles, "
              << r.cost.total_energy().nanojoules() << " nJ (cache_hit="
              << r.cache_hit << ")\n";
    r = svc.call(eval);
    std::cout << "cost eval again: cache_hit=" << r.cache_hit << ", latency "
              << r.latency.count() / 1000 << " us\n";

    // 2. Legality: the same map is checked, not priced — and rejected.
    //    Both strings are homed on PE (0,0), so the wavefront's 63-cycle
    //    schedule pushes ~550 bits/cycle through that PE's outgoing link
    //    (capacity 256): the cost oracle prices the map, the verifier
    //    catches the bandwidth hot-spot.
    serve::Request legal = base;
    legal.kind = serve::RequestKind::kLegality;
    legal.map = eval.map;
    r = svc.call(legal);
    std::cout << "legality: ok=" << r.legality.ok << " (bandwidth violations "
              << r.legality.bandwidth_violations << ", peak link "
              << r.legality.peak_link_bits_per_cycle << " bits/cycle)\n";

    // 3. Tune with a deadline.  The search space below is far larger than
    //    50 ms of enumeration — even through the compiled fast path
    //    (DESIGN.md §12) — so the deadline fires mid-search and the
    //    response carries the best-so-far frontier (deadline_cut) — more
    //    budget buys a better mapping, less buys a legal one sooner.  The
    //    winner stretches time enough to fit the PE-0 link budget the
    //    wavefront just blew.
    //    (Coefficient 1 leads both lists, so the legal wavefront is among
    //    the first candidates enumerated.)
    serve::Request tune = base;
    tune.kind = serve::RequestKind::kTune;
    tune.fom = fm::FigureOfMerit::kTime;
    tune.search.space.time_coeffs = {1, 2, 3, 4, 5, 6, 7, 8,
                                     9, 10, 11, 12, 0};
    tune.search.space.space_coeffs = {1, 0, -1, 2, -2, 3, -3, 4, -4};
    tune.deadline = 50ms;
    r = svc.call(tune);
    if (r.ok() && r.search.found) {
      const fm::AffineMap& m = r.search.best.map;
      std::cout << "tune: best map t=" << m.ti << "i+" << m.tj << "j x="
                << m.xi << "i+" << m.xj << "j, "
                << r.search.best.cost.makespan_cycles << " cycles after "
                << r.search.enumerated << " candidates (deadline_cut="
                << r.deadline_cut << ")\n";
    } else {
      std::cout << "tune: no legal mapping found (" << r.error << ")\n";
    }

    // The metrics endpoint, human- and machine-readable.
    snap = svc.metrics();
    // Scope end: ~Service joins the dispatcher and the worker pool, so
    // every traced thread is quiescent before capture() below.
  }
  std::cout << "\n";
  serve::metrics_table(snap).print(std::cout);
  std::cout << "\n" << serve::metrics_json(snap) << "\n";

  if (session) {
    session->stop();
    const trace::Capture cap = session->capture();
    trace::write_chrome_json_file(trace_path, cap);
    std::cout << "\n";
    trace::summary_table(trace::summarize(cap)).print(std::cout);
    std::cout << "trace: " << cap.events.size() << " events -> " << trace_path
              << " (open in ui.perfetto.dev)\n";
  }
  return 0;
}
