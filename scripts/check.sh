#!/usr/bin/env bash
# Full pre-merge gate:
#
#   1. tier-1 — plain build + the whole ctest suite (ROADMAP.md);
#   2. ASan/UBSan build running the serve tests (the new concurrent
#      subsystem is where lifetime bugs would live);
#   3. TSan build running the serve stress test (many clients, tiny
#      cache, shutdown racing live submitters).
#
# Usage:
#   scripts/check.sh            # all three stages
#   scripts/check.sh tier1      # just the plain build + tests
#   scripts/check.sh asan|tsan  # just that sanitizer stage
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"
STAGE="${1:-all}"

run_tier1() {
  echo "== tier-1: build + full test suite =="
  cmake -B build -S .
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
}

run_asan() {
  echo "== ASan/UBSan: serve tests =="
  cmake -B build-asan -S . -DHARMONY_ASAN=ON
  cmake --build build-asan -j --target serve_test serve_stress_test
  ctest --test-dir build-asan --output-on-failure -R "serve"
}

run_tsan() {
  echo "== TSan: serve stress test =="
  cmake -B build-tsan -S . -DHARMONY_TSAN=ON
  cmake --build build-tsan -j --target serve_stress_test
  ctest --test-dir build-tsan --output-on-failure -R "serve_stress"
}

case "$STAGE" in
  all)   run_tier1; run_asan; run_tsan ;;
  tier1) run_tier1 ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  *)     echo "usage: $0 [all|tier1|asan|tsan]" >&2; exit 2 ;;
esac

echo "check.sh: $STAGE passed"
