#!/usr/bin/env bash
# Full pre-merge gate:
#
#   1. tier-1  — plain build + the whole ctest suite (ROADMAP.md);
#   2. analyze — the static-analysis subsystem (race detector, linter,
#      execution checker; ctest -L analyze) plus harmony-lint CLI smoke
#      runs, including --check-exec on one affine and one TableMap
#      fixture and one --pipeline chain (tune + per-stage ExecChecker
#      certification against producer-substituted input homes);
#   3. ASan/UBSan build running the serve + analyze + support tests (the
#      concurrent subsystem and the shadow-memory detector are where
#      lifetime bugs would live; support_test exercises the Rng
#      full-domain ranges whose old arithmetic was signed-overflow UB;
#      the serve_dist tests cover the router/worker wire path, where a
#      bounds bug in frame decoding would be a heap overread);
#   4. TSan build running the tier1 + serve + serve_dist + analyze +
#      trace + fm_search + fm_strategy + fm_pipeline labels — the whole
#      correctness suite
#      (parallel search parity, compiled-evaluation parity, delta-eval
#      parity, multi-chain anneal/beam worker-count identity, scheduler
#      wakeup, batching, cache, concurrent trace-ring writes, router
#      coalescing/stealing/drain against live worker threads) plus the
#      stress test under ThreadSanitizer;
#   5. perf    — smoke runs of the compiled-evaluation, stochastic-
#      search, pipeline-tuning, and distributed-serving benchmarks
#      (bench_e22 + bench_e23 + bench_e24 + bench_e25, ctest -L perf):
#      fails if the fast path's reports diverge from the legacy
#      oracles, a parallel search diverges from serial, the anneal
#      misses the affine optimum, the delta-eval speedup contract
#      breaks, the co-optimizing pipeline tuner loses to the greedy
#      baseline / fails certification, any open-loop serve request
#      errors, or the snapshot warm-restart contract breaks.
#
# Usage:
#   scripts/check.sh                         # all stages
#   scripts/check.sh tier1                   # just the plain build + tests
#   scripts/check.sh analyze|asan|tsan|perf  # just that stage
#
# Every stage runs as one &&-chain inside its function.  This matters:
# `set -e` is suspended while a function runs as part of a condition
# (`if run_x`, `run_x && ...`), so a bare multi-command function body
# would keep going after a failing cmake/ctest and let a later passing
# command mask the failure.  The &&-chain propagates the first nonzero
# exit code regardless of errexit context, and the runner records each
# stage's result instead of stopping at the first, so one broken
# sanitizer stage cannot hide behind — or be hidden by — another.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"
STAGE="${1:-all}"

run_tier1() {
  echo "== tier-1: build + full test suite ==" &&
  cmake -B build -S . &&
  cmake --build build -j &&
  ctest --test-dir build --output-on-failure -j
}

run_analyze() {
  echo "== analyze: race detector + linter + execution checker ==" &&
  cmake -B build -S . &&
  cmake --build build -j --target analyze_race_test analyze_lint_test \
    analyze_exec_test analyze_witness_test harmony_lint_cli_test \
    harmony_lint &&
  ctest --test-dir build --output-on-failure -L analyze &&
  ./build/examples/harmony-lint --spec=editdist:16x16 --machine=4x1 \
    --map=wavefront &&
  ./build/examples/harmony-lint --spec=editdist:8x8 --machine=8x1 \
    --map=affine:1,1,101,0,1,0 --check-exec &&
  ./build/examples/harmony-lint --spec=stencil:64,8 --machine=4x1 \
    --map=table --check-exec &&
  # Pipeline mode: tune a chain and certify every stage winner.  Exit 1
  # (warnings only — low-utilization hints are normal for these tiny
  # smoke chains) passes; exit 2 (lint/exec errors) fails the stage.
  { ./build/examples/harmony-lint --pipeline=scanchain:16 --machine=4x1 \
      || [ "$?" -eq 1 ]; } &&
  { ./build/examples/harmony-lint --pipeline=irregular:24,3,7 \
      --machine=4x1 --tuner=greedy || [ "$?" -eq 1 ]; }
}

run_asan() {
  echo "== ASan/UBSan: serve + analyze + support tests ==" &&
  cmake -B build-asan -S . -DHARMONY_ASAN=ON &&
  cmake --build build-asan -j --target serve_test serve_ring_test \
    serve_wire_test serve_dist_test serve_stress_test \
    analyze_race_test analyze_lint_test analyze_exec_test \
    analyze_witness_test support_test &&
  ctest --test-dir build-asan --output-on-failure -R "serve|analyze|support"
}

run_tsan() {
  echo "== TSan: tier1 + serve + serve_dist + analyze + trace +" \
       "fm_search + fm_strategy + fm_pipeline labels ==" &&
  cmake -B build-tsan -S . -DHARMONY_TSAN=ON &&
  cmake --build build-tsan -j --target harmony_tests &&
  ctest --test-dir build-tsan --output-on-failure \
    -L "tier1|serve|serve_dist|analyze|trace|fm_search|fm_strategy|fm_pipeline|exec"
}

run_perf() {
  # bench_e22's exit code also enforces the parallel-search scaling
  # floor: modeled >= 2x at 8 workers always (deterministic work-span
  # replay of the grain schedule, DESIGN.md §15), measured >= 2x only
  # when the host has >= 8 hardware threads.
  echo "== perf: compiled-eval + stochastic-search + pipeline +" \
       "distributed-serve bench smoke ==" &&
  cmake -B build -S . &&
  cmake --build build -j --target bench_e22_cost_eval bench_e23_anneal \
    bench_e24_pipeline bench_e25_distributed &&
  ctest --test-dir build --output-on-failure -L perf
}

run_stage() {
  # Runs one stage, recording rather than aborting on failure so every
  # requested stage reports.  The `if` guard keeps errexit from killing
  # the whole script on the first broken stage.
  local stage="$1"
  if "run_${stage}"; then
    echo "check.sh: stage ${stage} passed"
  else
    local rc=$?
    echo "check.sh: stage ${stage} FAILED (exit ${rc})" >&2
    FAILED+=("${stage}")
  fi
}

declare -a FAILED=()
case "$STAGE" in
  all)     for s in tier1 analyze asan tsan perf; do run_stage "$s"; done ;;
  tier1)   run_stage tier1 ;;
  analyze) run_stage analyze ;;
  asan)    run_stage asan ;;
  tsan)    run_stage tsan ;;
  perf)    run_stage perf ;;
  *)       echo "usage: $0 [all|tier1|analyze|asan|tsan|perf]" >&2; exit 2 ;;
esac

if [ "${#FAILED[@]}" -ne 0 ]; then
  echo "check.sh: FAILED stages: ${FAILED[*]}" >&2
  exit 1
fi
echo "check.sh: $STAGE passed"
