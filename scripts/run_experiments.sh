#!/usr/bin/env bash
# Regenerates test_output.txt and bench_output.txt (the artifacts
# EXPERIMENTS.md quotes).  Usage:
#
#   scripts/run_experiments.sh [build-dir]
#
# Set HARMONY_CSV=1 to additionally emit every table as CSV.
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -G Ninja
fi
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

{
  for b in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "wrote $REPO_ROOT/test_output.txt and $REPO_ROOT/bench_output.txt"
