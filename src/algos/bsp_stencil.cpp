#include "algos/bsp_stencil.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace harmony::algos {

BspStencilResult bsp_stencil1d(const std::vector<double>& u0,
                               std::int64_t steps, int procs,
                               std::int64_t halo, comm::AlphaBeta model) {
  HARMONY_REQUIRE(procs >= 1, "bsp_stencil1d: need >= 1 process");
  HARMONY_REQUIRE(halo >= 1, "bsp_stencil1d: halo depth >= 1");
  const auto n = static_cast<std::int64_t>(u0.size());
  HARMONY_REQUIRE(n % procs == 0, "bsp_stencil1d: procs must divide n");
  const std::int64_t bs = n / procs;
  HARMONY_REQUIRE(bs >= halo, "bsp_stencil1d: block smaller than halo");
  const auto p = static_cast<std::size_t>(procs);
  const auto h = static_cast<std::size_t>(halo);
  const auto ubs = static_cast<std::size_t>(bs);

  comm::BspMachine m(procs, model);
  // Extended local arrays: [0, h) left halo | [h, h+bs) interior |
  // [h+bs, h+bs+h) right halo.
  std::vector<std::vector<double>> ext(
      p, std::vector<double>(ubs + 2 * h, 0.0));
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < ubs; ++i) {
      ext[r][h + i] = u0[r * ubs + i];
    }
  }

  BspStencilResult res;
  std::int64_t remaining = steps;
  while (remaining > 0) {
    const std::int64_t chunk = std::min(remaining, halo);
    // Superstep A: ship halos.
    m.superstep([&](comm::BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      const auto& v = ext[r];
      if (proc.rank() > 0) {
        proc.send(proc.rank() - 1,
                  std::vector<double>(v.begin() + static_cast<std::ptrdiff_t>(h),
                                      v.begin() + static_cast<std::ptrdiff_t>(
                                                      h + h)),
                  /*tag=*/0);  // my left edge -> left neighbour's right halo
      }
      if (proc.rank() + 1 < procs) {
        proc.send(proc.rank() + 1,
                  std::vector<double>(
                      v.begin() + static_cast<std::ptrdiff_t>(ubs),
                      v.begin() + static_cast<std::ptrdiff_t>(ubs + h)),
                  /*tag=*/1);  // my right edge -> right neighbour's left halo
      }
    });
    // Superstep B: receive halos, advance `chunk` steps locally.
    m.superstep([&](comm::BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      auto& v = ext[r];
      for (const comm::Message& msg : proc.inbox()) {
        if (msg.tag == 1) {
          // From the left neighbour: fill my left halo.
          std::copy(msg.payload.begin(), msg.payload.end(), v.begin());
        } else {
          // From the right neighbour: fill my right halo.
          std::copy(msg.payload.begin(), msg.payload.end(),
                    v.begin() + static_cast<std::ptrdiff_t>(h + ubs));
        }
      }
      // Valid window in extended coordinates (global boundaries are
      // clamped in-place, so they never shrink).
      const bool has_left = proc.rank() > 0;
      const bool has_right = proc.rank() + 1 < procs;
      std::size_t lo = has_left ? 0 : h;
      std::size_t hi = has_right ? ubs + 2 * h : h + ubs;
      std::vector<double> next(v.size());
      for (std::int64_t s = 0; s < chunk; ++s) {
        if (has_left) ++lo;
        if (has_right) --hi;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int64_t g =
              static_cast<std::int64_t>(r * ubs + i) -
              static_cast<std::int64_t>(h);
          double sum = v[i];
          int cnt = 1;
          if (g > 0) {
            sum += v[i - 1];
            ++cnt;
          }
          if (g + 1 < n) {
            sum += v[i + 1];
            ++cnt;
          }
          next[i] = sum / cnt;
          proc.charge_flops(3.0);
        }
        std::copy(next.begin() + static_cast<std::ptrdiff_t>(lo),
                  next.begin() + static_cast<std::ptrdiff_t>(hi),
                  v.begin() + static_cast<std::ptrdiff_t>(lo));
      }
    });
    remaining -= chunk;
    ++res.rounds;
  }

  res.u.resize(static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < ubs; ++i) {
      res.u[r * ubs + i] = ext[r][h + i];
    }
  }
  res.stats = m.stats();
  return res;
}

}  // namespace harmony::algos
