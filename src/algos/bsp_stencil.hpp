// Distributed 1-D stencil with ghost zones (halo exchange) on the BSP
// machine (Yelick, §6).
//
// The canonical communication-avoiding time-tiling trade: exchanging a
// halo of depth h lets each process advance h time steps per superstep,
// cutting the number of synchronizations and messages by h at the price
// of O(h^2) redundant boundary flops per round.  With alpha/L large the
// optimal h is > 1 — "reducing ... number of distinct events, while
// being cognizant of consuming memory resources" (the halo is the
// memory).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/bsp.hpp"

namespace harmony::algos {

struct BspStencilResult {
  std::vector<double> u;  ///< field after `steps` applications
  comm::BspStats stats;
  std::int64_t rounds = 0;  ///< supersteps of halo exchange
};

/// Runs `steps` Jacobi steps (the stencil1d_reference rule: clamped
/// 3-point average) over `u0`, block-distributed across `procs`
/// processes, exchanging ghost zones of depth `halo` per round.
/// Requires halo >= 1 and every block >= halo cells.
[[nodiscard]] BspStencilResult bsp_stencil1d(const std::vector<double>& u0,
                                             std::int64_t steps, int procs,
                                             std::int64_t halo,
                                             comm::AlphaBeta model = {});

}  // namespace harmony::algos
