#include "algos/connectivity.hpp"

#include <numeric>
#include <unordered_map>

#include "support/error.hpp"

namespace harmony::algos {

std::vector<std::int64_t> components_serial(const CsrGraph& g) {
  const std::int64_t n = g.num_vertices();
  std::vector<std::int64_t> parent(static_cast<std::size_t>(n));
  std::vector<std::int64_t> size(static_cast<std::size_t>(n), 1);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::int64_t v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t e = g.offsets[static_cast<std::size_t>(u)];
         e < g.offsets[static_cast<std::size_t>(u) + 1]; ++e) {
      const std::int64_t v = g.targets[static_cast<std::size_t>(e)];
      std::int64_t ru = find(u);
      std::int64_t rv = find(v);
      if (ru == rv) continue;
      if (size[static_cast<std::size_t>(ru)] <
          size[static_cast<std::size_t>(rv)]) {
        std::swap(ru, rv);
      }
      parent[static_cast<std::size_t>(rv)] = ru;
      size[static_cast<std::size_t>(ru)] +=
          size[static_cast<std::size_t>(rv)];
    }
  }
  std::vector<std::int64_t> label(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    label[static_cast<std::size_t>(v)] = find(v);
  }
  return label;
}

PramCcResult components_pram(const CsrGraph& g, std::size_t num_procs) {
  const std::int64_t n = g.num_vertices();
  const std::int64_t m = g.num_edges();
  // Memory: [0, n) parent labels; n = changed flag; n+1 = done flag.
  const auto changed_addr = static_cast<std::size_t>(n);
  const auto done_addr = static_cast<std::size_t>(n) + 1;
  pram::PramMachine machine(pram::Variant::kCrcwArbitrary, num_procs,
                            static_cast<std::size_t>(n) + 2);
  for (std::int64_t v = 0; v < n; ++v) {
    machine.mem(static_cast<std::size_t>(v)) = v;
  }

  // Flatten the edge list once (host side) for cyclic distribution.
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t e = g.offsets[static_cast<std::size_t>(u)];
         e < g.offsets[static_cast<std::size_t>(u) + 1]; ++e) {
      edges.emplace_back(u, g.targets[static_cast<std::size_t>(e)]);
    }
  }

  const auto p = num_procs;
  std::int64_t rounds = 0;
  auto program = [&](pram::PramMachine::Ctx& ctx) {
    // Round structure: step 3k = hook, 3k+1 = jump, 3k+2 = convergence.
    const std::int64_t phase = ctx.step() % 3;
    if (phase == 0) {
      if (ctx.read(done_addr) == 1) {
        ctx.halt();
        return;
      }
      // Hooking: try to lower the root label of u's parent tree to
      // label(v).  Labels only decrease; CRCW-arbitrary picks a writer.
      for (std::size_t e = ctx.proc(); e < edges.size(); e += p) {
        const auto [u, v] = edges[e];
        const std::int64_t pu = ctx.read(static_cast<std::size_t>(u));
        const std::int64_t pv = ctx.read(static_cast<std::size_t>(v));
        if (pv < pu) {
          const std::int64_t ppu =
              ctx.read(static_cast<std::size_t>(pu));
          if (pv < ppu) {
            ctx.write(static_cast<std::size_t>(pu), pv);
            ctx.write(changed_addr, 1);
          }
        }
      }
    } else if (phase == 1) {
      // Pointer jumping (shortcutting).
      for (std::int64_t v = static_cast<std::int64_t>(ctx.proc()); v < n;
           v += static_cast<std::int64_t>(p)) {
        const std::int64_t pv = ctx.read(static_cast<std::size_t>(v));
        const std::int64_t ppv = ctx.read(static_cast<std::size_t>(pv));
        if (ppv != pv) {
          ctx.write(static_cast<std::size_t>(v), ppv);
          ctx.write(changed_addr, 1);
        }
      }
    } else {
      if (ctx.proc() == 0) {
        ++rounds;
        if (ctx.read(changed_addr) == 0) {
          ctx.write(done_addr, 1);
        } else {
          ctx.write(changed_addr, 0);
        }
      }
    }
  };

  PramCcResult res;
  res.stats = machine.run(program, /*max_steps=*/12 * (n + 8));
  res.rounds = rounds;
  res.label.resize(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    res.label[static_cast<std::size_t>(v)] =
        machine.mem(static_cast<std::size_t>(v));
  }
  return res;
}

bool same_partition(const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<std::int64_t, std::int64_t> a_to_b;
  std::unordered_map<std::int64_t, std::int64_t> b_to_a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [ia, fresh_a] = a_to_b.try_emplace(a[v], b[v]);
    if (!fresh_a && ia->second != b[v]) return false;
    auto [ib, fresh_b] = b_to_a.try_emplace(b[v], a[v]);
    if (!fresh_b && ib->second != a[v]) return false;
  }
  return true;
}

}  // namespace harmony::algos
