// Connected components — serial union-find vs a Shiloach-Vishkin-family
// PRAM algorithm (Vishkin, §5).
//
// The PRAM variant is FastSV-style: each round combines edge *hooking*
// (lower the root label of one endpoint's tree to the other endpoint's
// label, CRCW with monotonically decreasing labels) with pointer
// *jumping* (par[v] = par[par[v]]), iterated to a fixpoint.  Rounds are
// O(log n) in practice; work is Theta((n + m)) per round — the classic
// PRAM trade of extra work for depth ~ log n instead of ~ n.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/graph.hpp"
#include "pram/pram.hpp"

namespace harmony::algos {

/// Serial union-find (path compression + union by size).
/// Returns a canonical label per vertex (equal iff connected).
[[nodiscard]] std::vector<std::int64_t> components_serial(const CsrGraph& g);

struct PramCcResult {
  std::vector<std::int64_t> label;
  pram::PramStats stats;
  std::int64_t rounds = 0;
};

/// FastSV-style hook-and-jump on the CRCW(arbitrary) PRAM simulator.
[[nodiscard]] PramCcResult components_pram(const CsrGraph& g,
                                           std::size_t num_procs);

/// True iff the two labelings induce the same partition.
[[nodiscard]] bool same_partition(const std::vector<std::int64_t>& a,
                                  const std::vector<std::int64_t>& b);

}  // namespace harmony::algos
