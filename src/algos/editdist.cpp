#include "algos/editdist.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace harmony::algos {

namespace {
double cell(double diag, double up, double left, double ri, double qj,
            const SwScores& s) {
  const double sub = ri == qj ? s.match : s.mismatch;
  return std::max({0.0, diag + sub, up - s.gap, left - s.gap});
}
}  // namespace

std::vector<double> smith_waterman_serial(const std::string& r,
                                          const std::string& q,
                                          const SwScores& s, double* best) {
  const std::size_t n = r.size();
  const std::size_t m = q.size();
  std::vector<double> h(n * m, 0.0);
  double hi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double diag = (i > 0 && j > 0) ? h[(i - 1) * m + (j - 1)] : 0.0;
      const double up = i > 0 ? h[(i - 1) * m + j] : 0.0;
      const double left = j > 0 ? h[i * m + (j - 1)] : 0.0;
      const double v = cell(diag, up, left, r[i], q[j], s);
      h[i * m + j] = v;
      hi = std::max(hi, v);
    }
  }
  if (best != nullptr) *best = hi;
  return h;
}

std::vector<double> smith_waterman_antidiagonal(const std::string& r,
                                                const std::string& q,
                                                const SwScores& s) {
  const std::size_t n = r.size();
  const std::size_t m = q.size();
  std::vector<double> h(n * m, 0.0);
  for (std::size_t d = 0; d + 1 <= n + m - 1 && n > 0 && m > 0; ++d) {
    const std::size_t i_lo = d >= m ? d - m + 1 : 0;
    const std::size_t i_hi = std::min(d, n - 1);
    for (std::size_t i = i_lo; i <= i_hi; ++i) {
      const std::size_t j = d - i;
      const double diag = (i > 0 && j > 0) ? h[(i - 1) * m + (j - 1)] : 0.0;
      const double up = i > 0 ? h[(i - 1) * m + j] : 0.0;
      const double left = j > 0 ? h[i * m + (j - 1)] : 0.0;
      h[i * m + j] = cell(diag, up, left, r[i], q[j], s);
    }
  }
  return h;
}

fm::FunctionSpec editdist_spec(std::int64_t n_rows, std::int64_t n_cols,
                               const SwScores& s, fm::TensorId* r_id,
                               fm::TensorId* q_id, fm::TensorId* h_id) {
  HARMONY_REQUIRE(n_rows >= 1 && n_cols >= 1,
                  "editdist_spec: empty domain");
  fm::FunctionSpec spec;
  const fm::TensorId r = spec.add_input("R", fm::IndexDomain(n_rows), 8);
  const fm::TensorId q = spec.add_input("Q", fm::IndexDomain(n_cols), 8);
  const fm::TensorId h = spec.add_computed(
      "H", fm::IndexDomain(n_rows, n_cols),
      // Dependences: own characters, then the up-to-three DP neighbours
      // (order must match eval below).
      [r, q](const fm::Point& p) {
        std::vector<fm::ValueRef> deps;
        deps.push_back({r, fm::Point{p.i}});
        deps.push_back({q, fm::Point{p.j}});
        const fm::TensorId self = q + 1;  // H is added right after Q
        if (p.i > 0 && p.j > 0) {
          deps.push_back({self, fm::Point{p.i - 1, p.j - 1}});
        }
        if (p.i > 0) deps.push_back({self, fm::Point{p.i - 1, p.j}});
        if (p.j > 0) deps.push_back({self, fm::Point{p.i, p.j - 1}});
        return deps;
      },
      [s](const fm::Point& p, const std::vector<double>& v) {
        const double ri = v[0];
        const double qj = v[1];
        std::size_t at = 2;
        const double diag = (p.i > 0 && p.j > 0) ? v[at++] : 0.0;
        const double up = p.i > 0 ? v[at++] : 0.0;
        const double left = p.j > 0 ? v[at++] : 0.0;
        const double sub = ri == qj ? s.match : s.mismatch;
        return std::max({0.0, diag + sub, up - s.gap, left - s.gap});
      },
      // One DP cell: compare + 3 adds + 4-way max ~ 4 ops of 32 bits.
      fm::OpCost{.ops = 4.0, .bits = 32});
  spec.mark_output(h);
  if (r_id != nullptr) *r_id = r;
  if (q_id != nullptr) *q_id = q;
  if (h_id != nullptr) *h_id = h;
  return spec;
}

std::vector<double> encode_string(const std::string& s) {
  std::vector<double> v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    v[i] = static_cast<double>(static_cast<unsigned char>(s[i]));
  }
  return v;
}

}  // namespace harmony::algos
