// The paper's worked example (Dally, §3): a dynamic-programming string
// alignment recurrence mapped onto a processor array as marching
// anti-diagonals.
//
//   Forall i, j in (0:N-1, 0:N-1)
//     H(i,j) = min(H(i-1,j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0)
//
// The "min ... 0" floor makes this the Smith-Waterman local-alignment
// family; we implement the standard max formulation (scores negated):
//
//   H(i,j) = max(0, H(i-1,j-1) + s(R[i],Q[j]),
//                   H(i-1,j) - gap, H(i,j-1) - gap)
//
// with H(-1, .) = H(., -1) = 0.  Three expressions:
//   * serial CPU reference (validation + the RAM baseline),
//   * anti-diagonal serial traversal (same work, wavefront order),
//   * an F&M FunctionSpec + the corrected wavefront mapping of
//     fm/mapping.hpp, executed on the grid machine (E2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fm/spec.hpp"
#include "sched/parallel_ops.hpp"

namespace harmony::algos {

struct SwScores {
  double match = 2.0;
  double mismatch = -1.0;
  double gap = 1.0;  ///< subtracted for insertions/deletions
};

/// Serial row-major Smith-Waterman.  Returns the full n x m H matrix
/// (row-major) for validation; `best` receives the maximum cell.
[[nodiscard]] std::vector<double> smith_waterman_serial(
    const std::string& r, const std::string& q, const SwScores& s,
    double* best = nullptr);

/// Same recurrence traversed by anti-diagonals (wavefront order); must
/// produce the identical matrix — the order-independence property the
/// F&M "function" abstraction asserts.
[[nodiscard]] std::vector<double> smith_waterman_antidiagonal(
    const std::string& r, const std::string& q, const SwScores& s);

/// F&M function spec for the recurrence.  Tensors: input R (|r|), input
/// Q (|q|), computed H (|r| x |q|, marked output).  Returns the spec;
/// `r_id`/`q_id`/`h_id` receive the tensor ids.
[[nodiscard]] fm::FunctionSpec editdist_spec(std::int64_t n_rows,
                                             std::int64_t n_cols,
                                             const SwScores& s,
                                             fm::TensorId* r_id = nullptr,
                                             fm::TensorId* q_id = nullptr,
                                             fm::TensorId* h_id = nullptr);

/// Encodes a string as the double-valued input tensor the spec expects.
[[nodiscard]] std::vector<double> encode_string(const std::string& s);

/// The wavefront as a fork-join program: anti-diagonals run serially,
/// cells within one anti-diagonal in parallel (every dependence of
/// diagonal d lies on d-1 or d-2, so the parallel_for is race-free —
/// a claim the determinacy-race detector checks via the reader/writer
/// annotations).  Must produce the identical matrix to
/// smith_waterman_serial.
template <typename Ctx>
std::vector<double> smith_waterman_forkjoin(Ctx& ctx, const std::string& r,
                                            const std::string& q,
                                            const SwScores& s,
                                            std::size_t grain = 8) {
  const std::size_t n = r.size();
  const std::size_t m = q.size();
  std::vector<double> h(n * m, 0.0);
  if (n == 0 || m == 0) return h;
  for (std::size_t d = 0; d + 1 <= n + m - 1; ++d) {
    const std::size_t i_lo = d >= m ? d - m + 1 : 0;
    const std::size_t i_hi = std::min(d, n - 1);
    sched::parallel_for(ctx, i_lo, i_hi + 1, grain, [&](std::size_t i) {
      ctx.work(4);  // compare + 3 adds + 4-way max, as in editdist_spec
      const std::size_t j = d - i;
      sched::reader(ctx, r.data(), i);
      sched::reader(ctx, q.data(), j);
      double diag = 0.0;
      double up = 0.0;
      double left = 0.0;
      if (i > 0 && j > 0) {
        sched::reader(ctx, h.data(), (i - 1) * m + (j - 1));
        diag = h[(i - 1) * m + (j - 1)];
      }
      if (i > 0) {
        sched::reader(ctx, h.data(), (i - 1) * m + j);
        up = h[(i - 1) * m + j];
      }
      if (j > 0) {
        sched::reader(ctx, h.data(), i * m + (j - 1));
        left = h[i * m + (j - 1)];
      }
      const double sub = r[i] == q[j] ? s.match : s.mismatch;
      sched::writer(ctx, h.data(), i * m + j);
      h[i * m + j] = std::max({0.0, diag + sub, up - s.gap, left - s.gap});
    });
  }
  return h;
}

}  // namespace harmony::algos
