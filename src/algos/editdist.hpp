// The paper's worked example (Dally, §3): a dynamic-programming string
// alignment recurrence mapped onto a processor array as marching
// anti-diagonals.
//
//   Forall i, j in (0:N-1, 0:N-1)
//     H(i,j) = min(H(i-1,j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0)
//
// The "min ... 0" floor makes this the Smith-Waterman local-alignment
// family; we implement the standard max formulation (scores negated):
//
//   H(i,j) = max(0, H(i-1,j-1) + s(R[i],Q[j]),
//                   H(i-1,j) - gap, H(i,j-1) - gap)
//
// with H(-1, .) = H(., -1) = 0.  Three expressions:
//   * serial CPU reference (validation + the RAM baseline),
//   * anti-diagonal serial traversal (same work, wavefront order),
//   * an F&M FunctionSpec + the corrected wavefront mapping of
//     fm/mapping.hpp, executed on the grid machine (E2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fm/spec.hpp"

namespace harmony::algos {

struct SwScores {
  double match = 2.0;
  double mismatch = -1.0;
  double gap = 1.0;  ///< subtracted for insertions/deletions
};

/// Serial row-major Smith-Waterman.  Returns the full n x m H matrix
/// (row-major) for validation; `best` receives the maximum cell.
[[nodiscard]] std::vector<double> smith_waterman_serial(
    const std::string& r, const std::string& q, const SwScores& s,
    double* best = nullptr);

/// Same recurrence traversed by anti-diagonals (wavefront order); must
/// produce the identical matrix — the order-independence property the
/// F&M "function" abstraction asserts.
[[nodiscard]] std::vector<double> smith_waterman_antidiagonal(
    const std::string& r, const std::string& q, const SwScores& s);

/// F&M function spec for the recurrence.  Tensors: input R (|r|), input
/// Q (|q|), computed H (|r| x |q|, marked output).  Returns the spec;
/// `r_id`/`q_id`/`h_id` receive the tensor ids.
[[nodiscard]] fm::FunctionSpec editdist_spec(std::int64_t n_rows,
                                             std::int64_t n_cols,
                                             const SwScores& s,
                                             fm::TensorId* r_id = nullptr,
                                             fm::TensorId* q_id = nullptr,
                                             fm::TensorId* h_id = nullptr);

/// Encodes a string as the double-valued input tensor the spec expects.
[[nodiscard]] std::vector<double> encode_string(const std::string& s);

}  // namespace harmony::algos
