#include "algos/fft.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace harmony::algos {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

bool is_pow2(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

int log2_exact(std::int64_t n) {
  int b = 0;
  while ((std::int64_t{1} << b) < n) ++b;
  return b;
}

void bit_reverse_permute(std::vector<Complex>& x) {
  const auto n = static_cast<std::int64_t>(x.size());
  const int bits = log2_exact(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t j = bit_reverse(i, bits);
    if (i < j) std::swap(x[static_cast<std::size_t>(i)],
                         x[static_cast<std::size_t>(j)]);
  }
}

}  // namespace

std::int64_t bit_reverse(std::int64_t i, int bits) {
  std::int64_t r = 0;
  for (int b = 0; b < bits; ++b) {
    r = (r << 1) | ((i >> b) & 1);
  }
  return r;
}

std::vector<Complex> dft_naive(const std::vector<Complex>& x) {
  const auto n = static_cast<std::int64_t>(x.size());
  std::vector<Complex> out(x.size());
  for (std::int64_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::int64_t t = 0; t < n; ++t) {
      const double ang = -kTau * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[static_cast<std::size_t>(t)] *
             Complex{std::cos(ang), std::sin(ang)};
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  return out;
}

void fft_dit_radix2(std::vector<Complex>& x) {
  const auto n = static_cast<std::int64_t>(x.size());
  HARMONY_REQUIRE(is_pow2(n), "fft_dit_radix2: n must be a power of two");
  bit_reverse_permute(x);
  for (std::int64_t m = 2; m <= n; m *= 2) {
    const double ang0 = -kTau / static_cast<double>(m);
    for (std::int64_t base = 0; base < n; base += m) {
      for (std::int64_t k = 0; k < m / 2; ++k) {
        const Complex w{std::cos(ang0 * static_cast<double>(k)),
                        std::sin(ang0 * static_cast<double>(k))};
        auto& a = x[static_cast<std::size_t>(base + k)];
        auto& b = x[static_cast<std::size_t>(base + k + m / 2)];
        const Complex t = w * b;
        b = a - t;
        a = a + t;
      }
    }
  }
}

void fft_dif_radix2(std::vector<Complex>& x) {
  const auto n = static_cast<std::int64_t>(x.size());
  HARMONY_REQUIRE(is_pow2(n), "fft_dif_radix2: n must be a power of two");
  for (std::int64_t m = n; m >= 2; m /= 2) {
    const double ang0 = -kTau / static_cast<double>(m);
    for (std::int64_t base = 0; base < n; base += m) {
      for (std::int64_t k = 0; k < m / 2; ++k) {
        const Complex w{std::cos(ang0 * static_cast<double>(k)),
                        std::sin(ang0 * static_cast<double>(k))};
        auto& a = x[static_cast<std::size_t>(base + k)];
        auto& b = x[static_cast<std::size_t>(base + k + m / 2)];
        const Complex t = a - b;
        a = a + b;
        b = t * w;
      }
    }
  }
  bit_reverse_permute(x);
}

namespace {
void fft4_rec(std::vector<Complex>& x, std::int64_t n, std::int64_t base,
              std::int64_t stride, std::vector<Complex>& scratch) {
  if (n == 1) return;
  if (n == 2) {
    const Complex a = x[static_cast<std::size_t>(base)];
    const Complex b = x[static_cast<std::size_t>(base + stride)];
    x[static_cast<std::size_t>(base)] = a + b;
    x[static_cast<std::size_t>(base + stride)] = a - b;
    return;
  }
  const std::int64_t q = n / 4;
  // Recurse on the four interleaved quarters.
  for (int s = 0; s < 4; ++s) {
    fft4_rec(x, q, base + s * stride, 4 * stride, scratch);
  }
  const Complex jneg{0.0, -1.0};
  for (std::int64_t k = 0; k < q; ++k) {
    auto tw = [&](int s) {
      const double ang = -kTau * static_cast<double>(s * k) /
                         static_cast<double>(n);
      return Complex{std::cos(ang), std::sin(ang)};
    };
    const Complex a0 = x[static_cast<std::size_t>(base + 4 * k * stride)];
    const Complex a1 =
        tw(1) * x[static_cast<std::size_t>(base + (4 * k + 1) * stride)];
    const Complex a2 =
        tw(2) * x[static_cast<std::size_t>(base + (4 * k + 2) * stride)];
    const Complex a3 =
        tw(3) * x[static_cast<std::size_t>(base + (4 * k + 3) * stride)];
    const Complex t0 = a0 + a2;
    const Complex t1 = a0 - a2;
    const Complex t2 = a1 + a3;
    const Complex t3 = jneg * (a1 - a3);
    scratch[static_cast<std::size_t>(k)] = t0 + t2;
    scratch[static_cast<std::size_t>(k + q)] = t1 + t3;
    scratch[static_cast<std::size_t>(k + 2 * q)] = t0 - t2;
    scratch[static_cast<std::size_t>(k + 3 * q)] = t1 - t3;
  }
  for (std::int64_t k = 0; k < n; ++k) {
    x[static_cast<std::size_t>(base + k * stride)] =
        scratch[static_cast<std::size_t>(k)];
  }
}
}  // namespace

void fft_dit_radix4(std::vector<Complex>& x) {
  const auto n = static_cast<std::int64_t>(x.size());
  HARMONY_REQUIRE(n > 0 && (n & (n - 1)) == 0 &&
                      (log2_exact(n) % 2 == 0 || n == 2),
                  "fft_dit_radix4: n must be a power of four (or 2)");
  std::vector<Complex> scratch(x.size());
  fft4_rec(x, n, 0, 1, scratch);
}

FftFlops fft_flops_radix2(std::int64_t n) {
  HARMONY_REQUIRE(is_pow2(n), "fft_flops_radix2: n must be 2^k");
  const double stages = log2_exact(n);
  const double butterflies = static_cast<double>(n) / 2.0 * stages;
  // One complex mult (4 mults + 2 adds) + two complex adds (4 adds).
  return FftFlops{.mults = 4.0 * butterflies, .adds = 6.0 * butterflies};
}

FftFlops fft_flops_radix4(std::int64_t n) {
  HARMONY_REQUIRE(is_pow2(n), "fft_flops_radix4: n must be 4^k");
  const double stages = log2_exact(n) / 2.0;
  const double dragonflies = static_cast<double>(n) / 4.0 * stages;
  // 3 complex mults (12 mults + 6 adds) + 8 complex adds (16 adds).
  return FftFlops{.mults = 12.0 * dragonflies,
                  .adds = 22.0 * dragonflies};
}

fm::FunctionSpec fft_spec(std::int64_t n, bool dif, FftSpecIds* ids) {
  HARMONY_REQUIRE(is_pow2(n) && n >= 2, "fft_spec: n must be 2^k >= 2");
  const int stages = log2_exact(n);

  fm::FunctionSpec spec;
  const fm::TensorId xr = spec.add_input("xr", fm::IndexDomain(n), 32);
  const fm::TensorId xi = spec.add_input("xi", fm::IndexDomain(n), 32);
  // Computed tensors are added in order: Xr == xi+1, Xi == xi+2.
  const fm::TensorId Xr = xi + 1;
  const fm::TensorId Xi = xi + 2;

  // Butterfly geometry for row s (1-based; row 0 is the load stage):
  //   DIT: span = 2^(s-1)   (doubles);  DIF: span = n >> s  (halves).
  auto partner_span = [n, dif](std::int64_t s) {
    return dif ? (n >> s) : (std::int64_t{1} << (s - 1));
  };

  // Dependences (same for Xr and Xi): row 0 reads the input element
  // (bit-reversed for DIT, natural for DIF); row s reads both complex
  // operands (4 refs: Xr/Xi at i and at partner).
  auto deps_for = [=](const fm::Point& p) {
    std::vector<fm::ValueRef> deps;
    if (p.i == 0) {
      const std::int64_t src =
          dif ? p.j : bit_reverse(p.j, stages);
      deps.push_back({xr, fm::Point{src}});
      deps.push_back({xi, fm::Point{src}});
      return deps;
    }
    const std::int64_t h = partner_span(p.i);
    const std::int64_t self = p.j;
    const std::int64_t mate = p.j ^ h;
    const std::int64_t lo = std::min(self, mate);
    const std::int64_t hi2 = std::max(self, mate);
    deps.push_back({Xr, fm::Point{p.i - 1, lo}});
    deps.push_back({Xi, fm::Point{p.i - 1, lo}});
    deps.push_back({Xr, fm::Point{p.i - 1, hi2}});
    deps.push_back({Xi, fm::Point{p.i - 1, hi2}});
    return deps;
  };

  // Butterfly value:
  //   DIT row s: lo' = lo + w*hi ; hi' = lo - w*hi,
  //              w = exp(-i*tau*k/2^s), k = j & (2^(s-1)-1).
  //   DIF row s: lo' = lo + hi   ; hi' = (lo - hi)*w,
  //              w = exp(-i*tau*k/(2h)), k = j mod h, h = n >> s.
  auto butterfly = [=](const fm::Point& p, const std::vector<double>& v,
                       bool want_real) -> double {
    const double lor = v[0];
    const double loi = v[1];
    const double hir = v[2];
    const double hii = v[3];
    const std::int64_t h = partner_span(p.i);
    const bool is_hi = (p.j & h) != 0;
    const std::int64_t k = p.j & (h - 1);
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(2 * h);
    const double wr = std::cos(ang);
    const double wi = std::sin(ang);
    double rr;
    double ri;
    if (!dif) {
      // DIT: twiddle the hi operand first.
      const double tr = wr * hir - wi * hii;
      const double ti = wr * hii + wi * hir;
      rr = is_hi ? lor - tr : lor + tr;
      ri = is_hi ? loi - ti : loi + ti;
    } else {
      if (!is_hi) {
        rr = lor + hir;
        ri = loi + hii;
      } else {
        const double tr = lor - hir;
        const double ti = loi - hii;
        rr = wr * tr - wi * ti;
        ri = wr * ti + wi * tr;
      }
    }
    return want_real ? rr : ri;
  };

  const fm::IndexDomain dom(stages + 1, n);
  const fm::TensorId got_Xr = spec.add_computed(
      "Xr", dom, deps_for,
      [butterfly](const fm::Point& p, const std::vector<double>& v) {
        if (p.i == 0) return v[0];
        return butterfly(p, v, /*want_real=*/true);
      },
      fm::OpCost{.ops = 5.0, .bits = 32});
  const fm::TensorId got_Xi = spec.add_computed(
      "Xi", dom, deps_for,
      [butterfly](const fm::Point& p, const std::vector<double>& v) {
        if (p.i == 0) return v[1];
        return butterfly(p, v, /*want_real=*/false);
      },
      fm::OpCost{.ops = 5.0, .bits = 32});
  HARMONY_ASSERT(got_Xr == Xr && got_Xi == Xi);
  spec.mark_output(Xr);
  spec.mark_output(Xi);
  if (ids != nullptr) *ids = FftSpecIds{xr, xi, Xr, Xi};
  return spec;
}

}  // namespace harmony::algos
