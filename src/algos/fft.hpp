// FFT variants (Dally, §3: "decimation in time vs decimation in space
// FFT, or different radix FFT" as the canonical example of one problem
// with several functions, each with many mappings).
//
// Provided here:
//   * executable complex FFTs — iterative radix-2 DIT and DIF, recursive
//     radix-4 DIT, and the naive O(n^2) DFT as ground truth;
//   * analytic flop counts (the RAM/unit-cost ranking of E3);
//   * F&M function specs for the DIT and DIF dataflows, value-exact
//     (split into real/imaginary tensors), whose butterfly spans differ —
//     DIT's communication distance doubles per stage, DIF's halves —
//     so the same O(n log n) functions price differently under the
//     communication-aware model (the paper's "the one that is 50,000x
//     more efficient is preferred").
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "fm/spec.hpp"

namespace harmony::algos {

using Complex = std::complex<double>;

/// Ground truth: naive O(n^2) DFT.
[[nodiscard]] std::vector<Complex> dft_naive(const std::vector<Complex>& x);

/// Iterative radix-2 decimation-in-time FFT (in place, n = 2^k).
void fft_dit_radix2(std::vector<Complex>& x);
/// Iterative radix-2 decimation-in-frequency FFT (in place, n = 2^k).
void fft_dif_radix2(std::vector<Complex>& x);
/// Recursive radix-4 decimation-in-time FFT (n = 4^k).
void fft_dit_radix4(std::vector<Complex>& x);

/// Analytic real-flop counts (mults + adds) for the three variants.
struct FftFlops {
  double mults = 0.0;
  double adds = 0.0;
  [[nodiscard]] double total() const { return mults + adds; }
};
[[nodiscard]] FftFlops fft_flops_radix2(std::int64_t n);
[[nodiscard]] FftFlops fft_flops_radix4(std::int64_t n);

/// F&M spec of the radix-2 FFT dataflow.  `dif` selects decimation in
/// frequency (butterfly span n/2 -> 1) versus time (span 1 -> n/2).
/// Tensors: inputs xr, xi (n); computed Xr, Xi over (log2 n + 1, n),
/// both marked output — row log2(n) is the transform (DIT: natural
/// order; DIF: bit-reversed order).
struct FftSpecIds {
  fm::TensorId xr = -1, xi = -1, Xr = -1, Xi = -1;
};
[[nodiscard]] fm::FunctionSpec fft_spec(std::int64_t n, bool dif,
                                        FftSpecIds* ids = nullptr);

/// Bit reversal of `i` within `bits` bits.
[[nodiscard]] std::int64_t bit_reverse(std::int64_t i, int bits);

}  // namespace harmony::algos
