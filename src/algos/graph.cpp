#include "algos/graph.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace harmony::algos {

CsrGraph random_graph(std::int64_t n, std::int64_t m, std::uint64_t seed) {
  HARMONY_REQUIRE(n >= 2, "random_graph: need >= 2 vertices");
  Rng rng(seed);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(2 * m));
  for (std::int64_t e = 0; e < m; ++e) {
    const auto u = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n - 1)));
    if (v >= u) ++v;
    edges.emplace_back(u, v);
    edges.emplace_back(v, u);  // symmetric
  }
  CsrGraph g;
  g.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    (void)v;
    ++g.offsets[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < g.offsets.size(); ++i) {
    g.offsets[i] += g.offsets[i - 1];
  }
  g.targets.resize(edges.size());
  std::vector<std::int64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    g.targets[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)]
        = v;
  }
  return g;
}

CsrGraph grid_graph(std::int64_t rows, std::int64_t cols) {
  HARMONY_REQUIRE(rows >= 1 && cols >= 1, "grid_graph: empty grid");
  const std::int64_t n = rows * cols;
  CsrGraph g;
  g.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  auto id = [cols](std::int64_t r, std::int64_t c) { return r * cols + c; };
  // Count then fill.
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      std::int64_t deg = 0;
      if (r > 0) ++deg;
      if (r + 1 < rows) ++deg;
      if (c > 0) ++deg;
      if (c + 1 < cols) ++deg;
      g.offsets[static_cast<std::size_t>(id(r, c)) + 1] = deg;
    }
  }
  for (std::size_t i = 1; i < g.offsets.size(); ++i) {
    g.offsets[i] += g.offsets[i - 1];
  }
  g.targets.resize(static_cast<std::size_t>(g.offsets.back()));
  std::vector<std::int64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int64_t v = id(r, c);
      auto push = [&](std::int64_t w) {
        g.targets[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(v)]++)] = w;
      };
      if (r > 0) push(id(r - 1, c));
      if (r + 1 < rows) push(id(r + 1, c));
      if (c > 0) push(id(r, c - 1));
      if (c + 1 < cols) push(id(r, c + 1));
    }
  }
  return g;
}

SerialBfsResult bfs_serial(const CsrGraph& g, std::int64_t source) {
  const std::int64_t n = g.num_vertices();
  HARMONY_REQUIRE(source >= 0 && source < n, "bfs_serial: bad source");
  SerialBfsResult res;
  res.dist.assign(static_cast<std::size_t>(n), -1);
  std::queue<std::int64_t> q;
  res.dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const std::int64_t v = q.front();
    q.pop();
    ++res.work;
    for (std::int64_t e = g.offsets[static_cast<std::size_t>(v)];
         e < g.offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      ++res.work;
      const std::int64_t w = g.targets[static_cast<std::size_t>(e)];
      if (res.dist[static_cast<std::size_t>(w)] < 0) {
        res.dist[static_cast<std::size_t>(w)] =
            res.dist[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return res;
}

PramBfsResult bfs_pram(const CsrGraph& g, std::int64_t source,
                       std::size_t num_procs) {
  const std::int64_t n = g.num_vertices();
  HARMONY_REQUIRE(source >= 0 && source < n, "bfs_pram: bad source");
  // Memory map: [0, n) dist; n = level; n+1 = changed; n+2 = done.
  const auto level_addr = static_cast<std::size_t>(n);
  const auto changed_addr = static_cast<std::size_t>(n) + 1;
  const auto done_addr = static_cast<std::size_t>(n) + 2;
  pram::PramMachine machine(pram::Variant::kCrcwCommon, num_procs,
                            static_cast<std::size_t>(n) + 3);
  for (std::int64_t v = 0; v < n; ++v) {
    machine.mem(static_cast<std::size_t>(v)) = -1;
  }
  machine.mem(static_cast<std::size_t>(source)) = 0;

  const auto p = num_procs;
  auto program = [&, n](pram::PramMachine::Ctx& ctx) {
    const bool relax_phase = ctx.step() % 2 == 0;
    if (relax_phase) {
      if (ctx.read(done_addr) == 1) {
        ctx.halt();
        return;
      }
      const std::int64_t level = ctx.read(level_addr);
      for (std::int64_t v = static_cast<std::int64_t>(ctx.proc()); v < n;
           v += static_cast<std::int64_t>(p)) {
        if (ctx.read(static_cast<std::size_t>(v)) != level) continue;
        for (std::int64_t e = g.offsets[static_cast<std::size_t>(v)];
             e < g.offsets[static_cast<std::size_t>(v) + 1]; ++e) {
          const std::int64_t w = g.targets[static_cast<std::size_t>(e)];
          if (ctx.read(static_cast<std::size_t>(w)) == -1) {
            // CRCW-common: every writer writes the same level value.
            ctx.write(static_cast<std::size_t>(w), level + 1);
            ctx.write(changed_addr, 1);
          }
        }
      }
    } else {
      if (ctx.proc() == 0) {
        if (ctx.read(changed_addr) == 0) {
          ctx.write(done_addr, 1);
        } else {
          ctx.write(level_addr, ctx.read(level_addr) + 1);
          ctx.write(changed_addr, 0);
        }
      }
    }
  };

  PramBfsResult res;
  res.stats = machine.run(program,
                          /*max_steps=*/4 * n + 16);
  res.dist.resize(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    res.dist[static_cast<std::size_t>(v)] =
        machine.mem(static_cast<std::size_t>(v));
  }
  res.levels = machine.mem(level_addr) + 1;
  return res;
}

XmtBfsResult bfs_xmt(const CsrGraph& g, std::int64_t source,
                     pram::XmtConfig cfg) {
  const std::int64_t n = g.num_vertices();
  HARMONY_REQUIRE(source >= 0 && source < n, "bfs_xmt: bad source");
  // Memory map: [0,n) dist; [n,2n) claim gates; [2n,3n) frontier A;
  // [3n,4n) frontier B; 4n = next frontier size.
  const auto un = static_cast<std::size_t>(n);
  pram::XmtMachine machine(4 * un + 1, cfg);
  for (std::size_t v = 0; v < un; ++v) machine.mem(v) = -1;
  machine.mem(static_cast<std::size_t>(source)) = 0;
  machine.mem(un + static_cast<std::size_t>(source)) = 1;  // claimed
  machine.mem(2 * un) = source;

  XmtBfsResult res;
  std::int64_t level = 0;
  std::int64_t frontier_size = 1;
  bool cur_is_a = true;
  while (frontier_size > 0) {
    const std::size_t cur_base = cur_is_a ? 2 * un : 3 * un;
    const std::size_t nxt_base = cur_is_a ? 3 * un : 2 * un;
    machine.mem(4 * un) = 0;  // next frontier size counter
    const std::int64_t lvl = level;
    const pram::XmtStats st = machine.spawn(
        frontier_size, [&, lvl](pram::XmtMachine::Thread& t) {
          const std::int64_t v =
              t.read(cur_base + static_cast<std::size_t>(t.id()));
          for (std::int64_t e = g.offsets[static_cast<std::size_t>(v)];
               e < g.offsets[static_cast<std::size_t>(v) + 1]; ++e) {
            t.charge(2);  // edge fetch + bounds
            const std::int64_t w = g.targets[static_cast<std::size_t>(e)];
            const std::int64_t old =
                t.ps(un + static_cast<std::size_t>(w), 1);
            if (old == 0) {
              t.write(static_cast<std::size_t>(w), lvl + 1);
              const std::int64_t slot = t.ps(4 * un, 1);
              t.write(nxt_base + static_cast<std::size_t>(slot), w);
            }
          }
        });
    res.stats += st;
    frontier_size = machine.mem(4 * un);
    cur_is_a = !cur_is_a;
    ++level;
  }
  res.levels = level;
  res.dist.resize(un);
  for (std::size_t v = 0; v < un; ++v) res.dist[v] = machine.mem(v);
  return res;
}

}  // namespace harmony::algos
