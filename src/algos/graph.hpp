// Graphs and breadth-first search (Vishkin, §5).
//
// "breadth-first search on graphs had been tied to a first-in first-out
//  queue for no good reason other than enforcing serialization, even
//  where parallelism exists."
//
// Three BFS expressions over one CSR graph:
//   * serial queue BFS — the textbook FIFO algorithm (work O(n+m),
//     depth O(n+m));
//   * PRAM level-synchronous BFS on the CRCW-common PramMachine — each
//     processor owns n/P vertices and relaxes the frontier by levels
//     (depth O(diameter * per-level rounds), but work O(n * levels + m):
//     *not* work-efficient, which is exactly the gap Vishkin's
//     prefix-sum machinery closes);
//   * XMT frontier BFS — spawn one virtual thread per frontier edge
//     endpoint, claim vertices and allocate next-frontier slots with the
//     ps() primitive (work O(n+m), the work-efficient version).
#pragma once

#include <cstdint>
#include <vector>

#include "pram/pram.hpp"
#include "pram/xmt.hpp"
#include "support/rng.hpp"

namespace harmony::algos {

/// Compressed-sparse-row directed graph.
struct CsrGraph {
  std::vector<std::int64_t> offsets;  ///< size n+1
  std::vector<std::int64_t> targets;  ///< size m

  [[nodiscard]] std::int64_t num_vertices() const {
    return static_cast<std::int64_t>(offsets.size()) - 1;
  }
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(targets.size());
  }
  [[nodiscard]] std::int64_t degree(std::int64_t v) const {
    return offsets[static_cast<std::size_t>(v + 1)] -
           offsets[static_cast<std::size_t>(v)];
  }
};

/// Erdos-Renyi-style random graph with n vertices and ~m directed edges
/// (made symmetric), deterministic in `seed`.
[[nodiscard]] CsrGraph random_graph(std::int64_t n, std::int64_t m,
                                    std::uint64_t seed);

/// 2-D grid graph (4-neighbour), rows x cols vertices — high diameter,
/// the adversarial case for level-synchronous BFS.
[[nodiscard]] CsrGraph grid_graph(std::int64_t rows, std::int64_t cols);

/// Serial FIFO BFS; dist[v] = hops from source, -1 if unreachable.
struct SerialBfsResult {
  std::vector<std::int64_t> dist;
  std::int64_t work = 0;  ///< vertices + edges touched
};
[[nodiscard]] SerialBfsResult bfs_serial(const CsrGraph& g,
                                         std::int64_t source);

/// Level-synchronous BFS on the PRAM simulator (CRCW-common: all writers
/// of a level value agree).  Returns distances plus the machine stats.
struct PramBfsResult {
  std::vector<std::int64_t> dist;
  pram::PramStats stats;
  std::int64_t levels = 0;
};
[[nodiscard]] PramBfsResult bfs_pram(const CsrGraph& g, std::int64_t source,
                                     std::size_t num_procs);

/// Work-efficient frontier BFS on the XMT machine using ps() for vertex
/// claiming and next-frontier allocation.
struct XmtBfsResult {
  std::vector<std::int64_t> dist;
  pram::XmtStats stats;  ///< accumulated over all spawn blocks
  std::int64_t levels = 0;
};
[[nodiscard]] XmtBfsResult bfs_xmt(const CsrGraph& g, std::int64_t source,
                                   pram::XmtConfig cfg = {});

}  // namespace harmony::algos
