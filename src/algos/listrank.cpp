#include "algos/listrank.hpp"

#include "support/error.hpp"

namespace harmony::algos {

LinkedList random_list(std::int64_t n, std::uint64_t seed) {
  HARMONY_REQUIRE(n >= 1, "random_list: need >= 1 node");
  Rng rng(seed);
  const std::vector<std::uint32_t> perm =
      rng.permutation(static_cast<std::uint32_t>(n));
  // perm is the visit order: perm[0] is the head, perm[n-1] terminal.
  LinkedList list;
  list.next.assign(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    list.next[perm[static_cast<std::size_t>(i)]] =
        perm[static_cast<std::size_t>(i) + 1];
  }
  const std::int64_t tail = perm[static_cast<std::size_t>(n) - 1];
  list.next[static_cast<std::size_t>(tail)] = tail;
  list.head = perm[0];
  return list;
}

std::vector<std::int64_t> list_rank_serial(const LinkedList& list) {
  const auto n = static_cast<std::int64_t>(list.next.size());
  std::vector<std::int64_t> rank(static_cast<std::size_t>(n), 0);
  // Walk from the head once to find the order, then assign n-1-position.
  std::int64_t v = list.head;
  std::int64_t pos = 0;
  std::vector<std::int64_t> order;
  order.reserve(static_cast<std::size_t>(n));
  while (true) {
    order.push_back(v);
    const std::int64_t nx = list.next[static_cast<std::size_t>(v)];
    if (nx == v) break;
    v = nx;
    ++pos;
  }
  HARMONY_REQUIRE(static_cast<std::int64_t>(order.size()) == n,
                  "list_rank_serial: list does not cover all nodes");
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<std::size_t>(order[i])] =
        static_cast<std::int64_t>(order.size() - 1 - i);
  }
  return rank;
}

PramListRankResult list_rank_pram(const LinkedList& list,
                                  std::size_t num_procs) {
  const auto n = static_cast<std::int64_t>(list.next.size());
  // Memory map: [0,n) next; [n,2n) rank.
  const auto un = static_cast<std::size_t>(n);
  pram::PramMachine machine(pram::Variant::kCrew, num_procs, 2 * un);
  for (std::size_t v = 0; v < un; ++v) {
    machine.mem(v) = list.next[v];
    machine.mem(un + v) = list.next[v] == static_cast<std::int64_t>(v)
                              ? 0
                              : 1;
  }
  std::int64_t rounds = 0;
  {
    std::int64_t span = 1;
    while (span < n) {
      span *= 2;
      ++rounds;
    }
  }

  auto program = [&, n, rounds](pram::PramMachine::Ctx& ctx) {
    if (ctx.step() >= rounds) {
      ctx.halt();
      return;
    }
    for (std::int64_t v = static_cast<std::int64_t>(ctx.proc()); v < n;
         v += static_cast<std::int64_t>(machine.num_procs())) {
      const auto uv = static_cast<std::size_t>(v);
      const auto nx = static_cast<std::size_t>(ctx.read(uv));
      if (nx == uv) continue;
      const std::int64_t r_v = ctx.read(un + uv);
      const std::int64_t r_n = ctx.read(un + nx);
      const std::int64_t n_n = ctx.read(nx);
      ctx.write(un + uv, r_v + r_n);
      ctx.write(uv, n_n);
    }
  };
  PramListRankResult res;
  res.stats = machine.run(program, rounds + 2);
  res.rounds = rounds;
  res.rank.resize(un);
  for (std::size_t v = 0; v < un; ++v) res.rank[v] = machine.mem(un + v);
  return res;
}

}  // namespace harmony::algos
