// List ranking by pointer jumping (Wyllie) — the canonical "alien
// culture" PRAM algorithm Vishkin's statement alludes to: a computation a
// serial programmer would never discover from the linked-list traversal.
//
//   * serial traversal — work O(n), depth O(n);
//   * PRAM pointer jumping on the CREW machine — depth O(log n) rounds,
//     work O(n log n) (Wyllie's algorithm is not work-efficient; the
//     gap is part of the E7/E13 narrative).
//
// rank[v] = number of links from v to the terminal node.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/pram.hpp"
#include "support/rng.hpp"

namespace harmony::algos {

/// A linked list over 0..n-1: next[v] is v's successor; the terminal
/// node points to itself.
struct LinkedList {
  std::vector<std::int64_t> next;
  std::int64_t head = 0;
};

/// Random list: a deterministic permutation of n nodes.
[[nodiscard]] LinkedList random_list(std::int64_t n, std::uint64_t seed);

/// Serial ranking by traversal.
[[nodiscard]] std::vector<std::int64_t> list_rank_serial(
    const LinkedList& list);

struct PramListRankResult {
  std::vector<std::int64_t> rank;
  pram::PramStats stats;
  std::int64_t rounds = 0;
};

/// Wyllie's pointer jumping on the CREW PRAM simulator.
[[nodiscard]] PramListRankResult list_rank_pram(const LinkedList& list,
                                                std::size_t num_procs);

}  // namespace harmony::algos
