#include "algos/matmul.hpp"

#include <algorithm>
#include <cmath>

namespace harmony::algos {

std::vector<double> matmul_serial(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  std::size_t n) {
  HARMONY_REQUIRE(a.size() == n * n && b.size() == n * n,
                  "matmul_serial: size mismatch");
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += aik * b[k * n + j];
      }
    }
  }
  return c;
}

fm::FunctionSpec matmul_spec(std::int64_t n, MatmulSpecIds* ids) {
  HARMONY_REQUIRE(n >= 1, "matmul_spec: n must be positive");
  fm::FunctionSpec spec;
  const fm::TensorId a = spec.add_input("A", fm::IndexDomain(n, n), 32);
  const fm::TensorId b = spec.add_input("B", fm::IndexDomain(n, n), 32);
  const fm::TensorId c = spec.add_computed(
      "C", fm::IndexDomain(n, n, n),
      [a, b](const fm::Point& p) {
        std::vector<fm::ValueRef> deps;
        deps.push_back({a, fm::Point{p.i, p.k}});
        deps.push_back({b, fm::Point{p.k, p.j}});
        if (p.k > 0) {
          const fm::TensorId self = b + 1;  // C follows B
          deps.push_back({self, fm::Point{p.i, p.j, p.k - 1}});
        }
        return deps;
      },
      [](const fm::Point& p, const std::vector<double>& v) {
        const double prod = v[0] * v[1];
        return p.k > 0 ? v[2] + prod : prod;
      },
      fm::OpCost{.ops = 2.0, .bits = 32});
  spec.mark_output(c);
  if (ids != nullptr) *ids = MatmulSpecIds{a, b, c};
  return spec;
}

namespace {

/// Copies block (bi, bj) (of side bs) out of an n x n row-major matrix.
std::vector<double> slice(const std::vector<double>& m, std::size_t n,
                          std::size_t bi, std::size_t bj, std::size_t bs) {
  std::vector<double> out(bs * bs);
  for (std::size_t r = 0; r < bs; ++r) {
    for (std::size_t c = 0; c < bs; ++c) {
      out[r * bs + c] = m[(bi * bs + r) * n + (bj * bs + c)];
    }
  }
  return out;
}

/// dst(bs x bs) += a(bs x bs) * b(bs x bs).
void gemm_acc(const std::vector<double>& a, const std::vector<double>& b,
              std::vector<double>& dst, std::size_t bs) {
  for (std::size_t i = 0; i < bs; ++i) {
    for (std::size_t k = 0; k < bs; ++k) {
      const double aik = a[i * bs + k];
      for (std::size_t j = 0; j < bs; ++j) {
        dst[i * bs + j] += aik * b[k * bs + j];
      }
    }
  }
}

}  // namespace

BspMatmulResult bsp_matmul_naive(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 std::size_t n, int procs,
                                 comm::AlphaBeta model) {
  HARMONY_REQUIRE(procs >= 1 && n % static_cast<std::size_t>(procs) == 0,
                  "bsp_matmul_naive: procs must divide n");
  const auto p = static_cast<std::size_t>(procs);
  const std::size_t rows = n / p;

  comm::BspMachine machine(procs, model);
  // Local state: owned row panels.
  std::vector<std::vector<double>> local_c(
      p, std::vector<double>(rows * n, 0.0));
  std::vector<std::vector<double>> got_b(p);

  // Superstep 1: every owner of a B row-panel sends it to everyone.
  machine.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    std::vector<double> panel(b.begin() +
                                  static_cast<std::ptrdiff_t>(r * rows * n),
                              b.begin() + static_cast<std::ptrdiff_t>(
                                              (r + 1) * rows * n));
    for (int dst = 0; dst < procs; ++dst) {
      if (dst != proc.rank()) proc.send(dst, panel, /*tag=*/proc.rank());
    }
  });

  // Superstep 2: assemble B locally and run the owned-rows GEMM.
  machine.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    std::vector<double> full_b(n * n, 0.0);
    // Own panel.
    std::copy(b.begin() + static_cast<std::ptrdiff_t>(r * rows * n),
              b.begin() + static_cast<std::ptrdiff_t>((r + 1) * rows * n),
              full_b.begin() + static_cast<std::ptrdiff_t>(r * rows * n));
    for (const comm::Message& msg : proc.inbox()) {
      const auto src = static_cast<std::size_t>(msg.tag);
      std::copy(msg.payload.begin(), msg.payload.end(),
                full_b.begin() +
                    static_cast<std::ptrdiff_t>(src * rows * n));
    }
    auto& c = local_c[r];
    for (std::size_t i = 0; i < rows; ++i) {
      const std::size_t gi = r * rows + i;
      for (std::size_t k = 0; k < n; ++k) {
        const double aik = a[gi * n + k];
        for (std::size_t j = 0; j < n; ++j) {
          c[i * n + j] += aik * full_b[k * n + j];
        }
      }
    }
    proc.charge_flops(2.0 * static_cast<double>(rows) *
                      static_cast<double>(n) * static_cast<double>(n));
    (void)got_b;
  });

  BspMatmulResult res;
  res.c.assign(n * n, 0.0);
  for (std::size_t r = 0; r < p; ++r) {
    std::copy(local_c[r].begin(), local_c[r].end(),
              res.c.begin() + static_cast<std::ptrdiff_t>(r * rows * n));
  }
  res.stats = machine.stats();
  return res;
}

BspMatmulResult bsp_matmul_summa(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 std::size_t n, int procs,
                                 comm::AlphaBeta model) {
  const auto grid = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(procs))));
  HARMONY_REQUIRE(grid * grid == static_cast<std::size_t>(procs),
                  "bsp_matmul_summa: procs must be a square");
  HARMONY_REQUIRE(n % grid == 0, "bsp_matmul_summa: grid must divide n");
  const std::size_t bs = n / grid;

  comm::BspMachine machine(procs, model);
  auto rank_of = [grid](std::size_t i, std::size_t j) {
    return static_cast<int>(i * grid + j);
  };
  std::vector<std::vector<double>> local_c(
      static_cast<std::size_t>(procs), std::vector<double>(bs * bs, 0.0));
  // Per-proc staging of the panels received for the *current* k step.
  std::vector<std::vector<double>> cur_a(static_cast<std::size_t>(procs));
  std::vector<std::vector<double>> cur_b(static_cast<std::size_t>(procs));

  // Step k's broadcasts happen in superstep k; the GEMM for step k runs
  // in superstep k+1 (when the panels have arrived).
  for (std::size_t k = 0; k <= grid; ++k) {
    machine.superstep([&](comm::BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      const std::size_t i = r / grid;
      const std::size_t j = r % grid;

      // Consume panels broadcast in the previous superstep.
      if (k > 0) {
        for (const comm::Message& msg : proc.inbox()) {
          if (msg.tag == 0) {
            cur_a[r] = msg.payload;
          } else {
            cur_b[r] = msg.payload;
          }
        }
        // Owners kept their own panel locally.
        if (j == k - 1) cur_a[r] = slice(a, n, i, k - 1, bs);
        if (i == k - 1) cur_b[r] = slice(b, n, k - 1, j, bs);
        gemm_acc(cur_a[r], cur_b[r], local_c[r], bs);
        proc.charge_flops(2.0 * static_cast<double>(bs) *
                          static_cast<double>(bs) *
                          static_cast<double>(bs));
      }
      // Broadcast panels for step k.
      if (k < grid) {
        if (j == k) {
          const std::vector<double> pa = slice(a, n, i, k, bs);
          for (std::size_t jj = 0; jj < grid; ++jj) {
            if (jj != j) proc.send(rank_of(i, jj), pa, /*tag=*/0);
          }
        }
        if (i == k) {
          const std::vector<double> pb = slice(b, n, k, j, bs);
          for (std::size_t ii = 0; ii < grid; ++ii) {
            if (ii != i) proc.send(rank_of(ii, j), pb, /*tag=*/1);
          }
        }
      }
    });
  }

  BspMatmulResult res;
  res.c.assign(n * n, 0.0);
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = 0; j < grid; ++j) {
      const auto& blk = local_c[static_cast<std::size_t>(rank_of(i, j))];
      for (std::size_t r = 0; r < bs; ++r) {
        for (std::size_t c = 0; c < bs; ++c) {
          res.c[(i * bs + r) * n + (j * bs + c)] = blk[r * bs + c];
        }
      }
    }
  }
  res.stats = machine.stats();
  return res;
}

BspMatmulResult bsp_matmul_25d(const std::vector<double>& a,
                               const std::vector<double>& b, std::size_t n,
                               int procs, int c, comm::AlphaBeta model) {
  HARMONY_REQUIRE(c >= 1, "bsp_matmul_25d: c must be >= 1");
  const auto cz = static_cast<std::size_t>(c);
  HARMONY_REQUIRE(static_cast<std::size_t>(procs) % cz == 0,
                  "bsp_matmul_25d: c must divide procs");
  const std::size_t layer_procs = static_cast<std::size_t>(procs) / cz;
  const auto grid = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(layer_procs))));
  HARMONY_REQUIRE(grid * grid == layer_procs,
                  "bsp_matmul_25d: procs/c must be a square");
  HARMONY_REQUIRE(n % grid == 0, "bsp_matmul_25d: grid must divide n");
  HARMONY_REQUIRE(grid % cz == 0, "bsp_matmul_25d: c must divide sqrt(P/c)");
  const std::size_t bs = n / grid;
  const std::size_t steps_per_layer = grid / cz;

  comm::BspMachine machine(procs, model);
  auto rank_of = [grid](std::size_t l, std::size_t i, std::size_t j) {
    return static_cast<int>((l * grid + i) * grid + j);
  };
  std::vector<std::vector<double>> local_c(
      static_cast<std::size_t>(procs), std::vector<double>(bs * bs, 0.0));
  std::vector<std::vector<double>> cur_a(static_cast<std::size_t>(procs));
  std::vector<std::vector<double>> cur_b(static_cast<std::size_t>(procs));
  // Replicated operand blocks, indexed by rank (filled by replication).
  std::vector<std::vector<double>> repl_a(static_cast<std::size_t>(procs));
  std::vector<std::vector<double>> repl_b(static_cast<std::size_t>(procs));

  // Superstep 0: layer 0 replicates its A and B blocks to layers 1..c-1.
  machine.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    const std::size_t l = r / layer_procs;
    const std::size_t i = (r % layer_procs) / grid;
    const std::size_t j = r % grid;
    if (l != 0) return;
    const std::vector<double> pa = slice(a, n, i, j, bs);
    const std::vector<double> pb = slice(b, n, i, j, bs);
    repl_a[r] = pa;
    repl_b[r] = pb;
    for (std::size_t ll = 1; ll < cz; ++ll) {
      proc.send(rank_of(ll, i, j), pa, /*tag=*/0);
      proc.send(rank_of(ll, i, j), pb, /*tag=*/1);
    }
  });
  machine.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    for (const comm::Message& msg : proc.inbox()) {
      (msg.tag == 0 ? repl_a : repl_b)[r] = msg.payload;
    }
  });

  // SUMMA within each layer over its k-range
  // K_l = [l*steps_per_layer, (l+1)*steps_per_layer).
  for (std::size_t s = 0; s <= steps_per_layer; ++s) {
    machine.superstep([&](comm::BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      const std::size_t l = r / layer_procs;
      const std::size_t i = (r % layer_procs) / grid;
      const std::size_t j = r % grid;
      const std::size_t k_of = [&](std::size_t step) {
        return l * steps_per_layer + step;
      }(s < steps_per_layer ? s : 0);

      if (s > 0) {
        const std::size_t k_prev = l * steps_per_layer + (s - 1);
        for (const comm::Message& msg : proc.inbox()) {
          (msg.tag == 0 ? cur_a : cur_b)[r] = msg.payload;
        }
        if (j == k_prev) cur_a[r] = repl_a[r];
        if (i == k_prev) cur_b[r] = repl_b[r];
        gemm_acc(cur_a[r], cur_b[r], local_c[r], bs);
        proc.charge_flops(2.0 * static_cast<double>(bs) *
                          static_cast<double>(bs) *
                          static_cast<double>(bs));
      }
      if (s < steps_per_layer) {
        if (j == k_of) {
          for (std::size_t jj = 0; jj < grid; ++jj) {
            if (jj != j) proc.send(rank_of(l, i, jj), repl_a[r], 0);
          }
        }
        if (i == k_of) {
          for (std::size_t ii = 0; ii < grid; ++ii) {
            if (ii != i) proc.send(rank_of(l, ii, j), repl_b[r], 1);
          }
        }
      }
    });
  }

  // Reduction: layers 1..c-1 send partial C blocks to layer 0.
  machine.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    const std::size_t l = r / layer_procs;
    const std::size_t i = (r % layer_procs) / grid;
    const std::size_t j = r % grid;
    if (l != 0) proc.send(rank_of(0, i, j), local_c[r], /*tag=*/2);
  });
  machine.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    if (r >= layer_procs) return;
    for (const comm::Message& msg : proc.inbox()) {
      for (std::size_t e = 0; e < msg.payload.size(); ++e) {
        local_c[r][e] += msg.payload[e];
      }
      proc.charge_flops(static_cast<double>(msg.payload.size()));
    }
  });

  BspMatmulResult res;
  res.c.assign(n * n, 0.0);
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = 0; j < grid; ++j) {
      const auto& blk = local_c[static_cast<std::size_t>(rank_of(0, i, j))];
      for (std::size_t rr = 0; rr < bs; ++rr) {
        for (std::size_t cc = 0; cc < bs; ++cc) {
          res.c[(i * bs + rr) * n + (j * bs + cc)] = blk[rr * bs + cc];
        }
      }
    }
  }
  res.stats = machine.stats();
  return res;
}

}  // namespace harmony::algos
