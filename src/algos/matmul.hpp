// Dense matrix multiplication across the library's cost models.
//
//   * traced kernels (naive / blocked / cache-oblivious) for the cache
//     experiments (E5) — one template over the get/set array interface;
//   * fork-join matmul over the generic Ctx for work-span audits (E6);
//   * an F&M rank-3 function spec (C(i,j,k) = C(i,j,k-1) + A(i,k)B(k,j))
//     for mapping search (E8) and specialization pricing (E12);
//   * distributed-memory variants on the BSP machine — naive row-owner,
//     SUMMA on a sqrt(P) x sqrt(P) grid, and 2.5D with c-fold replication
//     — measured against the Irony-Toledo-Tiskin lower bounds (E4).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/bsp.hpp"
#include "fm/spec.hpp"
#include "sched/parallel_ops.hpp"
#include "support/error.hpp"

namespace harmony::algos {

// --- host kernels over the traced-array interface ---------------------

/// C += A * B, all n x n row-major, classic i-j-k loops.
template <typename ArrayA, typename ArrayB, typename ArrayC>
void matmul_naive(const ArrayA& a, const ArrayB& b, ArrayC& c,
                  std::size_t n) {
  HARMONY_REQUIRE(a.size() == n * n && b.size() == n * n &&
                      c.size() == n * n,
                  "matmul: size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c.get(i * n + j);
      for (std::size_t k = 0; k < n; ++k) {
        acc += a.get(i * n + k) * b.get(k * n + j);
      }
      c.set(i * n + j, acc);
    }
  }
}

/// Cache-aware tiled matmul with block size `bs`.
template <typename ArrayA, typename ArrayB, typename ArrayC>
void matmul_blocked(const ArrayA& a, const ArrayB& b, ArrayC& c,
                    std::size_t n, std::size_t bs) {
  HARMONY_REQUIRE(bs >= 1, "matmul_blocked: block size must be >= 1");
  for (std::size_t bi = 0; bi < n; bi += bs) {
    for (std::size_t bj = 0; bj < n; bj += bs) {
      for (std::size_t bk = 0; bk < n; bk += bs) {
        const std::size_t ei = std::min(n, bi + bs);
        const std::size_t ej = std::min(n, bj + bs);
        const std::size_t ek = std::min(n, bk + bs);
        for (std::size_t i = bi; i < ei; ++i) {
          for (std::size_t j = bj; j < ej; ++j) {
            double acc = c.get(i * n + j);
            for (std::size_t k = bk; k < ek; ++k) {
              acc += a.get(i * n + k) * b.get(k * n + j);
            }
            c.set(i * n + j, acc);
          }
        }
      }
    }
  }
}

namespace detail {
template <typename ArrayA, typename ArrayB, typename ArrayC>
void matmul_co_rec(const ArrayA& a, const ArrayB& b, ArrayC& c,
                   std::size_t n, std::size_t i0, std::size_t i1,
                   std::size_t j0, std::size_t j1, std::size_t k0,
                   std::size_t k1) {
  const std::size_t di = i1 - i0;
  const std::size_t dj = j1 - j0;
  const std::size_t dk = k1 - k0;
  if (di * dj * dk <= 64) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = j0; j < j1; ++j) {
        double acc = c.get(i * n + j);
        for (std::size_t k = k0; k < k1; ++k) {
          acc += a.get(i * n + k) * b.get(k * n + j);
        }
        c.set(i * n + j, acc);
      }
    }
    return;
  }
  // Split the largest dimension (Frigo et al.'s rectangular recursion).
  if (di >= dj && di >= dk) {
    const std::size_t im = i0 + di / 2;
    matmul_co_rec(a, b, c, n, i0, im, j0, j1, k0, k1);
    matmul_co_rec(a, b, c, n, im, i1, j0, j1, k0, k1);
  } else if (dj >= dk) {
    const std::size_t jm = j0 + dj / 2;
    matmul_co_rec(a, b, c, n, i0, i1, j0, jm, k0, k1);
    matmul_co_rec(a, b, c, n, i0, i1, jm, j1, k0, k1);
  } else {
    const std::size_t km = k0 + dk / 2;
    matmul_co_rec(a, b, c, n, i0, i1, j0, j1, k0, km);
    matmul_co_rec(a, b, c, n, i0, i1, j0, j1, km, k1);
  }
}
}  // namespace detail

/// Cache-oblivious recursive matmul.
template <typename ArrayA, typename ArrayB, typename ArrayC>
void matmul_oblivious(const ArrayA& a, const ArrayB& b, ArrayC& c,
                      std::size_t n) {
  if (n == 0) return;
  detail::matmul_co_rec(a, b, c, n, 0, n, 0, n, 0, n);
}

// --- fork-join matmul --------------------------------------------------

/// C = A * B over the generic fork-join context (plain vectors,
/// row-major).  Parallel over output tiles; work Theta(n^3).
template <typename Ctx>
void matmul_par(Ctx& ctx, const std::vector<double>& a,
                const std::vector<double>& b, std::vector<double>& c,
                std::size_t n, std::size_t grain_rows = 8) {
  HARMONY_REQUIRE(a.size() == n * n && b.size() == n * n,
                  "matmul_par: size mismatch");
  c.assign(n * n, 0.0);
  sched::parallel_for(ctx, 0, n, grain_rows, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += a[i * n + k] * b[k * n + j];
      }
      ctx.work(2.0 * static_cast<double>(n));
      c[i * n + j] = acc;
    }
  });
}

// --- F&M spec ----------------------------------------------------------

struct MatmulSpecIds {
  fm::TensorId a = -1, b = -1, c = -1;
};
/// Rank-3 recurrence spec; tensor C(i,j,k) holds the partial sums, whole
/// tensor marked output (read slice k = n-1 for the product).
[[nodiscard]] fm::FunctionSpec matmul_spec(std::int64_t n,
                                           MatmulSpecIds* ids = nullptr);

// --- distributed (BSP) variants ----------------------------------------

struct BspMatmulResult {
  std::vector<double> c;  ///< gathered n x n product (row-major)
  comm::BspStats stats;
};

/// Every process owns n/P rows of A and C; B's owner rows are re-fetched
/// on demand each superstep (the communication-oblivious baseline:
/// Theta(n^2) words per process).
[[nodiscard]] BspMatmulResult bsp_matmul_naive(const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               std::size_t n, int procs,
                                               comm::AlphaBeta model = {});

/// SUMMA on a sqrt(P) x sqrt(P) process grid (c = 1 communication-
/// avoiding baseline: Theta(n^2 / sqrt(P)) words per process).
[[nodiscard]] BspMatmulResult bsp_matmul_summa(const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               std::size_t n, int procs,
                                               comm::AlphaBeta model = {});

/// 2.5D matmul with replication factor c (P = p*p*c):
/// Theta(n^2 / sqrt(c*P)) words per process.
[[nodiscard]] BspMatmulResult bsp_matmul_25d(const std::vector<double>& a,
                                             const std::vector<double>& b,
                                             std::size_t n, int procs,
                                             int c,
                                             comm::AlphaBeta model = {});

/// Serial reference product.
[[nodiscard]] std::vector<double> matmul_serial(const std::vector<double>& a,
                                                const std::vector<double>& b,
                                                std::size_t n);

}  // namespace harmony::algos
