#include "algos/pipelines.hpp"

#include <algorithm>
#include <utility>

#include "algos/fft.hpp"
#include "algos/specs.hpp"
#include "support/error.hpp"

namespace harmony::algos {
namespace {

[[nodiscard]] bool is_pow2(std::int64_t v) {
  return v > 0 && (v & (v - 1)) == 0;
}

[[nodiscard]] int log2_of(std::int64_t v) {
  int bits = 0;
  while ((std::int64_t{1} << bits) < v) ++bits;
  return bits;
}

[[nodiscard]] std::shared_ptr<const fm::FunctionSpec> shared(
    fm::FunctionSpec s) {
  return std::make_shared<const fm::FunctionSpec>(std::move(s));
}

}  // namespace

fm::FunctionSpec butterfly_pass_spec(std::int64_t n, std::int64_t stride) {
  HARMONY_REQUIRE(is_pow2(n) && is_pow2(stride) && stride < n,
                  "butterfly_pass_spec: n and stride must be powers of two "
                  "with stride < n");
  fm::FunctionSpec spec;
  const fm::TensorId x = spec.add_input("x", fm::IndexDomain(n), 32);
  const fm::TensorId y = spec.add_computed(
      "y", fm::IndexDomain(n),
      [x, stride](const fm::Point& p) {
        return std::vector<fm::ValueRef>{{x, p},
                                         {x, fm::Point{p.i ^ stride}}};
      },
      [stride](const fm::Point& p, const std::vector<double>& v) {
        return (p.i & stride) == 0 ? v[0] + v[1] : v[1] - v[0];
      },
      fm::OpCost{2.0, 32});
  spec.mark_output(y);
  return spec;
}

fm::FunctionSpec bitrev_shuffle_spec(std::int64_t n) {
  HARMONY_REQUIRE(is_pow2(n), "bitrev_shuffle_spec: n must be a power of two");
  const int bits = log2_of(n);
  fm::FunctionSpec spec;
  const fm::TensorId x = spec.add_input("x", fm::IndexDomain(n), 32);
  const fm::TensorId y = spec.add_computed(
      "y", fm::IndexDomain(n),
      [x, bits](const fm::Point& p) {
        return std::vector<fm::ValueRef>{{x, fm::Point{bit_reverse(p.i,
                                                                   bits)}}};
      },
      [](const fm::Point&, const std::vector<double>& v) { return v[0]; },
      fm::OpCost{1.0, 32});
  spec.mark_output(y);
  return spec;
}

fm::FunctionSpec scan_pass_spec(std::int64_t n) {
  HARMONY_REQUIRE(n >= 1, "scan_pass_spec: n must be positive");
  fm::FunctionSpec spec;
  const fm::TensorId x = spec.add_input("x", fm::IndexDomain(n), 32);
  const fm::TensorId s = spec.add_computed(
      "s", fm::IndexDomain(n),
      [x](const fm::Point& p) {
        const fm::TensorId self = x + 1;
        std::vector<fm::ValueRef> deps{{x, p}};
        if (p.i > 0) deps.push_back({self, fm::Point{p.i - 1}});
        return deps;
      },
      [](const fm::Point&, const std::vector<double>& v) {
        return v.size() > 1 ? v[0] + v[1] : v[0];
      },
      fm::OpCost{1.0, 32});
  spec.mark_output(s);
  return spec;
}

fm::FunctionSpec pointwise_filter_spec(std::int64_t n) {
  HARMONY_REQUIRE(n >= 1, "pointwise_filter_spec: n must be positive");
  fm::FunctionSpec spec;
  const fm::TensorId x = spec.add_input("x", fm::IndexDomain(n), 32);
  const fm::TensorId y = spec.add_computed(
      "y", fm::IndexDomain(n),
      [x](const fm::Point& p) { return std::vector<fm::ValueRef>{{x, p}}; },
      [](const fm::Point&, const std::vector<double>& v) {
        return std::max(v[0], 0.0);
      },
      fm::OpCost{1.0, 32});
  spec.mark_output(y);
  return spec;
}

fm::FunctionSpec combine_spec(std::int64_t n) {
  HARMONY_REQUIRE(n >= 1, "combine_spec: n must be positive");
  fm::FunctionSpec spec;
  const fm::TensorId a = spec.add_input("a", fm::IndexDomain(n), 32);
  const fm::TensorId b = spec.add_input("b", fm::IndexDomain(n), 32);
  const fm::TensorId y = spec.add_computed(
      "y", fm::IndexDomain(n),
      [a, b](const fm::Point& p) {
        return std::vector<fm::ValueRef>{{a, p}, {b, p}};
      },
      [](const fm::Point&, const std::vector<double>& v) {
        return v[0] + v[1];
      },
      fm::OpCost{1.0, 32});
  spec.mark_output(y);
  return spec;
}

fm::Pipeline fft_shuffle_fft_pipeline(std::int64_t n) {
  fm::Pipeline pipe;
  const std::size_t pass1 = pipe.add_stage(
      {"fft-pass-hi", shared(butterfly_pass_spec(n, n / 2)),
       {fm::StageInput::external(fm::InputHome::dram())}});
  const std::size_t shuf = pipe.add_stage(
      {"bitrev", shared(bitrev_shuffle_spec(n)),
       {fm::StageInput::from(pass1)}});
  pipe.add_stage({"fft-pass-lo", shared(butterfly_pass_spec(n, 1)),
                  {fm::StageInput::from(shuf)}});
  return pipe;
}

fm::Pipeline scan_filter_scan_pipeline(std::int64_t n) {
  fm::Pipeline pipe;
  const std::size_t scan1 = pipe.add_stage(
      {"scan", shared(scan_pass_spec(n)),
       {fm::StageInput::external(fm::InputHome::dram())}});
  const std::size_t filt = pipe.add_stage(
      {"filter", shared(pointwise_filter_spec(n)),
       {fm::StageInput::from(scan1)}});
  pipe.add_stage({"rescan", shared(scan_pass_spec(n)),
                  {fm::StageInput::from(filt)}});
  return pipe;
}

fm::Pipeline irregular_chain_pipeline(std::int64_t n, int max_fanin,
                                      std::uint64_t seed) {
  // irregular_dag_spec(m) reads an input of extent m/4, so the producer
  // is sized to the consumer's input tensor: y over n/4 feeds a over
  // n/4.
  const std::int64_t n_head = std::max<std::int64_t>(1, n / 4);
  fm::Pipeline pipe;
  const std::size_t head = pipe.add_stage(
      {"dag-head", shared(irregular_dag_spec(n_head, max_fanin, seed)),
       {fm::StageInput::external(fm::InputHome::dram())}});
  pipe.add_stage(
      {"dag-tail", shared(irregular_dag_spec(n, max_fanin, seed + 1)),
       {fm::StageInput::from(head)}});
  return pipe;
}

fm::Pipeline diamond_pipeline(std::int64_t n) {
  fm::Pipeline pipe;
  const std::size_t scan = pipe.add_stage(
      {"scan", shared(scan_pass_spec(n)),
       {fm::StageInput::external(fm::InputHome::dram())}});
  const std::size_t filt = pipe.add_stage(
      {"filter", shared(pointwise_filter_spec(n)),
       {fm::StageInput::from(scan)}});
  const std::size_t shuf = pipe.add_stage(
      {"shuffle", shared(bitrev_shuffle_spec(n)),
       {fm::StageInput::from(scan)}});
  pipe.add_stage({"combine", shared(combine_spec(n)),
                  {fm::StageInput::from(filt), fm::StageInput::from(shuf)}});
  return pipe;
}

}  // namespace harmony::algos
