// Canned multi-kernel pipelines for fm::Pipeline (bench E24, the
// pipeline tests, and harmony-lint's --pipeline mode).
//
// Each stage is a purpose-built *single-computed-tensor* FunctionSpec —
// the searchers' contract — so a whole FFT becomes a chain of butterfly
// passes with an explicit bit-reverse shuffle between them, and a
// stream program becomes scan → pointwise filter → scan.  The chains
// are exactly the compositions the paper's modularity discussion warns
// about ("the F&M model supports modular program composition, but with
// constraints on mappings of input and output data structures"): each
// handoff is a producer→consumer edge whose cost depends on both
// stages' layouts, which is what tune_pipeline_greedy vs.
// tune_pipeline_paired measure.
#pragma once

#include <cstdint>

#include "fm/pipeline.hpp"
#include "fm/spec.hpp"

namespace harmony::algos {

/// One radix-2 butterfly layer over x (n a power of two, stride a power
/// of two < n):  y(i) = x(i) + x(i XOR stride), with the high partner
/// subtracted instead (y(i) = x(i XOR stride) - x(i) when i's stride
/// bit is set).  Dependences — the part the mapper prices — are exactly
/// the FFT layer's: every element reads itself and its stride partner.
[[nodiscard]] fm::FunctionSpec butterfly_pass_spec(std::int64_t n,
                                                   std::int64_t stride);

/// Bit-reverse permutation: y(i) = x(bit_reverse(i)) over n = 2^bits.
/// Pure data movement — its cost is *all* handoff.
[[nodiscard]] fm::FunctionSpec bitrev_shuffle_spec(std::int64_t n);

/// Inclusive prefix sum as a serial recurrence: S(i) = S(i-1) + x(i).
[[nodiscard]] fm::FunctionSpec scan_pass_spec(std::int64_t n);

/// Pointwise filter: y(i) = max(x(i), 0) (a ReLU-style gate).
[[nodiscard]] fm::FunctionSpec pointwise_filter_spec(std::int64_t n);

/// Two-input combine: y(i) = a(i) + b(i).  The multi-input stage the
/// diamond pipeline joins through.
[[nodiscard]] fm::FunctionSpec combine_spec(std::int64_t n);

/// FFT → shuffle → FFT: butterfly pass (stride n/2), bit-reverse
/// shuffle, butterfly pass (stride 1).  External x streams from DRAM.
[[nodiscard]] fm::Pipeline fft_shuffle_fft_pipeline(std::int64_t n);

/// scan → filter → scan: serial-recurrence scan, pointwise filter,
/// second scan.  External x streams from DRAM.
[[nodiscard]] fm::Pipeline scan_filter_scan_pipeline(std::int64_t n);

/// Irregular chain: irregular_dag_spec(n, max_fanin, seed) feeding
/// irregular_dag_spec(n, max_fanin, seed + 1) through its input tensor
/// — the non-affine scenario (tuned with search_table strategies).
[[nodiscard]] fm::Pipeline irregular_chain_pipeline(std::int64_t n,
                                                    int max_fanin,
                                                    std::uint64_t seed);

/// Diamond DAG: scan → {filter, shuffle} → combine.  The two middle
/// stages pull the shared producer toward conflicting layouts, and the
/// join stage mixes two producer-fixed inputs — the tests' edge cases.
[[nodiscard]] fm::Pipeline diamond_pipeline(std::int64_t n);

}  // namespace harmony::algos
