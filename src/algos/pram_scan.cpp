#include "algos/pram_scan.hpp"

#include "support/error.hpp"

namespace harmony::algos {

PramScanResult scan_pram(const std::vector<std::int64_t>& in,
                         std::size_t num_procs) {
  PramScanResult res;
  if (in.empty()) return res;
  std::size_t n = 1;
  int levels = 0;
  while (n < in.size()) {
    n *= 2;
    ++levels;
  }

  pram::PramMachine machine(pram::Variant::kErew, num_procs, n);
  for (std::size_t i = 0; i < in.size(); ++i) {
    machine.mem(i) = in[i];
  }

  // Rounds: [0, levels) upsweep; levels = save total + clear root;
  // (levels, 2*levels] downsweep; then halt.
  const auto p = num_procs;
  std::int64_t total = 0;
  auto program = [&, n, levels](pram::PramMachine::Ctx& ctx) {
    const std::int64_t s = ctx.step();
    if (s < levels) {
      // Upsweep level s: combine pairs stride = 2^(s+1) apart.
      const std::size_t stride = std::size_t{1} << (s + 1);
      for (std::size_t k = ctx.proc() * stride; k + stride <= n;
           k += p * stride) {
        const std::int64_t left = ctx.read(k + stride / 2 - 1);
        const std::int64_t right = ctx.read(k + stride - 1);
        ctx.write(k + stride - 1, left + right);
      }
      return;
    }
    if (s == levels) {
      if (ctx.proc() == 0) {
        total = ctx.read(n - 1);  // host-side capture of the grand total
        ctx.write(n - 1, 0);
      }
      return;
    }
    const std::int64_t d = 2 * levels - s;  // levels-1 .. 0
    if (d >= 0) {
      const std::size_t stride = std::size_t{1} << (d + 1);
      for (std::size_t k = ctx.proc() * stride; k + stride <= n;
           k += p * stride) {
        const std::int64_t left = ctx.read(k + stride / 2 - 1);
        const std::int64_t root = ctx.read(k + stride - 1);
        ctx.write(k + stride / 2 - 1, root);
        ctx.write(k + stride - 1, left + root);
      }
      if (d == 0) ctx.halt();
      return;
    }
    ctx.halt();  // n == 1: no levels at all
  };
  res.stats = machine.run(program, 2 * levels + 4);
  res.rounds = res.stats.steps;
  res.total = total;
  res.out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    res.out[i] = machine.mem(i);
  }
  return res;
}

}  // namespace harmony::algos
