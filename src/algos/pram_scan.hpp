// Work-efficient parallel prefix sums on the EREW PRAM (the bridge
// between Blelloch's scan and Vishkin's machine model).
//
// Classic upsweep/downsweep (Blelloch 1989) executed on the
// step-synchronous PramMachine: depth 2*log2(n) + O(1) rounds, work
// Theta(n) shared-memory operations — the *work-efficient* PRAM
// algorithm Vishkin's statement contrasts with profligate ones like
// Wyllie's list ranking.  The simulator's EREW conflict detection proves
// the access discipline as a side effect of running it.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/pram.hpp"

namespace harmony::algos {

struct PramScanResult {
  std::vector<std::int64_t> out;  ///< exclusive prefix sums
  std::int64_t total = 0;
  pram::PramStats stats;
  std::int64_t rounds = 0;
};

/// Exclusive scan of `in` on an EREW PRAM with `num_procs` processors.
/// Input length is padded to the next power of two internally.
[[nodiscard]] PramScanResult scan_pram(const std::vector<std::int64_t>& in,
                                       std::size_t num_procs);

}  // namespace harmony::algos
