// Work-efficient parallel prefix sums on the EREW PRAM (the bridge
// between Blelloch's scan and Vishkin's machine model).
//
// Classic upsweep/downsweep (Blelloch 1989) executed on the
// step-synchronous PramMachine: depth 2*log2(n) + O(1) rounds, work
// Theta(n) shared-memory operations — the *work-efficient* PRAM
// algorithm Vishkin's statement contrasts with profligate ones like
// Wyllie's list ranking.  The simulator's EREW conflict detection proves
// the access discipline as a side effect of running it.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/pram.hpp"
#include "sched/parallel_ops.hpp"

namespace harmony::algos {

struct PramScanResult {
  std::vector<std::int64_t> out;  ///< exclusive prefix sums
  std::int64_t total = 0;
  pram::PramStats stats;
  std::int64_t rounds = 0;
};

/// Exclusive scan of `in` on an EREW PRAM with `num_procs` processors.
/// Input length is padded to the next power of two internally.
[[nodiscard]] PramScanResult scan_pram(const std::vector<std::int64_t>& in,
                                       std::size_t num_procs);

/// The same upsweep/downsweep rounds expressed as fork-join over the
/// generic Ctx (sched/parallel_ops.hpp): in-place exclusive scan on a
/// power-of-two-padded tree buffer, returning the grand total.  The
/// reader/writer annotations let the determinacy-race detector
/// (analyze/race.hpp) certify the EREW access discipline the PRAM
/// simulator enforces dynamically.
template <typename Ctx>
std::int64_t scan_upsweep_downsweep(Ctx& ctx, std::vector<std::int64_t>& data,
                                    std::size_t grain = 64) {
  const std::size_t n0 = data.size();
  if (n0 == 0) return 0;
  std::size_t n = 1;
  while (n < n0) n *= 2;
  std::vector<std::int64_t> tree(n, 0);
  sched::parallel_for(ctx, 0, n0, grain, [&](std::size_t i) {
    ctx.work(1);
    sched::reader(ctx, data.data(), i);
    sched::writer(ctx, tree.data(), i);
    tree[i] = data[i];
  });
  // Upsweep: pairwise partial sums, one level per stride.
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    sched::parallel_for(ctx, 0, n / (2 * stride), grain, [&](std::size_t k) {
      ctx.work(1);
      const std::size_t base = k * 2 * stride;
      sched::reader(ctx, tree.data(), base + stride - 1);
      sched::reader(ctx, tree.data(), base + 2 * stride - 1);
      sched::writer(ctx, tree.data(), base + 2 * stride - 1);
      tree[base + 2 * stride - 1] += tree[base + stride - 1];
    });
  }
  // Clear the root (serial strand between the sweeps, like PRAM round
  // `levels`), then downsweep.
  const std::int64_t total = tree[n - 1];
  tree[n - 1] = 0;
  for (std::size_t stride = n / 2; stride >= 1; stride /= 2) {
    sched::parallel_for(ctx, 0, n / (2 * stride), grain, [&](std::size_t k) {
      ctx.work(2);
      const std::size_t base = k * 2 * stride;
      sched::reader(ctx, tree.data(), base + stride - 1);
      sched::reader(ctx, tree.data(), base + 2 * stride - 1);
      sched::writer(ctx, tree.data(), base + stride - 1);
      sched::writer(ctx, tree.data(), base + 2 * stride - 1);
      const std::int64_t left = tree[base + stride - 1];
      const std::int64_t root = tree[base + 2 * stride - 1];
      tree[base + stride - 1] = root;
      tree[base + 2 * stride - 1] = left + root;
    });
    if (stride == 1) break;
  }
  sched::parallel_for(ctx, 0, n0, grain, [&](std::size_t i) {
    ctx.work(1);
    sched::reader(ctx, tree.data(), i);
    sched::writer(ctx, data.data(), i);
    data[i] = tree[i];
  });
  return total;
}

}  // namespace harmony::algos
