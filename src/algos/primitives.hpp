// Scan-based data-parallel primitives (Blelloch, §2: "his early work on
// implementations and algorithmic applications of the scan (prefix sums)
// operation has become influential...").
//
// The NESL-style building blocks — pack, filter, split — expressed over
// the generic fork-join Ctx: each is a constant number of maps and one
// work-efficient scan, so work O(n) and span O(log^2 n) fall out by
// construction.  These are the "simple constructs in programming
// languages" the statement asks the models to support.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/scan.hpp"
#include "sched/parallel_ops.hpp"
#include "support/error.hpp"

namespace harmony::algos {

/// pack: keep data[i] where flags[i] != 0, preserving order.
template <typename Ctx, typename T>
std::vector<T> pack(Ctx& ctx, const std::vector<T>& data,
                    const std::vector<char>& flags,
                    std::size_t grain = 1024) {
  HARMONY_REQUIRE(data.size() == flags.size(), "pack: size mismatch");
  std::vector<std::int64_t> offsets(data.size());
  sched::parallel_for(ctx, 0, data.size(), grain, [&](std::size_t i) {
    ctx.work(1);
    offsets[i] = flags[i] ? 1 : 0;
  });
  const std::int64_t total = exclusive_scan(ctx, offsets, grain);
  std::vector<T> out(static_cast<std::size_t>(total));
  sched::parallel_for(ctx, 0, data.size(), grain, [&](std::size_t i) {
    ctx.work(1);
    if (flags[i]) {
      out[static_cast<std::size_t>(offsets[i])] = data[i];
    }
  });
  return out;
}

/// filter: pack with an inline predicate.
template <typename Ctx, typename T, typename Pred>
std::vector<T> filter(Ctx& ctx, const std::vector<T>& data, Pred&& pred,
                      std::size_t grain = 1024) {
  std::vector<char> flags(data.size());
  sched::parallel_for(ctx, 0, data.size(), grain, [&](std::size_t i) {
    ctx.work(1);
    flags[i] = pred(data[i]) ? 1 : 0;
  });
  return pack(ctx, data, flags, grain);
}

/// split: stable two-way partition — all flag==0 elements first (in
/// order), then all flag!=0 elements (in order).  Returns the partition
/// point.  The radix-sort building block.
template <typename Ctx, typename T>
std::size_t split(Ctx& ctx, std::vector<T>& data,
                  const std::vector<char>& flags,
                  std::size_t grain = 1024) {
  HARMONY_REQUIRE(data.size() == flags.size(), "split: size mismatch");
  const std::size_t n = data.size();
  std::vector<std::int64_t> zeros(n);
  sched::parallel_for(ctx, 0, n, grain, [&](std::size_t i) {
    ctx.work(1);
    zeros[i] = flags[i] ? 0 : 1;
  });
  const std::int64_t num_zeros = exclusive_scan(ctx, zeros, grain);
  // For ones, position = num_zeros + (i - zeros-before-i) adjusted by
  // ones-before-i = i - zeros[i] (zeros[i] is the exclusive zero count).
  std::vector<T> out(n);
  sched::parallel_for(ctx, 0, n, grain, [&](std::size_t i) {
    ctx.work(2);
    const auto zi = static_cast<std::size_t>(zeros[i]);
    if (!flags[i]) {
      out[zi] = data[i];
    } else {
      out[static_cast<std::size_t>(num_zeros) + (i - zi)] = data[i];
    }
  });
  data = std::move(out);
  return static_cast<std::size_t>(num_zeros);
}

/// Scan-based LSD radix sort on unsigned keys: `bits` passes of split.
/// Work O(n * bits), span O(bits * log^2 n) — the canonical "alien
/// culture" sort a serial programmer would not write.
template <typename Ctx>
void radix_sort(Ctx& ctx, std::vector<std::uint64_t>& data, int bits = 64,
                std::size_t grain = 1024) {
  HARMONY_REQUIRE(bits >= 1 && bits <= 64, "radix_sort: bits in [1,64]");
  std::vector<char> flags(data.size());
  for (int b = 0; b < bits; ++b) {
    sched::parallel_for(ctx, 0, data.size(), grain, [&](std::size_t i) {
      ctx.work(1);
      flags[i] = static_cast<char>((data[i] >> b) & 1);
    });
    split(ctx, data, flags, grain);
  }
}

}  // namespace harmony::algos
