#include "algos/samplesort.hpp"

#include <algorithm>
#include <bit>

#include "support/error.hpp"

namespace harmony::algos {

namespace {

/// Block boundaries: process r owns [start(r), start(r+1)).
std::size_t block_start(std::size_t n, int procs, int r) {
  return n * static_cast<std::size_t>(r) / static_cast<std::size_t>(procs);
}

// Keys ride in the double-typed BSP payloads via bit_cast — a lossless
// encoding (a static_cast would round 64-bit keys to 53-bit mantissas).
double encode(std::int64_t k) { return std::bit_cast<double>(k); }
std::int64_t decode(double d) { return std::bit_cast<std::int64_t>(d); }

std::vector<double> to_doubles(const std::vector<std::int64_t>& v,
                               std::size_t lo, std::size_t hi) {
  std::vector<double> out;
  out.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    out.push_back(encode(v[i]));
  }
  return out;
}

std::vector<std::int64_t> to_ints(const std::vector<double>& v) {
  std::vector<std::int64_t> out;
  out.reserve(v.size());
  for (double d : v) out.push_back(decode(d));
  return out;
}

}  // namespace

BspSortResult bsp_sample_sort(const std::vector<std::int64_t>& keys,
                              int procs, int oversample,
                              comm::AlphaBeta model) {
  HARMONY_REQUIRE(procs >= 1, "bsp_sample_sort: need >= 1 process");
  HARMONY_REQUIRE(oversample >= 1, "bsp_sample_sort: oversample >= 1");
  const std::size_t n = keys.size();
  const auto p = static_cast<std::size_t>(procs);

  comm::BspMachine m(procs, model);
  // Local state per rank.
  std::vector<std::vector<std::int64_t>> local(p);
  for (int r = 0; r < procs; ++r) {
    local[static_cast<std::size_t>(r)].assign(
        keys.begin() + static_cast<std::ptrdiff_t>(block_start(n, procs, r)),
        keys.begin() +
            static_cast<std::ptrdiff_t>(block_start(n, procs, r + 1)));
  }
  std::vector<std::int64_t> splitters;

  // Superstep 1: local sort + regular samples to rank 0.
  m.superstep([&](comm::BspMachine::Proc& proc) {
    auto& mine = local[static_cast<std::size_t>(proc.rank())];
    std::sort(mine.begin(), mine.end());
    proc.charge_flops(static_cast<double>(mine.size()) * 14.0);  // ~n log n
    std::vector<double> samples;
    for (int s = 0; s < oversample; ++s) {
      if (mine.empty()) break;
      const std::size_t at =
          (static_cast<std::size_t>(s) + 1) * mine.size() /
              (static_cast<std::size_t>(oversample) + 1);
      samples.push_back(encode(mine[std::min(at, mine.size() - 1)]));
    }
    proc.send(0, std::move(samples), /*tag=*/1);
  });

  // Superstep 2: rank 0 picks splitters, broadcasts.
  m.superstep([&](comm::BspMachine::Proc& proc) {
    if (proc.rank() != 0) return;
    std::vector<std::int64_t> all;
    for (const comm::Message& msg : proc.inbox()) {
      for (double d : msg.payload) {
        all.push_back(decode(d));
      }
    }
    std::sort(all.begin(), all.end());
    std::vector<double> split;
    for (std::size_t r = 1; r < p; ++r) {
      if (all.empty()) break;
      split.push_back(encode(
          all[std::min(r * all.size() / p, all.size() - 1)]));
    }
    for (int dst = 0; dst < procs; ++dst) {
      proc.send(dst, split, /*tag=*/2);
    }
  });

  // Superstep 3: partition by splitters and route buckets.
  m.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    for (const comm::Message& msg : proc.inbox()) {
      splitters = to_ints(msg.payload);  // same on every rank
    }
    const auto& mine = local[r];
    std::size_t lo = 0;
    for (std::size_t dst = 0; dst < p; ++dst) {
      const std::size_t hi =
          dst + 1 < p
              ? static_cast<std::size_t>(
                    std::upper_bound(mine.begin(), mine.end(),
                                     splitters[dst]) -
                    mine.begin())
              : mine.size();
      proc.send(static_cast<int>(dst), to_doubles(mine, lo, hi),
                /*tag=*/3);
      lo = hi;
    }
  });

  // Superstep 4: merge received runs.
  std::vector<std::vector<std::int64_t>> final_runs(p);
  m.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    std::vector<std::int64_t> merged;
    for (const comm::Message& msg : proc.inbox()) {
      const auto run = to_ints(msg.payload);
      std::vector<std::int64_t> next;
      next.reserve(merged.size() + run.size());
      std::merge(merged.begin(), merged.end(), run.begin(), run.end(),
                 std::back_inserter(next));
      merged = std::move(next);
      proc.charge_flops(static_cast<double>(merged.size()));
    }
    final_runs[r] = std::move(merged);
  });

  BspSortResult res;
  for (std::size_t r = 0; r < p; ++r) {
    res.sorted.insert(res.sorted.end(), final_runs[r].begin(),
                      final_runs[r].end());
  }
  res.stats = m.stats();
  return res;
}

BspSortResult bsp_root_sort(const std::vector<std::int64_t>& keys,
                            int procs, comm::AlphaBeta model) {
  HARMONY_REQUIRE(procs >= 1, "bsp_root_sort: need >= 1 process");
  const std::size_t n = keys.size();
  const auto p = static_cast<std::size_t>(procs);
  comm::BspMachine m(procs, model);
  std::vector<std::int64_t> root_sorted;

  m.superstep([&](comm::BspMachine::Proc& proc) {
    const int r = proc.rank();
    if (r == 0) return;
    proc.send(0,
              to_doubles(keys, block_start(n, procs, r),
                         block_start(n, procs, r + 1)));
  });
  std::vector<std::vector<std::int64_t>> scattered(p);
  m.superstep([&](comm::BspMachine::Proc& proc) {
    if (proc.rank() != 0) return;
    std::vector<std::int64_t> all(
        keys.begin(),
        keys.begin() + static_cast<std::ptrdiff_t>(block_start(n, procs, 1)));
    for (const comm::Message& msg : proc.inbox()) {
      const auto run = to_ints(msg.payload);
      all.insert(all.end(), run.begin(), run.end());
    }
    std::sort(all.begin(), all.end());
    proc.charge_flops(static_cast<double>(n) * 14.0);
    for (int dst = 1; dst < procs; ++dst) {
      proc.send(dst,
                to_doubles(all, block_start(n, procs, dst),
                           block_start(n, procs, dst + 1)));
    }
    scattered[0].assign(
        all.begin(),
        all.begin() + static_cast<std::ptrdiff_t>(block_start(n, procs, 1)));
  });
  m.superstep([&](comm::BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    if (r == 0) return;
    for (const comm::Message& msg : proc.inbox()) {
      scattered[r] = to_ints(msg.payload);
    }
  });

  BspSortResult res;
  for (std::size_t r = 0; r < p; ++r) {
    res.sorted.insert(res.sorted.end(), scattered[r].begin(),
                      scattered[r].end());
  }
  res.stats = m.stats();
  return res;
}

}  // namespace harmony::algos
