// Distributed sorting on the BSP machine (Yelick, §6).
//
// Sample sort is the communication-avoiding schedule: every key crosses
// the network once and the h-relation stays ~2n/P + O(P * oversample);
// the root-sort baseline (gather, sort, scatter) moves the same total
// volume but concentrates a Theta(n) h-relation at one process — volume
// vs events again, in sorting clothes.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/bsp.hpp"

namespace harmony::algos {

struct BspSortResult {
  std::vector<std::int64_t> sorted;
  comm::BspStats stats;
};

/// Regular sample sort over P processes.  `oversample` samples per
/// process pick the P-1 splitters.  Deterministic.
[[nodiscard]] BspSortResult bsp_sample_sort(
    const std::vector<std::int64_t>& keys, int procs, int oversample = 8,
    comm::AlphaBeta model = {});

/// Baseline: gather everything at rank 0, sort, scatter back.
[[nodiscard]] BspSortResult bsp_root_sort(
    const std::vector<std::int64_t>& keys, int procs,
    comm::AlphaBeta model = {});

}  // namespace harmony::algos
