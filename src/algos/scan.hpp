// Scan (prefix sums) and reduction — Blelloch's signature primitive
// (paper §2: "His early work on implementations and algorithmic
// applications of the scan (prefix sums) operation...").
//
// Three expressions of the same computation:
//   * sequential scan — the RAM algorithm (n reads, n writes, depth n);
//   * work-efficient parallel scan (contraction / Blelloch 1989) written
//     against the generic fork-join Ctx, so the same source runs on the
//     work-stealing scheduler and under the work-span analyzer
//     (W = O(n), D = O(log^2 n) with parallel_for's binary splitting);
//   * traced scans over the cache/ARAM array interface, for the locality
//     and read/write-asymmetry experiments (E5, E11).
#pragma once

#include <cstddef>
#include <vector>

#include "sched/parallel_ops.hpp"
#include "support/error.hpp"

namespace harmony::algos {

/// Sequential inclusive scan: out[i] = in[0] + ... + in[i].
template <typename T>
void inclusive_scan_seq(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc = acc + in[i];
    out[i] = acc;
  }
}

/// Sequential exclusive scan; returns the grand total.
template <typename T>
T exclusive_scan_seq(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc = acc + in[i];
  }
  return acc;
}

/// Work-efficient parallel exclusive scan (contraction scheme) over a
/// fork-join context.  Returns the grand total.  Deterministic
/// combination tree.  `grain` bounds the serial base case.
template <typename Ctx, typename T>
T exclusive_scan(Ctx& ctx, std::vector<T>& data, std::size_t grain = 1024) {
  const std::size_t n = data.size();
  if (n == 0) return T{};
  if (n <= grain) {
    sched::reader(ctx, data.data(), 0, n);
    sched::writer(ctx, data.data(), 0, n);
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      ctx.work(1);
      const T v = data[i];
      data[i] = acc;
      acc = acc + v;
    }
    return acc;
  }
  // Contract: pair sums.
  const std::size_t half = n / 2;
  std::vector<T> sums(half + (n % 2));
  sched::parallel_for(ctx, 0, half, grain, [&](std::size_t i) {
    ctx.work(1);
    sched::reader(ctx, data.data(), 2 * i, 2);
    sched::writer(ctx, sums.data(), i);
    sums[i] = data[2 * i] + data[2 * i + 1];
  });
  if (n % 2) sums[half] = data[n - 1];
  // Recurse.
  const T total = exclusive_scan(ctx, sums, grain);
  // Expand.
  sched::parallel_for(ctx, 0, half, grain, [&](std::size_t i) {
    ctx.work(2);
    sched::reader(ctx, sums.data(), i);
    sched::reader(ctx, data.data(), 2 * i);
    sched::writer(ctx, data.data(), 2 * i, 2);
    const T left = data[2 * i];
    data[2 * i] = sums[i];
    data[2 * i + 1] = sums[i] + left;
  });
  if (n % 2) data[n - 1] = sums[half];
  return total;
}

/// Parallel tree reduction over a fork-join context.
template <typename Ctx, typename T>
T reduce(Ctx& ctx, const std::vector<T>& data, std::size_t grain = 1024) {
  return sched::parallel_reduce(
      ctx, 0, data.size(), grain, T{},
      [&](std::size_t i) {
        ctx.work(1);
        return data[i];
      },
      [](T a, T b) { return a + b; });
}

/// Inclusive scan over the traced-array interface (get/set), sequential:
/// the read/write-minimal RAM scan — n reads, n writes (E5/E11 baseline).
template <typename ArrayIn, typename ArrayOut, typename T>
void inclusive_scan_traced(const ArrayIn& in, ArrayOut& out, T zero) {
  HARMONY_REQUIRE(out.size() == in.size(),
                  "inclusive_scan_traced: size mismatch");
  T acc = zero;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc = acc + in.get(i);
    out.set(i, acc);
  }
}

/// Tree-structured scan over traced arrays: upsweep + downsweep on an
/// explicit temporary — the parallel-friendly schedule, which pays ~2x
/// the writes of the sequential scan.  Used by E11 to show the ARAM
/// (write-cost omega) crossover against inclusive_scan_traced.
template <typename ArrayIn, typename ArrayOut, typename Tmp, typename T>
void tree_scan_traced(const ArrayIn& in, ArrayOut& out, Tmp& tmp, T zero) {
  const std::size_t n = in.size();
  HARMONY_REQUIRE(out.size() == n && tmp.size() >= n,
                  "tree_scan_traced: size mismatch");
  if (n == 0) return;
  // Upsweep on tmp (copy + pairwise partial sums, level by level).
  for (std::size_t i = 0; i < n; ++i) tmp.set(i, in.get(i));
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    for (std::size_t i = 2 * stride - 1; i < n; i += 2 * stride) {
      tmp.set(i, tmp.get(i) + tmp.get(i - stride));
    }
  }
  // Downsweep producing the inclusive result in out.
  for (std::size_t i = 0; i < n; ++i) out.set(i, tmp.get(i));
  std::size_t top = 1;
  while (top * 2 < n) top *= 2;
  for (std::size_t stride = top; stride >= 1; stride /= 2) {
    for (std::size_t i = 3 * stride - 1; i < n; i += 2 * stride) {
      out.set(i, out.get(i) + out.get(i - stride));
    }
    if (stride == 1) break;
  }
  (void)zero;
}

}  // namespace harmony::algos
