#include "algos/sort.hpp"

#include "support/rng.hpp"

namespace harmony::algos {

std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> keys(n);
  for (auto& k : keys) {
    k = static_cast<std::int64_t>(rng.next_u64() >> 1);
  }
  return keys;
}

}  // namespace harmony::algos
