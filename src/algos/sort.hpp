// Sorting in several cost models.
//
//   * merge_sort_seq     — the RAM baseline.
//   * merge_sort_par     — fork-join mergesort with parallel merge over
//     the generic Ctx (work O(n log n), span O(log^3 n)); runs on the
//     work-stealing scheduler and under the work-span analyzer (E6).
//   * merge_sort_traced  — 2-way mergesort over traced arrays:
//     Theta(n log2 n) big-memory writes.
//   * kway_merge_sort_traced — k-way mergesort over traced arrays:
//     Theta(n log_k n) big-memory writes for ~the same reads, the
//     write-efficient choice once ARAM's omega grows (E11).  The k-entry
//     tournament state is deliberately *untraced*: it models registers /
//     small fast memory, which ARAM prices at zero.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sched/parallel_ops.hpp"
#include "support/error.hpp"

namespace harmony::algos {

template <typename T>
void merge_sort_seq(std::vector<T>& data);

/// Fork-join mergesort; `grain` bounds the serial base case.
template <typename Ctx, typename T>
void merge_sort_par(Ctx& ctx, std::vector<T>& data, std::size_t grain = 2048);

/// 2-way mergesort over the traced-array interface.
template <typename Array>
void merge_sort_traced(Array& data);

/// k-way mergesort over the traced-array interface.
template <typename Array>
void kway_merge_sort_traced(Array& data, std::size_t k);

/// k-way mergesort whose tournament re-reads the k run heads from big
/// memory on every output element — the regime where k exceeds the fast
/// memory, trading Theta(n*k*log_k n) reads for Theta(n*log_k n) writes.
/// Against 2-way's n*log2 n of each, the ARAM costs cross over near
/// omega ~ k/log2(k) (bench E11 locates it empirically).
template <typename Array>
void kway_merge_sort_uncached(Array& data, std::size_t k);

/// Deterministic pseudo-random keys for sorting workloads.
[[nodiscard]] std::vector<std::int64_t> random_keys(std::size_t n,
                                                    std::uint64_t seed);

// ---------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------

namespace detail {

template <typename T>
void merge_seq(const std::vector<T>& src, std::vector<T>& dst,
               std::size_t lo, std::size_t mid, std::size_t hi) {
  std::size_t a = lo;
  std::size_t b = mid;
  for (std::size_t o = lo; o < hi; ++o) {
    if (a < mid && (b >= hi || !(src[b] < src[a]))) {
      dst[o] = src[a++];
    } else {
      dst[o] = src[b++];
    }
  }
}

template <typename T>
void merge_sort_seq_rec(std::vector<T>& data, std::vector<T>& tmp,
                        std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  merge_sort_seq_rec(data, tmp, lo, mid);
  merge_sort_seq_rec(data, tmp, mid, hi);
  merge_seq(data, tmp, lo, mid, hi);
  std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
            tmp.begin() + static_cast<std::ptrdiff_t>(hi),
            data.begin() + static_cast<std::ptrdiff_t>(lo));
}

/// Parallel merge by dual binary search (classic divide-and-conquer):
/// splits the larger run at its median, locates the split point in the
/// other run, recurses on both halves in parallel.
template <typename Ctx, typename T>
void merge_par(Ctx& ctx, const std::vector<T>& src, std::vector<T>& dst,
               std::size_t a_lo, std::size_t a_hi, std::size_t b_lo,
               std::size_t b_hi, std::size_t out, std::size_t grain) {
  const std::size_t an = a_hi - a_lo;
  const std::size_t bn = b_hi - b_lo;
  if (an + bn <= grain) {
    sched::reader(ctx, src.data(), a_lo, an);
    sched::reader(ctx, src.data(), b_lo, bn);
    sched::writer(ctx, dst.data(), out, an + bn);
    std::size_t a = a_lo;
    std::size_t b = b_lo;
    std::size_t o = out;
    while (a < a_hi || b < b_hi) {
      ctx.work(1);
      if (a < a_hi && (b >= b_hi || !(src[b] < src[a]))) {
        dst[o++] = src[a++];
      } else {
        dst[o++] = src[b++];
      }
    }
    return;
  }
  if (an < bn) {
    merge_par(ctx, src, dst, b_lo, b_hi, a_lo, a_hi, out, grain);
    return;
  }
  const std::size_t a_mid = a_lo + an / 2;
  sched::reader(ctx, src.data(), a_mid);
  sched::reader(ctx, src.data(), b_lo, bn);  // the binary search probes
  const auto b_mid = static_cast<std::size_t>(
      std::lower_bound(src.begin() + static_cast<std::ptrdiff_t>(b_lo),
                       src.begin() + static_cast<std::ptrdiff_t>(b_hi),
                       src[a_mid]) -
      src.begin());
  ctx.work(1);  // the binary search probe (log factor folded to 1 unit)
  const std::size_t out_mid = out + (a_mid - a_lo) + (b_mid - b_lo);
  ctx.fork2(
      [&] {
        merge_par(ctx, src, dst, a_lo, a_mid, b_lo, b_mid, out, grain);
      },
      [&] {
        merge_par(ctx, src, dst, a_mid, a_hi, b_mid, b_hi, out_mid, grain);
      });
}

template <typename Ctx, typename T>
void merge_sort_par_rec(Ctx& ctx, std::vector<T>& data, std::vector<T>& tmp,
                        std::size_t lo, std::size_t hi, std::size_t grain) {
  if (hi - lo <= grain) {
    sched::reader(ctx, data.data(), lo, hi - lo);
    sched::writer(ctx, data.data(), lo, hi - lo);
    for (std::size_t i = lo; i < hi; ++i) ctx.work(1);  // comparison cost
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
              data.begin() + static_cast<std::ptrdiff_t>(hi));
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  ctx.fork2([&] { merge_sort_par_rec(ctx, data, tmp, lo, mid, grain); },
            [&] { merge_sort_par_rec(ctx, data, tmp, mid, hi, grain); });
  merge_par(ctx, data, tmp, lo, mid, mid, hi, lo, grain);
  sched::parallel_for(ctx, lo, hi, grain, [&](std::size_t i) {
    ctx.work(1);
    sched::reader(ctx, tmp.data(), i);
    sched::writer(ctx, data.data(), i);
    data[i] = tmp[i];
  });
}

}  // namespace detail

template <typename T>
void merge_sort_seq(std::vector<T>& data) {
  std::vector<T> tmp(data.size());
  detail::merge_sort_seq_rec(data, tmp, 0, data.size());
}

template <typename Ctx, typename T>
void merge_sort_par(Ctx& ctx, std::vector<T>& data, std::size_t grain) {
  if (grain == 0) grain = 1;
  std::vector<T> tmp(data.size());
  detail::merge_sort_par_rec(ctx, data, tmp, 0, data.size(), grain);
}

template <typename Array>
void merge_sort_traced(Array& data) {
  using T = decltype(data.get(0));
  const std::size_t n = data.size();
  if (n <= 1) return;
  // Bottom-up with an untraced staging buffer per merge: the staging
  // write-back is what costs big-memory writes (n per level).
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(n, mid + width);
      std::vector<T> merged;
      merged.reserve(hi - lo);
      std::size_t a = lo;
      std::size_t b = mid;
      // Heads cached in registers: each element is read once per pass.
      T va{};
      T vb{};
      if (a < mid) va = data.get(a);
      if (b < hi) vb = data.get(b);
      while (a < mid || b < hi) {
        if (a < mid && (b >= hi || !(vb < va))) {
          merged.push_back(va);
          if (++a < mid) va = data.get(a);
        } else {
          merged.push_back(vb);
          if (++b < hi) vb = data.get(b);
        }
      }
      for (std::size_t i = 0; i < merged.size(); ++i) {
        data.set(lo + i, merged[i]);
      }
    }
  }
}

template <typename Array>
void kway_merge_sort_traced(Array& data, std::size_t k) {
  HARMONY_REQUIRE(k >= 2, "kway_merge_sort_traced: need k >= 2");
  using T = decltype(data.get(0));
  const std::size_t n = data.size();
  if (n <= 1) return;
  // Base runs of length k sorted via (untraced) small buffer, written
  // back once.
  for (std::size_t lo = 0; lo < n; lo += k) {
    const std::size_t hi = std::min(n, lo + k);
    std::vector<T> run;
    run.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) run.push_back(data.get(i));
    std::sort(run.begin(), run.end());
    for (std::size_t i = 0; i < run.size(); ++i) data.set(lo + i, run[i]);
  }
  // Passes of k-way merge: run length multiplies by k per pass, so only
  // ceil(log_k(n/k)) + 1 total passes write big memory.
  for (std::size_t width = k; width < n; width *= k) {
    for (std::size_t lo = 0; lo < n; lo += k * width) {
      // Merge up to k runs [lo + j*width, ...) via a small tournament
      // (untraced: models registers / L1-resident state).
      struct Head {
        std::size_t pos;
        std::size_t end;
        T value;      // cached in the untraced tournament state
        bool alive;
      };
      std::vector<Head> heads;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t s = lo + j * width;
        if (s >= n) break;
        const std::size_t e = std::min(n, s + width);
        heads.push_back(Head{s, e, data.get(s), s < e});
      }
      if (heads.size() <= 1) continue;
      std::vector<T> merged;
      while (true) {
        int best = -1;
        for (std::size_t j = 0; j < heads.size(); ++j) {
          if (!heads[j].alive) continue;
          if (best < 0 ||
              heads[j].value <
                  heads[static_cast<std::size_t>(best)].value) {
            best = static_cast<int>(j);
          }
        }
        if (best < 0) break;
        auto& h = heads[static_cast<std::size_t>(best)];
        merged.push_back(h.value);
        if (++h.pos < h.end) {
          h.value = data.get(h.pos);
        } else {
          h.alive = false;
        }
      }
      for (std::size_t i = 0; i < merged.size(); ++i) {
        data.set(lo + i, merged[i]);
      }
    }
  }
}

template <typename Array>
void kway_merge_sort_uncached(Array& data, std::size_t k) {
  HARMONY_REQUIRE(k >= 2, "kway_merge_sort_uncached: need k >= 2");
  using T = decltype(data.get(0));
  const std::size_t n = data.size();
  if (n <= 1) return;
  // Base runs of length k, one write-back each (as in the cached variant).
  for (std::size_t lo = 0; lo < n; lo += k) {
    const std::size_t hi = std::min(n, lo + k);
    std::vector<T> run;
    run.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) run.push_back(data.get(i));
    std::sort(run.begin(), run.end());
    for (std::size_t i = 0; i < run.size(); ++i) data.set(lo + i, run[i]);
  }
  for (std::size_t width = k; width < n; width *= k) {
    for (std::size_t lo = 0; lo < n; lo += k * width) {
      struct Head {
        std::size_t pos;
        std::size_t end;
      };
      std::vector<Head> heads;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t s = lo + j * width;
        if (s >= n) break;
        heads.push_back(Head{s, std::min(n, s + width)});
      }
      if (heads.size() <= 1) continue;
      std::vector<T> merged;
      while (true) {
        // Tournament state does NOT fit fast memory: every comparison
        // re-reads the head elements from big memory.
        int best = -1;
        for (std::size_t j = 0; j < heads.size(); ++j) {
          if (heads[j].pos >= heads[j].end) continue;
          if (best < 0 ||
              data.get(heads[j].pos) <
                  data.get(heads[static_cast<std::size_t>(best)].pos)) {
            best = static_cast<int>(j);
          }
        }
        if (best < 0) break;
        auto& h = heads[static_cast<std::size_t>(best)];
        merged.push_back(data.get(h.pos++));
      }
      for (std::size_t i = 0; i < merged.size(); ++i) {
        data.set(lo + i, merged[i]);
      }
    }
  }
}

}  // namespace harmony::algos
