#include "algos/specs.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace harmony::algos {

fm::FunctionSpec stencil1d_spec(std::int64_t n, std::int64_t steps,
                                StencilSpecIds* ids) {
  HARMONY_REQUIRE(n >= 1 && steps >= 0, "stencil1d_spec: bad shape");
  fm::FunctionSpec spec;
  const fm::TensorId input = spec.add_input("u0", fm::IndexDomain(n), 32);
  const fm::TensorId u = spec.add_computed(
      "u", fm::IndexDomain(steps + 1, n),
      [input, n](const fm::Point& p) {
        std::vector<fm::ValueRef> deps;
        if (p.i == 0) {
          deps.push_back({input, fm::Point{p.j}});
          return deps;
        }
        const fm::TensorId self = input + 1;
        const std::int64_t lo = std::max<std::int64_t>(0, p.j - 1);
        const std::int64_t hi = std::min<std::int64_t>(n - 1, p.j + 1);
        for (std::int64_t j = lo; j <= hi; ++j) {
          deps.push_back({self, fm::Point{p.i - 1, j}});
        }
        return deps;
      },
      [](const fm::Point& p, const std::vector<double>& v) {
        if (p.i == 0) return v[0];
        double acc = 0.0;
        for (double x : v) acc += x;
        return acc / static_cast<double>(v.size());
      },
      fm::OpCost{.ops = 3.0, .bits = 32});
  spec.mark_output(u);
  if (ids != nullptr) *ids = StencilSpecIds{input, u};
  return spec;
}

std::vector<double> stencil1d_reference(const std::vector<double>& u0,
                                        std::int64_t steps) {
  std::vector<double> cur = u0;
  std::vector<double> nxt(u0.size());
  const auto n = static_cast<std::int64_t>(u0.size());
  for (std::int64_t s = 0; s < steps; ++s) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t lo = std::max<std::int64_t>(0, j - 1);
      const std::int64_t hi = std::min<std::int64_t>(n - 1, j + 1);
      double acc = 0.0;
      for (std::int64_t k = lo; k <= hi; ++k) {
        acc += cur[static_cast<std::size_t>(k)];
      }
      nxt[static_cast<std::size_t>(j)] =
          acc / static_cast<double>(hi - lo + 1);
    }
    std::swap(cur, nxt);
  }
  return cur;
}

fm::FunctionSpec stencil2d_spec(std::int64_t rows, std::int64_t cols,
                                std::int64_t steps,
                                Stencil2dSpecIds* ids) {
  HARMONY_REQUIRE(rows >= 1 && cols >= 1 && steps >= 0,
                  "stencil2d_spec: bad shape");
  fm::FunctionSpec spec;
  const fm::TensorId input =
      spec.add_input("u0", fm::IndexDomain(rows, cols), 32);
  const fm::TensorId u = spec.add_computed(
      "u", fm::IndexDomain(steps + 1, rows, cols),
      [input, rows, cols](const fm::Point& p) {
        std::vector<fm::ValueRef> deps;
        if (p.i == 0) {
          deps.push_back({input, fm::Point{p.j, p.k}});
          return deps;
        }
        const fm::TensorId self = input + 1;
        deps.push_back({self, fm::Point{p.i - 1, p.j, p.k}});
        if (p.j > 0) deps.push_back({self, fm::Point{p.i - 1, p.j - 1, p.k}});
        if (p.j + 1 < rows) {
          deps.push_back({self, fm::Point{p.i - 1, p.j + 1, p.k}});
        }
        if (p.k > 0) deps.push_back({self, fm::Point{p.i - 1, p.j, p.k - 1}});
        if (p.k + 1 < cols) {
          deps.push_back({self, fm::Point{p.i - 1, p.j, p.k + 1}});
        }
        return deps;
      },
      [](const fm::Point& p, const std::vector<double>& v) {
        if (p.i == 0) return v[0];
        double acc = 0.0;
        for (double x : v) acc += x;
        return acc / static_cast<double>(v.size());
      },
      fm::OpCost{.ops = 5.0, .bits = 32});
  spec.mark_output(u);
  if (ids != nullptr) *ids = Stencil2dSpecIds{input, u};
  return spec;
}

std::vector<double> stencil2d_reference(const std::vector<double>& u0,
                                        std::int64_t rows,
                                        std::int64_t cols,
                                        std::int64_t steps) {
  HARMONY_REQUIRE(static_cast<std::int64_t>(u0.size()) == rows * cols,
                  "stencil2d_reference: size mismatch");
  std::vector<double> cur = u0;
  std::vector<double> nxt(u0.size());
  for (std::int64_t s = 0; s < steps; ++s) {
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < cols; ++j) {
        double acc = cur[static_cast<std::size_t>(i * cols + j)];
        int cnt = 1;
        if (i > 0) {
          acc += cur[static_cast<std::size_t>((i - 1) * cols + j)];
          ++cnt;
        }
        if (i + 1 < rows) {
          acc += cur[static_cast<std::size_t>((i + 1) * cols + j)];
          ++cnt;
        }
        if (j > 0) {
          acc += cur[static_cast<std::size_t>(i * cols + j - 1)];
          ++cnt;
        }
        if (j + 1 < cols) {
          acc += cur[static_cast<std::size_t>(i * cols + j + 1)];
          ++cnt;
        }
        nxt[static_cast<std::size_t>(i * cols + j)] =
            acc / static_cast<double>(cnt);
      }
    }
    std::swap(cur, nxt);
  }
  return cur;
}

fm::FunctionSpec conv1d_spec(std::int64_t n_out, std::int64_t k_taps,
                             ConvSpecIds* ids) {
  HARMONY_REQUIRE(n_out >= 1 && k_taps >= 1, "conv1d_spec: bad shape");
  fm::FunctionSpec spec;
  const fm::TensorId x =
      spec.add_input("x", fm::IndexDomain(n_out + k_taps - 1), 32);
  const fm::TensorId w = spec.add_input("w", fm::IndexDomain(k_taps), 32);
  const fm::TensorId y = spec.add_computed(
      "y", fm::IndexDomain(n_out, k_taps),
      [x, w](const fm::Point& p) {
        std::vector<fm::ValueRef> deps;
        deps.push_back({x, fm::Point{p.i + p.j}});
        deps.push_back({w, fm::Point{p.j}});
        if (p.j > 0) {
          const fm::TensorId self = w + 1;
          deps.push_back({self, fm::Point{p.i, p.j - 1}});
        }
        return deps;
      },
      [](const fm::Point& p, const std::vector<double>& v) {
        const double prod = v[0] * v[1];
        return p.j > 0 ? v[2] + prod : prod;
      },
      fm::OpCost{.ops = 2.0, .bits = 32});
  spec.mark_output(y);
  if (ids != nullptr) *ids = ConvSpecIds{x, w, y};
  return spec;
}

std::vector<double> conv1d_reference(const std::vector<double>& x,
                                     const std::vector<double>& w) {
  HARMONY_REQUIRE(x.size() >= w.size(), "conv1d_reference: x too short");
  const std::size_t n_out = x.size() - w.size() + 1;
  std::vector<double> y(n_out, 0.0);
  for (std::size_t i = 0; i < n_out; ++i) {
    for (std::size_t k = 0; k < w.size(); ++k) {
      y[i] += w[k] * x[i + k];
    }
  }
  return y;
}

ConvWsBuild conv1d_weight_stationary(std::int64_t n_out,
                                     std::int64_t k_taps) {
  HARMONY_REQUIRE(n_out >= 1 && k_taps >= 1,
                  "conv1d_weight_stationary: bad shape");
  const std::int64_t n_x = n_out + k_taps - 1;

  ConvWsBuild build;
  fm::FunctionSpec& spec = build.spec;
  const fm::TensorId x = spec.add_input("x", fm::IndexDomain(n_x), 32);
  const fm::TensorId w = spec.add_input("w", fm::IndexDomain(k_taps), 32);

  // wload(k): tap k parked in PE (k,0) once.
  const fm::TensorId wload = spec.add_computed(
      "wload", fm::IndexDomain(k_taps),
      [w](const fm::Point& p) {
        return std::vector<fm::ValueRef>{{w, fm::Point{p.i}}};
      },
      [](const fm::Point&, const std::vector<double>& v) { return v[0]; },
      fm::OpCost{.ops = 1.0, .bits = 32});

  // xflow(j,k): sample x_j as it passes PE (k,0).
  const fm::TensorId xflow = spec.add_computed(
      "xflow", fm::IndexDomain(n_x, k_taps),
      [x, wload](const fm::Point& p) {
        std::vector<fm::ValueRef> deps;
        if (p.j == 0) {
          deps.push_back({x, fm::Point{p.i}});
        } else {
          const fm::TensorId self = wload + 1;
          deps.push_back({self, fm::Point{p.i, p.j - 1}});
        }
        return deps;
      },
      [](const fm::Point&, const std::vector<double>& v) { return v[0]; },
      fm::OpCost{.ops = 1.0, .bits = 32});

  // y(i,k): MAC partial sums flowing east alongside x.
  const fm::TensorId y = spec.add_computed(
      "y", fm::IndexDomain(n_out, k_taps),
      [wload, xflow](const fm::Point& p) {
        std::vector<fm::ValueRef> deps;
        deps.push_back({xflow, fm::Point{p.i + p.j, p.j}});
        deps.push_back({wload, fm::Point{p.j}});
        if (p.j > 0) {
          const fm::TensorId self = xflow + 1;
          deps.push_back({self, fm::Point{p.i, p.j - 1}});
        }
        return deps;
      },
      [](const fm::Point& p, const std::vector<double>& v) {
        const double prod = v[0] * v[1];
        return p.j > 0 ? v[2] + prod : prod;
      },
      fm::OpCost{.ops = 2.0, .bits = 32});
  spec.mark_output(y);
  build.y = y;

  // Mapping (derivation in specs.hpp):
  //   wload(k) at ((k,0), 2k+1)
  //   xflow(j,k) at ((k,0), 2j+2k)      — even cycles
  //   y(i,k)   at ((k,0), 2i+4k+3)      — odd cycles, clear of wload
  fm::Mapping& m = build.mapping;
  m.set_computed(
      wload,
      [](const fm::Point& p) {
        return noc::Coord{static_cast<int>(p.i), 0};
      },
      [](const fm::Point& p) { return fm::Cycle{2 * p.i + 1}; });
  m.set_computed(
      xflow,
      [](const fm::Point& p) {
        return noc::Coord{static_cast<int>(p.j), 0};
      },
      [](const fm::Point& p) { return fm::Cycle{2 * p.i + 2 * p.j}; });
  m.set_computed(
      y,
      [](const fm::Point& p) {
        return noc::Coord{static_cast<int>(p.j), 0};
      },
      [](const fm::Point& p) { return fm::Cycle{2 * p.i + 4 * p.j + 3}; });
  m.set_input(x, fm::InputHome::at({0, 0}));
  m.set_input(w, fm::InputHome::at({0, 0}));
  return build;
}

namespace {

/// SplitMix64 finalizer over a combined (seed, op, slot) key.  The
/// dependence closure below must be a pure function of the point, so
/// its "randomness" is this hash, identical on every deps() call.
std::uint64_t dag_hash(std::uint64_t seed, std::uint64_t i,
                       std::uint64_t slot) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (i * 64 + slot + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

fm::FunctionSpec irregular_dag_spec(std::int64_t n, int max_fanin,
                                    std::uint64_t seed, bool output,
                                    IrregularDagSpecIds* ids) {
  HARMONY_REQUIRE(n >= 1 && max_fanin >= 1, "irregular_dag_spec: bad shape");
  fm::FunctionSpec spec;
  const std::int64_t n_in = std::max<std::int64_t>(1, n / 4);
  const fm::TensorId a = spec.add_input("a", fm::IndexDomain(n_in), 32);
  const fm::TensorId y = spec.add_computed(
      "y", fm::IndexDomain(n),
      [a, n_in, max_fanin, seed](const fm::Point& p) {
        const fm::TensorId self = a + 1;
        const std::uint64_t i = static_cast<std::uint64_t>(p.i);
        std::vector<fm::ValueRef> deps;
        deps.push_back(
            {a, fm::Point{static_cast<std::int64_t>(dag_hash(seed, i, 0) %
                                                    static_cast<std::uint64_t>(
                                                        n_in))}});
        if (p.i > 0) {
          const int fanin = 1 + static_cast<int>(
                                    dag_hash(seed, i, 1) %
                                    static_cast<std::uint64_t>(max_fanin));
          const std::uint64_t window =
              std::min<std::uint64_t>(16, static_cast<std::uint64_t>(p.i));
          for (int s = 0; s < fanin; ++s) {
            const std::int64_t d = 1 + static_cast<std::int64_t>(
                dag_hash(seed, i, static_cast<std::uint64_t>(s) + 2) % window);
            deps.push_back({self, fm::Point{p.i - d}});
          }
        }
        return deps;
      },
      [](const fm::Point&, const std::vector<double>& v) {
        double s = 1.0;
        for (const double x : v) s += x;
        return s;
      });
  if (output) spec.mark_output(y);
  if (ids != nullptr) {
    ids->a = a;
    ids->y = y;
  }
  return spec;
}

std::pair<fm::PlaceFn, fm::TimeFn> conv_output_stationary_map(
    std::int64_t k_taps, int cols) {
  HARMONY_REQUIRE(k_taps >= 1 && cols >= 1,
                  "conv_output_stationary_map: bad shape");
  const std::int64_t c = cols;
  const std::int64_t k = k_taps;
  return {
      [c](const fm::Point& p) {
        return noc::Coord{static_cast<int>(p.i % c), 0};
      },
      [c, k](const fm::Point& p) {
        return fm::Cycle{c + (p.i / c) * k + p.j};
      },
  };
}

}  // namespace harmony::algos
