// Additional F&M function specs: stencil and 1-D convolution dataflows.
//
// The convolution spec is the library's stand-in for the paper's DNN-
// accelerator discussion ("weight-stationary dataflows for DNN
// accelerators, systolic arrays"): weight-stationary and output-
// stationary are two *mappings* of one function
//     y(i,k) = y(i,k-1) + w(k) * x(i+k)
// and the cost evaluator prices their different movement patterns (E12).
#pragma once

#include <cstdint>

#include "fm/mapping.hpp"
#include "fm/spec.hpp"

namespace harmony::algos {

/// 1-D Jacobi heat stencil: u(t,i) = (u(t-1,i-1)+u(t-1,i)+u(t-1,i+1))/3
/// with clamped boundaries; u(0,i) = input.  Domain (steps+1) x n.
struct StencilSpecIds {
  fm::TensorId input = -1;
  fm::TensorId u = -1;
};
[[nodiscard]] fm::FunctionSpec stencil1d_spec(std::int64_t n,
                                              std::int64_t steps,
                                              StencilSpecIds* ids = nullptr);

/// Host reference for the stencil (same clamped boundary rule).
[[nodiscard]] std::vector<double> stencil1d_reference(
    const std::vector<double>& u0, std::int64_t steps);

/// 2-D Jacobi 5-point stencil over a rank-3 domain (steps+1, rows, cols):
/// u(t,i,j) = mean of the clamped von-Neumann neighbourhood of
/// u(t-1,·,·); u(0,i,j) = input (row-major rows x cols).
struct Stencil2dSpecIds {
  fm::TensorId input = -1;
  fm::TensorId u = -1;
};
[[nodiscard]] fm::FunctionSpec stencil2d_spec(
    std::int64_t rows, std::int64_t cols, std::int64_t steps,
    Stencil2dSpecIds* ids = nullptr);

/// Host reference for the 2-D stencil.
[[nodiscard]] std::vector<double> stencil2d_reference(
    const std::vector<double>& u0, std::int64_t rows, std::int64_t cols,
    std::int64_t steps);

/// 1-D convolution partial-sum recurrence over domain n_out x k_taps:
///   y(i,k) = y(i,k-1) + w(k) * x(i+k);  y(i, k_taps-1) is the output.
struct ConvSpecIds {
  fm::TensorId x = -1;
  fm::TensorId w = -1;
  fm::TensorId y = -1;
};
[[nodiscard]] fm::FunctionSpec conv1d_spec(std::int64_t n_out,
                                           std::int64_t k_taps,
                                           ConvSpecIds* ids = nullptr);

/// Host reference convolution.
[[nodiscard]] std::vector<double> conv1d_reference(
    const std::vector<double>& x, const std::vector<double>& w);

/// Weight-stationary systolic convolution: spec + mapping together,
/// because staying faithful to the dataflow needs two extra computed
/// tensors —
///   wload(k)   : tap k loaded once into PE (k,0)      [stationary]
///   xflow(j,k) : sample x_j forwarded east one PE/step [the pipeline]
///   y(i,k)     : partial sums, also flowing east
/// All dependences are same-PE or one hop; the schedule interleaves
/// xflow on even and y on odd cycles so the one-op-per-(PE,cycle) rule
/// holds.  Requires k_taps <= machine cols and one mesh hop <= 1 cycle.
struct ConvWsBuild {
  fm::FunctionSpec spec;
  fm::Mapping mapping;
  fm::TensorId y = -1;  ///< read slice k = k_taps-1 of this output
};
[[nodiscard]] ConvWsBuild conv1d_weight_stationary(std::int64_t n_out,
                                                   std::int64_t k_taps);

/// Irregular DAG kernel for the non-affine mapping space (E23): y over
/// IndexDomain(n) where y(i) reads a hash-derived set of up to
/// `max_fanin` earlier elements y(i - d), d in [1, 16], plus one element
/// of the input a.  The dependence relation is a pure function of the
/// point (SplitMix64 of (seed, i, slot)), so it is deterministic and
/// re-derivable on every deps() call, but it is *not* expressible by any
/// affine schedule — exactly the space search_table() exists for.
/// `output` controls whether y is marked as a program output (changes
/// the storage-legality model: outputs live to the makespan).
struct IrregularDagSpecIds {
  fm::TensorId a = -1;
  fm::TensorId y = -1;
};
[[nodiscard]] fm::FunctionSpec irregular_dag_spec(
    std::int64_t n, int max_fanin, std::uint64_t seed, bool output = true,
    IrregularDagSpecIds* ids = nullptr);

/// Output-stationary mapping for the *plain* conv1d_spec: PE (i mod
/// cols, 0) owns output i and runs its own k-loop in place; x and w are
/// re-fetched from their home every use (the movement the WS pipeline
/// avoids).  time(i,k) = cols + (i / cols)*k_taps + k — not affine in i,
/// hence returned as closures.
[[nodiscard]] std::pair<fm::PlaceFn, fm::TimeFn> conv_output_stationary_map(
    std::int64_t k_taps, int cols);

}  // namespace harmony::algos
