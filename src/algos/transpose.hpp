// Matrix transpose in three locality disciplines (Blelloch, §2; E5).
//
//   * naive           — row-major read, column-major write: Theta(n^2)
//     misses when a row of lines no longer fits in cache;
//   * blocked (aware) — BxB tiles sized to the cache: Theta(n^2/B) misses
//     but the tile size bakes the cache parameters into the code;
//   * cache-oblivious — recursive quadrant split (Frigo et al. 1999):
//     the same Theta(n^2/B) misses on *every* level of any hierarchy,
//     with no machine parameters in the source.
//
// All three run over the traced-array interface (square matrix in
// row-major order), so one kernel serves the real and simulated paths.
#pragma once

#include <cstddef>

#include "support/error.hpp"

namespace harmony::algos {

/// out[j*n + i] = in[i*n + j], straightforward loops.
template <typename ArrayIn, typename ArrayOut>
void transpose_naive(const ArrayIn& in, ArrayOut& out, std::size_t n) {
  HARMONY_REQUIRE(in.size() == n * n && out.size() == n * n,
                  "transpose: size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.set(j * n + i, in.get(i * n + j));
    }
  }
}

/// Tiled transpose with an explicit block size (cache-aware).
template <typename ArrayIn, typename ArrayOut>
void transpose_blocked(const ArrayIn& in, ArrayOut& out, std::size_t n,
                       std::size_t block) {
  HARMONY_REQUIRE(block >= 1, "transpose_blocked: block must be >= 1");
  HARMONY_REQUIRE(in.size() == n * n && out.size() == n * n,
                  "transpose: size mismatch");
  for (std::size_t bi = 0; bi < n; bi += block) {
    for (std::size_t bj = 0; bj < n; bj += block) {
      const std::size_t ei = std::min(n, bi + block);
      const std::size_t ej = std::min(n, bj + block);
      for (std::size_t i = bi; i < ei; ++i) {
        for (std::size_t j = bj; j < ej; ++j) {
          out.set(j * n + i, in.get(i * n + j));
        }
      }
    }
  }
}

namespace detail {
template <typename ArrayIn, typename ArrayOut>
void transpose_co_rec(const ArrayIn& in, ArrayOut& out, std::size_t n,
                      std::size_t i0, std::size_t i1, std::size_t j0,
                      std::size_t j1) {
  const std::size_t di = i1 - i0;
  const std::size_t dj = j1 - j0;
  if (di * dj <= 16) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = j0; j < j1; ++j) {
        out.set(j * n + i, in.get(i * n + j));
      }
    }
    return;
  }
  if (di >= dj) {
    const std::size_t im = i0 + di / 2;
    transpose_co_rec(in, out, n, i0, im, j0, j1);
    transpose_co_rec(in, out, n, im, i1, j0, j1);
  } else {
    const std::size_t jm = j0 + dj / 2;
    transpose_co_rec(in, out, n, i0, i1, j0, jm);
    transpose_co_rec(in, out, n, i0, i1, jm, j1);
  }
}
}  // namespace detail

/// Cache-oblivious recursive transpose.
template <typename ArrayIn, typename ArrayOut>
void transpose_oblivious(const ArrayIn& in, ArrayOut& out, std::size_t n) {
  HARMONY_REQUIRE(in.size() == n * n && out.size() == n * n,
                  "transpose: size mismatch");
  if (n == 0) return;
  detail::transpose_co_rec(in, out, n, 0, n, 0, n);
}

}  // namespace harmony::algos
