#include "analyze/diagnostic.hpp"

#include <sstream>

#include "support/table.hpp"

namespace harmony::analyze {

Table diagnostics_table(const std::vector<Diagnostic>& diags) {
  Table t({"rule", "severity", "op", "pe", "cycle", "message", "hint"});
  for (const Diagnostic& d : diags) {
    t.add_row({d.rule_id, std::string(to_string(d.severity)), d.location.op,
               static_cast<std::int64_t>(d.location.pe),
               d.location.cycle == Location::kNoCycle ? std::int64_t{-1}
                                                      : d.location.cycle,
               d.message, d.hint});
  }
  return t;
}

std::string diagnostics_json(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  diagnostics_table(diags).print_json(os);
  return os.str();
}

}  // namespace harmony::analyze
