// Structured diagnostics — the shared core of harmony::analyze.
//
// Every analysis pass in the library (the mapping legality checker and
// linter, the determinacy-race detector, future sanitizers) reports its
// findings as typed Diagnostic records instead of flat strings:
//
//   Diagnostic{rule_id, severity, location(op/PE/cycle), message, hint}
//
// Rule IDs are *stable*: they come from the registry below, tests assert
// them, and the serving metrics layer counts them, so a rule keeps its ID
// for its lifetime.  The registry also carries each rule's default
// severity and a generic remediation hint, so emitters only supply the
// location and the specific message.
//
// Layering: this header is self-contained (support-only) on purpose —
// fm::verify fills LegalityReport::diagnostics by including it, without
// harmony_fm linking against harmony_analyze.  Rendering (Table / JSON)
// lives in diagnostic.cpp inside the harmony_analyze library.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace harmony {
class Table;  // support/table.hpp
}

namespace harmony::analyze {

enum class Severity : std::uint8_t { kError, kWarning, kInfo };

[[nodiscard]] constexpr const char* to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kInfo:
      return "info";
  }
  return "?";
}

/// Where in space-time a diagnostic points.  `op` names the offending
/// operation or memory element ("H(3,4)", "data[17]"); `pe` is a linear
/// PE index (kNoPe when not tied to a PE); `cycle` is a schedule cycle
/// (kNoCycle when not tied to one).
struct Location {
  static constexpr std::int32_t kNoPe = -1;
  static constexpr std::int64_t kNoCycle =
      std::numeric_limits<std::int64_t>::min();

  std::string op;
  std::int32_t pe = kNoPe;
  std::int64_t cycle = kNoCycle;
};

struct Diagnostic {
  std::string rule_id;
  Severity severity = Severity::kError;
  Location location;
  std::string message;
  std::string hint;
};

// ---------------------------------------------------------------------
// Rule registry.  IDs are stable; append new rules, never renumber.
// ---------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  Severity severity;
  const char* title;
  const char* hint;
};

inline constexpr RuleInfo kRules[] = {
    // F&M legality errors (fm/legality.cpp) — Dally's three conditions
    // plus PE exclusivity.
    {"FM001", Severity::kError, "fm-causality",
     "delay the consumer (larger time coefficient) or move producer and "
     "consumer closer together"},
    {"FM002", Severity::kError, "fm-exclusivity",
     "skew the schedule or spread the space map so elements stop sharing "
     "a (PE, cycle) slot"},
    {"FM003", Severity::kError, "fm-storage",
     "consume values sooner, spread placement, or raise pe_capacity_values"},
    {"FM004", Severity::kError, "fm-bandwidth",
     "re-place producers nearer their consumers or stretch the schedule"},
    // Search option validation (fm/search.cpp, fm/strategy) — degenerate
    // option values that would silently search nothing.
    {"FM005", Severity::kError, "fm-search-options",
     "fix the degenerate search option (0 means \"none\", not \"auto\"; "
     "use kAutoGrain for automatic grain sizing)"},
    // Enumeration-plan overflow (fm/enum_plan.cpp) — the mixed-radix
    // slot count would wrap uint64 and silently truncate the space.
    {"FM006", Severity::kError, "fm-enum-overflow",
     "shrink the coefficient pools or split the search space; a wrapped "
     "slot count would silently enumerate a truncated space"},
    // Mapping lint warnings (analyze/lint.cpp) — legal but smelly.
    {"FM101", Severity::kWarning, "fm-idle-pes",
     "spread the space map (nonzero space coefficients) so idle PEs do "
     "useful work"},
    {"FM102", Severity::kWarning, "fm-storage-highwater",
     "transit buffering is close to PE capacity; shorten value lifetimes "
     "before scaling the problem up"},
    {"FM103", Severity::kWarning, "fm-bandwidth-hotspot",
     "a link runs near its bandwidth cap; rebalance routes before scaling "
     "the problem up"},
    {"FM104", Severity::kWarning, "fm-recompute",
     "these values are cheaper to recompute at the consumer than to ship "
     "(fm::recompute_report); consider replicating the producer"},
    // Determinacy races (analyze/race.hpp) — Blelloch's work-depth model
    // assumes race-free series-parallel programs.
    {"RACE001", Severity::kError, "race-write-write",
     "two logically parallel strands write the same location; partition "
     "the output or privatize the accumulator"},
    {"RACE002", Severity::kError, "race-read-write",
     "a read and a write of the same location are logically parallel; "
     "join before reading or double-buffer"},
    // Execution-witness axioms (analyze/exec.hpp) — the relational model
    // of a legal F&M execution (EXEC001–EXEC005, checked over op events,
    // value deliveries, and storage-residency intervals) and of the
    // scheduler's fork-join runs (EXEC006–EXEC008, checked over
    // trace-extracted witnesses).  EXEC009 marks truncated evidence.
    {"EXEC001", Severity::kError, "exec-order-cycle",
     "the union of dependence order and same-PE program order has a "
     "cycle; no schedule of these events can have happened"},
    {"EXEC002", Severity::kError, "exec-event-domain",
     "an op event is malformed (PE out of range, negative or oversized "
     "cycle, or two ops in one (PE, cycle) slot); later axioms skip it"},
    {"EXEC003", Severity::kError, "exec-delivery-before-use",
     "a value arrives after the op that consumes it executes; delay the "
     "consumer or move the producer/home closer"},
    {"EXEC004", Severity::kError, "exec-residency-overflow",
     "more values are resident on a PE than its capacity at some cycle; "
     "the modelled storage ledger cannot hold this execution"},
    {"EXEC005", Severity::kError, "exec-unrouted-delivery",
     "a delivery names an endpoint with no route in the witness's "
     "routability relation; no link walk can carry it"},
    {"EXEC006", Severity::kError, "exec-span-nesting",
     "two spans on one thread overlap without nesting; a fork-join "
     "(series-parallel) execution cannot produce this interval order"},
    {"EXEC007", Severity::kError, "exec-lane-overlap",
     "search-lane grains overlap in time on one lane, migrate threads "
     "mid-lane, or claim overlapping slot ranges; the grain ticket "
     "contract (one lane, one grain, once) is broken"},
    {"EXEC008", Severity::kError, "exec-steal-sanity",
     "a steal event is impossible (self-steal, unknown worker, or "
     "outside any run session); the scheduler witness is inconsistent"},
    {"EXEC009", Severity::kWarning, "exec-witness-truncated",
     "the trace ring dropped events, so the witness is incomplete; "
     "error verdicts still hold, but a clean pass is advisory — enlarge "
     "the ring (TraceSession events_per_thread) to certify"},
};

inline constexpr std::size_t kRuleCount = sizeof(kRules) / sizeof(kRules[0]);

/// Registry index of a rule ID, or -1 for unknown IDs.
[[nodiscard]] constexpr int rule_index(std::string_view id) {
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    if (id == kRules[i].id) return static_cast<int>(i);
  }
  return -1;
}

/// Registry entry for a rule ID; nullptr for unknown IDs.
[[nodiscard]] constexpr const RuleInfo* find_rule(std::string_view id) {
  const int idx = rule_index(id);
  return idx < 0 ? nullptr : &kRules[idx];
}

/// Builds a Diagnostic for a registered rule: severity and hint come
/// from the registry, the caller supplies location and message.
[[nodiscard]] inline Diagnostic make_diagnostic(std::string_view rule_id,
                                                Location location,
                                                std::string message) {
  const RuleInfo* info = find_rule(rule_id);
  Diagnostic d;
  d.rule_id = std::string(rule_id);
  d.severity = info != nullptr ? info->severity : Severity::kError;
  d.location = std::move(location);
  d.message = std::move(message);
  if (info != nullptr) d.hint = info->hint;
  return d;
}

/// Bounded diagnostic collector with per-rule counts.  Stores up to
/// `capacity` records; counters keep counting past the cap (the same
/// truncation semantics as fm::VerifyOptions::max_messages).
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::size_t capacity = 64) : capacity_(capacity) {}

  void add(Diagnostic d) {
    switch (d.severity) {
      case Severity::kError:
        ++errors_;
        break;
      case Severity::kWarning:
        ++warnings_;
        break;
      case Severity::kInfo:
        ++infos_;
        break;
    }
    const int idx = rule_index(d.rule_id);
    if (idx >= 0) ++by_rule_[static_cast<std::size_t>(idx)];
    if (diags_.size() < capacity_) {
      diags_.push_back(std::move(d));
    } else {
      ++dropped_;
    }
  }

  void add(std::string_view rule_id, Location location, std::string message) {
    add(make_diagnostic(rule_id, std::move(location), std::move(message)));
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  [[nodiscard]] std::uint64_t warnings() const { return warnings_; }
  [[nodiscard]] std::uint64_t infos() const { return infos_; }
  [[nodiscard]] std::uint64_t total() const {
    return errors_ + warnings_ + infos_;
  }
  /// Records not stored because the capacity was reached.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t count(std::string_view rule_id) const {
    const int idx = rule_index(rule_id);
    return idx < 0 ? 0 : by_rule_[static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] bool ok() const { return errors_ == 0; }

 private:
  std::size_t capacity_;
  std::vector<Diagnostic> diags_;
  std::uint64_t by_rule_[kRuleCount] = {};
  std::uint64_t errors_ = 0;
  std::uint64_t warnings_ = 0;
  std::uint64_t infos_ = 0;
  std::uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------
// Rendering (diagnostic.cpp, harmony_analyze).
// ---------------------------------------------------------------------

/// One row per diagnostic: rule, severity, op, pe, cycle, message, hint.
/// print() for humans, print_json() for machines (harmony-lint --json).
[[nodiscard]] Table diagnostics_table(const std::vector<Diagnostic>& diags);

/// The table above rendered as a JSON string.
[[nodiscard]] std::string diagnostics_json(const std::vector<Diagnostic>& diags);

}  // namespace harmony::analyze
