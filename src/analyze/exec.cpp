#include "analyze/exec.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "analyze/witness.hpp"
#include "fm/compiled.hpp"
#include "fm/strategy/table_map.hpp"

namespace harmony::analyze {

namespace {

/// Bounded sink shared by both check() overloads: severity counting
/// plus the max_diagnostics cap, folded into an ExecReport.
class ReportSink {
 public:
  explicit ReportSink(ExecReport& rep, std::size_t capacity)
      : rep_(rep), capacity_(capacity) {}

  void add(const char* rule_id, Location loc, std::string message) {
    Diagnostic d = make_diagnostic(rule_id, std::move(loc), std::move(message));
    if (d.severity == Severity::kError) {
      ++rep_.errors;
    } else {
      ++rep_.warnings;
    }
    if (rep_.diagnostics.size() < capacity_) {
      rep_.diagnostics.push_back(std::move(d));
    } else {
      ++rep_.dropped;
    }
  }

 private:
  ExecReport& rep_;
  std::size_t capacity_;
};

// ---------------------------------------------------------------------
// Witness builders: the mapping's execution modelled with the oracle
// timing contract, via the same view trick compiled.cpp uses so one
// builder serves both map families.
// ---------------------------------------------------------------------

struct AffineWView {
  const fm::CompiledSpec& cs;
  const fm::AffineMap& map;
  [[nodiscard]] fm::Cycle time(std::size_t, const fm::Point& p) const {
    return map.time(p);
  }
  [[nodiscard]] std::int32_t pe(std::size_t, const fm::Point& p) const {
    return static_cast<std::int32_t>(cs.pe_index(map.place(p)));
  }
  [[nodiscard]] std::int32_t home(const fm::CompiledDep& d) const {
    return d.home_pe;
  }
};

struct TableWView {
  const fm::CompiledSpec& cs;
  const fm::TableMap& tm;
  [[nodiscard]] fm::Cycle time(std::size_t lin, const fm::Point&) const {
    return tm.cycle[lin];
  }
  [[nodiscard]] std::int32_t pe(std::size_t lin, const fm::Point&) const {
    return tm.pe[lin];
  }
  [[nodiscard]] std::int32_t home(const fm::CompiledDep& d) const {
    return tm.input_home[d.input_ord];
  }
};

template <typename View>
ExecWitness build_witness_impl(const fm::CompiledSpec& cs, const View& view,
                               const char* origin) {
  ExecWitness w;
  w.num_ops = cs.num_points;
  w.num_pes = static_cast<std::int32_t>(cs.num_pes);
  w.pe_capacity = cs.pe_capacity_values;
  w.origin = origin;

  const std::size_t P = cs.num_pes;
  const auto n = static_cast<std::size_t>(cs.num_points);
  w.op_pe.resize(n);
  w.op_cycle.resize(n);
  std::int64_t lin = 0;
  cs.domain.for_each([&](const fm::Point& p) {
    const auto v = static_cast<std::size_t>(lin++);
    w.op_pe[v] = view.pe(v, p);
    w.op_cycle[v] = view.time(v, p);
  });

  // Dependence order and deliveries, one per consumed operand, with
  // the machine timing contract the verifier enforces: computed dep →
  // producer cycle + max(1, transit); PE-homed input → transit from
  // home (0 when local); DRAM input → the consumer PE's DRAM latency.
  for (std::size_t v = 0; v < n; ++v) {
    const auto here = static_cast<std::size_t>(w.op_pe[v]);
    for (std::uint64_t e = cs.dep_offsets[v]; e < cs.dep_offsets[v + 1];
         ++e) {
      const fm::CompiledDep& d = cs.deps[e];
      ExecWitness::Delivery del;
      del.use_op = static_cast<std::int64_t>(v);
      if (d.kind == fm::CompiledDep::kComputed) {
        const auto src = static_cast<std::size_t>(d.dep_lin);
        w.deps.push_back({d.dep_lin, static_cast<std::int64_t>(v)});
        del.kind = ExecWitness::Delivery::kComputed;
        del.from_pe = w.op_pe[src];
        del.ready =
            w.op_cycle[src] +
            std::max<fm::Cycle>(
                1, cs.transit[static_cast<std::size_t>(del.from_pe) * P +
                              here]);
      } else if (d.kind == fm::CompiledDep::kInputDram) {
        del.kind = ExecWitness::Delivery::kInputDram;
        del.from_pe = -1;
        del.ready = cs.dram_cycles[here];
      } else {
        del.kind = ExecWitness::Delivery::kInputPe;
        del.from_pe = view.home(d);
        del.ready =
            cs.transit[static_cast<std::size_t>(del.from_pe) * P + here];
      }
      w.deliveries.push_back(del);
    }
  }

  // Residency intervals: the def/last-use sweep of the storage ledger.
  // A value lives on its producer PE from its def cycle until one past
  // its last consuming op; outputs stay live to the makespan.
  fm::Cycle makespan = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (w.op_cycle[v] >= 0) makespan = std::max(makespan, w.op_cycle[v] + 1);
  }
  std::vector<fm::Cycle> last_use(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    last_use[v] = std::max(last_use[v], w.op_cycle[v]);
    for (std::uint64_t e = cs.dep_offsets[v]; e < cs.dep_offsets[v + 1];
         ++e) {
      const fm::CompiledDep& d = cs.deps[e];
      if (d.kind != fm::CompiledDep::kComputed) continue;
      const auto src = static_cast<std::size_t>(d.dep_lin);
      last_use[src] = std::max(last_use[src], w.op_cycle[v]);
    }
  }
  w.residency.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (w.op_cycle[v] < 0) continue;  // flagged by EXEC002, off-ledger
    const fm::Cycle end =
        (cs.target_is_output ? makespan : last_use[v]) + 1;
    w.residency.push_back({w.op_pe[v], w.op_cycle[v], end});
  }

  // The mesh routes every (from, to) pair (dimension-ordered walks are
  // total), so the compiled machine's routability relation is full.
  w.routable.assign(P * P, 1);
  return w;
}

std::string op_name(const ExecWitness& w, std::int64_t op) {
  std::ostringstream os;
  os << (w.origin.empty() ? "op" : w.origin.c_str()) << "[" << op << "]";
  return os.str();
}

}  // namespace

ExecWitness build_exec_witness(const fm::CompiledSpec& cs,
                               const fm::AffineMap& map) {
  return build_witness_impl(cs, AffineWView{cs, map}, "affine");
}

ExecWitness build_exec_witness(const fm::CompiledSpec& cs,
                               const fm::TableMap& tm) {
  return build_witness_impl(cs, TableWView{cs, tm}, "table");
}

// ---------------------------------------------------------------------
// EXEC001–EXEC005: the mapping-execution axioms.
// ---------------------------------------------------------------------

ExecReport ExecChecker::check(const ExecWitness& w) const {
  ExecReport rep;
  ReportSink sink(rep, opts_.max_diagnostics);
  const auto n = static_cast<std::size_t>(std::max<std::int64_t>(w.num_ops, 0));
  const auto P = static_cast<std::size_t>(std::max(w.num_pes, 0));

  // ---- EXEC002: event domain & slot integrity ------------------------
  // Checked first: every later axiom skips events flagged here, so one
  // corruption fires exactly one rule.
  ++rep.axioms_checked;
  std::vector<std::uint8_t> op_ok(n, 0);
  if (w.op_pe.size() != n || w.op_cycle.size() != n) {
    std::ostringstream os;
    os << "witness declares " << w.num_ops << " ops but carries "
       << w.op_pe.size() << " PE and " << w.op_cycle.size()
       << " cycle assignments";
    sink.add("EXEC002", Location{}, os.str());
  }
  std::vector<std::uint64_t> slots;
  slots.reserve(n);
  for (std::size_t v = 0; v < n && v < w.op_pe.size() &&
                          v < w.op_cycle.size();
       ++v) {
    const std::int32_t pe = w.op_pe[v];
    const fm::Cycle c = w.op_cycle[v];
    if (pe < 0 || static_cast<std::size_t>(pe) >= P || c < 0 ||
        c >= ExecWitness::kMaxCycle) {
      std::ostringstream os;
      os << op_name(w, static_cast<std::int64_t>(v))
         << " executes at (PE " << pe << ", cycle " << c
         << ") outside the event domain [0, " << P << ") x [0, 2^40)";
      sink.add("EXEC002",
               Location{op_name(w, static_cast<std::int64_t>(v)), pe, c},
               os.str());
      continue;
    }
    op_ok[v] = 1;
    slots.push_back((static_cast<std::uint64_t>(pe) << 40) |
                    static_cast<std::uint64_t>(c));
  }
  std::sort(slots.begin(), slots.end());
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (slots[i] != slots[i - 1]) continue;
    const auto pe = static_cast<std::int32_t>(slots[i] >> 40);
    const auto c =
        static_cast<fm::Cycle>(slots[i] & ((std::uint64_t{1} << 40) - 1));
    std::ostringstream os;
    os << "two op events share slot (PE " << pe << ", cycle " << c
       << "); same-PE program order is not total";
    sink.add("EXEC002", Location{"", pe, c}, os.str());
  }

  // ---- EXEC001: acyclicity of dependence ∪ program order -------------
  // Kahn's algorithm over dependence edges plus the consecutive-ops
  // edges of each PE's cycle-sorted chain.  Any event left unordered
  // sits on (or behind) a cycle.
  ++rep.axioms_checked;
  {
    std::vector<std::vector<std::int64_t>> adj(n);
    std::vector<std::int64_t> indeg(n, 0);
    const auto add_edge = [&](std::int64_t a, std::int64_t b) {
      adj[static_cast<std::size_t>(a)].push_back(b);
      ++indeg[static_cast<std::size_t>(b)];
    };
    for (const ExecWitness::DepEdge& e : w.deps) {
      if (e.src < 0 || e.dst < 0 ||
          static_cast<std::size_t>(e.src) >= n ||
          static_cast<std::size_t>(e.dst) >= n) {
        std::ostringstream os;
        os << "dependence edge (" << e.src << " -> " << e.dst
           << ") names an unknown op";
        sink.add("EXEC002", Location{}, os.str());
        continue;
      }
      add_edge(e.src, e.dst);
    }
    // Program order: ops of one PE chained in (cycle, op) order.
    std::vector<std::int64_t> by_slot;
    by_slot.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (op_ok[v] != 0) by_slot.push_back(static_cast<std::int64_t>(v));
    }
    std::sort(by_slot.begin(), by_slot.end(),
              [&](std::int64_t a, std::int64_t b) {
                const auto ia = static_cast<std::size_t>(a);
                const auto ib = static_cast<std::size_t>(b);
                if (w.op_pe[ia] != w.op_pe[ib]) return w.op_pe[ia] < w.op_pe[ib];
                if (w.op_cycle[ia] != w.op_cycle[ib]) {
                  return w.op_cycle[ia] < w.op_cycle[ib];
                }
                return a < b;
              });
    for (std::size_t i = 1; i < by_slot.size(); ++i) {
      const auto prev = static_cast<std::size_t>(by_slot[i - 1]);
      const auto cur = static_cast<std::size_t>(by_slot[i]);
      if (w.op_pe[prev] == w.op_pe[cur]) add_edge(by_slot[i - 1], by_slot[i]);
    }

    std::vector<std::int64_t> frontier;
    for (std::size_t v = 0; v < n; ++v) {
      if (indeg[v] == 0) frontier.push_back(static_cast<std::int64_t>(v));
    }
    std::size_t ordered = 0;
    while (!frontier.empty()) {
      const std::int64_t v = frontier.back();
      frontier.pop_back();
      ++ordered;
      for (const std::int64_t next : adj[static_cast<std::size_t>(v)]) {
        if (--indeg[static_cast<std::size_t>(next)] == 0) {
          frontier.push_back(next);
        }
      }
    }
    if (ordered < n) {
      // Name one op on a cycle for the diagnostic: any unordered op
      // with the smallest index keeps the message deterministic.
      std::int64_t witness_op = -1;
      for (std::size_t v = 0; v < n; ++v) {
        if (indeg[v] > 0) {
          witness_op = static_cast<std::int64_t>(v);
          break;
        }
      }
      std::ostringstream os;
      os << (n - ordered) << " op event(s) cannot be topologically "
         << "ordered under dependence + program order (e.g. "
         << op_name(w, witness_op) << ")";
      sink.add(
          "EXEC001",
          Location{op_name(w, witness_op),
                   witness_op >= 0 ? w.op_pe[static_cast<std::size_t>(
                                         witness_op)]
                                   : Location::kNoPe,
                   Location::kNoCycle},
          os.str());
    }
  }

  // ---- EXEC003 + EXEC005: deliveries ---------------------------------
  rep.axioms_checked += 2;
  for (const ExecWitness::Delivery& d : w.deliveries) {
    if (d.use_op < 0 || static_cast<std::size_t>(d.use_op) >= n) {
      std::ostringstream os;
      os << "delivery names unknown consumer op " << d.use_op;
      sink.add("EXEC005", Location{}, os.str());
      continue;
    }
    const auto use = static_cast<std::size_t>(d.use_op);
    if (op_ok[use] == 0) continue;  // consumer already flagged (EXEC002)
    // EXEC003: delivered no later than used.
    if (d.ready > w.op_cycle[use]) {
      std::ostringstream os;
      os << op_name(w, d.use_op) << " executes at cycle " << w.op_cycle[use]
         << " but its operand arrives at cycle " << d.ready;
      sink.add("EXEC003",
               Location{op_name(w, d.use_op), w.op_pe[use], w.op_cycle[use]},
               os.str());
    }
    // EXEC005: a usable route between the endpoints.  DRAM (-1) and
    // local deliveries need none.
    if (d.kind != ExecWitness::Delivery::kInputDram) {
      if (d.from_pe < 0 || static_cast<std::size_t>(d.from_pe) >= P) {
        std::ostringstream os;
        os << "delivery to " << op_name(w, d.use_op)
           << " originates at unknown PE " << d.from_pe;
        sink.add("EXEC005", Location{op_name(w, d.use_op), d.from_pe,
                                     Location::kNoCycle},
                 os.str());
      } else if (d.from_pe != w.op_pe[use]) {
        const std::size_t r =
            static_cast<std::size_t>(d.from_pe) * P +
            static_cast<std::size_t>(w.op_pe[use]);
        if (r >= w.routable.size() || w.routable[r] == 0) {
          std::ostringstream os;
          os << "delivery to " << op_name(w, d.use_op) << " needs PE "
             << d.from_pe << " -> PE " << w.op_pe[use]
             << " but the witness has no route for that pair";
          sink.add("EXEC005", Location{op_name(w, d.use_op), w.op_pe[use],
                                       Location::kNoCycle},
                   os.str());
        }
      }
    }
  }

  // ---- EXEC004: residency within capacity ----------------------------
  // Interval sweep per PE, frees before allocations at a tick — the
  // same tie-break the storage ledger uses.
  ++rep.axioms_checked;
  {
    struct Ev {
      std::int32_t pe;
      fm::Cycle cycle;
      std::int32_t delta;
    };
    std::vector<Ev> events;
    events.reserve(w.residency.size() * 2);
    for (const ExecWitness::Residency& r : w.residency) {
      if (r.pe < 0 || static_cast<std::size_t>(r.pe) >= P) {
        std::ostringstream os;
        os << "residency interval [" << r.begin << ", " << r.end
           << ") names unknown PE " << r.pe;
        sink.add("EXEC004", Location{"", r.pe, r.begin}, os.str());
        continue;
      }
      if (r.end <= r.begin) continue;  // empty interval occupies nothing
      events.push_back({r.pe, r.begin, +1});
      events.push_back({r.pe, r.end, -1});
    }
    std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
      if (a.pe != b.pe) return a.pe < b.pe;
      if (a.cycle != b.cycle) return a.cycle < b.cycle;
      return a.delta < b.delta;
    });
    std::int64_t live = 0;
    std::int32_t cur_pe = -1;
    bool flagged_this_pe = false;
    for (const Ev& e : events) {
      if (e.pe != cur_pe) {
        cur_pe = e.pe;
        live = 0;
        flagged_this_pe = false;
      }
      live += e.delta;
      if (live > w.pe_capacity && !flagged_this_pe) {
        flagged_this_pe = true;
        std::ostringstream os;
        os << "PE " << e.pe << " holds " << live
           << " resident values at cycle " << e.cycle << " (capacity "
           << w.pe_capacity << ")";
        sink.add("EXEC004", Location{"", e.pe, e.cycle}, os.str());
      }
    }
  }

  return rep;
}

// ---------------------------------------------------------------------
// EXEC006–EXEC009: the fork-join axioms.
// ---------------------------------------------------------------------

ExecReport ExecChecker::check(const ForkJoinWitness& w) const {
  ExecReport rep;
  ReportSink sink(rep, opts_.max_diagnostics);

  // ---- EXEC006: spans on one thread nest -----------------------------
  // Sort each thread's spans by (begin, -end) and walk a stack: a span
  // beginning inside the enclosing span must also end inside it.
  // Overlap is strict (shared endpoints are legal back-to-back spans).
  ++rep.axioms_checked;
  {
    struct Iv {
      std::uint64_t begin, end;
      const char* name;
    };
    std::vector<std::uint32_t> tids;
    for (const ForkJoinWitness::SpanEvent& s : w.spans) tids.push_back(s.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (const std::uint32_t tid : tids) {
      std::vector<Iv> ivs;
      for (const ForkJoinWitness::SpanEvent& s : w.spans) {
        if (s.tid == tid) ivs.push_back({s.begin_ns, s.end_ns, s.name});
      }
      std::sort(ivs.begin(), ivs.end(), [](const Iv& a, const Iv& b) {
        if (a.begin != b.begin) return a.begin < b.begin;
        return a.end > b.end;
      });
      std::vector<Iv> stack;
      for (const Iv& s : ivs) {
        while (!stack.empty() && stack.back().end <= s.begin) {
          stack.pop_back();
        }
        if (!stack.empty() && s.end > stack.back().end) {
          std::ostringstream os;
          os << "spans \"" << (stack.back().name ? stack.back().name : "?")
             << "\" and \"" << (s.name ? s.name : "?") << "\" on thread "
             << tid << " overlap without nesting ([" << stack.back().begin
             << ", " << stack.back().end << ") vs [" << s.begin << ", "
             << s.end << ") ns)";
          sink.add("EXEC006", Location{}, os.str());
          continue;  // don't push the misfit; keep checking the rest
        }
        stack.push_back(s);
      }
    }
  }

  // ---- EXEC007: lane / grain integrity -------------------------------
  ++rep.axioms_checked;
  {
    // (a) Per lane: grains are sequential on one thread.
    std::vector<const ForkJoinWitness::Grain*> by_lane;
    for (const ForkJoinWitness::Grain& g : w.grains) by_lane.push_back(&g);
    std::sort(by_lane.begin(), by_lane.end(),
              [](const ForkJoinWitness::Grain* a,
                 const ForkJoinWitness::Grain* b) {
                if (a->lane != b->lane) return a->lane < b->lane;
                if (a->begin_ns != b->begin_ns) {
                  return a->begin_ns < b->begin_ns;
                }
                return a->lo < b->lo;
              });
    for (std::size_t i = 1; i < by_lane.size(); ++i) {
      const ForkJoinWitness::Grain& prev = *by_lane[i - 1];
      const ForkJoinWitness::Grain& cur = *by_lane[i];
      if (prev.lane != cur.lane) continue;
      if (prev.tid != cur.tid) {
        std::ostringstream os;
        os << "lane " << cur.lane << " ran grains on threads " << prev.tid
           << " and " << cur.tid << "; a lane is one fork-join strand and "
           << "cannot migrate mid-run";
        sink.add("EXEC007", Location{}, os.str());
      }
      if (cur.begin_ns < prev.end_ns) {
        std::ostringstream os;
        os << "lane " << cur.lane << " grains [" << prev.lo << ", "
           << prev.hi << ") and [" << cur.lo << ", " << cur.hi
           << ") overlap in time";
        sink.add("EXEC007", Location{}, os.str());
      }
    }
    // (b) Across all lanes: slot ranges are pairwise disjoint (each
    // grain claimed by exactly one lane, evaluated exactly once).
    std::vector<const ForkJoinWitness::Grain*> by_slot(w.grains.size());
    for (std::size_t i = 0; i < w.grains.size(); ++i) {
      by_slot[i] = &w.grains[i];
    }
    std::sort(by_slot.begin(), by_slot.end(),
              [](const ForkJoinWitness::Grain* a,
                 const ForkJoinWitness::Grain* b) {
                if (a->lo != b->lo) return a->lo < b->lo;
                return a->hi < b->hi;
              });
    for (std::size_t i = 1; i < by_slot.size(); ++i) {
      const ForkJoinWitness::Grain& prev = *by_slot[i - 1];
      const ForkJoinWitness::Grain& cur = *by_slot[i];
      if (cur.lo < prev.hi) {
        std::ostringstream os;
        os << "grain slot ranges [" << prev.lo << ", " << prev.hi
           << ") (lane " << prev.lane << ") and [" << cur.lo << ", "
           << cur.hi << ") (lane " << cur.lane
           << ") overlap; a slot was evaluated twice";
        sink.add("EXEC007", Location{}, os.str());
      }
    }
  }

  // ---- EXEC008: steal sanity -----------------------------------------
  ++rep.axioms_checked;
  {
    std::vector<std::uint64_t> workers;
    std::uint64_t run_begin = ~std::uint64_t{0};
    std::uint64_t run_end = 0;
    for (const ForkJoinWitness::Run& r : w.runs) {
      workers.push_back(r.worker);
      run_begin = std::min(run_begin, r.begin_ns);
      run_end = std::max(run_end, r.end_ns);
    }
    std::sort(workers.begin(), workers.end());
    const auto known = [&](std::uint64_t id) {
      return std::binary_search(workers.begin(), workers.end(), id);
    };
    for (const ForkJoinWitness::Steal& s : w.steals) {
      if (s.thief == s.victim) {
        std::ostringstream os;
        os << "worker " << s.thief << " stole from itself";
        sink.add("EXEC008", Location{}, os.str());
        continue;
      }
      if (workers.empty()) continue;  // no run evidence to validate against
      if (!known(s.thief) || !known(s.victim)) {
        std::ostringstream os;
        os << "steal (" << s.thief << " <- " << s.victim
           << ") names a worker with no run session";
        sink.add("EXEC008", Location{}, os.str());
      } else if (s.at_ns < run_begin || s.at_ns > run_end) {
        std::ostringstream os;
        os << "steal (" << s.thief << " <- " << s.victim << ") at "
           << s.at_ns << " ns falls outside every run session ["
           << run_begin << ", " << run_end << ")";
        sink.add("EXEC008", Location{}, os.str());
      }
    }
  }

  // ---- EXEC009: truncated evidence -----------------------------------
  ++rep.axioms_checked;
  if (w.dropped > 0) {
    rep.complete = false;
    std::ostringstream os;
    os << w.dropped << " trace event(s) lost to ring wrap; the witness "
       << "is incomplete and a clean verdict is advisory";
    sink.add("EXEC009", Location{}, os.str());
  }

  return rep;
}

}  // namespace harmony::analyze
