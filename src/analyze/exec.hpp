// analyze::ExecChecker — axiomatic execution checking against a
// relational model (ROADMAP item 4; Martonosi §4: make the
// algorithm↔architecture contract *checkable*, not folklore).
//
// The idea, borrowed from declarative memory-model checkers (mc2lib's
// event sets + po/rf/co relations closed under acyclicity axioms, and
// CDSChecker's model-grounded oracle separate from the code under
// test): represent one execution as a small relational structure — a
// *witness* — and check it axiom by axiom, in code that shares nothing
// with the cost model or the legality verifier that produced it.
//
// Two witness families:
//
//   ExecWitness — one Fulcrum-mapping execution.  Events are per-op
//   executions (op_pe / op_cycle) and per-value deliveries; relations
//   are dependence order (`deps`, from the spec's CSR dependence
//   lists), delivery-before-use (`deliveries`, with modelled arrival
//   cycles), storage residency (`residency` intervals), and a
//   routability relation (`routable`).  Axioms:
//     EXEC001  acyclicity of dependence order ∪ same-PE program order
//     EXEC002  event domain: every op in a valid (PE, cycle) slot,
//              no two ops sharing one (program order total per PE)
//     EXEC003  every consumed value delivered no later than its use
//     EXEC004  residency never exceeds PE capacity at any cycle
//     EXEC005  no delivery without a route between its endpoints
//
//   ForkJoinWitness (analyze/witness.hpp) — one traced scheduler run,
//   extracted from harmony::trace spans.  Axioms:
//     EXEC006  spans on one thread nest (series-parallel shape)
//     EXEC007  lane/grain integrity (disjoint slot ranges, no
//              mid-lane thread migration, no same-lane time overlap)
//     EXEC008  steal sanity (no self-steals, known workers, inside a
//              run session)
//     EXEC009  (warning) the trace ring dropped events — the witness
//              is incomplete, so a clean verdict is advisory.  Drops
//              can only *remove* spans, never create overlaps, so the
//              error axioms above still hold when they fire.
//
// build_exec_witness() models a (CompiledSpec, AffineMap | TableMap)
// pair with exactly the timing contract the oracles use (computed dep:
// producer cycle + max(1, transit); PE-homed input: transit from home;
// DRAM input: per-PE DRAM latency; residency from def to last use,
// outputs to makespan) — so a mapping fm::verify accepts yields a
// witness that checks clean, and the two implementations cross-check
// each other.  The checker itself never reads a CompiledSpec: mutation
// tests corrupt witnesses one relation at a time and assert exactly
// the intended axiom fires (tests/analyze_exec_test.cpp).
//
// Wired three ways: `harmony-lint --check-exec` replays a (spec,
// machine, mapping) triple; serve validates tune winners post-hoc
// (ServiceConfig::check_exec, on by default — the check costs <5% of
// the tune it guards); and the searchers' winners are certified in
// tests across fixtures, drivers, and worker counts.  DESIGN.md §14.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"

namespace harmony::fm {
struct CompiledSpec;  // fm/compiled.hpp
struct TableMap;      // fm/strategy/table_map.hpp
}  // namespace harmony::fm

namespace harmony::analyze {

struct ForkJoinWitness;  // analyze/witness.hpp

/// One Fulcrum-mapping execution as a self-contained relational
/// structure.  Self-contained on purpose: the checker consumes only
/// this struct, so tests can synthesize and corrupt witnesses without
/// a CompiledSpec, and the checker cannot accidentally lean on the
/// code it is meant to cross-check.
struct ExecWitness {
  /// Schedule cycles at or above this bound are domain violations
  /// (mirrors the verifier's packed-slot limit).
  static constexpr std::int64_t kMaxCycle = std::int64_t{1} << 40;

  std::int64_t num_ops = 0;
  std::int32_t num_pes = 0;
  std::int64_t pe_capacity = 0;
  /// Label for diagnostics ("affine", "table", "synthetic", ...).
  std::string origin;

  /// Op events: execution (PE, cycle) per linearized op.
  std::vector<std::int32_t> op_pe;
  std::vector<fm::Cycle> op_cycle;

  /// Dependence order: src must execute before dst can.
  struct DepEdge {
    std::int64_t src = -1;
    std::int64_t dst = -1;
  };
  std::vector<DepEdge> deps;

  /// One value delivery per consumed operand: the value leaves
  /// `from_pe` (-1 = DRAM) and is available at the consumer's PE at
  /// cycle `ready`.
  struct Delivery {
    enum Kind : std::uint8_t { kComputed = 0, kInputDram = 1, kInputPe = 2 };
    std::int64_t use_op = -1;
    std::int32_t from_pe = -1;
    fm::Cycle ready = 0;
    Kind kind = kComputed;
  };
  std::vector<Delivery> deliveries;

  /// Storage residency: one value occupies a slot on `pe` over the
  /// half-open cycle interval [begin, end).
  struct Residency {
    std::int32_t pe = -1;
    fm::Cycle begin = 0;
    fm::Cycle end = 0;
  };
  std::vector<Residency> residency;

  /// Routability relation, indexed [from * num_pes + to]; nonzero
  /// means a route exists.  Local (from == to) and DRAM deliveries
  /// need no entry.
  std::vector<std::uint8_t> routable;
};

/// Models the execution a mapping denotes on a compiled spec: op
/// events from the map's (place, time), deliveries per dependence edge
/// under the machine timing contract, residency from the def/last-use
/// sweep (outputs live to the makespan), full mesh routability.
[[nodiscard]] ExecWitness build_exec_witness(const fm::CompiledSpec& cs,
                                             const fm::AffineMap& map);
[[nodiscard]] ExecWitness build_exec_witness(const fm::CompiledSpec& cs,
                                             const fm::TableMap& tm);

struct ExecOptions {
  /// Cap on stored diagnostic records (counts continue past it).
  std::size_t max_diagnostics = 64;
};

struct ExecReport {
  std::vector<Diagnostic> diagnostics;
  std::uint64_t errors = 0;
  std::uint64_t warnings = 0;
  /// Records dropped at the max_diagnostics cap.
  std::uint64_t dropped = 0;
  /// Axiom families evaluated (EXEC001–005 for ExecWitness,
  /// EXEC006–009 for ForkJoinWitness).
  std::uint64_t axioms_checked = 0;
  /// False when the witness itself declares missing evidence
  /// (ForkJoinWitness with dropped spans); a clean pass is advisory.
  bool complete = true;

  [[nodiscard]] bool ok() const { return errors == 0; }
  [[nodiscard]] std::uint64_t count(std::string_view rule_id) const {
    std::uint64_t n = 0;
    for (const Diagnostic& d : diagnostics) {
      if (d.rule_id == rule_id) ++n;
    }
    return n;
  }
};

/// The axiom checker.  Stateless apart from options; check() may be
/// called concurrently from different threads on different witnesses.
class ExecChecker {
 public:
  explicit ExecChecker(ExecOptions opts = {}) : opts_(opts) {}

  /// Checks EXEC001–EXEC005 over a mapping-execution witness.
  [[nodiscard]] ExecReport check(const ExecWitness& w) const;

  /// Checks EXEC006–EXEC009 over a traced fork-join witness.
  [[nodiscard]] ExecReport check(const ForkJoinWitness& w) const;

 private:
  ExecOptions opts_;
};

}  // namespace harmony::analyze
