#include "analyze/lint.hpp"

#include <sstream>
#include <string>

#include "fm/recompute.hpp"
#include "noc/mesh.hpp"

namespace harmony::analyze {

LintReport lint_mapping(const fm::FunctionSpec& spec,
                        const fm::Mapping& mapping,
                        const fm::MachineConfig& machine,
                        const LintOptions& opts) {
  LintReport rep;
  DiagnosticSink sink(opts.max_diagnostics);

  // ---- errors: the legality checker, forwarded verbatim --------------
  rep.legality = fm::verify(spec, mapping, machine, opts.verify);
  for (const Diagnostic& d : rep.legality.diagnostics) sink.add(d);

  // ---- FM101: idle-PE imbalance --------------------------------------
  rep.total_pes = machine.geom.num_nodes();
  {
    std::vector<char> busy(static_cast<std::size_t>(rep.total_pes), 0);
    for (fm::TensorId t : spec.computed_tensors()) {
      spec.domain(t).for_each([&](const fm::Point& p) {
        busy[machine.geom.index(mapping.place(t, p))] = 1;
      });
    }
    for (char b : busy) rep.busy_pes += b;
    const std::int64_t idle = rep.total_pes - rep.busy_pes;
    const double idle_frac =
        static_cast<double>(idle) / static_cast<double>(rep.total_pes);
    if (rep.total_pes > 1 && idle_frac >= opts.idle_pe_warn_fraction) {
      std::ostringstream os;
      os << idle << " of " << rep.total_pes
         << " PEs never compute an element (" << rep.busy_pes << " busy)";
      sink.add("FM101", Location{}, os.str());
    }
  }

  // ---- FM102: storage high-water (legal, but close to the cap) -------
  if (opts.verify.check_storage && rep.legality.storage_violations == 0 &&
      rep.legality.peak_live_values >=
          static_cast<std::int64_t>(opts.storage_highwater_fraction *
                                    static_cast<double>(
                                        machine.pe_capacity_values))) {
    std::ostringstream os;
    os << "peak live values " << rep.legality.peak_live_values << " on PE "
       << rep.legality.peak_live_pe << " is at "
       << static_cast<int>(100.0 *
                           static_cast<double>(rep.legality.peak_live_values) /
                           static_cast<double>(machine.pe_capacity_values))
       << "% of capacity " << machine.pe_capacity_values;
    sink.add("FM102",
             Location{"", rep.legality.peak_live_pe, Location::kNoCycle},
             os.str());
  }

  // ---- FM103: bandwidth hotspot (legal, but close to the cap) --------
  if (opts.verify.check_bandwidth && rep.legality.bandwidth_violations == 0 &&
      rep.legality.peak_link >= 0 &&
      rep.legality.peak_link_bits_per_cycle >=
          opts.bandwidth_hotspot_fraction * machine.link_bits_per_cycle) {
    std::ostringstream os;
    os << "directed link " << rep.legality.peak_link << " averages "
       << rep.legality.peak_link_bits_per_cycle << " bits/cycle, "
       << static_cast<int>(100.0 * rep.legality.peak_link_bits_per_cycle /
                           machine.link_bits_per_cycle)
       << "% of capacity " << machine.link_bits_per_cycle;
    sink.add("FM103",
             Location{"link " + std::to_string(rep.legality.peak_link),
                      static_cast<std::int32_t>(rep.legality.peak_link / 4),
                      Location::kNoCycle},
             os.str());
  }

  // ---- FM104: values shipped when recompute is cheaper ---------------
  {
    const fm::RecomputeReport rc = fm::recompute_report(spec, mapping, machine);
    if (rc.profitable_edges > 0 &&
        rc.savings_fraction() >= opts.recompute_savings_fraction) {
      std::ostringstream os;
      os << rc.profitable_edges << " of " << rc.remote_edges
         << " remote operand edges are cheaper to recompute than to ship ("
         << static_cast<int>(100.0 * rc.savings_fraction())
         << "% of movement energy recoverable)";
      sink.add("FM104", Location{}, os.str());
    }
  }

  rep.diagnostics = sink.diagnostics();
  rep.errors = sink.errors();
  rep.warnings = sink.warnings();
  rep.dropped = sink.dropped();
  return rep;
}

LintReport lint_mapping(const fm::FunctionSpec& spec,
                        const fm::TableMap& table,
                        const fm::MachineConfig& machine,
                        const LintOptions& opts) {
  return lint_mapping(spec, fm::to_mapping(spec, table), machine, opts);
}

}  // namespace harmony::analyze
