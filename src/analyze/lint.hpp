// Mapping linter (harmony::analyze) — structured diagnostics over a
// (FunctionSpec, Mapping, MachineConfig) triple.
//
// lint_mapping() runs fm::verify() and forwards its error diagnostics
// (FM001–FM004), then adds warning-tier rules for mappings that are
// *legal but smelly* — the gap Dally's paper cares about between "runs"
// and "runs well on this machine":
//
//   FM101 fm-idle-pes           a large fraction of PEs never compute
//   FM102 fm-storage-highwater  peak live values near PE capacity
//   FM103 fm-bandwidth-hotspot  a link runs near its bandwidth cap
//   FM104 fm-recompute          shipped values cheaper to recompute
//
// All thresholds live in LintOptions so tests and the harmony-lint CLI
// can tighten or relax them.
#pragma once

#include <cstdint>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "fm/strategy/table_map.hpp"

namespace harmony::analyze {

struct LintOptions {
  fm::VerifyOptions verify;
  /// FM101 fires when at least this fraction of PEs compute nothing
  /// (only on machines with more than one PE).
  double idle_pe_warn_fraction = 0.5;
  /// FM102 fires when peak live values reach this fraction of
  /// pe_capacity_values without actually violating it.
  double storage_highwater_fraction = 0.75;
  /// FM103 fires when a link's average rate reaches this fraction of
  /// link_bits_per_cycle without actually violating it.
  double bandwidth_hotspot_fraction = 0.75;
  /// FM104 fires when recompute would save at least this fraction of
  /// the movement energy on remote computed-operand edges.
  double recompute_savings_fraction = 0.25;
  /// Cap on stored diagnostic records (counts continue past it).
  std::size_t max_diagnostics = 64;
};

struct LintReport {
  /// The underlying legality result (counters, peaks).
  fm::LegalityReport legality;
  /// Errors (forwarded from legality) followed by lint warnings.
  std::vector<Diagnostic> diagnostics;
  std::uint64_t errors = 0;
  std::uint64_t warnings = 0;
  /// Records dropped at the max_diagnostics cap.
  std::uint64_t dropped = 0;
  /// PEs that compute at least one element / total PEs (FM101 inputs).
  std::int64_t busy_pes = 0;
  std::int64_t total_pes = 0;

  /// ok == legal; warnings do not make a mapping illegal.
  [[nodiscard]] bool ok() const { return errors == 0; }
  [[nodiscard]] std::uint64_t count(std::string_view rule_id) const {
    std::uint64_t n = 0;
    for (const Diagnostic& d : diagnostics) {
      if (d.rule_id == rule_id) ++n;
    }
    return n;
  }
};

[[nodiscard]] LintReport lint_mapping(const fm::FunctionSpec& spec,
                                      const fm::Mapping& mapping,
                                      const fm::MachineConfig& machine,
                                      const LintOptions& opts = {});

/// Lints a per-op placement table (fm/strategy/table_map.hpp) by
/// lowering it through fm::to_mapping — every rule (FM001–FM104) sees
/// exactly the mapping the table denotes, so a table-mapped winner gets
/// the same smell report an affine one would.
[[nodiscard]] LintReport lint_mapping(const fm::FunctionSpec& spec,
                                      const fm::TableMap& table,
                                      const fm::MachineConfig& machine,
                                      const LintOptions& opts = {});

}  // namespace harmony::analyze
