#include "analyze/race.hpp"

#include <sstream>

#include "support/error.hpp"

namespace harmony::analyze {

RaceCtx::RaceCtx(RaceOptions opts)
    : ws_(opts.workspan), sink_(opts.max_diagnostics) {
  // Root computation: procedure 0, S-bag = {0}, empty P-bag.
  paths_.push_back(PathNode{kNone, 0, -1});
  frames_.push_back(Frame{dsu_make(), 0, 0, kNone});
  ws_.set_observer(this);
}

RaceCtx::~RaceCtx() { ws_.set_observer(nullptr); }

// ---------------------------------------------------------------------
// SP-bags transitions.  fork2(f, g) behaves as "spawn f; spawn g; sync":
//   branch begin — child C starts with S_C = {C}, P_C = {};
//   branch end   — returning to parent F: P_F ∪= S_C ∪ P_C;
//   join (sync)  — S_F ∪= P_F; P_F = {}.
// An access races with a shadowed one iff the shadowed procedure's bag
// is a P-bag.
// ---------------------------------------------------------------------

void RaceCtx::on_fork() { fork_stack_.push_back(fork_seq_++); }

void RaceCtx::on_branch_begin(int which) {
  HARMONY_ASSERT(!fork_stack_.empty());
  const std::uint32_t proc = dsu_make();
  const auto node = static_cast<std::uint32_t>(paths_.size());
  paths_.push_back(PathNode{frames_.back().path, fork_stack_.back(),
                            static_cast<std::int8_t>(which)});
  frames_.push_back(Frame{proc, node, proc, kNone});
}

void RaceCtx::on_branch_end(int /*which*/) {
  HARMONY_ASSERT(frames_.size() >= 2);
  const Frame child = frames_.back();
  frames_.pop_back();
  Frame& parent = frames_.back();
  std::uint32_t merged = child.s_root;
  if (child.p_root != kNone) merged = dsu_union(merged, child.p_root);
  parent.p_root =
      parent.p_root == kNone ? merged : dsu_union(parent.p_root, merged);
  is_p_bag_[dsu_find(parent.p_root)] = true;
}

void RaceCtx::on_join() {
  HARMONY_ASSERT(!fork_stack_.empty());
  fork_stack_.pop_back();
  Frame& frame = frames_.back();
  if (frame.p_root != kNone) {
    frame.s_root = dsu_union(frame.s_root, frame.p_root);
    is_p_bag_[dsu_find(frame.s_root)] = false;
    frame.p_root = kNone;
  }
}

// ---------------------------------------------------------------------
// Union-find.
// ---------------------------------------------------------------------

std::uint32_t RaceCtx::dsu_make() {
  const auto id = static_cast<std::uint32_t>(dsu_parent_.size());
  dsu_parent_.push_back(id);
  dsu_rank_.push_back(0);
  is_p_bag_.push_back(false);  // a fresh singleton is its owner's S-bag
  return id;
}

std::uint32_t RaceCtx::dsu_find(std::uint32_t x) {
  while (dsu_parent_[x] != x) {
    dsu_parent_[x] = dsu_parent_[dsu_parent_[x]];  // path halving
    x = dsu_parent_[x];
  }
  return x;
}

std::uint32_t RaceCtx::dsu_union(std::uint32_t a, std::uint32_t b) {
  a = dsu_find(a);
  b = dsu_find(b);
  if (a == b) return a;
  if (dsu_rank_[a] < dsu_rank_[b]) std::swap(a, b);
  dsu_parent_[b] = a;
  if (dsu_rank_[a] == dsu_rank_[b]) ++dsu_rank_[a];
  return a;
}

bool RaceCtx::in_p_bag(std::uint32_t proc) {
  return is_p_bag_[dsu_find(proc)];
}

// ---------------------------------------------------------------------
// Shadow accesses.
// ---------------------------------------------------------------------

void RaceCtx::track_region(std::string name, std::uintptr_t base,
                           std::size_t elem_size, std::size_t count) {
  regions_.push_back(
      Region{base, base + elem_size * count, elem_size, std::move(name)});
}

void RaceCtx::access(std::uintptr_t base, std::size_t elem_size,
                     std::size_t index, std::size_t count, bool is_write) {
  for (std::size_t k = 0; k < count; ++k) {
    access_one(base + (index + k) * elem_size, is_write);
  }
}

void RaceCtx::access_one(std::uintptr_t addr, bool is_write) {
  const Frame& frame = frames_.back();
  Shadow& s = shadow_[addr];
  if (is_write) {
    // SP-bags write rule: racy against a logically parallel reader or
    // writer; the reader race dominates (it is the one SP-bags keeps).
    if (s.reader.proc != kNone && in_p_bag(s.reader.proc)) {
      report(addr, s, s.reader, /*cur_is_write=*/true);
    } else if (s.writer.proc != kNone && in_p_bag(s.writer.proc)) {
      report(addr, s, s.writer, /*cur_is_write=*/true);
    }
    s.writer = Access{frame.proc, frame.path, true};
  } else {
    if (s.writer.proc != kNone && in_p_bag(s.writer.proc)) {
      report(addr, s, s.writer, /*cur_is_write=*/false);
    }
    // Keep the reader whose bag is serial: it subsumes parallel ones for
    // future write checks.
    if (s.reader.proc == kNone || !in_p_bag(s.reader.proc)) {
      s.reader = Access{frame.proc, frame.path, false};
    }
  }
}

void RaceCtx::report(std::uintptr_t addr, Shadow& shadow, const Access& prev,
                     bool cur_is_write) {
  if (shadow.reported) return;  // one diagnostic per racy location
  shadow.reported = true;
  const bool write_write = prev.is_write && cur_is_write;
  const char* rule = write_write ? "RACE001" : "RACE002";
  std::ostringstream os;
  os << "determinacy race on " << name_of(addr) << ": "
     << (prev.is_write ? "write" : "read") << " at "
     << path_string(prev.path) << " is logically parallel with "
     << (cur_is_write ? "write" : "read") << " at "
     << path_string(frames_.back().path);
  Location loc;
  loc.op = name_of(addr);
  sink_.add(rule, std::move(loc), os.str());
}

std::string RaceCtx::path_string(std::uint32_t path) const {
  // Walk to the root collecting "f<seq>.<L|R>" labels, then reverse.
  std::vector<std::string> parts;
  for (std::uint32_t at = path; at != kNone; at = paths_[at].parent) {
    const PathNode& node = paths_[at];
    if (node.branch < 0) break;  // root
    parts.push_back("f" + std::to_string(node.fork_seq) +
                    (node.branch == 0 ? ".L" : ".R"));
  }
  std::string out = "main";
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += "/" + *it;
  }
  return out;
}

std::string RaceCtx::name_of(std::uintptr_t addr) const {
  // Newest registration wins so re-tracked regions shadow stale ones.
  for (auto it = regions_.rbegin(); it != regions_.rend(); ++it) {
    if (addr >= it->begin && addr < it->end) {
      return it->name + "[" +
             std::to_string((addr - it->begin) / it->elem_size) + "]";
    }
  }
  std::ostringstream os;
  os << "0x" << std::hex << addr;
  return os.str();
}

}  // namespace harmony::analyze
