// On-the-fly determinacy-race detection for the fork-join layer.
//
// Blelloch's work-depth model (paper §2) assumes race-free series-
// parallel programs; RaceCtx makes that assumption checkable.  It is a
// drop-in fork-join context (the same `work`/`fork2` concept as RealCtx
// and WorkSpanCtx, sched/parallel_ops.hpp) that executes the algorithm
// serially, records the series-parallel tree through WorkSpanCtx's
// instrumentation hooks, and runs the SP-bags algorithm (Feng &
// Leiserson, "Efficient Detection of Determinacy Races in Cilk
// Programs") on the side:
//
//   * every fork2 branch is a procedure; each procedure owns an S-bag
//     (descendants that logically precede the current strand) and a
//     P-bag (descendants logically parallel to it), maintained with a
//     union-find structure;
//   * kernels declare their memory accesses with reader()/writer()
//     annotations (no-ops under the other contexts via sched::reader /
//     sched::writer); each annotated location shadows its last writer
//     and a surviving reader;
//   * an access races with a shadowed one iff the shadowed access's
//     procedure sits in a P-bag — reported as a RACE001 (write-write) or
//     RACE002 (read-write) diagnostic carrying the fork-tree path of
//     *both* accesses ("main/f0.L/f2.R").
//
// One serial run flags a determinacy race iff the program has one for
// this input, and a clean run certifies determinacy for this input.
// Because shadow state is keyed by address, only annotate memory that
// outlives the parallel region it is shared across (a buffer freed and
// reallocated mid-run could alias a stale shadow entry).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "sched/workspan.hpp"

namespace harmony::analyze {

struct RaceOptions {
  /// Diagnostic records kept (counters keep counting past the cap).
  std::size_t max_diagnostics = 32;
  /// Forwarded to the underlying work-span analyzer.
  sched::WorkSpanCtx::Options workspan;
};

class RaceCtx final : public sched::ForkJoinObserver {
 public:
  explicit RaceCtx(RaceOptions opts = {});
  ~RaceCtx() override;

  RaceCtx(const RaceCtx&) = delete;
  RaceCtx& operator=(const RaceCtx&) = delete;

  static constexpr bool is_simulation = true;

  /// Charges `ops` units of sequential work on the current strand.
  void work(double ops) { ws_.work(ops); }

  /// Parallel composition; executes both closures serially while the
  /// WorkSpanCtx hooks drive the SP-bags state machine.
  template <typename F, typename G>
  void fork2(F&& f, G&& g) {
    ws_.fork2(std::forward<F>(f), std::forward<G>(g));
  }

  /// Names a memory region so race reports read "h[17]" instead of a
  /// raw address.  Optional; overlapping registrations keep the newest.
  template <typename T>
  void track(std::string name, const T* base, std::size_t count) {
    track_region(std::move(name), reinterpret_cast<std::uintptr_t>(base),
                 sizeof(T), count);
  }

  /// Declares that the current strand reads `count` elements starting at
  /// `base[index]`.
  template <typename T>
  void reader(const T* base, std::size_t index, std::size_t count = 1) {
    access(reinterpret_cast<std::uintptr_t>(base), sizeof(T), index, count,
           /*is_write=*/false);
  }

  /// Declares that the current strand writes `count` elements starting
  /// at `base[index]`.
  template <typename T>
  void writer(const T* base, std::size_t index, std::size_t count = 1) {
    access(reinterpret_cast<std::uintptr_t>(base), sizeof(T), index, count,
           /*is_write=*/true);
  }

  [[nodiscard]] const DiagnosticSink& diagnostics() const { return sink_; }
  /// Racy locations found (each location is reported at most once).
  [[nodiscard]] std::uint64_t race_count() const { return sink_.errors(); }
  [[nodiscard]] bool clean() const { return sink_.errors() == 0; }

  /// The underlying work-span analyzer — W, D, and greedy_time come for
  /// free with the race check.
  [[nodiscard]] const sched::WorkSpanCtx& workspan() const { return ws_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// One fork2 branch in flight (plus the root computation at bottom).
  struct Frame {
    std::uint32_t proc;    ///< this procedure's union-find element
    std::uint32_t path;    ///< index into paths_
    std::uint32_t s_root;  ///< root of the S-bag set
    std::uint32_t p_root;  ///< root of the P-bag set, kNone when empty
  };

  /// Fork-tree path node: branch `branch` of fork #`fork_seq`.
  struct PathNode {
    std::uint32_t parent;
    std::uint64_t fork_seq;
    std::int8_t branch;  ///< 0 = left, 1 = right, -1 = root
  };

  struct Access {
    std::uint32_t proc = kNone;
    std::uint32_t path = 0;
    bool is_write = false;
  };

  struct Shadow {
    Access writer;
    Access reader;
    bool reported = false;
  };

  struct Region {
    std::uintptr_t begin;
    std::uintptr_t end;
    std::size_t elem_size;
    std::string name;
  };

  // ForkJoinObserver — the SP-bags transitions.
  void on_fork() override;
  void on_branch_begin(int which) override;
  void on_branch_end(int which) override;
  void on_join() override;

  void track_region(std::string name, std::uintptr_t base,
                    std::size_t elem_size, std::size_t count);
  void access(std::uintptr_t base, std::size_t elem_size, std::size_t index,
              std::size_t count, bool is_write);
  void access_one(std::uintptr_t addr, bool is_write);
  void report(std::uintptr_t addr, Shadow& shadow, const Access& prev,
              bool cur_is_write);

  [[nodiscard]] std::uint32_t dsu_make();
  [[nodiscard]] std::uint32_t dsu_find(std::uint32_t x);
  [[nodiscard]] std::uint32_t dsu_union(std::uint32_t a, std::uint32_t b);
  [[nodiscard]] bool in_p_bag(std::uint32_t proc);

  [[nodiscard]] std::string path_string(std::uint32_t path) const;
  [[nodiscard]] std::string name_of(std::uintptr_t addr) const;

  sched::WorkSpanCtx ws_;
  DiagnosticSink sink_;
  std::vector<std::uint32_t> dsu_parent_;
  std::vector<std::uint8_t> dsu_rank_;
  std::vector<bool> is_p_bag_;  ///< bag kind, valid at set roots
  std::vector<Frame> frames_;   ///< stack; frames_[0] = root computation
  std::vector<std::uint64_t> fork_stack_;  ///< fork seq of open fork2s
  std::vector<PathNode> paths_;
  std::unordered_map<std::uintptr_t, Shadow> shadow_;
  std::vector<Region> regions_;
  std::uint64_t fork_seq_ = 0;
};

}  // namespace harmony::analyze
