#include "analyze/witness.hpp"

#include <algorithm>
#include <cstring>

namespace harmony::analyze {

namespace {

bool is(const trace::Event& e, const char* cat, const char* name) {
  return e.cat != nullptr && e.name != nullptr &&
         std::strcmp(e.cat, cat) == 0 && std::strcmp(e.name, name) == 0;
}

}  // namespace

ForkJoinWitness extract_forkjoin_witness(const trace::Capture& capture) {
  ForkJoinWitness w;
  w.dropped = capture.dropped;
  for (const trace::Event& e : capture.events) {
    if (e.kind != trace::EventKind::kSpan) continue;  // counters sample state
    w.spans.push_back({e.cat, e.name, e.tid, e.begin_ns, e.end_ns});
    if (is(e, "fm", "grain")) {
      w.grains.push_back({e.id, e.arg0, e.arg1, e.tid, e.begin_ns, e.end_ns});
    } else if (is(e, "sched", "run")) {
      w.runs.push_back({e.arg0, e.tid, e.begin_ns, e.end_ns});
    } else if (is(e, "sched", "steal")) {
      w.steals.push_back({e.arg0, e.arg1, e.begin_ns});
    }
  }
  return w;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> grain_digest(
    const ForkJoinWitness& w) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> digest;
  digest.reserve(w.grains.size());
  for (const ForkJoinWitness::Grain& g : w.grains) {
    digest.emplace_back(g.lo, g.hi);
  }
  std::sort(digest.begin(), digest.end());
  return digest;
}

}  // namespace harmony::analyze
