// Span→witness extraction: turning a harmony::trace capture into the
// fork-join relational witness analyze::ExecChecker consumes.
//
// The runtime already narrates its own execution as spans: each
// search-lane grain records ("fm", "grain", id = lane, args = [lo, hi)
// slot range), each scheduler worker records ("sched", "run",
// arg0 = worker index) around its loop, and every successful steal
// records ("sched", "steal", arg0 = thief, arg1 = victim).  The
// extractor is deterministic — a pure function of the capture, no
// clocks, no configuration — so a fixture trace round-trips to a
// golden witness (tests/analyze_witness_test.cpp).
//
// Wall-clock timestamps vary run to run and lane assignment is
// timing-dependent under the live grain ticket, but the *logical*
// content of an uncancelled search is not: the set of [lo, hi) grain
// slot ranges is fixed by (begin, end, grain_slots) alone.
// grain_digest() projects a witness onto that invariant — tests pin it
// byte-identical across worker counts.
//
// A full ring drops the *oldest* events and counts them; the extractor
// carries that count into the witness so the checker can degrade to an
// EXEC009 warning (incomplete evidence) instead of issuing a false
// clean verdict.  DESIGN.md §14.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace harmony::analyze {

/// One traced scheduler/search run as a relational structure.  Field
/// contract: one witness per traced run — captures that interleave
/// several searches reuse lane ids across tids and must be split
/// before extraction (the tests and the CLI capture one run at a
/// time).
struct ForkJoinWitness {
  /// Every span in the capture (capture order: begin_ns, then tid).
  /// `cat` / `name` alias the capture's string literals.
  struct SpanEvent {
    const char* cat = nullptr;
    const char* name = nullptr;
    std::uint32_t tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
  };
  /// One search-lane grain: lane `lane` evaluated slots [lo, hi).
  struct Grain {
    std::uint64_t lane = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint32_t tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
  };
  /// One successful steal: `thief` took work from `victim`.
  struct Steal {
    std::uint64_t thief = 0;
    std::uint64_t victim = 0;
    std::uint64_t at_ns = 0;
  };
  /// One scheduler worker's run session.
  struct Run {
    std::uint64_t worker = 0;
    std::uint32_t tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
  };

  std::vector<SpanEvent> spans;
  std::vector<Grain> grains;
  std::vector<Steal> steals;
  std::vector<Run> runs;
  /// Events lost to ring wrap (trace::Capture::dropped).  Nonzero
  /// downgrades a clean verdict to advisory (EXEC009).
  std::uint64_t dropped = 0;

  [[nodiscard]] bool complete() const { return dropped == 0; }
};

/// Deterministically projects a capture onto the witness: grain / run /
/// steal spans by (cat, name), every span into `spans`, the drop count
/// into `dropped`.  Counters are ignored (they sample state, they are
/// not events of the fork-join order).
[[nodiscard]] ForkJoinWitness extract_forkjoin_witness(
    const trace::Capture& capture);

/// The worker-count-invariant projection: all grain [lo, hi) slot
/// ranges, sorted.  Lane ids, thread ids, and timestamps — everything
/// the grain ticket makes timing-dependent — are dropped; what remains
/// is fixed by the enumeration geometry, so an uncancelled search
/// yields the same digest at any worker count.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
grain_digest(const ForkJoinWitness& w);

}  // namespace harmony::analyze
