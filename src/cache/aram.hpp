// Asymmetric RAM (ARAM) cost accounting (Blelloch, paper §2).
//
// "There are even reasonably simple extensions that support accounting for
// locality, as well as asymmetry in read-write costs."  In the ARAM model
// (Blelloch et al., "Efficient Algorithms with Asymmetric Read and Write
// Costs", ESA 2016) a write to large memory costs ω >= 1 units against 1
// per read — modelling NVM.  AramCounter tallies both and prices a run at
// any ω after the fact, so one simulation serves a whole ω sweep (E11).
#pragma once

#include <cstddef>
#include <cstdint>

#include "cache/traced.hpp"

namespace harmony::cache {

class AramCounter final : public MemorySink {
 public:
  void on_read(Addr, std::size_t) override { ++reads_; }
  void on_write(Addr, std::size_t) override { ++writes_; }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  /// ARAM cost with write-cost multiplier ω.
  [[nodiscard]] double cost(double omega) const {
    return static_cast<double>(reads_) +
           omega * static_cast<double>(writes_);
  }

  void reset() { reads_ = writes_ = 0; }

 private:
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace harmony::cache
