#include "cache/cache.hpp"

#include <algorithm>
#include <bit>

namespace harmony::cache {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

const char* replacement_name(Replacement r) {
  switch (r) {
    case Replacement::kLru:
      return "LRU";
    case Replacement::kFifo:
      return "FIFO";
    case Replacement::kRandom:
      return "random";
  }
  return "?";
}

CacheLevel::CacheLevel(const CacheConfig& cfg) : cfg_(cfg) {
  HARMONY_REQUIRE(is_pow2(cfg.line_bytes), "CacheLevel: line size not 2^k");
  HARMONY_REQUIRE(cfg.size_bytes >= cfg.line_bytes &&
                      cfg.size_bytes % cfg.line_bytes == 0,
                  "CacheLevel: size must be a multiple of the line size");
  const std::size_t total_lines = cfg.size_bytes / cfg.line_bytes;
  ways_ = cfg.associativity == 0 ? total_lines : cfg.associativity;
  HARMONY_REQUIRE(total_lines % ways_ == 0,
                  "CacheLevel: lines not divisible by associativity");
  num_sets_ = total_lines / ways_;
  HARMONY_REQUIRE(is_pow2(num_sets_), "CacheLevel: set count not 2^k");
  lines_.assign(total_lines, Line{});
}

CacheLevel::Outcome CacheLevel::access(Addr addr, bool is_write) {
  ++clock_;
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  const Addr line_addr = addr / cfg_.line_bytes;
  const std::size_t set = static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
  const Addr tag = line_addr / num_sets_;
  Line* base = &lines_[set * ways_];

  for (std::size_t w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      // FIFO keeps the insertion stamp; LRU refreshes on every touch.
      if (cfg_.replacement == Replacement::kLru) l.lru = clock_;
      l.dirty = l.dirty || is_write;
      return Outcome{.hit = true};
    }
  }
  // Miss: pick the LRU way (preferring invalid ones).
  if (is_write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }
  std::size_t victim = 0;
  bool found_invalid = false;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  if (!found_invalid && cfg_.replacement == Replacement::kRandom) {
    // Deterministic xorshift64 victim choice among valid ways.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    victim = static_cast<std::size_t>(rng_state_ % ways_);
  }
  Line& v = base[victim];
  Outcome out;
  if (v.valid) {
    ++stats_.evictions;
    if (v.dirty) {
      ++stats_.writebacks;
      out.evicted_dirty = true;
      out.victim_line = (v.tag * num_sets_ + set) * cfg_.line_bytes;
    }
  }
  v.valid = true;
  v.tag = tag;
  v.dirty = is_write;
  v.lru = clock_;
  return out;
}

void CacheLevel::flush() {
  for (Line& l : lines_) l = Line{};
}

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> configs) {
  levels_.reserve(configs.size());
  std::size_t line = configs.empty() ? 64 : configs.front().line_bytes;
  for (const auto& cfg : configs) {
    HARMONY_REQUIRE(cfg.line_bytes == line,
                    "CacheHierarchy: all levels must share one line size");
    levels_.emplace_back(cfg);
  }
  line_bytes_ = line;
}

const LevelStats& CacheHierarchy::level_stats(std::size_t i) const {
  HARMONY_REQUIRE(i < levels_.size(), "level_stats: index out of range");
  return levels_[i].stats();
}

const CacheConfig& CacheHierarchy::level_config(std::size_t i) const {
  HARMONY_REQUIRE(i < levels_.size(), "level_config: index out of range");
  return levels_[i].config();
}

void CacheHierarchy::read(Addr addr, std::size_t bytes) {
  access(addr, bytes, /*is_write=*/false);
}

void CacheHierarchy::write(Addr addr, std::size_t bytes) {
  access(addr, bytes, /*is_write=*/true);
}

void CacheHierarchy::access(Addr addr, std::size_t bytes, bool is_write) {
  if (bytes == 0) return;
  // Split into line-granular probes.
  const Addr first = addr / line_bytes_;
  const Addr last = (addr + bytes - 1) / line_bytes_;
  for (Addr line = first; line <= last; ++line) {
    access_line(0, line * line_bytes_, is_write);
  }
}

void CacheHierarchy::access_line(std::size_t from, Addr line_addr,
                                 bool is_write) {
  for (std::size_t i = from; i < levels_.size(); ++i) {
    const CacheLevel::Outcome out = levels_[i].access(line_addr, is_write);
    if (out.evicted_dirty) {
      // Dirty victim propagates as a write one level down.
      if (i + 1 < levels_.size()) {
        access_line(i + 1, out.victim_line, /*is_write=*/true);
      } else {
        ++mem_writes_;
      }
    }
    if (out.hit) return;
    // Miss: the fill comes from the next level as a read (even for a
    // write miss — write-allocate fetches the line first).
    is_write = false;
  }
  // With no cache levels, the original access reaches memory directly;
  // otherwise this is always a (read) line fill.
  if (is_write) {
    ++mem_writes_;
  } else {
    ++mem_reads_;
  }
}

void CacheHierarchy::flush() {
  // Count dirty lines still resident as writebacks to memory.  Simplest
  // faithful model: walk each level via repeated conflict eviction is
  // overkill; instead we conservatively flush without traffic accounting
  // for clean lines and rely on tests using reset_stats() + fresh runs.
  for (auto& l : levels_) l.flush();
}

void CacheHierarchy::reset_stats() {
  // Statistics live inside CacheLevel; recreate levels with same configs
  // but preserve contents?  Measurement protocol in this library is
  // "construct, run, read stats", so resetting by flushing is acceptable.
  std::vector<CacheConfig> cfgs;
  cfgs.reserve(levels_.size());
  for (auto& l : levels_) cfgs.push_back(l.config());
  *this = CacheHierarchy(std::move(cfgs));
}

CacheHierarchy make_single_level(std::size_t size_bytes,
                                 std::size_t line_bytes,
                                 std::size_t associativity) {
  return CacheHierarchy({CacheConfig{.name = "L1",
                                     .size_bytes = size_bytes,
                                     .line_bytes = line_bytes,
                                     .associativity = associativity}});
}

CacheHierarchy make_three_level() {
  return CacheHierarchy({
      CacheConfig{.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64,
                  .associativity = 8},
      CacheConfig{.name = "L2", .size_bytes = 512 * 1024, .line_bytes = 64,
                  .associativity = 8},
      CacheConfig{.name = "L3", .size_bytes = 8 * 1024 * 1024,
                  .line_bytes = 64, .associativity = 16},
  });
}

}  // namespace harmony::cache
