// Multilevel cache hierarchy simulator (Blelloch, paper §2).
//
// "It is easy to add a one level cache to the RAM model ... when algorithms
// developed in this model satisfy a property of being cache oblivious, they
// will also work effectively on a multilevel cache."  This module provides
// the instrument that claim is tested with: a deterministic write-back,
// write-allocate, LRU, set-associative hierarchy with per-level statistics
// plus main-memory traffic counters (which also feed the asymmetric
// read/write ARAM cost model, aram.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace harmony::cache {

using Addr = std::uint64_t;

enum class Replacement {
  kLru,     ///< true LRU (timestamp per way)
  kFifo,    ///< insertion order (hits do not refresh)
  kRandom,  ///< deterministic xorshift victim choice
};

[[nodiscard]] const char* replacement_name(Replacement r);

struct CacheConfig {
  std::string name = "L?";
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  /// Ways per set; 0 means fully associative.
  std::size_t associativity = 8;
  Replacement replacement = Replacement::kLru;
};

struct LevelStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const { return reads + writes; }
  [[nodiscard]] std::uint64_t misses() const {
    return read_misses + write_misses;
  }
  [[nodiscard]] double miss_rate() const {
    const auto a = accesses();
    return a ? static_cast<double>(misses()) / static_cast<double>(a) : 0.0;
  }
};

/// One set-associative level with true-LRU replacement.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& cfg);

  /// Result of probing this level with one line-sized request.
  struct Outcome {
    bool hit = false;
    bool evicted_dirty = false;  ///< a dirty victim must be written back
    Addr victim_line = 0;        ///< line address of the written-back victim
  };

  /// Accesses the line containing `addr`.  On a miss, allocates the line
  /// (write-allocate) and reports any dirty eviction.
  Outcome access(Addr addr, bool is_write);

  /// Invalidates everything (keeps statistics).
  void flush();

  [[nodiscard]] const LevelStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }
  [[nodiscard]] std::size_t num_ways() const { return ways_; }

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::size_t ways_;
  std::vector<Line> lines_;  // num_sets_ * ways_, row-major by set
  std::uint64_t clock_ = 0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;  // kRandom victims
  LevelStats stats_;
};

/// A stack of cache levels in front of main memory.
class CacheHierarchy {
 public:
  /// `configs` ordered nearest-first (L1, L2, ...).  May be empty (then
  /// every access goes straight to memory — the RAM model).
  explicit CacheHierarchy(std::vector<CacheConfig> configs);

  /// Simulates a load of `bytes` bytes at `addr` (split across lines).
  void read(Addr addr, std::size_t bytes);
  /// Simulates a store of `bytes` bytes at `addr`.
  void write(Addr addr, std::size_t bytes);

  /// Drops all cached lines; dirty lines are written back to memory
  /// (counted).  Call between measurement phases for cold-cache runs.
  void flush();

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const LevelStats& level_stats(std::size_t i) const;
  [[nodiscard]] const CacheConfig& level_config(std::size_t i) const;

  /// Line transfers that reached main memory.
  [[nodiscard]] std::uint64_t memory_line_reads() const { return mem_reads_; }
  [[nodiscard]] std::uint64_t memory_line_writes() const {
    return mem_writes_;
  }
  [[nodiscard]] std::uint64_t memory_traffic_lines() const {
    return mem_reads_ + mem_writes_;
  }

  /// Resets all statistics (cache contents are kept).
  void reset_stats();

 private:
  void access(Addr addr, std::size_t bytes, bool is_write);
  /// Sends one line access down from level `from`; handles recursive
  /// miss/writeback propagation.
  void access_line(std::size_t from, Addr line_addr, bool is_write);

  std::vector<CacheLevel> levels_;
  std::size_t line_bytes_;
  std::uint64_t mem_reads_ = 0;
  std::uint64_t mem_writes_ = 0;
};

/// Convenience factories for the configurations used by tests/benches.
[[nodiscard]] CacheHierarchy make_single_level(std::size_t size_bytes,
                                               std::size_t line_bytes,
                                               std::size_t associativity = 0);
/// A three-level hierarchy loosely shaped like a 2021 server core
/// (32 KiB L1 / 512 KiB L2 / 8 MiB L3, 64 B lines).
[[nodiscard]] CacheHierarchy make_three_level();

}  // namespace harmony::cache
