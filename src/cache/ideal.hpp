// Ideal-cache (cache-oblivious) analytical miss bounds.
//
// Q(n; M, B) formulas from Frigo, Leiserson, Prokop, Ramachandran,
// "Cache-Oblivious Algorithms" (FOCS 1999), used as the theory side of
// experiment E5: the simulated LRU miss counts of the cache-oblivious
// kernels must sit within a small constant factor of these bounds
// (LRU is 2-competitive with OPT at twice the capacity).
#pragma once

#include <cmath>
#include <cstddef>

#include "support/error.hpp"

namespace harmony::cache {

/// Parameters of the ideal cache: capacity M bytes, line size B bytes.
struct IdealCache {
  double capacity_bytes;
  double line_bytes;

  [[nodiscard]] double lines() const { return capacity_bytes / line_bytes; }
};

/// Misses for a sequential scan of n elements of `elem` bytes:
/// Q = ceil(n*elem/B) + 1.
[[nodiscard]] inline double scan_misses(const IdealCache& c, double n,
                                        double elem_bytes) {
  return std::ceil(n * elem_bytes / c.line_bytes) + 1.0;
}

/// Misses for cache-oblivious n x n transpose: Theta(n^2*elem/B),
/// provided the cache is tall (M >= B^2 in elements).
[[nodiscard]] inline double transpose_misses(const IdealCache& c, double n,
                                             double elem_bytes) {
  return 2.0 * n * n * elem_bytes / c.line_bytes;
}

/// Misses for cache-oblivious n x n x n matrix multiply:
/// Theta(n^3 * elem / (B * sqrt(M))).
[[nodiscard]] inline double matmul_misses(const IdealCache& c, double n,
                                          double elem_bytes) {
  HARMONY_REQUIRE(c.capacity_bytes > 0, "matmul_misses: empty cache");
  const double m_elems = c.capacity_bytes / elem_bytes;
  return n * n * n * elem_bytes / (c.line_bytes * std::sqrt(m_elems));
}

/// Misses for naive (ikj-untiled) n x n x n matrix multiply when n^2
/// elements overflow the cache: Theta(n^3 / B) for the streaming operand
/// plus Theta(n^3) for the strided one in the worst (kij) order.  We
/// report the n^3*elem/B streaming bound; callers compare shapes.
[[nodiscard]] inline double matmul_naive_misses(const IdealCache& c, double n,
                                                double elem_bytes) {
  return n * n * n * elem_bytes / c.line_bytes;
}

}  // namespace harmony::cache
