#include "cache/reuse.hpp"

#include "support/error.hpp"

namespace harmony::cache {

ReuseProfiler::ReuseProfiler(std::size_t line_bytes)
    : line_bytes_(line_bytes) {
  HARMONY_REQUIRE(line_bytes > 0, "ReuseProfiler: line size required");
}

void ReuseProfiler::on_read(Addr addr, std::size_t bytes) {
  touch(addr, bytes);
}

void ReuseProfiler::on_write(Addr addr, std::size_t bytes) {
  touch(addr, bytes);
}

void ReuseProfiler::touch(Addr addr, std::size_t bytes) {
  if (bytes == 0) return;
  const Addr first = addr / line_bytes_;
  const Addr last = (addr + bytes - 1) / line_bytes_;
  for (Addr line = first; line <= last; ++line) {
    ++accesses_;
    auto it = where_.find(line);
    if (it == where_.end()) {
      ++cold_;
    } else {
      // Depth of the line in the stack = #distinct lines above it.
      std::uint64_t depth = 0;
      for (auto walk = stack_.begin(); walk != it->second; ++walk) {
        ++depth;
      }
      ++histogram_[depth];
      stack_.erase(it->second);
    }
    stack_.push_front(line);
    where_[line] = stack_.begin();
  }
}

std::uint64_t ReuseProfiler::predicted_misses(std::size_t lines) const {
  HARMONY_REQUIRE(lines > 0, "predicted_misses: capacity required");
  std::uint64_t misses = cold_;
  for (const auto& [distance, count] : histogram_) {
    if (distance >= lines) misses += count;
  }
  return misses;
}

std::size_t ReuseProfiler::working_set_lines(double slack) const {
  const auto floor = static_cast<double>(cold_);
  std::size_t lines = 1;
  // Distances are sorted; the knee is the first capacity where all
  // finite-distance reuses hit within the slack.
  std::uint64_t tail = 0;
  for (const auto& [distance, count] : histogram_) {
    (void)distance;
    tail += count;
  }
  for (const auto& [distance, count] : histogram_) {
    if (static_cast<double>(tail) <= slack * floor + 1.0) break;
    lines = static_cast<std::size_t>(distance) + 1;
    tail -= count;
  }
  return lines;
}

}  // namespace harmony::cache
