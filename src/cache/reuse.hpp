// LRU stack-distance (reuse-distance) profiling (Mattson et al., IBM
// Systems Journal 1970) — the one-pass analysis behind the ideal-cache
// model's practicality: a single trace yields the fully-associative LRU
// miss count for *every* capacity simultaneously, because LRU has the
// stack inclusion property.
//
// Used as a second, independent implementation of LRU semantics: tests
// require predicted_misses(L) to equal the CacheLevel simulator's misses
// for a fully-associative L-line cache, exactly, for every L probed.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "cache/traced.hpp"

namespace harmony::cache {

class ReuseProfiler final : public MemorySink {
 public:
  explicit ReuseProfiler(std::size_t line_bytes = 64);

  void on_read(Addr addr, std::size_t bytes) override;
  void on_write(Addr addr, std::size_t bytes) override;

  /// Total line-granular accesses observed.
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  /// First-touch (compulsory) misses — infinite stack distance.
  [[nodiscard]] std::uint64_t cold_misses() const { return cold_; }
  /// Histogram: stack distance -> occurrence count (finite distances).
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& histogram()
      const {
    return histogram_;
  }

  /// Predicted misses of a fully-associative LRU cache holding `lines`
  /// lines: cold misses + accesses whose stack distance >= lines.
  [[nodiscard]] std::uint64_t predicted_misses(std::size_t lines) const;

  /// Smallest capacity (in lines) whose predicted miss count is within
  /// `slack` of the compulsory floor — the working-set knee.
  [[nodiscard]] std::size_t working_set_lines(double slack = 0.01) const;

 private:
  void touch(Addr addr, std::size_t bytes);

  std::size_t line_bytes_;
  // LRU stack: front = most recent.  Position lookups via iterator map;
  // the depth walk is O(distance) per access.
  std::list<Addr> stack_;
  std::unordered_map<Addr, std::list<Addr>::iterator> where_;
  std::map<std::uint64_t, std::uint64_t> histogram_;
  std::uint64_t cold_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace harmony::cache
