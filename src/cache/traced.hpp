// Traced arrays: real data plus a memory-access event stream.
//
// Cache experiments need algorithms to run on *actual data* (so results can
// be validated) while every element access is reported to a model — a cache
// hierarchy, an ARAM read/write counter, or both.  TracedArray<T> wraps a
// vector and forwards each get/set to a MemorySink with a stable simulated
// address; PlainArray<T> has the identical interface with zero overhead, so
// one templated kernel serves both the measured and the fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "support/error.hpp"

namespace harmony::cache {

/// Receiver of simulated memory events.
class MemorySink {
 public:
  virtual ~MemorySink() = default;
  virtual void on_read(Addr addr, std::size_t bytes) = 0;
  virtual void on_write(Addr addr, std::size_t bytes) = 0;
};

/// Adapts a CacheHierarchy to the MemorySink interface.
class CacheSink final : public MemorySink {
 public:
  explicit CacheSink(CacheHierarchy& h) : hierarchy_(&h) {}
  void on_read(Addr addr, std::size_t bytes) override {
    hierarchy_->read(addr, bytes);
  }
  void on_write(Addr addr, std::size_t bytes) override {
    hierarchy_->write(addr, bytes);
  }

 private:
  CacheHierarchy* hierarchy_;
};

/// Fans one event stream out to several sinks (e.g. cache + ARAM).
class TeeSink final : public MemorySink {
 public:
  explicit TeeSink(std::vector<MemorySink*> sinks)
      : sinks_(std::move(sinks)) {}
  void on_read(Addr addr, std::size_t bytes) override {
    for (auto* s : sinks_) s->on_read(addr, bytes);
  }
  void on_write(Addr addr, std::size_t bytes) override {
    for (auto* s : sinks_) s->on_write(addr, bytes);
  }

 private:
  std::vector<MemorySink*> sinks_;
};

/// Hands out non-overlapping simulated address ranges, page-aligned so
/// distinct arrays never share a cache line.
class AddressSpace {
 public:
  explicit AddressSpace(Addr base = 0x10000, std::size_t align = 4096)
      : next_(base), align_(align) {}

  Addr allocate(std::size_t bytes) {
    const Addr a = next_;
    const Addr size = (bytes + align_ - 1) / align_ * align_;
    next_ += size + align_;  // guard page between arrays
    return a;
  }

 private:
  Addr next_;
  std::size_t align_;
};

/// An array whose element accesses are reported to a MemorySink.
template <typename T>
class TracedArray {
 public:
  TracedArray(std::size_t n, AddressSpace& space, MemorySink& sink)
      : data_(n), base_(space.allocate(n * sizeof(T))), sink_(&sink) {}

  TracedArray(std::vector<T> init, AddressSpace& space, MemorySink& sink)
      : data_(std::move(init)),
        base_(space.allocate(data_.size() * sizeof(T))),
        sink_(&sink) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] T get(std::size_t i) const {
    HARMONY_ASSERT(i < data_.size());
    sink_->on_read(base_ + i * sizeof(T), sizeof(T));
    return data_[i];
  }

  void set(std::size_t i, const T& v) {
    HARMONY_ASSERT(i < data_.size());
    sink_->on_write(base_ + i * sizeof(T), sizeof(T));
    data_[i] = v;
  }

  /// Untraced view of the underlying storage (for result validation).
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }
  [[nodiscard]] std::vector<T>& raw_mutable() { return data_; }
  [[nodiscard]] Addr base_address() const { return base_; }

 private:
  std::vector<T> data_;
  Addr base_;
  MemorySink* sink_;
};

/// Interface-compatible untraced array: the fast path.
template <typename T>
class PlainArray {
 public:
  explicit PlainArray(std::size_t n) : data_(n) {}
  explicit PlainArray(std::vector<T> init) : data_(std::move(init)) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] T get(std::size_t i) const { return data_[i]; }
  void set(std::size_t i, const T& v) { data_[i] = v; }
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }
  [[nodiscard]] std::vector<T>& raw_mutable() { return data_; }

 private:
  std::vector<T> data_;
};

}  // namespace harmony::cache
