// The alpha-beta communication cost model (Yelick, paper §6).
//
// "Algorithms must also treat communication avoidance as a first-class
//  optimization target, reducing both data movement volume and number of
//  distinct events."
//
// A message of w words costs  alpha + beta * w  time: alpha is the
// per-message latency/overhead ("number of distinct events"), beta the
// per-word bandwidth cost ("data movement volume").  Energy is priced
// per message and per word analogously.  The defaults are loosely a 2021
// HPC interconnect: alpha = 1 us, beta = 1 ns/word (8 GB/s per link for
// 8-byte words), 0.5 nJ/word off-node (consistent with the paper's
// "off chip is an order of magnitude more expensive" scaled up to
// off-node).
#pragma once

#include <cstdint>

#include "support/units.hpp"

namespace harmony::comm {

struct AlphaBeta {
  Time alpha = Time::nanoseconds(1000.0);      ///< per message
  Time beta = Time::nanoseconds(1.0);          ///< per 64-bit word
  /// BSP's L: barrier/synchronization latency charged once per
  /// superstep (the "global synchronization" cost Yelick's statement
  /// warns about).
  Time barrier = Time::nanoseconds(2000.0);
  Time flop = Time::picoseconds(100.0);        ///< per local flop
  Energy energy_per_message = Energy::nanojoules(20.0);
  Energy energy_per_word = Energy::nanojoules(0.5);
  Energy energy_per_flop = Energy::femtojoules(16.0);  ///< 32 bits @0.5fJ/b

  [[nodiscard]] Time message_time(std::uint64_t words) const {
    return alpha + beta * static_cast<double>(words);
  }
  [[nodiscard]] Energy message_energy(std::uint64_t words) const {
    return energy_per_message +
           energy_per_word * static_cast<double>(words);
  }
  [[nodiscard]] Time compute_time(double flops) const {
    return flop * flops;
  }
};

/// Tally of one process's (or one phase's) communication.
struct CommLedger {
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  double flops = 0.0;

  void add_message(std::uint64_t w) {
    ++messages;
    words += w;
  }
  CommLedger& operator+=(const CommLedger& o) {
    messages += o.messages;
    words += o.words;
    flops += o.flops;
    return *this;
  }

  [[nodiscard]] Time time(const AlphaBeta& m) const {
    return m.alpha * static_cast<double>(messages) +
           m.beta * static_cast<double>(words) + m.compute_time(flops);
  }
  [[nodiscard]] Energy energy(const AlphaBeta& m) const {
    return m.energy_per_message * static_cast<double>(messages) +
           m.energy_per_word * static_cast<double>(words) +
           m.energy_per_flop * flops;
  }
};

}  // namespace harmony::comm
