#include "comm/bsp.hpp"

#include <algorithm>

namespace harmony::comm {

BspMachine::BspMachine(int num_procs, AlphaBeta model)
    : model_(model),
      inboxes_(static_cast<std::size_t>(num_procs)),
      outboxes_(static_cast<std::size_t>(num_procs)),
      sent_words_(static_cast<std::size_t>(num_procs), 0),
      sent_msgs_(static_cast<std::size_t>(num_procs), 0) {
  HARMONY_REQUIRE(num_procs >= 1, "BspMachine: need >= 1 process");
}

const std::vector<Message>& BspMachine::Proc::inbox() const {
  return machine_->inboxes_[static_cast<std::size_t>(rank_)];
}

void BspMachine::Proc::send(int dst, std::vector<double> payload, int tag) {
  HARMONY_REQUIRE(dst >= 0 && dst < nprocs(), "Proc::send: bad rank");
  auto& out = machine_->outboxes_[static_cast<std::size_t>(dst)];
  machine_->sent_words_[static_cast<std::size_t>(rank_)] += payload.size();
  ++machine_->sent_msgs_[static_cast<std::size_t>(rank_)];
  out.push_back(Message{rank_, tag, std::move(payload)});
}

void BspMachine::superstep(const std::function<void(Proc&)>& body) {
  HARMONY_REQUIRE(body != nullptr, "BspMachine::superstep: null body");
  const auto p = static_cast<std::size_t>(num_procs());
  std::fill(sent_words_.begin(), sent_words_.end(), 0);
  std::fill(sent_msgs_.begin(), sent_msgs_.end(), 0);

  double max_flops = 0.0;
  double step_flops = 0.0;
  for (std::size_t r = 0; r < p; ++r) {
    Proc proc(*this, static_cast<int>(r));
    body(proc);
    max_flops = std::max(max_flops, proc.flops_);
    step_flops += proc.flops_;
    stats_.total_flops += proc.flops_;
  }

  // Exchange: outboxes become next-superstep inboxes, ordered by sender.
  std::vector<std::uint64_t> recv_words(p, 0);
  std::vector<std::uint64_t> recv_msgs(p, 0);
  for (std::size_t dst = 0; dst < p; ++dst) {
    auto& box = outboxes_[dst];
    std::stable_sort(box.begin(), box.end(),
                     [](const Message& a, const Message& b) {
                       return a.src < b.src;
                     });
    for (const Message& msg : box) {
      recv_words[dst] += msg.payload.size();
      ++recv_msgs[dst];
      stats_.total_words += msg.payload.size();
      ++stats_.total_messages;
    }
    inboxes_[dst] = std::move(box);
    box.clear();
  }

  // Cost of the superstep at the critical process.
  std::uint64_t max_h = 0;
  std::uint64_t max_msgs = 0;
  for (std::size_t r = 0; r < p; ++r) {
    max_h = std::max(max_h, sent_words_[r] + recv_words[r]);
    max_msgs = std::max(max_msgs, sent_msgs_[r] + recv_msgs[r]);
  }
  stats_.max_h_relation = std::max(stats_.max_h_relation, max_h);
  stats_.time += model_.barrier + model_.compute_time(max_flops) +
                 model_.alpha * static_cast<double>(max_msgs) +
                 model_.beta * static_cast<double>(max_h);
  // Energy is additive over all traffic and arithmetic, not critical-path.
  std::uint64_t step_words = 0;
  std::uint64_t step_msgs = 0;
  for (std::size_t r = 0; r < p; ++r) {
    step_words += sent_words_[r];
    step_msgs += sent_msgs_[r];
  }
  stats_.energy += model_.energy_per_message *
                       static_cast<double>(step_msgs) +
                   model_.energy_per_word * static_cast<double>(step_words) +
                   model_.energy_per_flop * step_flops;
  ++stats_.supersteps;
}

void BspMachine::run_until(
    const std::function<bool(int step)>& continue_predicate,
    const std::function<void(Proc&)>& body) {
  int step = 0;
  while (continue_predicate(step)) {
    superstep(body);
    ++step;
  }
}

}  // namespace harmony::comm
