// Bulk-synchronous distributed-memory machine simulator (Yelick, §6).
//
// P processes with private memories advance through supersteps: local
// compute, message exchange, barrier.  Messages sent in superstep s are
// visible in the receivers' inboxes during superstep s+1.  Per-superstep
// cost follows the alpha-beta model applied to the *critical process*:
//
//   T_step = max_p(compute_p) + alpha * max_p(msgs_p) + beta * max_p(h_p)
//
// where h_p is process p's h-relation (words sent + received).  The
// simulator is single-threaded and deterministic: inboxes are ordered by
// (sender, send sequence).  Used by the communication-avoiding matmul
// (E4) and the latency-hiding study (E14).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/alphabeta.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace harmony::comm {

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<double> payload;
};

struct BspStats {
  std::int64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_words = 0;
  double total_flops = 0.0;
  /// Critical-path cost accumulated superstep by superstep.
  Time time = Time::zero();
  Energy energy = Energy::zero();
  /// Largest single-superstep h-relation observed (words).
  std::uint64_t max_h_relation = 0;
};

class BspMachine {
 public:
  BspMachine(int num_procs, AlphaBeta model = {});

  [[nodiscard]] int num_procs() const {
    return static_cast<int>(outboxes_.size());
  }
  [[nodiscard]] const AlphaBeta& model() const { return model_; }
  [[nodiscard]] const BspStats& stats() const { return stats_; }

  /// Per-process handle inside a superstep.
  class Proc {
   public:
    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int nprocs() const { return machine_->num_procs(); }
    /// Messages delivered from the previous superstep, ordered by
    /// (sender, send order).
    [[nodiscard]] const std::vector<Message>& inbox() const;
    /// Queues a message for delivery next superstep.
    void send(int dst, std::vector<double> payload, int tag = 0);
    /// Records local arithmetic for the cost model.
    void charge_flops(double flops) { flops_ += flops; }

   private:
    friend class BspMachine;
    Proc(BspMachine& m, int rank) : machine_(&m), rank_(rank) {}
    BspMachine* machine_;
    int rank_;
    double flops_ = 0.0;
  };

  /// Executes one superstep: `body(proc)` for every process, then the
  /// exchange and cost accounting.
  void superstep(const std::function<void(Proc&)>& body);

  /// Convenience: runs supersteps until `body` returns false (checked
  /// after the exchange).
  void run_until(const std::function<bool(int step)>& continue_predicate,
                 const std::function<void(Proc&)>& body);

 private:
  friend class Proc;
  AlphaBeta model_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::vector<Message>> outboxes_;  // staging, indexed by dst
  std::vector<std::uint64_t> sent_words_;
  std::vector<std::uint64_t> sent_msgs_;
  BspStats stats_;
};

}  // namespace harmony::comm
