#include "comm/collectives.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace harmony::comm {

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

void add_into(std::vector<double>& acc, const std::vector<double>& v) {
  HARMONY_ASSERT(acc.size() == v.size());
  for (std::size_t i = 0; i < v.size(); ++i) acc[i] += v[i];
}

CollectiveResult naive_root(const std::vector<std::vector<double>>& inputs,
                            AlphaBeta model) {
  const int p = static_cast<int>(inputs.size());
  BspMachine m(p, model);
  std::vector<std::vector<double>> local = inputs;

  // Step 1: everyone sends to rank 0.
  m.superstep([&](BspMachine::Proc& proc) {
    if (proc.rank() != 0) proc.send(0, local[static_cast<std::size_t>(
                                         proc.rank())]);
  });
  // Step 2: root reduces and broadcasts.
  m.superstep([&](BspMachine::Proc& proc) {
    if (proc.rank() != 0) return;
    auto& acc = local[0];
    for (const Message& msg : proc.inbox()) {
      add_into(acc, msg.payload);
      proc.charge_flops(static_cast<double>(msg.payload.size()));
    }
    for (int dst = 1; dst < p; ++dst) proc.send(dst, acc);
  });
  // Step 3: receivers adopt the result.
  m.superstep([&](BspMachine::Proc& proc) {
    if (proc.rank() == 0) return;
    HARMONY_ASSERT(proc.inbox().size() == 1);
    local[static_cast<std::size_t>(proc.rank())] = proc.inbox()[0].payload;
  });
  return CollectiveResult{std::move(local), m.stats()};
}

CollectiveResult binomial_tree(
    const std::vector<std::vector<double>>& inputs, AlphaBeta model) {
  const auto p = inputs.size();
  HARMONY_REQUIRE(is_pow2(p), "binomial tree allreduce: P must be 2^k");
  BspMachine m(static_cast<int>(p), model);
  std::vector<std::vector<double>> local = inputs;

  // Reduce up the binomial tree, then broadcast down it.
  for (std::size_t stride = 1; stride < p; stride *= 2) {
    m.superstep([&](BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      for (const Message& msg : proc.inbox()) {
        add_into(local[r], msg.payload);
        proc.charge_flops(static_cast<double>(msg.payload.size()));
      }
      if (r % (2 * stride) == stride) {
        proc.send(static_cast<int>(r - stride), local[r]);
      }
    });
  }
  m.superstep([&](BspMachine::Proc& proc) {  // fold the last reduction in
    const auto r = static_cast<std::size_t>(proc.rank());
    for (const Message& msg : proc.inbox()) {
      add_into(local[r], msg.payload);
      proc.charge_flops(static_cast<double>(msg.payload.size()));
    }
  });
  for (std::size_t stride = p / 2; stride >= 1; stride /= 2) {
    m.superstep([&](BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      for (const Message& msg : proc.inbox()) {
        local[r] = msg.payload;
      }
      if (r % (2 * stride) == 0 && r + stride < p) {
        proc.send(static_cast<int>(r + stride), local[r]);
      }
    });
    if (stride == 1) break;
  }
  m.superstep([&](BspMachine::Proc& proc) {  // deliver the last hop
    const auto r = static_cast<std::size_t>(proc.rank());
    for (const Message& msg : proc.inbox()) {
      local[r] = msg.payload;
    }
  });
  return CollectiveResult{std::move(local), m.stats()};
}

CollectiveResult recursive_doubling(
    const std::vector<std::vector<double>>& inputs, AlphaBeta model) {
  const auto p = inputs.size();
  HARMONY_REQUIRE(is_pow2(p), "recursive doubling: P must be 2^k");
  BspMachine m(static_cast<int>(p), model);
  std::vector<std::vector<double>> local = inputs;

  for (std::size_t stride = 1; stride < p; stride *= 2) {
    // Everyone exchanges with its partner and adds.
    m.superstep([&](BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      for (const Message& msg : proc.inbox()) {
        add_into(local[r], msg.payload);
        proc.charge_flops(static_cast<double>(msg.payload.size()));
      }
      proc.send(static_cast<int>(r ^ stride), local[r]);
    });
  }
  m.superstep([&](BspMachine::Proc& proc) {
    const auto r = static_cast<std::size_t>(proc.rank());
    for (const Message& msg : proc.inbox()) {
      add_into(local[r], msg.payload);
      proc.charge_flops(static_cast<double>(msg.payload.size()));
    }
  });
  return CollectiveResult{std::move(local), m.stats()};
}

CollectiveResult ring(const std::vector<std::vector<double>>& inputs,
                      AlphaBeta model) {
  const auto p = inputs.size();
  const std::size_t n = inputs[0].size();
  HARMONY_REQUIRE(n % p == 0, "ring allreduce: P must divide n");
  const std::size_t blk = n / p;
  BspMachine m(static_cast<int>(p), model);
  std::vector<std::vector<double>> local = inputs;

  auto block_of = [&](std::vector<double>& v, std::size_t b) {
    return std::vector<double>(v.begin() + static_cast<std::ptrdiff_t>(
                                               b * blk),
                               v.begin() + static_cast<std::ptrdiff_t>(
                                               (b + 1) * blk));
  };
  auto store_block = [&](std::vector<double>& v, std::size_t b,
                         const std::vector<double>& data) {
    std::copy(data.begin(), data.end(),
              v.begin() + static_cast<std::ptrdiff_t>(b * blk));
  };

  // Reduce-scatter: superstep s first folds in the arriving block
  // (r - s) mod P, then forwards that same (now fuller) block east.
  // After superstep P-1, rank r holds the fully reduced block
  // (r + 1) mod P.
  for (std::size_t s = 0; s < p; ++s) {
    m.superstep([&](BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      auto& v = local[r];
      const auto b = (r + p - s) % p;
      if (s >= 1) {
        for (const Message& msg : proc.inbox()) {
          auto acc = block_of(v, b);
          add_into(acc, msg.payload);
          store_block(v, b, acc);
          proc.charge_flops(static_cast<double>(blk));
        }
      }
      if (s + 1 < p) {
        proc.send(static_cast<int>((r + 1) % p), block_of(v, b));
      }
    });
  }
  // Allgather: superstep g stores the arriving complete block
  // (r - g + 1) mod P, then forwards it; g = 0 starts with the block
  // completed by the reduce-scatter, (r + 1) mod P.
  for (std::size_t g = 0; g < p; ++g) {
    m.superstep([&](BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      auto& v = local[r];
      const auto b = (r + 1 + p - g) % p;
      if (g >= 1) {
        for (const Message& msg : proc.inbox()) {
          store_block(v, b, msg.payload);
        }
      }
      if (g + 1 < p) {
        proc.send(static_cast<int>((r + 1) % p), block_of(v, b));
      }
    });
  }
  return CollectiveResult{std::move(local), m.stats()};
}

}  // namespace

const char* allreduce_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kNaiveRoot:
      return "naive root";
    case AllreduceAlgo::kBinomialTree:
      return "binomial tree";
    case AllreduceAlgo::kRecursiveDoubling:
      return "recursive doubling";
    case AllreduceAlgo::kRing:
      return "ring";
  }
  return "?";
}

CollectiveResult allreduce(const std::vector<std::vector<double>>& inputs,
                           AllreduceAlgo algo, AlphaBeta model) {
  HARMONY_REQUIRE(!inputs.empty(), "allreduce: no processes");
  const std::size_t n = inputs[0].size();
  for (const auto& v : inputs) {
    HARMONY_REQUIRE(v.size() == n, "allreduce: ragged inputs");
  }
  switch (algo) {
    case AllreduceAlgo::kNaiveRoot:
      return naive_root(inputs, model);
    case AllreduceAlgo::kBinomialTree:
      return binomial_tree(inputs, model);
    case AllreduceAlgo::kRecursiveDoubling:
      return recursive_doubling(inputs, model);
    case AllreduceAlgo::kRing:
      return ring(inputs, model);
  }
  HARMONY_ASSERT(false);
  return {};
}

CollectiveResult allgather_ring(
    const std::vector<std::vector<double>>& inputs, AlphaBeta model) {
  HARMONY_REQUIRE(!inputs.empty(), "allgather_ring: no processes");
  const auto p = inputs.size();
  const std::size_t blk = inputs[0].size();
  BspMachine m(static_cast<int>(p), model);
  std::vector<std::vector<double>> local(p,
                                         std::vector<double>(blk * p, 0.0));
  for (std::size_t r = 0; r < p; ++r) {
    std::copy(inputs[r].begin(), inputs[r].end(),
              local[r].begin() + static_cast<std::ptrdiff_t>(r * blk));
  }
  for (std::size_t s = 0; s < p; ++s) {
    m.superstep([&](BspMachine::Proc& proc) {
      const auto r = static_cast<std::size_t>(proc.rank());
      auto& v = local[r];
      for (const Message& msg : proc.inbox()) {
        const auto b = (r + p - s) % p;
        std::copy(msg.payload.begin(), msg.payload.end(),
                  v.begin() + static_cast<std::ptrdiff_t>(b * blk));
      }
      if (s < p - 1) {
        const auto send_b = (r + p - s) % p;
        proc.send(static_cast<int>((r + 1) % p),
                  std::vector<double>(
                      v.begin() + static_cast<std::ptrdiff_t>(send_b * blk),
                      v.begin() + static_cast<std::ptrdiff_t>(
                                      (send_b + 1) * blk)));
      }
    });
  }
  return CollectiveResult{std::move(local), m.stats()};
}

}  // namespace harmony::comm
