// Collective communication algorithms on the BSP machine (Yelick, §6).
//
// "Algorithm designers could have significant influence in showing that
//  a simpler set of data movement and synchronization primitives are
//  universally useful across algorithms and applications."
//
// Four allreduce schedules with the classic alpha-beta trade-offs
// (Thakur, Rabenseifner, Gropp, IJHPCA 2005):
//
//   naive root          2 steps,     root h-relation Theta(P*n)
//   binomial tree       2 log P steps, h = n per step
//   recursive doubling  log P steps,   h = n per step
//   ring                2(P-1) steps,  h = n/P per step  (bandwidth-
//                                      optimal volume 2n(P-1)/P)
//
// Small vectors favour the latency-lean recursive doubling; large
// vectors favour the ring.  Bench E15 sweeps n to locate the crossover.
// All variants compute real elementwise sums and are validated.
#pragma once

#include <vector>

#include "comm/bsp.hpp"

namespace harmony::comm {

enum class AllreduceAlgo {
  kNaiveRoot,
  kBinomialTree,
  kRecursiveDoubling,
  kRing,
};

[[nodiscard]] const char* allreduce_name(AllreduceAlgo a);

struct CollectiveResult {
  /// Final vector at every process (identical across processes).
  std::vector<std::vector<double>> per_proc;
  BspStats stats;
};

/// Elementwise-sum allreduce of `inputs[p]` (all the same length) over
/// P = inputs.size() processes.  kBinomialTree and kRecursiveDoubling
/// require power-of-two P; kRing requires P | n (any P).
[[nodiscard]] CollectiveResult allreduce(
    const std::vector<std::vector<double>>& inputs, AllreduceAlgo algo,
    AlphaBeta model = {});

/// Allgather: process p contributes `inputs[p]`; everyone ends with the
/// concatenation.  Ring schedule, P-1 supersteps, h = |block| per step.
[[nodiscard]] CollectiveResult allgather_ring(
    const std::vector<std::vector<double>>& inputs, AlphaBeta model = {});

}  // namespace harmony::comm
