// Communication lower bounds for dense linear algebra (Yelick, §6).
//
// The communication-avoiding programme measures algorithms against the
// bandwidth and latency lower bounds of Irony-Toledo-Tiskin (2004) and
// Ballard-Demmel-Holtz-Schwartz (2011):
//
//   classic matmul, P processes, M words of local memory each:
//     words moved per process >= c * n^3 / (P * sqrt(M))
//   "2.5D" with c replicas of the data (M ~ c*n^2/P):
//     words  >= Omega(n^2 / sqrt(c*P))
//     messages >= Omega(sqrt(P / c^3))
//
// These functions return the Omega expressions with unit constants; bench
// E4 reports measured/bound ratios, which must be O(1) for the
// communication-optimal variants and grow for the naive ones.
#pragma once

#include <cmath>

#include "support/error.hpp"

namespace harmony::comm {

/// Per-process bandwidth bound for classic (non-Strassen) n^3 matmul.
[[nodiscard]] inline double matmul_bandwidth_bound(double n, double procs,
                                                   double local_mem_words) {
  HARMONY_REQUIRE(procs > 0 && local_mem_words > 0,
                  "matmul_bandwidth_bound: bad parameters");
  return n * n * n / (procs * std::sqrt(local_mem_words));
}

/// Per-process bandwidth bound for 2.5D matmul with replication factor c.
[[nodiscard]] inline double matmul_25d_bandwidth_bound(double n, double procs,
                                                       double c) {
  HARMONY_REQUIRE(procs > 0 && c >= 1, "matmul_25d_bandwidth_bound: bad c");
  return n * n / std::sqrt(c * procs);
}

/// Per-process latency (message-count) bound for 2.5D matmul.
[[nodiscard]] inline double matmul_25d_latency_bound(double procs, double c) {
  HARMONY_REQUIRE(procs > 0 && c >= 1, "matmul_25d_latency_bound: bad c");
  return std::sqrt(procs / (c * c * c));
}

}  // namespace harmony::comm
