#include "fm/compiled.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "fm/strategy/table_map.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace harmony::fm {

Cycle CompiledSpec::makespan_cycles_of(const AffineMap& map) const {
  // The schedule is affine over a dense box, so its maximum sits at a
  // corner; the legacy evaluator's per-point running max (seeded at 0)
  // computes the same integers, just num_points times slower.
  const std::int64_t is[2] = {0, domain.extent(0) - 1};
  const std::int64_t js[2] = {0, domain.extent(1) - 1};
  const std::int64_t ks[2] = {0, domain.extent(2) - 1};
  Cycle m = 0;
  for (std::int64_t i : is) {
    for (std::int64_t j : js) {
      for (std::int64_t k : ks) {
        m = std::max(m, map.time(Point{i, j, k}) + 1);
      }
    }
  }
  return m;
}

std::shared_ptr<const CompiledSpec> compile_spec(const FunctionSpec& spec,
                                                 const MachineConfig& machine,
                                                 const Mapping& input_proto) {
  const auto computed = spec.computed_tensors();
  HARMONY_REQUIRE(computed.size() == 1,
                  "compile_spec: spec must have exactly one computed tensor");
  auto cs = std::make_shared<CompiledSpec>();
  const noc::GridGeometry& geom = machine.geom;
  const noc::TechnologyModel& tech = geom.tech();

  cs->target = computed[0];
  cs->domain = spec.domain(cs->target);
  cs->target_is_output = spec.is_output(cs->target);
  cs->bits = spec.bits(cs->target);
  cs->ops = spec.cost(cs->target).ops;
  cs->num_points = cs->domain.size();
  trace::Span span("fm", "compile", 0,
                   static_cast<std::uint64_t>(cs->num_points),
                   static_cast<std::uint64_t>(geom.num_nodes()));

  cs->tensor_names.reserve(static_cast<std::size_t>(spec.num_tensors()));
  for (TensorId t = 0; t < spec.num_tensors(); ++t) {
    cs->tensor_names.push_back(spec.name(t));
  }

  cs->cols = geom.cols();
  cs->rows = geom.rows();
  cs->num_pes = static_cast<std::size_t>(geom.num_nodes());
  cs->cycle = machine.cycle;
  cs->pe_capacity_values = machine.pe_capacity_values;
  cs->link_bits_per_cycle = machine.link_bits_per_cycle;

  const Length local_reach =
      geom.pitch() * machine.local_access_pitch_fraction;
  cs->sram_access = tech.sram_access_energy(cs->bits, local_reach);

  // Candidate-invariant sums, folded by the exact addition loop the
  // legacy evaluator runs (one += per point) so the doubles match bit
  // for bit.
  const Energy op_e = tech.op_energy(cs->bits) * cs->ops;
  for (std::int64_t n = 0; n < cs->num_points; ++n) {
    cs->compute_energy_total += op_e;
    cs->total_ops_total += cs->ops;
  }

  // Geometry tables: every pure query the per-candidate loops make,
  // asked once.  Table lookups return the identical doubles a direct
  // call would.
  const std::size_t P = cs->num_pes;
  cs->transfer_energy.resize(P * P, Energy::zero());
  cs->hop_count.resize(P * P, 0);
  cs->transit.resize(P * P, 0);
  cs->dram_energy.resize(P, Energy::zero());
  cs->dram_cycles.resize(P, 0);
  cs->route_offsets.assign(P * P + 1, 0);
  for (std::size_t from = 0; from < P; ++from) {
    const noc::Coord a = geom.coord(from);
    cs->dram_energy[from] = geom.dram_access_energy(cs->bits, a);
    cs->dram_cycles[from] = machine.dram_cycles(a);
    for (std::size_t to = 0; to < P; ++to) {
      const noc::Coord b = geom.coord(to);
      const std::size_t e = from * P + to;
      cs->transfer_energy[e] = geom.transfer_energy(cs->bits, a, b);
      cs->hop_count[e] = geom.hops(a, b);
      cs->transit[e] = machine.transit_cycles(a, b);
      // Dimension-ordered route as directed-link ids, the same walk the
      // legacy bandwidth checker does per candidate (legality.cpp).
      if (!(a == b)) {
        noc::Coord at = a;
        while (!(at == b)) {
          const noc::Coord next = geom.next_hop(at, b);
          int dir;
          if (next.x == (at.x + 1) % geom.cols()) {
            dir = 0;  // E
          } else if (next.x != at.x) {
            dir = 1;  // W
          } else if (next.y == (at.y + 1) % geom.rows()) {
            dir = 2;  // N
          } else {
            dir = 3;  // S
          }
          cs->route_links.push_back(static_cast<std::uint32_t>(
              geom.index(at) * 4 + static_cast<std::size_t>(dir)));
          at = next;
        }
      }
      cs->route_offsets[e + 1] =
          static_cast<std::uint32_t>(cs->route_links.size());
    }
  }

  // Flatten the dependence relation: one spec.deps() call per point for
  // the whole search, instead of three per candidate per point.  Input
  // values get dense ordinals so the per-candidate delivered table is an
  // array, immune to the packed-key overflow the legacy set had.
  std::unordered_map<std::int64_t, std::uint32_t> input_ords;
  cs->dep_offsets.reserve(static_cast<std::size_t>(cs->num_points) + 1);
  cs->dep_offsets.push_back(0);
  cs->domain.for_each([&](const Point& p) {
    for (const ValueRef& d : spec.deps(cs->target, p)) {
      CompiledDep cd;
      cd.tensor = d.tensor;
      cd.i = d.point.i;
      cd.j = d.point.j;
      cd.k = d.point.k;
      if (spec.is_input(d.tensor)) {
        cs->has_input_deps = true;
        cd.input_ord =
            input_ords
                .try_emplace(spec.value_index(d),
                             static_cast<std::uint32_t>(input_ords.size()))
                .first->second;
        const InputHome& home = input_proto.input_home(d.tensor);
        if (home.kind == InputHome::Kind::kDram) {
          cd.kind = CompiledDep::kInputDram;
        } else {
          cd.kind = CompiledDep::kInputPe;
          cd.home_pe =
              static_cast<std::int32_t>(geom.index(home.home_of(d.point)));
        }
      } else {
        cd.kind = CompiledDep::kComputed;
        cd.dep_lin = cs->domain.linearize(d.point);
      }
      cs->deps.push_back(cd);
    }
    cs->dep_offsets.push_back(static_cast<std::uint64_t>(cs->deps.size()));
  });
  cs->num_input_values = static_cast<std::uint32_t>(input_ords.size());
  return cs;
}

namespace {

// The per-candidate oracles are written once against a *map view* —
// time/place per linearized target point plus the input-value home —
// and instantiated for the AffineMap (closed-form, ignores lin) and the
// TableMap (array lookup, ignores the point).  The template bodies are
// the previous AffineMap-only implementations verbatim, so the
// bit-identical-to-legacy pin carries over to both instantiations.
struct AffineView {
  const CompiledSpec& cs;
  const AffineMap& map;
  [[nodiscard]] Cycle time(std::size_t, const Point& p) const {
    return map.time(p);
  }
  [[nodiscard]] std::size_t pe(std::size_t, const Point& p) const {
    return cs.pe_index(map.place(p));
  }
  [[nodiscard]] std::int32_t home(const CompiledDep& d) const {
    return d.home_pe;
  }
  [[nodiscard]] Cycle makespan_cycles() const {
    return cs.makespan_cycles_of(map);
  }
};

struct TableView {
  const CompiledSpec& cs;
  const TableMap& tm;
  [[nodiscard]] Cycle time(std::size_t lin, const Point&) const {
    return tm.cycle[lin];
  }
  [[nodiscard]] std::size_t pe(std::size_t lin, const Point&) const {
    return static_cast<std::size_t>(tm.pe[lin]);
  }
  [[nodiscard]] std::int32_t home(const CompiledDep& d) const {
    return tm.input_home[d.input_ord];
  }
  [[nodiscard]] Cycle makespan_cycles() const { return tm.makespan_cycles(); }
};

TableView table_view(const CompiledSpec& cs, const TableMap& tm) {
  HARMONY_REQUIRE(
      static_cast<std::int64_t>(tm.pe.size()) == cs.num_points &&
          static_cast<std::int64_t>(tm.cycle.size()) == cs.num_points &&
          tm.input_home.size() == cs.num_input_values,
      "compiled: TableMap does not match the compiled spec's shape");
  return TableView{cs, tm};
}

template <typename View>
CostReport evaluate_cost_impl(const CompiledSpec& cs, const View& view,
                              EvalContext& ctx) {
  ctx.begin_candidate();
  CostReport rep;
  rep.makespan_cycles = view.makespan_cycles();
  rep.compute_energy = cs.compute_energy_total;
  rep.total_ops = cs.total_ops_total;

  const std::size_t P = cs.num_pes;
  const auto bits = static_cast<std::uint64_t>(cs.bits);
  std::int64_t lin = 0;
  cs.domain.for_each([&](const Point& p) {
    const auto v = static_cast<std::size_t>(lin);
    const std::uint64_t lo = cs.dep_offsets[v];
    const std::uint64_t hi = cs.dep_offsets[v + 1];
    ++lin;
    if (lo == hi) return;
    const std::size_t here = view.pe(v, p);
    for (std::uint64_t o = lo; o < hi; ++o) {
      const CompiledDep& d = cs.deps[o];
      // Branch order mirrors cost.cpp exactly: repeat-use short-circuit
      // first for inputs (which also stamps the delivery), then DRAM /
      // local-home / remote-home.
      if (d.kind == CompiledDep::kComputed) {
        const std::size_t there =
            view.pe(static_cast<std::size_t>(d.dep_lin), d.point());
        if (there == here) {
          rep.local_access_energy += cs.sram_access;
        } else {
          rep.onchip_movement_energy += cs.transfer_energy[there * P + here];
          ++rep.messages;
          rep.bit_hops +=
              bits * static_cast<std::uint64_t>(cs.hop_count[there * P + here]);
        }
      } else if (!ctx.first_delivery(d.input_ord, here)) {
        rep.local_access_energy += cs.sram_access;
      } else if (d.kind == CompiledDep::kInputDram) {
        rep.dram_energy += cs.dram_energy[here];
      } else if (static_cast<std::size_t>(view.home(d)) == here) {
        rep.local_access_energy += cs.sram_access;
      } else {
        const auto from = static_cast<std::size_t>(view.home(d));
        rep.onchip_movement_energy += cs.transfer_energy[from * P + here];
        ++rep.messages;
        rep.bit_hops +=
            bits * static_cast<std::uint64_t>(cs.hop_count[from * P + here]);
      }
    }
  });
  rep.makespan = cs.cycle * static_cast<double>(rep.makespan_cycles);
  return rep;
}

template <typename View>
LegalityReport verify_impl(const CompiledSpec& cs, const View& view,
                           EvalContext& ctx, const VerifyOptions& opts) {
  ctx.begin_candidate();
  LegalityReport rep;
  const std::size_t P = cs.num_pes;
  const auto bits = static_cast<std::uint64_t>(cs.bits);

  const auto element = [&](TensorId t, const Point& p) {
    std::ostringstream os;
    os << cs.tensor_names[static_cast<std::size_t>(t)] << p;
    return os.str();
  };
  const auto add_diag = [&](const char* rule_id, analyze::Location loc,
                            const std::string& msg) {
    if (rep.diagnostics.size() < opts.max_messages) {
      rep.diagnostics.push_back(
          analyze::make_diagnostic(rule_id, std::move(loc), msg));
    }
  };
  const auto record_route = [&](std::size_t src, std::size_t dst) {
    if (!opts.check_bandwidth || src == dst) return;
    const std::size_t r = src * P + dst;
    for (std::uint32_t o = cs.route_offsets[r]; o < cs.route_offsets[r + 1];
         ++o) {
      ctx.link_bits[cs.route_links[o]] += bits;
    }
  };

  // ---- 1. causality & transit, plus per-edge link traffic ------------
  // ---- 2. exclusivity: collect (pe, cycle) of every element ----------
  ctx.slots.clear();
  ctx.link_bits.assign(opts.check_bandwidth ? P * 4 : 0, 0);
  Cycle makespan = 0;

  std::int64_t lin = 0;
  cs.domain.for_each([&](const Point& p) {
    const auto v = static_cast<std::size_t>(lin);
    const std::uint64_t lo = cs.dep_offsets[v];
    const std::uint64_t hi = cs.dep_offsets[v + 1];
    ++lin;
    const Cycle when = view.time(v, p);
    const std::size_t here = view.pe(v, p);
    const auto here_pe = static_cast<std::int32_t>(here);
    if (when < 0) {
      ++rep.causality_violations;
      std::ostringstream os;
      os << element(cs.target, p) << " scheduled at negative cycle " << when;
      add_diag("FM001", analyze::Location{element(cs.target, p), here_pe, when},
               os.str());
      return;
    }
    makespan = std::max(makespan, when + 1);
    HARMONY_REQUIRE(when < (Cycle{1} << 40),
                    "verify: schedule exceeds 2^40 cycles");
    ctx.slots.push_back((static_cast<std::uint64_t>(here) << 40) |
                        static_cast<std::uint64_t>(when));

    for (std::uint64_t o = lo; o < hi; ++o) {
      const CompiledDep& d = cs.deps[o];
      if (d.kind == CompiledDep::kComputed) {
        const Point dp = d.point();
        const auto dl = static_cast<std::size_t>(d.dep_lin);
        const std::size_t there = view.pe(dl, dp);
        const Cycle need = view.time(dl, dp) +
                           std::max<Cycle>(1, cs.transit[there * P + here]);
        if (when < need) {
          ++rep.causality_violations;
          std::ostringstream os;
          os << element(cs.target, p) << " at cycle " << when << " consumes "
             << element(d.tensor, dp) << " which arrives at cycle " << need;
          add_diag("FM001",
                   analyze::Location{element(cs.target, p), here_pe, when},
                   os.str());
        }
        record_route(there, here);
      } else {
        const Cycle need =
            d.kind == CompiledDep::kInputDram
                ? cs.dram_cycles[here]
                : cs.transit[static_cast<std::size_t>(view.home(d)) * P +
                             here];
        if (when < need) {
          ++rep.causality_violations;
          std::ostringstream os;
          os << element(cs.target, p) << " at cycle " << when << " consumes "
             << element(d.tensor, d.point()) << " which arrives at cycle "
             << need;
          add_diag("FM001",
                   analyze::Location{element(cs.target, p), here_pe, when},
                   os.str());
        }
        // Mirror of the cost model's input-residency rule: an input
        // value is routed to a consumer PE once (DRAM homes excluded,
        // as in legality.cpp).
        if (d.kind == CompiledDep::kInputPe &&
            ctx.first_delivery(d.input_ord, here)) {
          record_route(static_cast<std::size_t>(view.home(d)), here);
        }
      }
    }
  });

  std::sort(ctx.slots.begin(), ctx.slots.end());
  for (std::size_t i = 1; i < ctx.slots.size(); ++i) {
    if (ctx.slots[i] == ctx.slots[i - 1]) {
      ++rep.exclusivity_violations;
      const auto pe = static_cast<std::int32_t>(ctx.slots[i] >> 40);
      const auto cycle = static_cast<Cycle>(
          ctx.slots[i] & ((std::uint64_t{1} << 40) - 1));
      std::ostringstream os;
      os << "two elements share PE " << pe << " at cycle " << cycle;
      add_diag("FM002", analyze::Location{"", pe, cycle}, os.str());
    }
  }

  // ---- 3. storage: peak live values per PE ---------------------------
  if (opts.check_storage) {
    // Same def/last-use sweep as legality.cpp, restricted to the target
    // tensor's value range (the only computed values; inputs live
    // off-ledger there too, via the def_time < 0 skip).
    const auto total = static_cast<std::size_t>(cs.num_points);
    ctx.def_time.resize(total);
    ctx.last_use.assign(total, -1);
    ctx.owner_pe.resize(total);

    std::int64_t slin = 0;
    cs.domain.for_each([&](const Point& p) {
      const auto vi = static_cast<std::size_t>(slin);
      const std::uint64_t lo = cs.dep_offsets[vi];
      const std::uint64_t hi = cs.dep_offsets[vi + 1];
      ++slin;
      ctx.def_time[vi] = view.time(vi, p);
      ctx.last_use[vi] = std::max(ctx.last_use[vi], ctx.def_time[vi]);
      ctx.owner_pe[vi] = static_cast<std::int32_t>(view.pe(vi, p));
      for (std::uint64_t o = lo; o < hi; ++o) {
        const CompiledDep& d = cs.deps[o];
        if (d.kind != CompiledDep::kComputed) continue;  // off-ledger
        const auto di = static_cast<std::size_t>(d.dep_lin);
        ctx.last_use[di] = std::max(ctx.last_use[di], ctx.def_time[vi]);
      }
    });
    // Outputs stay live until the end of the computation.
    if (cs.target_is_output) {
      for (std::size_t v = 0; v < total; ++v) ctx.last_use[v] = makespan;
    }

    ctx.events.clear();
    ctx.events.reserve(total * 2);
    for (std::size_t v = 0; v < total; ++v) {
      if (ctx.def_time[v] < 0) continue;  // negative-time element
      ctx.events.push_back({ctx.owner_pe[v], ctx.def_time[v], +1});
      ctx.events.push_back({ctx.owner_pe[v], ctx.last_use[v] + 1, -1});
    }
    std::sort(ctx.events.begin(), ctx.events.end(),
              [](const EvalContext::StorageEvent& a,
                 const EvalContext::StorageEvent& b) {
                if (a.pe != b.pe) return a.pe < b.pe;
                if (a.cycle != b.cycle) return a.cycle < b.cycle;
                return a.delta < b.delta;  // frees before allocs at a tick
              });
    std::int64_t live = 0;
    std::int32_t cur_pe = -1;
    bool flagged_this_pe = false;
    for (const EvalContext::StorageEvent& e : ctx.events) {
      if (e.pe != cur_pe) {
        cur_pe = e.pe;
        live = 0;
        flagged_this_pe = false;
      }
      live += e.delta;
      if (live > rep.peak_live_values) {
        rep.peak_live_values = live;
        rep.peak_live_pe = e.pe;
      }
      if (live > cs.pe_capacity_values && !flagged_this_pe) {
        ++rep.storage_violations;
        flagged_this_pe = true;
        std::ostringstream os;
        os << "PE " << e.pe << " holds " << live << " live values at cycle "
           << e.cycle << " (capacity " << cs.pe_capacity_values << ")";
        add_diag("FM003", analyze::Location{"", e.pe, e.cycle}, os.str());
      }
    }
  }

  // ---- 4. bandwidth: average bits/cycle per directed link ------------
  if (opts.check_bandwidth && makespan > 0) {
    for (std::size_t l = 0; l < ctx.link_bits.size(); ++l) {
      const double rate = static_cast<double>(ctx.link_bits[l]) /
                          static_cast<double>(makespan);
      if (rate > rep.peak_link_bits_per_cycle) {
        rep.peak_link_bits_per_cycle = rate;
        rep.peak_link = static_cast<std::int64_t>(l);
      }
      if (rate > cs.link_bits_per_cycle) {
        ++rep.bandwidth_violations;
        std::ostringstream os;
        os << "directed link " << l << " carries " << rate
           << " bits/cycle on average (capacity " << cs.link_bits_per_cycle
           << ")";
        add_diag("FM004",
                 analyze::Location{"link " + std::to_string(l),
                                   static_cast<std::int32_t>(l / 4),
                                   analyze::Location::kNoCycle},
                 os.str());
      }
    }
  }

  rep.ok = rep.total_violations() == 0;
  return rep;
}

template <typename View>
bool verify_ok_impl(const CompiledSpec& cs, const View& view,
                    EvalContext& ctx, const VerifyOptions& opts) {
  ctx.begin_candidate();
  const std::size_t P = cs.num_pes;
  const auto bits = static_cast<std::uint64_t>(cs.bits);

  const auto record_route = [&](std::size_t src, std::size_t dst) {
    if (!opts.check_bandwidth || src == dst) return;
    const std::size_t r = src * P + dst;
    for (std::uint32_t o = cs.route_offsets[r]; o < cs.route_offsets[r + 1];
         ++o) {
      ctx.link_bits[cs.route_links[o]] += bits;
    }
  };

  // ---- 1. causality (first violation exits); collects the slots and
  // link traffic the later checks consume, exactly as verify() does ----
  ctx.slots.clear();
  ctx.link_bits.assign(opts.check_bandwidth ? P * 4 : 0, 0);
  Cycle makespan = 0;

  const std::int64_t ni = cs.domain.extent(0);
  const std::int64_t nj = cs.domain.extent(1);
  const std::int64_t nk = cs.domain.extent(2);
  std::size_t lin = 0;
  for (std::int64_t i = 0; i < ni; ++i) {
    for (std::int64_t j = 0; j < nj; ++j) {
      for (std::int64_t k = 0; k < nk; ++k) {
        const Point p{i, j, k};
        const std::uint64_t lo = cs.dep_offsets[lin];
        const std::uint64_t hi = cs.dep_offsets[lin + 1];
        const std::size_t v = lin;
        ++lin;
        const Cycle when = view.time(v, p);
        if (when < 0) return false;
        makespan = std::max(makespan, when + 1);
        HARMONY_REQUIRE(when < (Cycle{1} << 40),
                        "verify: schedule exceeds 2^40 cycles");
        const std::size_t here = view.pe(v, p);
        ctx.slots.push_back((static_cast<std::uint64_t>(here) << 40) |
                            static_cast<std::uint64_t>(when));
        for (std::uint64_t o = lo; o < hi; ++o) {
          const CompiledDep& d = cs.deps[o];
          if (d.kind == CompiledDep::kComputed) {
            const Point dp = d.point();
            const auto dl = static_cast<std::size_t>(d.dep_lin);
            const std::size_t there = view.pe(dl, dp);
            const Cycle need = view.time(dl, dp) +
                std::max<Cycle>(1, cs.transit[there * P + here]);
            if (when < need) return false;
            record_route(there, here);
          } else {
            const Cycle need =
                d.kind == CompiledDep::kInputDram
                    ? cs.dram_cycles[here]
                    : cs.transit[static_cast<std::size_t>(view.home(d)) * P +
                                 here];
            if (when < need) return false;
            if (d.kind == CompiledDep::kInputPe &&
                ctx.first_delivery(d.input_ord, here)) {
              record_route(static_cast<std::size_t>(view.home(d)), here);
            }
          }
        }
      }
    }
  }

  // ---- 2. exclusivity ------------------------------------------------
  std::sort(ctx.slots.begin(), ctx.slots.end());
  for (std::size_t i = 1; i < ctx.slots.size(); ++i) {
    if (ctx.slots[i] == ctx.slots[i - 1]) return false;
  }

  // ---- 3. storage ----------------------------------------------------
  if (opts.check_storage) {
    const auto total = static_cast<std::size_t>(cs.num_points);
    ctx.def_time.resize(total);
    ctx.last_use.assign(total, -1);
    ctx.owner_pe.resize(total);

    std::int64_t slin = 0;
    cs.domain.for_each([&](const Point& p) {
      const auto vi = static_cast<std::size_t>(slin);
      const std::uint64_t lo = cs.dep_offsets[vi];
      const std::uint64_t hi = cs.dep_offsets[vi + 1];
      ++slin;
      ctx.def_time[vi] = view.time(vi, p);
      ctx.last_use[vi] = std::max(ctx.last_use[vi], ctx.def_time[vi]);
      ctx.owner_pe[vi] = static_cast<std::int32_t>(view.pe(vi, p));
      for (std::uint64_t o = lo; o < hi; ++o) {
        const CompiledDep& d = cs.deps[o];
        if (d.kind != CompiledDep::kComputed) continue;
        const auto di = static_cast<std::size_t>(d.dep_lin);
        ctx.last_use[di] = std::max(ctx.last_use[di], ctx.def_time[vi]);
      }
    });
    if (cs.target_is_output) {
      for (std::size_t v = 0; v < total; ++v) ctx.last_use[v] = makespan;
    }

    ctx.events.clear();
    ctx.events.reserve(total * 2);
    for (std::size_t v = 0; v < total; ++v) {
      ctx.events.push_back({ctx.owner_pe[v], ctx.def_time[v], +1});
      ctx.events.push_back({ctx.owner_pe[v], ctx.last_use[v] + 1, -1});
    }
    std::sort(ctx.events.begin(), ctx.events.end(),
              [](const EvalContext::StorageEvent& a,
                 const EvalContext::StorageEvent& b) {
                if (a.pe != b.pe) return a.pe < b.pe;
                if (a.cycle != b.cycle) return a.cycle < b.cycle;
                return a.delta < b.delta;
              });
    std::int64_t live = 0;
    std::int32_t cur_pe = -1;
    for (const EvalContext::StorageEvent& e : ctx.events) {
      if (e.pe != cur_pe) {
        cur_pe = e.pe;
        live = 0;
      }
      live += e.delta;
      if (live > cs.pe_capacity_values) return false;
    }
  }

  // ---- 4. bandwidth --------------------------------------------------
  if (opts.check_bandwidth && makespan > 0) {
    for (const std::uint64_t lb : ctx.link_bits) {
      if (static_cast<double>(lb) / static_cast<double>(makespan) >
          cs.link_bits_per_cycle) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

CostReport evaluate_cost(const CompiledSpec& cs, const AffineMap& map,
                         EvalContext& ctx) {
  return evaluate_cost_impl(cs, AffineView{cs, map}, ctx);
}

LegalityReport verify(const CompiledSpec& cs, const AffineMap& map,
                      EvalContext& ctx, const VerifyOptions& opts) {
  return verify_impl(cs, AffineView{cs, map}, ctx, opts);
}

bool verify_ok(const CompiledSpec& cs, const AffineMap& map,
               EvalContext& ctx, const VerifyOptions& opts) {
  return verify_ok_impl(cs, AffineView{cs, map}, ctx, opts);
}

CostReport evaluate_cost(const CompiledSpec& cs, const TableMap& tm,
                         EvalContext& ctx) {
  return evaluate_cost_impl(cs, table_view(cs, tm), ctx);
}

LegalityReport verify(const CompiledSpec& cs, const TableMap& tm,
                      EvalContext& ctx, const VerifyOptions& opts) {
  return verify_impl(cs, table_view(cs, tm), ctx, opts);
}

bool verify_ok(const CompiledSpec& cs, const TableMap& tm,
               EvalContext& ctx, const VerifyOptions& opts) {
  return verify_ok_impl(cs, table_view(cs, tm), ctx, opts);
}

}  // namespace harmony::fm
