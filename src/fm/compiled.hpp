// Compile-once candidate evaluation for the mapping-search inner loop.
//
// Dally's §3 pitch is that the F&M cost model makes mappings
// *systematically searchable* — so the searcher's candidates/second is
// the headline metric.  Yet most of what the per-candidate oracles
// (fm/cost.cpp, fm/legality.cpp) compute is invariant across a whole
// search: the spec's dependence relation, value indices, per-tensor
// bits/ops/op-energy, and every geometry query (hop counts, transfer
// energies, transit cycles, DRAM costs, dimension-ordered routes).
//
// CompiledSpec freezes a (FunctionSpec, MachineConfig, input_proto)
// triple into flat arrays once per search:
//   * per-point dependence lists flattened into one contiguous array
//     with a CSR-style offset table (no std::function calls, no
//     per-point vector allocation, no domain re-validation);
//   * input values renumbered to dense ordinals so delivery tracking is
//     an array index, not a hash probe;
//   * geometry memoized as [from * num_pes + to] tables plus per-PE DRAM
//     costs and precomputed XY routes for the bandwidth check;
//   * the candidate-invariant compute-energy / total-ops sums, folded by
//     the *same* addition loop the legacy evaluator runs.
//
// EvalContext is the per-lane scratch: an epoch-stamped delivered table
// (one uint32 compare per dependence instead of an unordered_set insert;
// cleared once per context, not once per candidate) and the reusable
// slots/link/storage buffers of the verifier.  One CompiledSpec is
// shared read-only by all search lanes; each lane owns one EvalContext,
// which keeps fm::search_lanes RaceCtx-certifiable.
//
// Hard invariant: evaluate_cost(CompiledSpec) and verify(CompiledSpec)
// are *bit-identical* to their FunctionSpec counterparts on every report
// field — same dependence visit order, same branch order, same
// floating-point addition sequence — so the deterministic top-k
// guarantee of DESIGN.md §10 is untouched.  Tests pin compiled vs.
// legacy vs. the executing GridMachine ledger.  DESIGN.md §12.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "support/units.hpp"

namespace harmony::fm {

/// One flattened dependence edge of the target tensor.  The input home
/// (including kDistributed closures) is resolved to a concrete PE at
/// compile time, so evaluation never touches an InputHome again.
struct CompiledDep {
  enum Kind : std::uint8_t {
    kComputed = 0,   ///< dep on the target tensor itself
    kInputDram = 1,  ///< input tensor homed in DRAM
    kInputPe = 2,    ///< input tensor homed on a PE (home_pe below)
  };
  Kind kind = kComputed;
  TensorId tensor = -1;         ///< dep tensor id (diagnostics)
  std::int32_t home_pe = -1;    ///< kInputPe: resolved home PE index
  std::uint32_t input_ord = 0;  ///< kInput*: dense input-value ordinal
  std::int64_t dep_lin = -1;    ///< kComputed: linearized target index
  std::int64_t i = 0, j = 0, k = 0;  ///< dep point

  [[nodiscard]] Point point() const { return Point{i, j, k}; }
};

/// The search-invariant half of candidate evaluation, frozen flat.
/// Read-only after compile_spec() — safe to share across lanes.
struct CompiledSpec {
  // --- target tensor ---
  TensorId target = -1;
  IndexDomain domain{1};
  bool target_is_output = false;
  std::size_t bits = 32;
  double ops = 1.0;
  std::int64_t num_points = 0;
  /// Tensor names by id, for diagnostics identical to the legacy path.
  std::vector<std::string> tensor_names;

  // --- machine ---
  int cols = 1, rows = 1;
  std::size_t num_pes = 1;
  Time cycle = Time::zero();
  std::int64_t pe_capacity_values = 0;
  double link_bits_per_cycle = 0.0;

  // --- candidate-invariant totals (legacy addition order) ---
  Energy compute_energy_total = Energy::zero();
  double total_ops_total = 0.0;
  /// tech.sram_access_energy(bits, local_reach): constant per machine.
  Energy sram_access = Energy::zero();

  // --- geometry tables, indexed [from * num_pes + to] ---
  std::vector<Energy> transfer_energy;
  std::vector<std::int64_t> hop_count;
  std::vector<Cycle> transit;
  // Per-PE DRAM access cost/latency.
  std::vector<Energy> dram_energy;
  std::vector<Cycle> dram_cycles;
  /// Dimension-ordered routes for the bandwidth check: directed-link ids
  /// of the walk from `from` to `to`, CSR over [from * num_pes + to].
  std::vector<std::uint32_t> route_offsets;
  std::vector<std::uint32_t> route_links;

  // --- flattened dependences, CSR over linearized target points ---
  std::vector<std::uint64_t> dep_offsets;  ///< num_points + 1 entries
  std::vector<CompiledDep> deps;
  /// True when any edge reads an input tensor; false lets the search
  /// skip the input-arrival normalization sweep entirely.
  bool has_input_deps = false;
  /// Dense input-value ordinal space size (delivered-table rows).
  std::uint32_t num_input_values = 0;

  /// PE index of a coordinate produced by AffineMap::place (always
  /// in-range, so no bounds re-check: same value as geom.index()).
  [[nodiscard]] std::size_t pe_index(noc::Coord c) const {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(cols) +
           static_cast<std::size_t>(c.x);
  }

  /// max(0, max over the domain of time(p) + 1): the affine form attains
  /// its extremes at domain corners, so this is exact — identical to the
  /// legacy per-point running max, in integer arithmetic.
  [[nodiscard]] Cycle makespan_cycles_of(const AffineMap& map) const;
};

/// Freezes the triple into a CompiledSpec (one pass over the dependence
/// relation).  The spec must have exactly one computed tensor (the
/// AffineMap family maps a single tensor — same precondition as
/// search_affine); `input_proto` must supply a home for every input
/// tensor.  Traced as trace::Span("fm", "compile").
[[nodiscard]] std::shared_ptr<const CompiledSpec> compile_spec(
    const FunctionSpec& spec, const MachineConfig& machine,
    const Mapping& input_proto);

/// Per-lane mutable scratch.  All buffers are sized once and reused
/// across candidates; the delivered table is epoch-stamped so "clear"
/// is one counter increment (a full wipe only on uint32 wraparound).
class EvalContext {
 public:
  explicit EvalContext(const CompiledSpec& cs)
      : num_pes_(cs.num_pes),
        delivered_(static_cast<std::size_t>(cs.num_input_values) * cs.num_pes,
                   0) {}

  /// Pre-reserves every scratch buffer to its steady-state size for
  /// `cs` so the first candidates of a search do not grow them inside
  /// the hot loop (verify sizes them on use: slots/def_time/last_use/
  /// owner_pe to num_points, events to 2x, link_bits to 4 per PE).
  /// Purely an allocation accelerator — buffer *contents* are still
  /// established per candidate exactly as before.
  void reserve_scratch(const CompiledSpec& cs) {
    const auto n = static_cast<std::size_t>(cs.num_points);
    slots.reserve(n);
    link_bits.reserve(cs.num_pes * 4);
    def_time.reserve(n);
    last_use.reserve(n);
    owner_pe.reserve(n);
    events.reserve(n * 2);
  }

  /// Starts a fresh delivered-set scope (one oracle call = one scope,
  /// mirroring the legacy per-call unordered_set).
  void begin_candidate() {
    if (++epoch_ == 0) {  // uint32 wrapped: wipe once, restart at 1
      std::fill(delivered_.begin(), delivered_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// True exactly the first time (input ordinal, pe) is seen this scope.
  bool first_delivery(std::uint32_t input_ord, std::size_t pe) {
    std::uint32_t& stamp =
        delivered_[static_cast<std::size_t>(input_ord) * num_pes_ + pe];
    if (stamp == epoch_) return false;
    stamp = epoch_;
    return true;
  }

  // Reusable verifier scratch (see compiled.cpp).
  struct StorageEvent {
    std::int32_t pe;
    Cycle cycle;
    std::int32_t delta;
  };
  std::vector<std::uint64_t> slots;
  std::vector<std::uint64_t> link_bits;
  std::vector<Cycle> def_time;
  std::vector<Cycle> last_use;
  std::vector<std::int32_t> owner_pe;
  std::vector<StorageEvent> events;

 private:
  std::size_t num_pes_;
  std::vector<std::uint32_t> delivered_;
  std::uint32_t epoch_ = 0;
};

/// Arena of per-lane evaluation scratch: every lane's EvalContext (and
/// its delivered table and verifier buffers) is allocated and
/// pre-reserved up front, in one construction pass, so nothing in the
/// search inner loop ever touches the allocator.  Lane L's context is
/// reached by the explicit lane index the driver's kernel carries
/// (fm::search_lanes) — the pool is the replacement for the old
/// "recover the lane from the tally's address" arithmetic, which broke
/// silently if the tally storage moved.  Contexts are mutually
/// independent, so lanes use theirs concurrently; the pool itself is
/// not resized while lanes run.
class EvalContextPool {
 public:
  EvalContextPool(const CompiledSpec& cs, unsigned lanes) {
    ctxs_.reserve(lanes);
    for (unsigned l = 0; l < lanes; ++l) {
      ctxs_.emplace_back(cs);
      ctxs_.back().reserve_scratch(cs);
    }
  }

  [[nodiscard]] EvalContext& lane(unsigned l) { return ctxs_[l]; }
  [[nodiscard]] unsigned lanes() const {
    return static_cast<unsigned>(ctxs_.size());
  }

 private:
  std::vector<EvalContext> ctxs_;
};

/// The compiled fast path of fm::evaluate_cost — bit-identical on every
/// CostReport field to evaluate_cost(spec, mapping, machine) for the
/// mapping (AffineMap on the target + the compiled input homes).
[[nodiscard]] CostReport evaluate_cost(const CompiledSpec& cs,
                                       const AffineMap& map,
                                       EvalContext& ctx);

/// The compiled fast path of fm::verify — identical LegalityReport
/// (counters, peaks, diagnostics text and order) to the legacy checker.
[[nodiscard]] LegalityReport verify(const CompiledSpec& cs,
                                    const AffineMap& map, EvalContext& ctx,
                                    const VerifyOptions& opts = {});

/// verify(...).ok without the report: short-circuits at the first
/// violation of any enabled check and builds no diagnostics, which is
/// what the search inner loop wants — rejected candidates are the
/// common case there and their reports were discarded unread.  Honors
/// opts.check_storage / check_bandwidth exactly as verify() does;
/// always agrees with verify(...).ok on the same (cs, map, opts).
[[nodiscard]] bool verify_ok(const CompiledSpec& cs, const AffineMap& map,
                             EvalContext& ctx,
                             const VerifyOptions& opts = {});

// --- TableMap (per-op) overloads --------------------------------------
// The same oracles over a per-op placement table (strategy/table_map.hpp)
// instead of an affine form.  Same dependence visit order, same branch
// order, same floating-point addition sequence — bit-identical to the
// legacy path on the lowered to_mapping(spec, tm) mapping, exactly as
// the AffineMap overloads are pinned to theirs.  The table's per-value
// input homes override the compiled home_pe (a move may re-home a
// PE-resident value); DRAM/PE kinds never change.  The table must match
// the compiled spec: num_points ops, num_input_values homes.
struct TableMap;

[[nodiscard]] CostReport evaluate_cost(const CompiledSpec& cs,
                                       const TableMap& tm, EvalContext& ctx);

[[nodiscard]] LegalityReport verify(const CompiledSpec& cs,
                                    const TableMap& tm, EvalContext& ctx,
                                    const VerifyOptions& opts = {});

[[nodiscard]] bool verify_ok(const CompiledSpec& cs, const TableMap& tm,
                             EvalContext& ctx,
                             const VerifyOptions& opts = {});

}  // namespace harmony::fm
