#include "fm/cost.hpp"

#include <algorithm>

#include "fm/delivered.hpp"

namespace harmony::fm {

double merit_value(const CostReport& r, FigureOfMerit fom) {
  switch (fom) {
    case FigureOfMerit::kTime:
      return r.makespan.picoseconds();
    case FigureOfMerit::kEnergy:
      return r.total_energy().femtojoules();
    case FigureOfMerit::kEnergyDelay:
      return r.energy_delay_product();
  }
  return 0.0;
}

CostReport evaluate_cost(const FunctionSpec& spec, const Mapping& mapping,
                         const MachineConfig& machine) {
  mapping.require_complete(spec);
  CostReport rep;
  const noc::TechnologyModel& tech = machine.geom.tech();
  const Length local_reach =
      machine.geom.pitch() * machine.local_access_pitch_fraction;
  // Input values reside at a PE from first delivery to last use (the
  // mapping's "elements reside from definition to last use"), so each
  // (input value, consumer PE) transfer is paid once; repeat uses are
  // local SRAM reads.  Tracked pair-exact (fm/delivered.hpp) — a packed
  // value*num_pes+pe key overflows uint64 on large specs.
  DeliveredSet delivered;
  auto first_delivery = [&](const ValueRef& d, std::size_t pe) {
    return delivered.first_delivery(spec.value_index(d), pe);
  };

  for (TensorId t : spec.computed_tensors()) {
    const IndexDomain& dom = spec.domain(t);
    const std::size_t bits = spec.bits(t);
    const double ops = spec.cost(t).ops;
    const Energy op_e = tech.op_energy(bits) * ops;

    dom.for_each([&](const Point& p) {
      const noc::Coord here = mapping.place(t, p);
      rep.makespan_cycles =
          std::max(rep.makespan_cycles, mapping.time(t, p) + 1);
      rep.compute_energy += op_e;
      rep.total_ops += ops;

      for (const ValueRef& d : spec.deps(t, p)) {
        if (spec.is_input(d.tensor)) {
          const InputHome& home = mapping.input_home(d.tensor);
          if (!first_delivery(d, machine.geom.index(here))) {
            rep.local_access_energy +=
                tech.sram_access_energy(bits, local_reach);
          } else if (home.kind == InputHome::Kind::kDram) {
            rep.dram_energy += machine.geom.dram_access_energy(bits, here);
          } else if (home.home_of(d.point) == here) {
            rep.local_access_energy +=
                tech.sram_access_energy(bits, local_reach);
          } else {
            const noc::Coord from = home.home_of(d.point);
            rep.onchip_movement_energy +=
                machine.geom.transfer_energy(bits, from, here);
            ++rep.messages;
            rep.bit_hops += bits * static_cast<std::uint64_t>(
                                       machine.geom.hops(from, here));
          }
        } else {
          const noc::Coord there = mapping.place(d.tensor, d.point);
          if (there == here) {
            rep.local_access_energy +=
                tech.sram_access_energy(bits, local_reach);
          } else {
            rep.onchip_movement_energy +=
                machine.geom.transfer_energy(bits, there, here);
            ++rep.messages;
            rep.bit_hops += bits * static_cast<std::uint64_t>(
                                       machine.geom.hops(there, here));
          }
        }
      }
    });
  }
  rep.makespan = machine.cycle * static_cast<double>(rep.makespan_cycles);
  return rep;
}

}  // namespace harmony::fm
