// Analytic cost evaluation for (function, mapping) pairs (Dally, §3).
//
// "This model makes it possible to write algorithms (function + mapping)
//  with predictable execution time and energy because communication — the
//  major source of delay and energy consumption — is made explicit."
//
// evaluate_cost() prices a mapping without executing it (no input data, no
// value storage): one pass over the index domains accumulating compute
// energy, movement energy per dependence edge, DRAM traffic, and the
// schedule makespan.  It is the figure-of-merit oracle the mapping
// autotuner (search.hpp) calls in its inner loop, and tests pin it to the
// executing GridMachine's ledger (they must agree exactly).
#pragma once

#include <cstdint>

#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "support/units.hpp"

namespace harmony::fm {

struct CostReport {
  Cycle makespan_cycles = 0;
  Time makespan = Time::zero();
  Energy compute_energy = Energy::zero();
  Energy onchip_movement_energy = Energy::zero();
  Energy local_access_energy = Energy::zero();
  Energy dram_energy = Energy::zero();
  std::uint64_t messages = 0;
  std::uint64_t bit_hops = 0;
  double total_ops = 0.0;

  [[nodiscard]] Energy total_energy() const {
    return compute_energy + onchip_movement_energy + local_access_energy +
           dram_energy;
  }
  /// Energy per ALU operation — the efficiency metric of bench E12.
  [[nodiscard]] Energy energy_per_op() const {
    return total_ops > 0 ? total_energy() / total_ops : Energy::zero();
  }
  /// Energy-delay product (fJ * ps), a common combined figure of merit.
  [[nodiscard]] double energy_delay_product() const {
    return total_energy().femtojoules() * makespan.picoseconds();
  }
};

/// Figures of merit the autotuner can optimize.
enum class FigureOfMerit { kTime, kEnergy, kEnergyDelay };

[[nodiscard]] double merit_value(const CostReport& r, FigureOfMerit fom);

[[nodiscard]] CostReport evaluate_cost(const FunctionSpec& spec,
                                       const Mapping& mapping,
                                       const MachineConfig& machine);

}  // namespace harmony::fm
