#include "fm/default_mapper.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "support/error.hpp"

namespace harmony::fm {

Mapping default_mapping(const FunctionSpec& spec,
                        const MachineConfig& machine,
                        bool inputs_from_dram) {
  Mapping m;
  const auto num_pes = static_cast<std::int64_t>(machine.geom.num_nodes());

  // --- placement: block distribution of each computed tensor ----------
  struct TensorPlace {
    std::int64_t size = 0;
  };
  const auto computed = spec.computed_tensors();
  for (TensorId t : computed) {
    const IndexDomain dom = spec.domain(t);
    const std::int64_t size = dom.size();
    const noc::GridGeometry geom = machine.geom;
    m.set_computed(
        t,
        [dom, size, num_pes, geom](const Point& p) {
          const std::int64_t lin = dom.linearize(p);
          const auto pe = static_cast<std::size_t>(
              std::min(lin * num_pes / size, num_pes - 1));
          return geom.coord(pe);
        },
        // placeholder; replaced after scheduling below
        [](const Point&) { return Cycle{0}; });
  }
  for (TensorId t : spec.input_tensors()) {
    if (inputs_from_dram) {
      m.set_input(t, InputHome::dram());
      continue;
    }
    // Block-distribute inputs across the grid: pre-loading tensors into
    // the PE SRAMs spreads the fan-out traffic; a single-PE home turns
    // that PE's mesh links into a provable bandwidth hot-spot.
    const IndexDomain dom = spec.domain(t);
    const std::int64_t size = dom.size();
    const noc::GridGeometry geom = machine.geom;
    m.set_input(t, InputHome::distributed(
                       [dom, size, num_pes, geom](const Point& p) {
                         const std::int64_t lin = dom.linearize(p);
                         const auto pe = static_cast<std::size_t>(
                             std::min(lin * num_pes / size, num_pes - 1));
                         return geom.coord(pe);
                       }));
  }

  // --- schedule: ASAP list scheduling in dependence (DFS post-) order --
  const auto total = static_cast<std::size_t>(spec.total_values());
  // Times stored per tensor so closures can share them.
  std::vector<std::shared_ptr<std::vector<Cycle>>> times(
      static_cast<std::size_t>(spec.num_tensors()));
  for (TensorId t : computed) {
    times[static_cast<std::size_t>(t)] = std::make_shared<std::vector<Cycle>>(
        static_cast<std::size_t>(spec.domain(t).size()), Cycle{-1});
  }
  std::vector<Cycle> pe_next(static_cast<std::size_t>(num_pes), 0);
  std::vector<char> scheduled(total, 0);
  std::vector<char> on_stack(total, 0);

  auto time_of = [&](const ValueRef& r) -> Cycle {
    return (*times[static_cast<std::size_t>(r.tensor)])
        [static_cast<std::size_t>(spec.domain(r.tensor).linearize(r.point))];
  };

  for (TensorId root_t : computed) {
    spec.domain(root_t).for_each([&](const Point& root_p) {
      const auto root_vi = static_cast<std::size_t>(
          spec.value_index(ValueRef{root_t, root_p}));
      if (scheduled[root_vi]) return;

      struct Frame {
        TensorId tensor;
        Point point;
        std::vector<ValueRef> deps;
        std::size_t next = 0;
      };
      std::vector<Frame> stack;
      stack.push_back(Frame{root_t, root_p, spec.deps(root_t, root_p)});
      on_stack[root_vi] = 1;

      while (!stack.empty()) {
        Frame& f = stack.back();
        bool descended = false;
        while (f.next < f.deps.size()) {
          const ValueRef& d = f.deps[f.next];
          if (spec.is_input(d.tensor)) {
            ++f.next;
            continue;
          }
          const auto di = static_cast<std::size_t>(spec.value_index(d));
          if (scheduled[di]) {
            ++f.next;
            continue;
          }
          if (on_stack[di]) {
            throw SimulationError(
                "default_mapping: cyclic dependence in function spec");
          }
          on_stack[di] = 1;
          stack.push_back(Frame{d.tensor, d.point,
                                spec.deps(d.tensor, d.point)});
          descended = true;
          break;
        }
        if (descended) continue;

        // All deps scheduled: compute the ASAP slot.
        const noc::Coord here = m.place(f.tensor, f.point);
        Cycle ready = 0;
        for (const ValueRef& d : f.deps) {
          Cycle arrive;
          if (spec.is_input(d.tensor)) {
            const InputHome& home = m.input_home(d.tensor);
            arrive = home.kind == InputHome::Kind::kDram
                         ? machine.dram_cycles(here)
                         : machine.transit_cycles(home.home_of(d.point),
                                                  here);
          } else {
            const noc::Coord there = m.place(d.tensor, d.point);
            arrive = time_of(d) +
                     std::max<Cycle>(1, machine.transit_cycles(there, here));
          }
          ready = std::max(ready, arrive);
        }
        const auto pe = machine.geom.index(here);
        const Cycle slot = std::max(ready, pe_next[pe]);
        pe_next[pe] = slot + 1;
        (*times[static_cast<std::size_t>(f.tensor)])
            [static_cast<std::size_t>(
                spec.domain(f.tensor).linearize(f.point))] = slot;
        const auto vi = static_cast<std::size_t>(
            spec.value_index(ValueRef{f.tensor, f.point}));
        scheduled[vi] = 1;
        on_stack[vi] = 0;
        stack.pop_back();
      }
    });
  }

  // Install the concrete time tables (placement closures are kept).
  for (TensorId t : computed) {
    const IndexDomain dom = spec.domain(t);
    const std::int64_t size = dom.size();
    const noc::GridGeometry geom = machine.geom;
    auto table = times[static_cast<std::size_t>(t)];
    m.set_computed(
        t,
        [dom, size, num_pes, geom](const Point& p) {
          const std::int64_t lin = dom.linearize(p);
          const auto pe = static_cast<std::size_t>(
              std::min(lin * num_pes / size, num_pes - 1));
          return geom.coord(pe);
        },
        [dom, table](const Point& p) {
          const Cycle c =
              (*table)[static_cast<std::size_t>(dom.linearize(p))];
          HARMONY_ASSERT(c >= 0);
          return c;
        });
  }
  return m;
}

}  // namespace harmony::fm
