// The default mapper (Dally, paper §3).
//
// "Programmers that don't want to bother with mapping can use a default
//  mapper — with results no worse than with today's abstractions."
//
// default_mapping() produces a legal mapping automatically:
//   * placement — each computed tensor is block-distributed over the PEs
//     in row-major linearized order (the "obvious" data-parallel layout);
//   * schedule  — ASAP list scheduling in dependence order: each element
//     starts at the first cycle >= the arrival of its last operand at
//     which its PE is free.  One op per PE per cycle by construction.
//
// Bench E9 compares this against serial_mapping() (the conventional-
// architecture stand-in) across the algorithm suite to test the "no
// worse" claim.
#pragma once

#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"

namespace harmony::fm {

/// Builds the automatic block-placement + ASAP-schedule mapping.
/// `inputs_from_dram == false` homes every input tensor at PE (0,0)
/// instead of DRAM (useful for kernels whose inputs are small).
[[nodiscard]] Mapping default_mapping(const FunctionSpec& spec,
                                      const MachineConfig& machine,
                                      bool inputs_from_dram = false);

}  // namespace harmony::fm
