// Exact (value, PE) first-delivery tracking for the input-residency rule.
//
// The cost evaluator, the legality checker, and the executing machine
// all share one pricing rule: an input value is routed to a consumer PE
// once, then repeat uses on that PE are local SRAM reads.  They used to
// track delivery with a packed `value_index * num_pes + pe` uint64 key,
// which silently wraps once value_index exceeds 2^64 / num_pes and then
// aliases distinct (value, PE) pairs — a repeat-use SRAM price quoted
// for a value that was never delivered.  DeliveredSet keys on the pair
// itself: the hash is only a distribution hint, equality is what decides
// membership, so no spec size can alias.
//
// The mapping-search inner loop does not use this type — it runs on the
// compiled path (fm/compiled.hpp), whose EvalContext assigns each input
// value a dense ordinal at compile time and stamps an epoch table, which
// is both faster and structurally immune to the same overflow.  This set
// is the general-purpose variant for the one-shot oracles, where the
// value index space is sparse and unbounded.
#pragma once

#include <cstdint>
#include <unordered_set>

namespace harmony::fm {

class DeliveredSet {
 public:
  /// True exactly the first time the (value_index, pe) pair is seen.
  bool first_delivery(std::int64_t value_index, std::size_t pe) {
    return seen_.insert(Key{value_index, static_cast<std::uint32_t>(pe)})
        .second;
  }

 private:
  struct Key {
    std::int64_t value;
    std::uint32_t pe;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // SplitMix64 finalizer over both fields; collisions here only cost
      // probe time, never correctness.
      auto z = static_cast<std::uint64_t>(k.value) ^
               (static_cast<std::uint64_t>(k.pe) + 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  std::unordered_set<Key, KeyHash> seen_;
};

}  // namespace harmony::fm
