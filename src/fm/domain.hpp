// Index domains for the F&M model (Dally, paper §3).
//
// A *function* in the F&M sense defines each element of a computation over
// a rectangular index domain ("Forall i, j in (0:N-1, 0:N-1)").  Domains
// here are dense integer boxes of rank 1..3 — enough for every kernel the
// panel statements name (scan, FFT, DP recurrences, matmul, stencils).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>

#include "support/error.hpp"

namespace harmony::fm {

/// An index point.  Unused trailing coordinates are zero, so a Point is
/// usable with any domain of rank >= the number of set coordinates.
struct Point {
  std::int64_t i = 0;
  std::int64_t j = 0;
  std::int64_t k = 0;

  constexpr Point() = default;
  constexpr explicit Point(std::int64_t i_) : i(i_) {}
  constexpr Point(std::int64_t i_, std::int64_t j_) : i(i_), j(j_) {}
  constexpr Point(std::int64_t i_, std::int64_t j_, std::int64_t k_)
      : i(i_), j(j_), k(k_) {}

  [[nodiscard]] constexpr std::int64_t operator[](int d) const {
    return d == 0 ? i : d == 1 ? j : k;
  }
  friend constexpr bool operator==(const Point&, const Point&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.i << ',' << p.j << ',' << p.k << ')';
}

/// A dense box [0, extent0) x [0, extent1) x [0, extent2).
class IndexDomain {
 public:
  /// Rank-1 .. rank-3 constructors; extents must be positive.
  explicit IndexDomain(std::int64_t e0) : IndexDomain(e0, 1, 1, 1) {}
  IndexDomain(std::int64_t e0, std::int64_t e1) : IndexDomain(e0, e1, 1, 2) {}
  IndexDomain(std::int64_t e0, std::int64_t e1, std::int64_t e2)
      : IndexDomain(e0, e1, e2, 3) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::int64_t extent(int d) const {
    HARMONY_ASSERT(d >= 0 && d < 3);
    return ext_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::int64_t size() const {
    return ext_[0] * ext_[1] * ext_[2];
  }

  [[nodiscard]] bool contains(const Point& p) const {
    return p.i >= 0 && p.i < ext_[0] && p.j >= 0 && p.j < ext_[1] &&
           p.k >= 0 && p.k < ext_[2];
  }

  /// Row-major linearization; inverse of delinearize.
  [[nodiscard]] std::int64_t linearize(const Point& p) const {
    HARMONY_ASSERT(contains(p));
    return (p.i * ext_[1] + p.j) * ext_[2] + p.k;
  }

  [[nodiscard]] Point delinearize(std::int64_t idx) const {
    HARMONY_ASSERT(idx >= 0 && idx < size());
    const std::int64_t k = idx % ext_[2];
    const std::int64_t rest = idx / ext_[2];
    return Point{rest / ext_[1], rest % ext_[1], k};
  }

  /// Visits every point in row-major order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::int64_t i = 0; i < ext_[0]; ++i) {
      for (std::int64_t j = 0; j < ext_[1]; ++j) {
        for (std::int64_t k = 0; k < ext_[2]; ++k) {
          fn(Point{i, j, k});
        }
      }
    }
  }

  friend bool operator==(const IndexDomain&, const IndexDomain&) = default;

 private:
  IndexDomain(std::int64_t e0, std::int64_t e1, std::int64_t e2, int rank)
      : ext_{e0, e1, e2}, rank_(rank) {
    HARMONY_REQUIRE(e0 > 0 && e1 > 0 && e2 > 0,
                    "IndexDomain: extents must be positive");
  }

  std::array<std::int64_t, 3> ext_;
  int rank_;
};

}  // namespace harmony::fm
