#include "fm/enum_plan.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "analyze/diagnostic.hpp"
#include "support/error.hpp"

namespace harmony::fm {

namespace {

/// a * b, or nullopt on uint64 wrap — the mixed-radix slot count must
/// be exact; a wrapped total would silently enumerate a truncated
/// space (decode_slots bounds-checks against plan.total, so every slot
/// above the wrap point would simply never exist).
std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::nullopt;
  }
  return a * b;
}

/// Extremes of an affine form over the domain box (attained at corners).
struct Range {
  std::int64_t lo;
  std::int64_t hi;
};

Range affine_range(const IndexDomain& dom, std::int64_t ci, std::int64_t cj,
                   std::int64_t ck, std::int64_t c0) {
  Range r{std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()};
  const std::int64_t is[2] = {0, dom.extent(0) - 1};
  const std::int64_t js[2] = {0, dom.extent(1) - 1};
  const std::int64_t ks[2] = {0, dom.extent(2) - 1};
  for (std::int64_t i : is) {
    for (std::int64_t j : js) {
      for (std::int64_t k : ks) {
        const std::int64_t v = ci * i + cj * j + ck * k + c0;
        r.lo = std::min(r.lo, v);
        r.hi = std::max(r.hi, v);
      }
    }
  }
  return r;
}

}  // namespace

EnumPlan build_enum_plan(const IndexDomain& dom, const MachineConfig& machine,
                         const SearchSpace& space, double makespan_bound) {
  const bool use_j = dom.rank() >= 2;
  const bool use_k = dom.rank() >= 3;
  const std::vector<std::int64_t> zero{0};
  const auto& tc = space.time_coeffs;
  const auto& sc = space.space_coeffs;
  const auto& tcj = use_j ? tc : zero;
  const auto& tck = use_k ? tc : zero;
  const auto& scy = space.search_y && machine.geom.rows() > 1 ? sc : zero;

  EnumPlan plan;
  for (std::int64_t ti : tc) {
    for (std::int64_t tj : tcj) {
      for (std::int64_t tk : tck) {
        // Normalize the offset so the schedule starts at cycle 0.
        const Range tr = affine_range(dom, ti, tj, tk, 0);
        if (static_cast<double>(tr.hi - tr.lo + 1) > makespan_bound) {
          continue;  // hopelessly stretched; contributes no slots
        }
        plan.blocks.push_back(TimeBlock{ti, tj, tk, -tr.lo});
      }
    }
  }
  plan.xi = sc;
  plan.xj = use_j ? sc : zero;
  plan.xk = use_k ? sc : zero;
  plan.yi = scy;
  plan.yj = use_j ? scy : zero;
  plan.yk = use_k ? scy : zero;
  // Overflow-checked mixed-radix product: for large affine families the
  // naive product wraps uint64, and the enumeration would cover only
  // total mod 2^64 slots while reporting itself exhausted.  Fail loudly
  // with the FM-series diagnostic instead.
  std::optional<std::uint64_t> space_sz = std::uint64_t{1};
  for (const std::uint64_t radix :
       {plan.xi.size(), plan.xj.size(), plan.xk.size(), plan.yi.size(),
        plan.yj.size(), plan.yk.size()}) {
    if (space_sz) space_sz = checked_mul(*space_sz, radix);
  }
  const std::optional<std::uint64_t> total =
      space_sz ? checked_mul(*space_sz, plan.blocks.size()) : std::nullopt;
  if (!total) {
    const analyze::Diagnostic d = analyze::make_diagnostic(
        "FM006", analyze::Location{},
        "fm::build_enum_plan: mixed-radix slot count overflows uint64; "
        "the enumeration would silently truncate");
    throw InvalidArgument(d.rule_id + ": " + d.message + " (" + d.hint + ")");
  }
  plan.space_size = *space_sz;
  plan.total = *total;
  return plan;
}

void decode_slots(const EnumPlan& plan, std::uint64_t lo, std::size_t count,
                  AffineSoA& out) {
  HARMONY_REQUIRE(lo + count <= plan.total,
                  "decode_slots: slot range exceeds the enumeration");
  out.resize(count);
  if (count == 0) return;

  // Seed the odometer: one div/mod chain for the first slot, innermost
  // coefficient (yk) peeled first — identical digit order to the
  // per-slot decode the search evaluated with before batching.
  const std::size_t radix[6] = {plan.yk.size(), plan.yj.size(),
                                plan.yi.size(), plan.xk.size(),
                                plan.xj.size(), plan.xi.size()};
  const std::vector<std::int64_t>* pools[6] = {&plan.yk, &plan.yj, &plan.yi,
                                               &plan.xk, &plan.xj, &plan.xi};
  std::size_t digit[6];
  std::uint64_t block = lo / plan.space_size;
  std::uint64_t rem = lo % plan.space_size;
  for (int d = 0; d < 6; ++d) {
    digit[d] = static_cast<std::size_t>(rem % radix[d]);
    rem /= radix[d];
  }

  for (std::size_t r = 0; r < count; ++r) {
    const TimeBlock& tb = plan.blocks[block];
    out.ti[r] = tb.ti;
    out.tj[r] = tb.tj;
    out.tk[r] = tb.tk;
    out.t0[r] = tb.t0;
    out.yk[r] = (*pools[0])[digit[0]];
    out.yj[r] = (*pools[1])[digit[1]];
    out.yi[r] = (*pools[2])[digit[2]];
    out.xk[r] = (*pools[3])[digit[3]];
    out.xj[r] = (*pools[4])[digit[4]];
    out.xi[r] = (*pools[5])[digit[5]];
    // Advance the odometer: bump yk, carry outward, roll into the next
    // time block when the whole space wraps.
    int d = 0;
    while (d < 6 && ++digit[d] == radix[d]) {
      digit[d] = 0;
      ++d;
    }
    if (d == 6) ++block;
  }
}

}  // namespace harmony::fm
