// Slot-numbered enumeration of the AffineMap family (DESIGN.md §10, §15).
//
// The search flattens its nine-deep coefficient loop nest into a dense
// [0, total) slot range: the surviving time-coefficient triples
// (makespan-bound failures dropped *before* numbering, so slots stay
// dense) crossed with the pinned space-coefficient lists, innermost
// coefficient varying fastest.  Every candidate owns one deterministic
// 64-bit slot — which is what lets the search cut (cancel), resume
// (resume_from), and statically partition the space across lanes while
// the ranked result stays bit-identical to a serial run.
//
// This header owns the plan itself plus the *batch decoder*: the
// driver's inner loop wants a grain's worth of candidates decoded into
// a struct-of-arrays buffer up front (one mixed-radix odometer sweep,
// no per-slot div/mod chain) and then evaluated in a tight loop over
// the CompiledSpec tables with no indirect calls.  decode_slots() is
// pinned against the per-slot div/mod decode by unit test — the two
// must agree on every coefficient of every slot.
#pragma once

#include <cstdint>
#include <vector>

#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"

namespace harmony::fm {

/// The affine coefficient pools the search enumerates.
struct SearchSpace {
  std::vector<std::int64_t> time_coeffs{0, 1, 2};
  std::vector<std::int64_t> space_coeffs{-1, 0, 1};
  /// Explore the second grid dimension (else y is pinned to 0).
  bool search_y = true;
};

/// One surviving (ti, tj, tk) time triple with its normalized offset.
/// Triples whose makespan blows the slack bound are dropped *before*
/// slot numbering, exactly as the original loop nest `continue`d before
/// entering the space loops — so slot numbers are dense and identical.
struct TimeBlock {
  std::int64_t ti;
  std::int64_t tj;
  std::int64_t tk;
  std::int64_t t0;
};

/// The enumeration flattened to a slot-indexed space: slot s maps to
/// (blocks[s / space_size], space coefficients decoded from
/// s % space_size, innermost yk fastest).  Same candidate order as the
/// original nine-deep loop nest.
struct EnumPlan {
  std::vector<TimeBlock> blocks;
  std::vector<std::int64_t> xi;
  std::vector<std::int64_t> xj;
  std::vector<std::int64_t> xk;
  std::vector<std::int64_t> yi;
  std::vector<std::int64_t> yj;
  std::vector<std::int64_t> yk;
  std::uint64_t space_size = 0;
  std::uint64_t total = 0;
};

/// Builds the slot numbering for `dom` on `machine`: time triples from
/// space.time_coeffs filtered by `makespan_bound`, space coefficients
/// from space.space_coeffs (y pinned to {0} unless search_y and the
/// grid has rows to use).
[[nodiscard]] EnumPlan build_enum_plan(const IndexDomain& dom,
                                       const MachineConfig& machine,
                                       const SearchSpace& space,
                                       double makespan_bound);

/// Struct-of-arrays decode buffer: row r holds the coefficients of slot
/// `lo + r` of one decode_slots() call.  The driver reuses one buffer
/// per lane, so decode allocates only on the first (largest) grain.
struct AffineSoA {
  std::vector<std::int64_t> ti, tj, tk, t0;
  std::vector<std::int64_t> xi, xj, xk;
  std::vector<std::int64_t> yi, yj, yk;

  void resize(std::size_t n) {
    ti.resize(n); tj.resize(n); tk.resize(n); t0.resize(n);
    xi.resize(n); xj.resize(n); xk.resize(n);
    yi.resize(n); yj.resize(n); yk.resize(n);
  }
  [[nodiscard]] std::size_t size() const { return ti.size(); }

  /// Row r reassembled as the AffineMap the per-slot decode produces.
  [[nodiscard]] AffineMap map_at(std::size_t r, int cols, int rows) const {
    return AffineMap{.ti = ti[r], .tj = tj[r], .tk = tk[r], .t0 = t0[r],
                     .xi = xi[r], .xj = xj[r], .xk = xk[r], .x0 = 0,
                     .yi = yi[r], .yj = yj[r], .yk = yk[r], .y0 = 0,
                     .cols = cols, .rows = rows};
  }
};

/// Decodes slots [lo, lo + count) into `out` (resized to count).  One
/// div/mod chain seeds a mixed-radix odometer at `lo`; every further
/// row is a constant-time digit increment — no division in the loop.
/// Bit-identical to decoding each slot with the % / / peel chain.
/// Requires lo + count <= plan.total.
void decode_slots(const EnumPlan& plan, std::uint64_t lo, std::size_t count,
                  AffineSoA& out);

}  // namespace harmony::fm
