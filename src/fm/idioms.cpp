#include "fm/idioms.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace harmony::fm {

Distribution block_distribution(IndexDomain dom,
                                const noc::GridGeometry& geom) {
  const std::int64_t size = dom.size();
  const auto pes = static_cast<std::int64_t>(geom.num_nodes());
  return Distribution{
      "block",
      [dom, size, pes, geom](const Point& p) {
        const std::int64_t lin = dom.linearize(p);
        return geom.coord(
            static_cast<std::size_t>(std::min(lin * pes / size, pes - 1)));
      }};
}

Distribution cyclic_distribution(IndexDomain dom,
                                 const noc::GridGeometry& geom) {
  const auto pes = static_cast<std::int64_t>(geom.num_nodes());
  return Distribution{"cyclic", [dom, pes, geom](const Point& p) {
                        return geom.coord(static_cast<std::size_t>(
                            dom.linearize(p) % pes));
                      }};
}

Distribution tile2d_distribution(IndexDomain dom,
                                 const noc::GridGeometry& geom) {
  HARMONY_REQUIRE(dom.rank() >= 2, "tile2d_distribution: need rank >= 2");
  const std::int64_t ei = dom.extent(0);
  const std::int64_t ej = dom.extent(1);
  const int cols = geom.cols();
  const int rows = geom.rows();
  return Distribution{
      "tile2d", [ei, ej, cols, rows](const Point& p) {
        return noc::Coord{
            static_cast<int>(std::min<std::int64_t>(p.j * cols / ej,
                                                    cols - 1)),
            static_cast<int>(std::min<std::int64_t>(p.i * rows / ei,
                                                    rows - 1))};
      }};
}

Distribution single_pe_distribution(noc::Coord pe) {
  return Distribution{"single", [pe](const Point&) { return pe; }};
}

Distribution transposed(const Distribution& base) {
  auto place = base.place;
  return Distribution{base.name + "^T", [place](const Point& p) {
                        return place(Point{p.j, p.i, p.k});
                      }};
}

RemapCost remap_cost(const IndexDomain& dom, std::size_t bits,
                     const Distribution& from, const Distribution& to,
                     const MachineConfig& machine) {
  RemapCost cost;
  dom.for_each([&](const Point& p) {
    const noc::Coord src = from.place(p);
    const noc::Coord dst = to.place(p);
    if (src == dst) return;
    cost.energy += machine.geom.transfer_energy(bits, src, dst);
    cost.latency = std::max(cost.latency,
                            machine.geom.transfer_latency(src, dst));
    ++cost.messages;
    cost.bit_hops += bits * static_cast<std::uint64_t>(
                                machine.geom.hops(src, dst));
    ++cost.moved_values;
  });
  return cost;
}

Time remap_simulate(const IndexDomain& dom, std::size_t bits,
                    const Distribution& from, const Distribution& to,
                    noc::MeshNetwork& net) {
  Time done = Time::zero();
  dom.for_each([&](const Point& p) {
    const noc::Coord src = from.place(p);
    const noc::Coord dst = to.place(p);
    if (src == dst) return;
    const auto d = net.send(src, dst, bits, Time::zero());
    done = std::max(done, d.arrival);
  });
  return done;
}

RemapCost gather_cost(const IndexDomain& dom, std::size_t bits,
                      const Distribution& from, noc::Coord root,
                      const MachineConfig& machine) {
  return remap_cost(dom, bits, from, single_pe_distribution(root), machine);
}

RemapCost scatter_cost(const IndexDomain& dom, std::size_t bits,
                       noc::Coord root, const Distribution& to,
                       const MachineConfig& machine) {
  return remap_cost(dom, bits, single_pe_distribution(root), to, machine);
}

RemapCost broadcast_cost(std::size_t bits, noc::Coord root,
                         const MachineConfig& machine) {
  // Dimension-ordered copy tree: root -> every node of its column, then
  // each column node -> its row.  Each edge carries one copy of `bits`.
  RemapCost cost;
  const auto& geom = machine.geom;
  for (int y = 0; y < geom.rows(); ++y) {
    const noc::Coord row_head{root.x, y};
    if (!(row_head == root)) {
      cost.energy += geom.transfer_energy(bits, root, row_head);
      cost.latency =
          std::max(cost.latency, geom.transfer_latency(root, row_head));
      ++cost.messages;
      cost.bit_hops +=
          bits * static_cast<std::uint64_t>(geom.hops(root, row_head));
    }
    for (int x = 0; x < geom.cols(); ++x) {
      const noc::Coord dst{x, y};
      if (dst == row_head) continue;
      cost.energy += geom.transfer_energy(bits, row_head, dst);
      cost.latency = std::max(
          cost.latency, geom.transfer_latency(root, row_head) +
                            geom.transfer_latency(row_head, dst));
      ++cost.messages;
      cost.bit_hops +=
          bits * static_cast<std::uint64_t>(geom.hops(row_head, dst));
    }
  }
  cost.moved_values = static_cast<std::uint64_t>(geom.num_nodes() - 1);
  return cost;
}

RemapCost reduce_tree_cost(std::size_t bits, noc::Coord root,
                           const MachineConfig& machine) {
  // Mirror of broadcast: rows reduce into the root's column, the column
  // reduces into the root.  Same traffic, opposite direction.
  RemapCost cost = broadcast_cost(bits, root, machine);
  return cost;
}

PipelineReport compose_pipeline(const std::vector<Stage>& stages,
                                const MachineConfig& machine) {
  PipelineReport rep;
  for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
    const Stage& a = stages[s];
    const Stage& b = stages[s + 1];
    HARMONY_REQUIRE(a.dom == b.dom,
                    "compose_pipeline: adjacent stages disagree on domain (" +
                        a.name + " -> " + b.name + ")");
    PipelineReport::Joint joint;
    joint.between = a.name + " -> " + b.name;
    // Pointwise alignment test.
    bool aligned = true;
    a.dom.for_each([&](const Point& p) {
      if (!(a.output_dist.place(p) == b.input_dist.place(p))) {
        aligned = false;
      }
    });
    joint.aligned = aligned;
    if (!aligned) {
      joint.remap = remap_cost(a.dom, a.bits, a.output_dist, b.input_dist,
                               machine);
      rep.total_remap_energy += joint.remap.energy;
      rep.total_messages += joint.remap.messages;
    }
    rep.joints.push_back(std::move(joint));
  }
  return rep;
}

}  // namespace harmony::fm
