// Remapping idioms and modular composition (Dally, paper §3).
//
// "The F&M model supports modular program composition, but with
//  constraints on mappings of input and output data structures. ...
//  The output of module A must have the same mapping as the input of
//  module B for the two to be composed in series, or a remapping module
//  must be inserted between the two to shuffle the data.  Common idioms
//  such as map, reduce, gather, scatter, and shuffle can be used by many
//  programs to realize common communication patterns."
//
// This module provides named data distributions, the cost of remapping a
// tensor between two distributions (analytic, and simulated on the
// contention-aware MeshNetwork), the classic idioms as cost generators,
// and a Pipeline composer that detects mapping mismatches and prices the
// remap modules it inserts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fm/domain.hpp"
#include "fm/machine.hpp"
#include "noc/mesh.hpp"
#include "support/units.hpp"

namespace harmony::fm {

/// A named assignment of tensor elements to PEs.
struct Distribution {
  std::string name;
  std::function<noc::Coord(const Point&)> place;
};

/// Block distribution of the row-major linearization over all PEs.
[[nodiscard]] Distribution block_distribution(IndexDomain dom,
                                              const noc::GridGeometry& geom);
/// Cyclic distribution of the row-major linearization.
[[nodiscard]] Distribution cyclic_distribution(IndexDomain dom,
                                               const noc::GridGeometry& geom);
/// 2-D tile distribution: element (i,j) on PE (i*cols/rows_of_dom, ...).
[[nodiscard]] Distribution tile2d_distribution(IndexDomain dom,
                                               const noc::GridGeometry& geom);
/// Everything on one PE.
[[nodiscard]] Distribution single_pe_distribution(noc::Coord pe);
/// The transpose view: element (i,j) lives where (j,i) lives under `base`.
[[nodiscard]] Distribution transposed(const Distribution& base);

/// Cost of a data-movement module.
struct RemapCost {
  Energy energy = Energy::zero();
  /// Zero-contention latency: the longest single transfer.
  Time latency = Time::zero();
  std::uint64_t messages = 0;
  std::uint64_t bit_hops = 0;
  std::uint64_t moved_values = 0;

  RemapCost& operator+=(const RemapCost& o) {
    energy += o.energy;
    latency = std::max(latency, o.latency);
    messages += o.messages;
    bit_hops += o.bit_hops;
    moved_values += o.moved_values;
    return *this;
  }
};

/// Element-wise remap `from` -> `to` (the general shuffle module).
/// Elements already in place move zero distance and cost nothing.
[[nodiscard]] RemapCost remap_cost(const IndexDomain& dom, std::size_t bits,
                                   const Distribution& from,
                                   const Distribution& to,
                                   const MachineConfig& machine);

/// Same movement pattern executed on the contention-aware mesh; returns
/// the network drain time (serialization + queueing included).
[[nodiscard]] Time remap_simulate(const IndexDomain& dom, std::size_t bits,
                                  const Distribution& from,
                                  const Distribution& to,
                                  noc::MeshNetwork& net);

// --- the classic idioms as cost generators --------------------------

/// gather: every element of `from` moves to `root`.
[[nodiscard]] RemapCost gather_cost(const IndexDomain& dom, std::size_t bits,
                                    const Distribution& from, noc::Coord root,
                                    const MachineConfig& machine);

/// scatter: root sends one element to each location of `to`.
[[nodiscard]] RemapCost scatter_cost(const IndexDomain& dom, std::size_t bits,
                                     noc::Coord root, const Distribution& to,
                                     const MachineConfig& machine);

/// broadcast: root sends the same `bits` value to every PE (mesh tree:
/// one copy per row along column 0, then along each row).
[[nodiscard]] RemapCost broadcast_cost(std::size_t bits, noc::Coord root,
                                       const MachineConfig& machine);

/// reduce: combine one value per PE into `root` along a dimension-ordered
/// tree; counts both movement and the combine ops.
[[nodiscard]] RemapCost reduce_tree_cost(std::size_t bits, noc::Coord root,
                                         const MachineConfig& machine);

// --- modular composition ---------------------------------------------

/// A pipeline stage: consumes its input in `input_dist`, produces its
/// output in `output_dist` (both over `dom`).
struct Stage {
  std::string name;
  IndexDomain dom;
  std::size_t bits = 32;
  Distribution input_dist;
  Distribution output_dist;
};

struct PipelineReport {
  /// One entry per adjacent stage pair: zero-cost if mappings aligned.
  struct Joint {
    std::string between;
    bool aligned = false;
    RemapCost remap;
  };
  std::vector<Joint> joints;
  Energy total_remap_energy = Energy::zero();
  std::uint64_t total_messages = 0;
};

/// Checks mapping alignment between consecutive stages; where the output
/// distribution of stage s differs from the input distribution of stage
/// s+1 (tested pointwise over the domain), a remap module is priced in.
[[nodiscard]] PipelineReport compose_pipeline(const std::vector<Stage>& stages,
                                              const MachineConfig& machine);

}  // namespace harmony::fm
