#include "fm/legality.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "fm/delivered.hpp"

namespace harmony::fm {

namespace {

using analyze::Diagnostic;
using analyze::Location;

void add_diag(LegalityReport& rep, const VerifyOptions& opts,
              const char* rule_id, Location loc, const std::string& msg) {
  if (rep.diagnostics.size() < opts.max_messages) {
    rep.diagnostics.push_back(
        analyze::make_diagnostic(rule_id, std::move(loc), msg));
  }
}

std::string element_name(const FunctionSpec& spec, TensorId t,
                         const Point& p) {
  std::ostringstream os;
  os << spec.name(t) << p;
  return os.str();
}

}  // namespace

LegalityReport verify(const FunctionSpec& spec, const Mapping& mapping,
                      const MachineConfig& machine,
                      const VerifyOptions& opts) {
  mapping.require_complete(spec);
  LegalityReport rep;

  // ---- 1. causality & transit, plus per-edge link traffic ------------
  // ---- 2. exclusivity: collect (pe, cycle) of every element ----------
  std::vector<std::uint64_t> slots;  // (pe << 40) | cycle  (cycle < 2^40)
  Cycle makespan = 0;

  // Per-directed-link aggregate bits for the average-rate bandwidth check.
  const auto num_links =
      static_cast<std::size_t>(machine.geom.num_nodes()) * 4;
  std::vector<std::uint64_t> link_bits(opts.check_bandwidth ? num_links : 0,
                                       0);
  // Mirror of the cost model's input-residency rule: an input value is
  // routed to a consumer PE once, then read locally.  Pair-exact
  // tracking (fm/delivered.hpp) — the old packed key overflowed.
  DeliveredSet delivered;
  auto first_delivery = [&](const ValueRef& d, std::size_t pe) {
    return delivered.first_delivery(spec.value_index(d), pe);
  };
  auto record_route = [&](noc::Coord src, noc::Coord dst,
                          std::uint64_t bits) {
    if (!opts.check_bandwidth || src == dst) return;
    // Dimension-ordered route via the geometry (wrap-aware on a torus).
    const auto& geom = machine.geom;
    noc::Coord at = src;
    while (!(at == dst)) {
      const noc::Coord next = geom.next_hop(at, dst);
      int dir;
      if (next.x == (at.x + 1) % geom.cols()) {
        dir = 0;  // E
      } else if (next.x != at.x) {
        dir = 1;  // W
      } else if (next.y == (at.y + 1) % geom.rows()) {
        dir = 2;  // N
      } else {
        dir = 3;  // S
      }
      link_bits[geom.index(at) * 4 + static_cast<std::size_t>(dir)] += bits;
      at = next;
    }
  };

  for (TensorId t : spec.computed_tensors()) {
    const IndexDomain& dom = spec.domain(t);
    const std::size_t bits = spec.bits(t);
    dom.for_each([&](const Point& p) {
      const Cycle when = mapping.time(t, p);
      const noc::Coord here = mapping.place(t, p);
      const auto here_pe = static_cast<std::int32_t>(machine.geom.index(here));
      if (when < 0) {
        ++rep.causality_violations;
        std::ostringstream os;
        os << element_name(spec, t, p) << " scheduled at negative cycle "
           << when;
        add_diag(rep, opts, "FM001",
                 Location{element_name(spec, t, p), here_pe, when}, os.str());
        return;
      }
      makespan = std::max(makespan, when + 1);
      HARMONY_REQUIRE(when < (Cycle{1} << 40),
                      "verify: schedule exceeds 2^40 cycles");
      slots.push_back(
          (static_cast<std::uint64_t>(machine.geom.index(here)) << 40) |
          static_cast<std::uint64_t>(when));

      for (const ValueRef& d : spec.deps(t, p)) {
        const Cycle need = machine.earliest_start(spec, mapping, t, p, d);
        if (when < need) {
          ++rep.causality_violations;
          std::ostringstream os;
          os << element_name(spec, t, p) << " at cycle " << when
             << " consumes " << element_name(spec, d.tensor, d.point)
             << " which arrives at cycle " << need;
          add_diag(rep, opts, "FM001",
                   Location{element_name(spec, t, p), here_pe, when},
                   os.str());
        }
        if (spec.is_input(d.tensor)) {
          const InputHome& home = mapping.input_home(d.tensor);
          if (home.kind != InputHome::Kind::kDram &&
              first_delivery(d, machine.geom.index(here))) {
            record_route(home.home_of(d.point), here, bits);
          }
        } else {
          record_route(mapping.place(d.tensor, d.point), here, bits);
        }
      }
    });
  }

  std::sort(slots.begin(), slots.end());
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (slots[i] == slots[i - 1]) {
      ++rep.exclusivity_violations;
      const auto pe = static_cast<std::int32_t>(slots[i] >> 40);
      const auto cycle = static_cast<Cycle>(
          slots[i] & ((std::uint64_t{1} << 40) - 1));
      std::ostringstream os;
      os << "two elements share PE " << pe << " at cycle " << cycle;
      add_diag(rep, opts, "FM002", Location{"", pe, cycle}, os.str());
    }
  }

  // ---- 3. storage: peak live values per PE ---------------------------
  if (opts.check_storage) {
    // def/last-use sweep.  A value occupies its producer's PE from its
    // definition cycle until its last consumption cycle (transit buffering
    // is charged to the producer — a simple, conservative rule).
    const auto total = static_cast<std::size_t>(spec.total_values());
    std::vector<Cycle> def_time(total, -1);
    std::vector<Cycle> last_use(total, -1);
    std::vector<std::int32_t> owner_pe(total, -1);

    for (TensorId t : spec.computed_tensors()) {
      const IndexDomain& dom = spec.domain(t);
      dom.for_each([&](const Point& p) {
        const auto vi = static_cast<std::size_t>(
            spec.value_index(ValueRef{t, p}));
        def_time[vi] = mapping.time(t, p);
        last_use[vi] = std::max(last_use[vi], def_time[vi]);
        owner_pe[vi] = static_cast<std::int32_t>(
            machine.geom.index(mapping.place(t, p)));
        for (const ValueRef& d : spec.deps(t, p)) {
          if (spec.is_input(d.tensor)) continue;  // inputs live off-ledger
          const auto di = static_cast<std::size_t>(spec.value_index(d));
          last_use[di] = std::max(last_use[di], mapping.time(t, p));
        }
      });
    }
    // Outputs stay live until the end of the computation.
    for (TensorId t : spec.output_tensors()) {
      const IndexDomain& dom = spec.domain(t);
      dom.for_each([&](const Point& p) {
        const auto vi = static_cast<std::size_t>(
            spec.value_index(ValueRef{t, p}));
        last_use[vi] = makespan;
      });
    }

    struct Event {
      std::int32_t pe;
      Cycle cycle;
      std::int32_t delta;
    };
    std::vector<Event> events;
    events.reserve(total * 2);
    for (std::size_t v = 0; v < total; ++v) {
      if (def_time[v] < 0) continue;  // input value
      events.push_back({owner_pe[v], def_time[v], +1});
      events.push_back({owner_pe[v], last_use[v] + 1, -1});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                if (a.pe != b.pe) return a.pe < b.pe;
                if (a.cycle != b.cycle) return a.cycle < b.cycle;
                return a.delta < b.delta;  // frees before allocs at a tick
              });
    std::int64_t live = 0;
    std::int32_t cur_pe = -1;
    bool flagged_this_pe = false;
    for (const Event& e : events) {
      if (e.pe != cur_pe) {
        cur_pe = e.pe;
        live = 0;
        flagged_this_pe = false;
      }
      live += e.delta;
      if (live > rep.peak_live_values) {
        rep.peak_live_values = live;
        rep.peak_live_pe = e.pe;
      }
      if (live > machine.pe_capacity_values && !flagged_this_pe) {
        ++rep.storage_violations;
        flagged_this_pe = true;
        std::ostringstream os;
        os << "PE " << e.pe << " holds " << live << " live values at cycle "
           << e.cycle << " (capacity " << machine.pe_capacity_values << ")";
        add_diag(rep, opts, "FM003", Location{"", e.pe, e.cycle}, os.str());
      }
    }
  }

  // ---- 4. bandwidth: average bits/cycle per directed link ------------
  if (opts.check_bandwidth && makespan > 0) {
    for (std::size_t l = 0; l < link_bits.size(); ++l) {
      const double rate = static_cast<double>(link_bits[l]) /
                          static_cast<double>(makespan);
      if (rate > rep.peak_link_bits_per_cycle) {
        rep.peak_link_bits_per_cycle = rate;
        rep.peak_link = static_cast<std::int64_t>(l);
      }
      if (rate > machine.link_bits_per_cycle) {
        ++rep.bandwidth_violations;
        std::ostringstream os;
        os << "directed link " << l << " carries " << rate
           << " bits/cycle on average (capacity "
           << machine.link_bits_per_cycle << ")";
        add_diag(rep, opts, "FM004",
                 Location{"link " + std::to_string(l),
                          static_cast<std::int32_t>(l / 4),
                          analyze::Location::kNoCycle},
                 os.str());
      }
    }
  }

  rep.ok = rep.total_violations() == 0;
  return rep;
}

}  // namespace harmony::fm
