// Mapping legality verification (Dally, paper §3; Martonosi, paper §4).
//
// "A legal mapping is one that preserves causality — scheduling element
//  computations after their inputs have been computed, allows time for
//  elements to move from definition to use, and does not exceed storage
//  bounds for elements in transit."
//
// verify() checks a (FunctionSpec, Mapping, MachineConfig) triple without
// executing it:
//   1. causality + transit time   (always)
//   2. PE exclusivity             (one element per (PE, cycle); always)
//   3. storage bounds             (peak live values per PE; optional)
//   4. link bandwidth             (average-rate per directed link; optional)
//
// This is also the library's instance of Martonosi's "formal specification
// + automated verification" discipline: every mapping a bench uses must
// pass verify() before it is simulated.
#pragma once

#include <cstdint>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"

namespace harmony::fm {

struct VerifyOptions {
  bool check_storage = true;
  bool check_bandwidth = true;
  /// Stop collecting diagnostic records after this many (counts continue).
  std::size_t max_messages = 8;
};

struct LegalityReport {
  bool ok = true;
  std::uint64_t causality_violations = 0;
  std::uint64_t exclusivity_violations = 0;
  std::uint64_t storage_violations = 0;
  std::uint64_t bandwidth_violations = 0;
  /// Peak live values over all PEs (filled when storage is checked),
  /// and the PE where the peak occurs (-1 if storage was not checked).
  std::int64_t peak_live_values = 0;
  std::int32_t peak_live_pe = -1;
  /// Peak average bits/cycle over all directed links (when checked),
  /// and the directed-link index where it occurs (-1 if not checked).
  double peak_link_bits_per_cycle = 0.0;
  std::int64_t peak_link = -1;
  /// Typed violation records (rules FM001–FM004, analyze/diagnostic.hpp),
  /// capped at VerifyOptions::max_messages; the counters above keep
  /// counting past the cap.
  std::vector<analyze::Diagnostic> diagnostics;

  [[nodiscard]] std::uint64_t total_violations() const {
    return causality_violations + exclusivity_violations +
           storage_violations + bandwidth_violations;
  }

  /// First diagnostic message, or "" — handy for error/assert output.
  [[nodiscard]] std::string first_message() const {
    return diagnostics.empty() ? std::string{} : diagnostics.front().message;
  }
};

[[nodiscard]] LegalityReport verify(const FunctionSpec& spec,
                                    const Mapping& mapping,
                                    const MachineConfig& machine,
                                    const VerifyOptions& opts = {});

}  // namespace harmony::fm
