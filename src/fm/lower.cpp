#include "fm/lower.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace harmony::fm {

std::size_t HardwareSpec::active_pes() const {
  std::size_t n = 0;
  for (const PeSpec& pe : pes) {
    if (pe.is_active()) ++n;
  }
  return n;
}

Area HardwareSpec::estimated_area() const {
  // Rough 5 nm-class constants: a 32-bit integer ALU ~ 250 um^2, a 32-bit
  // register ~ 15 um^2, router port ~ 100 um^2.  Only the *shape* of the
  // comparison (fixed-function array vs programmable core) uses these.
  constexpr double kAluUm2 = 250.0;
  constexpr double kRegUm2PerValue = 15.0;
  constexpr double kPortUm2 = 100.0;
  double um2 = 0.0;
  for (const PeSpec& pe : pes) {
    if (!pe.is_active()) continue;
    um2 += kAluUm2;
    um2 += kRegUm2PerValue * static_cast<double>(pe.registers);
    for (std::uint64_t bits : pe.port_bits) {
      if (bits > 0) um2 += kPortUm2;
    }
    if (pe.has_dram_port) um2 += kPortUm2;
  }
  return Area::mm2(um2 * 1e-6);
}

void HardwareSpec::emit_verilog(std::ostream& os) const {
  os << "// Structural skeleton lowered mechanically from (function, "
        "mapping).\n";
  os << "// Array: " << cols << " x " << rows << ", schedule length "
     << schedule_length << " cycles.\n";
  // Deduplicate PE shapes into module classes.
  struct Shape {
    std::size_t max_bits;
    std::int64_t registers;
    std::array<std::uint64_t, 4> ports;
    bool dram;
    auto operator<=>(const Shape&) const = default;
  };
  std::map<Shape, std::vector<noc::Coord>> classes;
  for (const PeSpec& pe : pes) {
    if (!pe.is_active()) continue;
    std::array<std::uint64_t, 4> port_flags{};
    for (int d = 0; d < 4; ++d) {
      port_flags[static_cast<std::size_t>(d)] =
          pe.port_bits[static_cast<std::size_t>(d)] > 0 ? 1 : 0;
    }
    classes[Shape{pe.max_bits, pe.registers, port_flags,
                  pe.has_dram_port}].push_back(pe.at);
  }
  static constexpr const char* kDirNames[4] = {"east", "west", "north",
                                               "south"};
  int cls = 0;
  for (const auto& [shape, members] : classes) {
    os << "\nmodule " << name << "_pe_c" << cls << " (\n";
    os << "  input  wire clk,\n  input  wire rst_n";
    for (int d = 0; d < 4; ++d) {
      if (!shape.ports[static_cast<std::size_t>(d)]) continue;
      os << ",\n  output wire [" << shape.max_bits - 1 << ":0] "
         << kDirNames[d] << "_out";
      os << ",\n  input  wire [" << shape.max_bits - 1 << ":0] "
         << kDirNames[d] << "_in";
    }
    if (shape.dram) {
      os << ",\n  output wire [" << shape.max_bits - 1
         << ":0] dram_rdata  // via edge controller";
    }
    os << "\n);\n";
    os << "  // datapath: 1 ALU (" << shape.max_bits << "-bit), "
       << shape.registers << "-entry operand register file\n";
    os << "  reg [" << shape.max_bits - 1 << ":0] rf [0:"
       << std::max<std::int64_t>(0, shape.registers - 1) << "];\n";
    os << "endmodule  // " << members.size() << " instance(s)\n";
    ++cls;
  }
  os << "\nmodule " << name << "_top (input wire clk, input wire rst_n);\n";
  cls = 0;
  for (const auto& [shape, members] : classes) {
    (void)shape;
    for (const noc::Coord& c : members) {
      os << "  " << name << "_pe_c" << cls << " pe_x" << c.x << "_y" << c.y
         << " (.clk(clk), .rst_n(rst_n) /* mesh ports routed by tool */);\n";
    }
    ++cls;
  }
  os << "endmodule\n";
}

namespace {

/// Charges `bits` to the outgoing port of every node along the XY route
/// from `src` to `dst` (ports: 0=E, 1=W, 2=N, 3=S).
void route_ports(HardwareSpec& hw, const MachineConfig& machine,
                 noc::Coord src, noc::Coord dst, std::size_t bits) {
  const auto& geom = machine.geom;
  noc::Coord at = src;
  while (!(at == dst)) {
    const noc::Coord next = geom.next_hop(at, dst);
    int dir;
    if (next.x == (at.x + 1) % geom.cols()) {
      dir = 0;  // E
    } else if (next.x != at.x) {
      dir = 1;  // W
    } else if (next.y == (at.y + 1) % geom.rows()) {
      dir = 2;  // N
    } else {
      dir = 3;  // S
    }
    hw.pes[geom.index(at)].port_bits[static_cast<std::size_t>(dir)] += bits;
    at = next;
  }
}

}  // namespace

HardwareSpec lower(const FunctionSpec& spec, const Mapping& mapping,
                   const MachineConfig& machine, std::string name) {
  mapping.require_complete(spec);
  HardwareSpec hw;
  hw.name = std::move(name);
  hw.cols = machine.geom.cols();
  hw.rows = machine.geom.rows();
  hw.pes.resize(static_cast<std::size_t>(machine.geom.num_nodes()));
  for (std::size_t i = 0; i < hw.pes.size(); ++i) {
    hw.pes[i].at = machine.geom.coord(i);
  }

  // Peak-register tracking per PE via def/last-use sweep (same convention
  // as the legality checker's storage rule).
  const auto total = static_cast<std::size_t>(spec.total_values());
  std::vector<Cycle> def_time(total, -1);
  std::vector<Cycle> last_use(total, -1);
  std::vector<std::int32_t> owner(total, -1);

  for (TensorId t : spec.computed_tensors()) {
    const IndexDomain& dom = spec.domain(t);
    const std::size_t bits = spec.bits(t);
    dom.for_each([&](const Point& p) {
      const noc::Coord here = mapping.place(t, p);
      PeSpec& pe = hw.pes[machine.geom.index(here)];
      ++pe.ops;
      pe.max_bits = std::max(pe.max_bits, bits);
      const Cycle when = mapping.time(t, p);
      hw.schedule_length = std::max(hw.schedule_length, when + 1);

      const auto vi = static_cast<std::size_t>(
          spec.value_index(ValueRef{t, p}));
      def_time[vi] = when;
      last_use[vi] = std::max(last_use[vi], when);
      owner[vi] = static_cast<std::int32_t>(machine.geom.index(here));

      for (const ValueRef& d : spec.deps(t, p)) {
        if (spec.is_input(d.tensor)) {
          const InputHome& home = mapping.input_home(d.tensor);
          if (home.kind == InputHome::Kind::kDram) {
            pe.has_dram_port = true;
          } else if (!(home.home_of(d.point) == here)) {
            route_ports(hw, machine, home.home_of(d.point), here, bits);
          }
          continue;
        }
        const auto di = static_cast<std::size_t>(spec.value_index(d));
        last_use[di] = std::max(last_use[di], when);
        const noc::Coord there = mapping.place(d.tensor, d.point);
        if (!(there == here)) route_ports(hw, machine, there, here, bits);
      }
    });
  }

  // Register sweep.
  struct Event {
    std::int32_t pe;
    Cycle cycle;
    std::int32_t delta;
  };
  std::vector<Event> events;
  for (std::size_t v = 0; v < total; ++v) {
    if (def_time[v] < 0) continue;
    events.push_back({owner[v], def_time[v], +1});
    events.push_back({owner[v], last_use[v] + 1, -1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.pe != b.pe) return a.pe < b.pe;
    if (a.cycle != b.cycle) return a.cycle < b.cycle;
    return a.delta < b.delta;
  });
  std::int64_t live = 0;
  std::int32_t cur = -1;
  for (const Event& e : events) {
    if (e.pe != cur) {
      cur = e.pe;
      live = 0;
    }
    live += e.delta;
    PeSpec& pe = hw.pes[static_cast<std::size_t>(e.pe)];
    pe.registers = std::max(pe.registers, live);
  }
  return hw;
}

}  // namespace harmony::fm
