// Mechanical lowering of (function, mapping) to a hardware description
// (Dally, paper §3).
//
// "An algorithm expressed in this model also directly specifies a
//  domain-specific architecture.  Given a definition and mapping, lowering
//  the specification to hardware (e.g., in Verilog or Chisel) is a
//  mechanical process."
//
// lower() walks the mapped computation once and derives, per grid point:
// the operation count and width it must sustain, the peak number of live
// values it must register, and the port traffic per mesh direction.  The
// result can be serialized as a Verilog-flavoured structural skeleton
// (modules, ports, register banks — a scaffold a hardware engineer would
// fill with the datapath), and it carries a rough area estimate used by
// the specialization bench E12.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "support/units.hpp"

namespace harmony::fm {

struct PeSpec {
  noc::Coord at;
  std::uint64_t ops = 0;           ///< elements computed on this PE
  std::size_t max_bits = 0;        ///< widest operation
  std::int64_t registers = 0;      ///< peak live values resident
  /// Bits forwarded per mesh direction over the whole run (E,W,N,S).
  std::array<std::uint64_t, 4> port_bits{};
  bool has_dram_port = false;
  [[nodiscard]] bool is_active() const { return ops > 0; }
};

struct HardwareSpec {
  std::string name;
  int cols = 0;
  int rows = 0;
  std::vector<PeSpec> pes;  ///< row-major, cols*rows entries
  Cycle schedule_length = 0;

  [[nodiscard]] std::size_t active_pes() const;
  /// Rough silicon area: per-ALU + per-register constants (documented in
  /// the implementation; inputs to a shape comparison, not a sign-off).
  [[nodiscard]] Area estimated_area() const;
  /// Emits a structural Verilog-flavoured skeleton.
  void emit_verilog(std::ostream& os) const;
};

[[nodiscard]] HardwareSpec lower(const FunctionSpec& spec,
                                 const Mapping& mapping,
                                 const MachineConfig& machine,
                                 std::string name = "fm_array");

}  // namespace harmony::fm
