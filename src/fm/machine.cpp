#include "fm/machine.hpp"

#include <algorithm>
#include <cmath>

#include "fm/delivered.hpp"
#include "support/error.hpp"

namespace harmony::fm {

Cycle MachineConfig::transit_cycles(noc::Coord a, noc::Coord b) const {
  if (a == b) return 0;
  const Time lat = geom.transfer_latency(a, b);
  return static_cast<Cycle>(
      std::ceil(lat.picoseconds() / cycle.picoseconds()));
}

Cycle MachineConfig::dram_cycles(noc::Coord c) const {
  const Time lat = geom.dram_access_latency(32, c);
  return static_cast<Cycle>(
      std::ceil(lat.picoseconds() / cycle.picoseconds()));
}

Cycle MachineConfig::earliest_start(const FunctionSpec& spec,
                                    const Mapping& mapping, TensorId t,
                                    const Point& p,
                                    const ValueRef& dep) const {
  const noc::Coord here = mapping.place(t, p);
  if (spec.is_input(dep.tensor)) {
    const InputHome& home = mapping.input_home(dep.tensor);
    if (home.kind == InputHome::Kind::kDram) return dram_cycles(here);
    return transit_cycles(home.home_of(dep.point), here);
  }
  const noc::Coord there = mapping.place(dep.tensor, dep.point);
  const Cycle ready = mapping.time(dep.tensor, dep.point);
  return ready + std::max<Cycle>(1, transit_cycles(there, here));
}

MachineConfig make_machine(int cols, int rows, noc::TechnologyModel tech) {
  noc::GridGeometry geom(cols, rows, Length::millimetres(0.2), tech);
  MachineConfig cfg{.geom = geom};
  cfg.cycle = tech.add_delay;  // one 32-bit op per cycle
  return cfg;
}

ExecutionResult GridMachine::run(
    const FunctionSpec& spec, const Mapping& mapping,
    const std::vector<std::vector<double>>& inputs) const {
  mapping.require_complete(spec);

  // Flat value store.
  const auto total = static_cast<std::size_t>(spec.total_values());
  std::vector<double> values(total, 0.0);
  std::vector<char> ready(total, 0);

  // Load inputs (available at their homes at cycle 0).
  {
    std::size_t idx = 0;
    for (TensorId t : spec.input_tensors()) {
      HARMONY_REQUIRE(idx < inputs.size(),
                      "GridMachine::run: missing input data");
      const auto& data = inputs[idx++];
      const IndexDomain& dom = spec.domain(t);
      HARMONY_REQUIRE(data.size() == static_cast<std::size_t>(dom.size()),
                      "GridMachine::run: input size mismatch");
      for (std::int64_t i = 0; i < dom.size(); ++i) {
        const auto vi = static_cast<std::size_t>(
            spec.value_index(ValueRef{t, dom.delinearize(i)}));
        values[vi] = data[static_cast<std::size_t>(i)];
        ready[vi] = 1;
      }
    }
  }

  // Collect all computed elements with their schedule slots.
  struct Slot {
    Cycle time;
    std::int64_t pe;
    TensorId tensor;
    std::int64_t lin;  // linearized point
  };
  std::vector<Slot> slots;
  for (TensorId t : spec.computed_tensors()) {
    const IndexDomain& dom = spec.domain(t);
    slots.reserve(slots.size() + static_cast<std::size_t>(dom.size()));
    dom.for_each([&](const Point& p) {
      const Cycle c = mapping.time(t, p);
      HARMONY_REQUIRE(c >= 0, "GridMachine::run: negative schedule time");
      slots.push_back(Slot{c,
                           static_cast<std::int64_t>(
                               cfg_.geom.index(mapping.place(t, p))),
                           t, dom.linearize(p)});
    });
  }
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.pe != b.pe) return a.pe < b.pe;
    if (a.tensor != b.tensor) return a.tensor < b.tensor;
    return a.lin < b.lin;
  });

  // One op per PE per cycle.
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (slots[i].time == slots[i - 1].time &&
        slots[i].pe == slots[i - 1].pe) {
      throw SimulationError(
          "GridMachine: two elements mapped to one (PE, cycle) slot "
          "(tensor " + spec.name(slots[i].tensor) + ")");
    }
  }

  ExecutionResult res;
  const noc::TechnologyModel& tech = cfg_.geom.tech();
  const Length local_reach =
      cfg_.geom.pitch() * cfg_.local_access_pitch_fraction;

  // Input values reside at a PE once delivered (see cost.cpp); repeat
  // uses are local accesses.  Must mirror evaluate_cost exactly — tests
  // pin the two ledgers together.
  DeliveredSet delivered;
  auto first_delivery = [&](const ValueRef& d, std::size_t pe) {
    return delivered.first_delivery(spec.value_index(d), pe);
  };

  std::vector<double> dep_values;
  for (const Slot& s : slots) {
    const IndexDomain& dom = spec.domain(s.tensor);
    const Point p = dom.delinearize(s.lin);
    const noc::Coord here = cfg_.geom.coord(static_cast<std::size_t>(s.pe));
    const std::size_t bits = spec.bits(s.tensor);

    const std::vector<ValueRef> deps = spec.deps(s.tensor, p);
    dep_values.clear();
    dep_values.reserve(deps.size());
    for (const ValueRef& d : deps) {
      const auto di = static_cast<std::size_t>(spec.value_index(d));
      if (!ready[di]) {
        throw SimulationError("GridMachine: element of " +
                              spec.name(s.tensor) +
                              " consumes a value that is never produced "
                              "before it (causality violation)");
      }
      const Cycle need = cfg_.earliest_start(spec, mapping, s.tensor, p, d);
      if (s.time < need) {
        throw SimulationError(
            "GridMachine: causality violation — element of " +
            spec.name(s.tensor) + " scheduled at cycle " +
            std::to_string(s.time) + " but its operand arrives at cycle " +
            std::to_string(need));
      }
      dep_values.push_back(values[di]);

      // Movement accounting for this operand.
      if (spec.is_input(d.tensor)) {
        const InputHome& home = mapping.input_home(d.tensor);
        if (!first_delivery(d, cfg_.geom.index(here))) {
          res.local_access_energy += tech.sram_access_energy(bits,
                                                             local_reach);
        } else if (home.kind == InputHome::Kind::kDram) {
          res.dram_energy += cfg_.geom.dram_access_energy(bits, here);
        } else if (home.home_of(d.point) == here) {
          res.local_access_energy += tech.sram_access_energy(bits,
                                                             local_reach);
        } else {
          const noc::Coord from = home.home_of(d.point);
          res.onchip_movement_energy +=
              cfg_.geom.transfer_energy(bits, from, here);
          ++res.messages;
          res.bit_hops += bits * static_cast<std::uint64_t>(
                                     cfg_.geom.hops(from, here));
        }
      } else {
        const noc::Coord there = mapping.place(d.tensor, d.point);
        if (there == here) {
          res.local_access_energy += tech.sram_access_energy(bits,
                                                             local_reach);
        } else {
          res.onchip_movement_energy +=
              cfg_.geom.transfer_energy(bits, there, here);
          ++res.messages;
          res.bit_hops += bits * static_cast<std::uint64_t>(
                                     cfg_.geom.hops(there, here));
        }
      }
    }

    const auto vi = static_cast<std::size_t>(
        spec.value_index(ValueRef{s.tensor, p}));
    values[vi] = spec.eval(s.tensor, p, dep_values);
    ready[vi] = 1;
    res.compute_energy +=
        tech.op_energy(bits) * spec.cost(s.tensor).ops;
    res.makespan_cycles = std::max(res.makespan_cycles, s.time + 1);
  }

  res.makespan = cfg_.cycle * static_cast<double>(res.makespan_cycles);

  // Extract outputs.
  for (TensorId t : spec.output_tensors()) {
    const IndexDomain& dom = spec.domain(t);
    std::vector<double> data(static_cast<std::size_t>(dom.size()));
    for (std::int64_t i = 0; i < dom.size(); ++i) {
      data[static_cast<std::size_t>(i)] = values[static_cast<std::size_t>(
          spec.value_index(ValueRef{t, dom.delinearize(i)}))];
    }
    res.outputs.push_back(std::move(data));
  }
  return res;
}

}  // namespace harmony::fm
