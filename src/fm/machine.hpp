// Grid-machine configuration, shared timing rules, and the executing
// simulator for the F&M model (Dally, paper §3).
//
// "A programmable target can be realized by putting a programmable
//  processor at each grid point and surrounding it with many 'tiles' of
//  memory."  MachineConfig describes such a target: a GridGeometry (which
//  carries the technology model), a cycle time, per-PE storage, and link
//  bandwidth.  GridMachine executes a (FunctionSpec, Mapping) pair on real
//  inputs, enforcing the same timing rules the legality checker verifies,
//  and returns both the outputs and the cost ledger.
#pragma once

#include <cstdint>
#include <vector>

#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "noc/mesh.hpp"
#include "support/units.hpp"

namespace harmony::fm {

struct MachineConfig {
  noc::GridGeometry geom;
  /// Cycle time; defaults to the technology's 32-bit add delay so one
  /// ALU op takes one cycle.
  Time cycle = Time::picoseconds(200.0);
  /// Live values one PE can hold (registers + local SRAM tiles).
  std::int64_t pe_capacity_values = 1 << 20;
  /// Bits one directed mesh link can carry per cycle.  A systolic
  /// dataflow moves ~two 32-bit operands per PE per cycle plus input
  /// streaming, so links are provisioned at 256 bits (realistic for a
  /// 0.2 mm-pitch mesh in a 5 nm-class process).
  double link_bits_per_cycle = 256.0;
  /// Wire distance charged for a same-PE operand (register/SRAM tile
  /// reach), as a fraction of the grid pitch.
  double local_access_pitch_fraction = 0.25;

  /// Cycles for a value to travel between two PEs (0 if same PE).
  [[nodiscard]] Cycle transit_cycles(noc::Coord a, noc::Coord b) const;
  /// Cycles for a DRAM access issued from `c` (latency + on-chip leg).
  [[nodiscard]] Cycle dram_cycles(noc::Coord c) const;

  /// Earliest cycle at which element (t, p) of the spec may execute given
  /// one dependence `dep` under `mapping`.  This single function is the
  /// timing contract shared by the legality checker, the cost evaluator,
  /// and the executing machine:
  ///   - computed dep q:  time(q) + max(1, transit(place(q), place(p)))
  ///   - PE-resident input: transit(home, place(p))
  ///   - DRAM input:        dram_cycles(place(p))
  [[nodiscard]] Cycle earliest_start(const FunctionSpec& spec,
                                     const Mapping& mapping, TensorId t,
                                     const Point& p,
                                     const ValueRef& dep) const;
};

/// A default machine: `cols` x `rows` PEs at 0.2 mm pitch (sub-mm grid,
/// one hop = 160 ps < one 200 ps cycle, so neighbour transfers pipeline
/// with compute exactly as in a systolic array).
[[nodiscard]] MachineConfig make_machine(int cols, int rows,
                                         noc::TechnologyModel tech =
                                             noc::TechnologyModel::n5());

/// Execution result of GridMachine::run.
struct ExecutionResult {
  /// Output tensors in FunctionSpec::output_tensors() order, row-major.
  std::vector<std::vector<double>> outputs;
  Cycle makespan_cycles = 0;
  Time makespan = Time::zero();
  Energy compute_energy = Energy::zero();
  Energy onchip_movement_energy = Energy::zero();
  Energy local_access_energy = Energy::zero();
  Energy dram_energy = Energy::zero();
  std::uint64_t messages = 0;
  std::uint64_t bit_hops = 0;

  [[nodiscard]] Energy total_energy() const {
    return compute_energy + onchip_movement_energy + local_access_energy +
           dram_energy;
  }
};

/// Executes the spec under the mapping.  Throws SimulationError if the
/// mapping is illegal (a dependence would be consumed before it can
/// arrive, or two elements share one (PE, cycle) slot).
class GridMachine {
 public:
  explicit GridMachine(MachineConfig cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] ExecutionResult run(
      const FunctionSpec& spec, const Mapping& mapping,
      const std::vector<std::vector<double>>& inputs) const;

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }

 private:
  MachineConfig cfg_;
};

}  // namespace harmony::fm
