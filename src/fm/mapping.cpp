#include "fm/mapping.hpp"

namespace harmony::fm {

void Mapping::grow(TensorId t) {
  const auto need = static_cast<std::size_t>(t) + 1;
  if (computed_.size() < need) {
    computed_.resize(need);
    inputs_.resize(need);
    has_computed_.resize(need, 0);
    has_input_.resize(need, 0);
  }
}

void Mapping::set_computed(TensorId t, PlaceFn place, TimeFn time) {
  HARMONY_REQUIRE(t >= 0, "Mapping: bad tensor id");
  HARMONY_REQUIRE(place != nullptr && time != nullptr,
                  "Mapping: place/time functions required");
  grow(t);
  computed_[static_cast<std::size_t>(t)] = {std::move(place),
                                            std::move(time)};
  has_computed_[static_cast<std::size_t>(t)] = 1;
}

void Mapping::set_input(TensorId t, InputHome home) {
  HARMONY_REQUIRE(t >= 0, "Mapping: bad tensor id");
  grow(t);
  inputs_[static_cast<std::size_t>(t)] = home;
  has_input_[static_cast<std::size_t>(t)] = 1;
}

bool Mapping::has_computed(TensorId t) const {
  return t >= 0 && static_cast<std::size_t>(t) < has_computed_.size() &&
         has_computed_[static_cast<std::size_t>(t)];
}

bool Mapping::has_input(TensorId t) const {
  return t >= 0 && static_cast<std::size_t>(t) < has_input_.size() &&
         has_input_[static_cast<std::size_t>(t)];
}

noc::Coord Mapping::place(TensorId t, const Point& p) const {
  HARMONY_REQUIRE(has_computed(t), "Mapping::place: tensor unmapped");
  return computed_[static_cast<std::size_t>(t)].place(p);
}

Cycle Mapping::time(TensorId t, const Point& p) const {
  HARMONY_REQUIRE(has_computed(t), "Mapping::time: tensor unmapped");
  return computed_[static_cast<std::size_t>(t)].time(p);
}

const InputHome& Mapping::input_home(TensorId t) const {
  HARMONY_REQUIRE(has_input(t), "Mapping::input_home: tensor unmapped");
  return inputs_[static_cast<std::size_t>(t)];
}

void Mapping::require_complete(const FunctionSpec& spec) const {
  for (int t = 0; t < spec.num_tensors(); ++t) {
    if (spec.is_input(t)) {
      HARMONY_REQUIRE(has_input(t), "Mapping: input tensor " +
                                        spec.name(t) + " has no home");
    } else {
      HARMONY_REQUIRE(has_computed(t), "Mapping: computed tensor " +
                                           spec.name(t) + " is unmapped");
    }
  }
}

Mapping serial_mapping(const FunctionSpec& spec, noc::Coord pe) {
  Mapping m;
  // Row-major order across all computed tensors, one op per cycle.  For a
  // recurrence this is the textbook serial loop nest.
  Cycle offset = 0;
  for (TensorId t : spec.computed_tensors()) {
    const IndexDomain dom = spec.domain(t);
    m.set_computed(
        t, [pe](const Point&) { return pe; },
        [dom, offset](const Point& p) { return offset + dom.linearize(p); });
    offset += dom.size();
  }
  for (TensorId t : spec.input_tensors()) {
    m.set_input(t, InputHome::at(pe));
  }
  return m;
}

PlaceFn WavefrontMap::place_fn() const {
  const int p = num_pes;
  return [p](const Point& pt) {
    return noc::Coord{static_cast<int>(pt.i % p), 0};
  };
}

TimeFn WavefrontMap::time_fn() const {
  const std::int64_t n = n_cols;
  const std::int64_t p = num_pes;
  return [n, p](const Point& pt) {
    return (pt.i / p) * (n + p) + (pt.i % p) + pt.j;
  };
}

WavefrontMap wavefront_map(std::int64_t n_cols, int num_pes) {
  HARMONY_REQUIRE(num_pes >= 1, "wavefront_map: need >= 1 PE");
  HARMONY_REQUIRE(n_cols >= 1, "wavefront_map: need >= 1 column");
  return WavefrontMap{n_cols, num_pes};
}

FoldedMap fold_columns(PlaceFn place, TimeFn time, int logical_cols,
                       int physical_cols) {
  HARMONY_REQUIRE(place != nullptr && time != nullptr,
                  "fold_columns: null mapping functions");
  HARMONY_REQUIRE(logical_cols >= 1 && physical_cols >= 1,
                  "fold_columns: column counts must be positive");
  const std::int64_t factor =
      (logical_cols + physical_cols - 1) / physical_cols;
  FoldedMap out;
  out.fold_factor = factor;
  out.place = [place, physical_cols](const Point& p) {
    const noc::Coord c = place(p);
    return noc::Coord{c.x % physical_cols, c.y};
  };
  out.time = [place, time, physical_cols, factor](const Point& p) {
    const noc::Coord c = place(p);
    return time(p) * factor + (c.x / physical_cols);
  };
  return out;
}

}  // namespace harmony::fm
