// Mapping: the space-time half of the F&M model (Dally, paper §3).
//
// "The mapping specifies when and where each element is computed and where
//  elements reside from definition to last use.  The time axis can be
//  discretized into cycles.  Location can be discretized onto a grid."
//
// A Mapping assigns every element of every computed tensor a grid
// coordinate (place) and a cycle (time), and every input tensor a home
// (a PE or the DRAM layer).  AffineMap covers the classical systolic /
// block / cyclic family — including the paper's edit-distance example
// "Map H(i,j) at i % P, time ..." — and is what the mapping autotuner
// (search.hpp) enumerates; arbitrary lambdas remain available for
// hand-crafted mappings.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fm/domain.hpp"
#include "fm/spec.hpp"
#include "noc/mesh.hpp"
#include "support/error.hpp"

namespace harmony::fm {

using Cycle = std::int64_t;
using PlaceFn = std::function<noc::Coord(const Point&)>;
using TimeFn = std::function<Cycle(const Point&)>;

/// Where an input tensor's values live before the computation starts.
/// Input layout is part of the mapping ("The F&M model supports modular
/// program composition, but with constraints on mappings of input and
/// output data structures"): a tensor may sit in DRAM, on one PE, or
/// distributed element-wise across the grid.
struct InputHome {
  enum class Kind { kDram, kPe, kDistributed } kind = Kind::kDram;
  noc::Coord pe{};  ///< meaningful when kind == kPe
  std::function<noc::Coord(const Point&)> place;  ///< kDistributed

  [[nodiscard]] static InputHome dram() { return InputHome{}; }
  [[nodiscard]] static InputHome at(noc::Coord c) {
    return InputHome{Kind::kPe, c, nullptr};
  }
  [[nodiscard]] static InputHome distributed(
      std::function<noc::Coord(const Point&)> fn) {
    return InputHome{Kind::kDistributed, {}, std::move(fn)};
  }

  /// Home PE of element `p`; only valid for kPe / kDistributed.
  [[nodiscard]] noc::Coord home_of(const Point& p) const {
    HARMONY_ASSERT(kind != Kind::kDram);
    return kind == Kind::kPe ? pe : place(p);
  }
};

class Mapping {
 public:
  /// Assigns place/time functions to a computed tensor.
  void set_computed(TensorId t, PlaceFn place, TimeFn time);
  /// Assigns a home to an input tensor.
  void set_input(TensorId t, InputHome home);

  [[nodiscard]] bool has_computed(TensorId t) const;
  [[nodiscard]] bool has_input(TensorId t) const;
  [[nodiscard]] noc::Coord place(TensorId t, const Point& p) const;
  [[nodiscard]] Cycle time(TensorId t, const Point& p) const;
  [[nodiscard]] const InputHome& input_home(TensorId t) const;

  /// Checks that every tensor of `spec` has an assignment.
  void require_complete(const FunctionSpec& spec) const;

 private:
  struct ComputedEntry {
    PlaceFn place;
    TimeFn time;
  };
  std::vector<ComputedEntry> computed_;  // indexed by TensorId (sparse)
  std::vector<InputHome> inputs_;
  std::vector<char> has_computed_;
  std::vector<char> has_input_;
  void grow(TensorId t);
};

/// An affine space-time map for rank <= 3 domains:
///   time     = ti*i + tj*j + tk*k + t0
///   place.x  = ((xi*i + xj*j + xk*k + x0) mod cols, wrapped non-negative)
///   place.y  = ((yi*i + yj*j + yk*k + y0) mod rows, wrapped non-negative)
/// This is the family the mapping autotuner (search.hpp) enumerates —
/// it contains the serial loop nests, wavefronts (when the array is wide
/// enough), projections, and cyclic distributions of classic systolic
/// design.
struct AffineMap {
  std::int64_t ti = 0, tj = 0, tk = 0, t0 = 0;
  std::int64_t xi = 0, xj = 0, xk = 0, x0 = 0;
  std::int64_t yi = 0, yj = 0, yk = 0, y0 = 0;
  int cols = 1, rows = 1;

  [[nodiscard]] Cycle time(const Point& p) const {
    return ti * p.i + tj * p.j + tk * p.k + t0;
  }
  [[nodiscard]] noc::Coord place(const Point& p) const {
    return noc::Coord{wrap(xi * p.i + xj * p.j + xk * p.k + x0, cols),
                      wrap(yi * p.i + yj * p.j + yk * p.k + y0, rows)};
  }
  [[nodiscard]] PlaceFn place_fn() const {
    return [m = *this](const Point& p) { return m.place(p); };
  }
  [[nodiscard]] TimeFn time_fn() const {
    return [m = *this](const Point& p) { return m.time(p); };
  }

 private:
  static int wrap(std::int64_t v, int m) {
    const std::int64_t r = v % m;
    return static_cast<int>(r < 0 ? r + m : r);
  }
};

/// Everything-on-one-PE, one-op-per-cycle in row-major order: the "serial
/// RAM" mapping used as the conventional-architecture baseline.
[[nodiscard]] Mapping serial_mapping(const FunctionSpec& spec,
                                     noc::Coord pe = {0, 0});

/// The paper's edit-distance wavefront, corrected to be causal: row i runs
/// on PE (i mod P, 0); time is skewed by one cycle per row so each
/// anti-diagonal marches across the processor array:
///   time(i,j) = floor(i/P)*(N+P) + (i mod P) + j
/// (The paper's sketch "time floor(i/P)*N + j" omits the "+ (i mod P)"
/// skew and the +P block drain; without them H(i-1,j) and H(i,j) would be
/// simultaneous.  DESIGN.md §4 records this fix.)  Not affine (floor/mod
/// of i), hence returned as closures rather than an AffineMap.
struct WavefrontMap {
  std::int64_t n_cols = 0;
  int num_pes = 1;
  [[nodiscard]] PlaceFn place_fn() const;
  [[nodiscard]] TimeFn time_fn() const;
};
[[nodiscard]] WavefrontMap wavefront_map(std::int64_t n_cols, int num_pes);

/// LSGP (locally-sequential, globally-parallel) folding: re-expresses a
/// schedule built for a `logical_cols` x R grid on `physical_cols` x R
/// PEs by time-multiplexing — Dally's "many possible mappings that range
/// from completely serial to minimum-depth parallel with many points
/// between", generated mechanically from one end of the range:
///
///   place'(p) = (place(p).x mod P, place(p).y)
///   time'(p)  = time(p) * F + (place(p).x / P),   F = ceil(L / P)
///
/// Each original cycle stretches to F so the up-to-F logical PEs folded
/// onto one physical PE get disjoint phases (exclusivity preserved), and
/// every original >=1-cycle dependence retains >=1 cycle of slack.
/// Folding can *lengthen* wires (logical neighbours that straddle a
/// mod-P boundary end up P-1 hops apart), so the result must still pass
/// verify() — folding generates candidates, the verifier disposes.
struct FoldedMap {
  PlaceFn place;
  TimeFn time;
  std::int64_t fold_factor = 1;
};
[[nodiscard]] FoldedMap fold_columns(PlaceFn place, TimeFn time,
                                     int logical_cols, int physical_cols);

}  // namespace harmony::fm
