#include "fm/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "support/error.hpp"

namespace harmony::fm {

std::size_t Pipeline::add_stage(PipelineStage s) {
  HARMONY_REQUIRE(s.spec != nullptr, "Pipeline::add_stage: null spec");
  HARMONY_REQUIRE(s.spec->computed_tensors().size() == 1,
                  "Pipeline::add_stage: stage specs must have exactly one "
                  "computed tensor (the searchers' contract)");
  const std::vector<TensorId> ins = s.spec->input_tensors();
  HARMONY_REQUIRE(s.inputs.size() == ins.size(),
                  "Pipeline::add_stage: one binding per input tensor, in "
                  "input_tensors() order");
  for (std::size_t o = 0; o < s.inputs.size(); ++o) {
    const StageInput& b = s.inputs[o];
    if (b.kind != StageInput::Kind::kProducer) continue;
    HARMONY_REQUIRE(b.producer < stages_.size(),
                    "Pipeline::add_stage: producer must reference an "
                    "earlier stage (stage order is the topological order)");
    const PipelineStage& prod = stages_[b.producer];
    const TensorId target = prod.spec->computed_tensors().front();
    HARMONY_REQUIRE(
        prod.spec->domain(target) == s.spec->domain(ins[o]),
        "Pipeline::add_stage: producer target domain must match the "
        "consumer input tensor's domain");
  }
  stages_.push_back(std::move(s));
  return stages_.size() - 1;
}

std::vector<Pipeline::Consumer> Pipeline::consumers_of(std::size_t p) const {
  std::vector<Consumer> out;
  for (std::size_t s = p + 1; s < stages_.size(); ++s) {
    const std::vector<StageInput>& ins = stages_[s].inputs;
    for (std::size_t o = 0; o < ins.size(); ++o) {
      if (ins[o].kind == StageInput::Kind::kProducer && ins[o].producer == p) {
        out.push_back(Consumer{s, o});
      }
    }
  }
  return out;
}

namespace {

/// A probed consumer with no legal mapping under some candidate layout is
/// worse than any finite merit but must stay comparable (all-illegal
/// candidate sets still pick by own merit through the tie-break).
constexpr double kIllegalPenalty = 1e300;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive accumulator for home fingerprints (same construction
/// as serve's cache-key Fingerprint, but local: fm cannot see serve).
struct HomeFp {
  std::uint64_t h = 0x9127bd3a5c6e41f7ULL;
  void mix(std::uint64_t v) { h = splitmix64(h ^ v); }
  void mix_i64(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
};

InputHome home_from_affine(const AffineMap& am) {
  return InputHome::distributed(
      [am](const Point& p) { return am.place(p); });
}

InputHome home_from_table(const TableMap& winner) {
  // The closure outlives the tuner's scratch, so it owns a snapshot.
  const auto tm = std::make_shared<const TableMap>(winner);
  return InputHome::distributed([tm](const Point& p) {
    return tm->coord_of(tm->domain.linearize(p));
  });
}

void mix_affine_home(HomeFp& fp, const AffineMap& am) {
  fp.mix_i64(am.ti);
  fp.mix_i64(am.tj);
  fp.mix_i64(am.tk);
  fp.mix_i64(am.t0);
  fp.mix_i64(am.xi);
  fp.mix_i64(am.xj);
  fp.mix_i64(am.xk);
  fp.mix_i64(am.x0);
  fp.mix_i64(am.yi);
  fp.mix_i64(am.yj);
  fp.mix_i64(am.yk);
  fp.mix_i64(am.y0);
  fp.mix_i64(am.cols);
  fp.mix_i64(am.rows);
}

void mix_table_home(HomeFp& fp, const TableMap& tm) {
  // Only placement shapes the consumer's input homes; cycles do not.
  fp.mix_i64(tm.cols);
  fp.mix(tm.pe.size());
  for (const std::int32_t q : tm.pe) fp.mix_i64(q);
}

/// One stage mapping the tuners weigh: the affine or table winner (per
/// PipelineOptions::strategy) plus its scored cost.  `src` indexes the
/// StrategyResult it came from (anneal/beam restarts).
struct StageCandidate {
  AffineMap affine;
  TableMap table;
  CostReport cost;
  double merit = 0.0;
  std::size_t src = 0;
};

/// The resolved input-home prototype of stage `s`, with producer
/// bindings taking their committed winners — except `override_stage`,
/// which (when `override_cand` is non-null) takes the candidate instead;
/// that is how the co-tuner probes a consumer under a hypothetical
/// producer layout.  Also accumulates the home fingerprint.
Mapping build_proto(const Pipeline& pipe, std::size_t s,
                    StrategyKind strategy,
                    const std::vector<StageResult>& committed,
                    std::size_t override_stage,
                    const StageCandidate* override_cand,
                    std::uint64_t* fp_out) {
  HomeFp fp;
  Mapping proto;
  const PipelineStage& st = pipe.stage(s);
  const std::vector<TensorId> ins = st.spec->input_tensors();
  for (std::size_t o = 0; o < ins.size(); ++o) {
    const StageInput& b = st.inputs[o];
    InputHome h;
    if (b.kind == StageInput::Kind::kExternal) {
      h = b.home;
      switch (b.home.kind) {
        case InputHome::Kind::kDram:
          fp.mix(1);
          break;
        case InputHome::Kind::kPe:
          fp.mix(2);
          fp.mix_i64(b.home.pe.x);
          fp.mix_i64(b.home.pe.y);
          break;
        case InputHome::Kind::kDistributed:
          // Opaque closure — structurally identified by its ordinal.
          // The serving layer's pipeline cache key covers the externals,
          // so two *different* pipelines never share a fingerprint.
          fp.mix(3);
          fp.mix(o);
          break;
      }
      proto.set_input(ins[o], std::move(h));
      continue;
    }
    const bool ov = override_cand != nullptr && b.producer == override_stage;
    fp.mix(strategy == StrategyKind::kExhaustive ? 4 : 5);
    fp.mix(b.producer);
    if (strategy == StrategyKind::kExhaustive) {
      const AffineMap& am =
          ov ? override_cand->affine : committed[b.producer].affine;
      mix_affine_home(fp, am);
      proto.set_input(ins[o], home_from_affine(am));
    } else {
      const TableMap& tm =
          ov ? override_cand->table : committed[b.producer].table;
      mix_table_home(fp, tm);
      proto.set_input(ins[o], home_from_table(tm));
    }
  }
  if (fp_out != nullptr) *fp_out = fp.h;
  return proto;
}

/// One stage search: search_affine over the template SearchOptions, or
/// `want_cands` seed-shifted search_table restarts.  Candidates come
/// back best-first.
struct StageRun {
  bool found = false;
  bool complete = true;  ///< searcher ran its full budget (not cut)
  std::vector<StageCandidate> cands;
  SearchResult search;                     ///< kExhaustive
  std::vector<StrategyResult> strategies;  ///< kAnneal / kBeam, per restart
};

StageRun run_stage(const Pipeline& pipe, const MachineConfig& machine,
                   const PipelineOptions& opts, std::size_t s,
                   const Mapping& proto, std::uint64_t fp,
                   std::size_t want_cands) {
  StageRun out;
  std::shared_ptr<const CompiledSpec> compiled;
  if (opts.compile) compiled = opts.compile(s, proto, fp);
  const PipelineStage& st = pipe.stage(s);
  if (opts.strategy == StrategyKind::kExhaustive) {
    SearchOptions so = opts.search;
    so.fom = opts.fom;
    so.cancel = opts.cancel;
    so.scheduler = opts.scheduler;
    so.num_workers = opts.num_workers;
    so.compiled = std::move(compiled);
    if (want_cands > 1) so.top_k = std::max(so.top_k, want_cands);
    out.search = search_affine(*st.spec, machine, proto, so);
    out.found = out.search.found;
    out.complete = out.search.exhausted;
    if (out.found && out.search.top.empty()) {
      // top_k == 0 template: best is still tracked.
      out.cands.push_back(StageCandidate{out.search.best.map, TableMap{},
                                         out.search.best.cost,
                                         out.search.best.merit, 0});
    }
    const std::size_t n = std::min(want_cands, out.search.top.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Candidate& c = out.search.top[i];
      out.cands.push_back(StageCandidate{c.map, TableMap{}, c.cost, c.merit,
                                         0});
    }
    return out;
  }
  for (std::size_t i = 0; i < want_cands; ++i) {
    StrategyOptions sto = opts.strategy_opts;
    sto.fom = opts.fom;
    sto.cancel = opts.cancel;
    sto.scheduler = opts.scheduler;
    sto.num_workers = opts.num_workers;
    sto.compiled = compiled;
    sto.seed = opts.strategy_opts.seed + i;  // independent restarts
    StrategyResult r =
        search_table(*st.spec, machine, proto, opts.strategy, sto);
    if (!r.completed) out.complete = false;
    if (r.found) {
      out.cands.push_back(StageCandidate{AffineMap{}, r.best, r.cost,
                                         r.merit, out.strategies.size()});
    }
    out.strategies.push_back(std::move(r));
    if (opts.cancel && opts.cancel()) {
      out.complete = false;
      break;
    }
  }
  std::stable_sort(out.cands.begin(), out.cands.end(),
                   [](const StageCandidate& a, const StageCandidate& b) {
                     return a.merit < b.merit;
                   });
  out.found = !out.cands.empty();
  return out;
}

PipelineResult tune_impl(const Pipeline& pipe, const MachineConfig& machine,
                         const PipelineOptions& opts, bool paired) {
  HARMONY_REQUIRE(!pipe.empty(), "tune_pipeline: empty pipeline");
  PipelineResult out;
  out.stages.resize(pipe.size());
  const auto cancelled = [&] { return opts.cancel && opts.cancel(); };

  for (std::size_t s = 0; s < pipe.size(); ++s) {
    StageResult& sr = out.stages[s];
    sr.name = pipe.stage(s).name;
    if (cancelled()) {
      out.completed = false;
      break;
    }
    // A stage whose producer found no legal mapping has no input homes
    // to compile against; it stays un-tuned (found == false).
    bool producers_ok = true;
    for (const StageInput& b : pipe.stage(s).inputs) {
      if (b.kind == StageInput::Kind::kProducer &&
          !out.stages[b.producer].found) {
        producers_ok = false;
      }
    }
    if (!producers_ok) continue;

    const std::size_t want =
        paired ? std::max<std::size_t>(opts.pair_candidates, 1) : 1;
    std::uint64_t fp = 0;
    const Mapping proto = build_proto(pipe, s, opts.strategy, out.stages,
                                      pipe.size(), nullptr, &fp);
    StageRun run = run_stage(pipe, machine, opts, s, proto, fp, want);
    if (!run.complete) out.completed = false;
    sr.home_fingerprint = fp;
    sr.search = run.search;
    if (!run.found) continue;

    std::size_t pick = 0;
    if (paired && run.cands.size() > 1) {
      // Immediate consumers whose *other* producers are already
      // committed — those are the adjacent pairs this stage can be
      // co-optimized with right now.  (Deduped: a consumer reading this
      // stage at several ordinals is probed once.)
      std::vector<std::size_t> consumers;
      for (const Pipeline::Consumer& c : pipe.consumers_of(s)) {
        if (!consumers.empty() && consumers.back() == c.stage) continue;
        bool ready = true;
        for (const StageInput& b : pipe.stage(c.stage).inputs) {
          if (b.kind == StageInput::Kind::kProducer && b.producer != s &&
              !out.stages[b.producer].found) {
            ready = false;
          }
        }
        if (ready) consumers.push_back(c.stage);
      }
      if (!consumers.empty()) {
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < run.cands.size(); ++i) {
          if (cancelled()) {
            out.completed = false;
            break;
          }
          double score = run.cands[i].merit;
          for (const std::size_t t : consumers) {
            std::uint64_t pfp = 0;
            const Mapping pproto =
                build_proto(pipe, t, opts.strategy, out.stages, s,
                            &run.cands[i], &pfp);
            const StageRun probe =
                run_stage(pipe, machine, opts, t, pproto, pfp, 1);
            ++out.probe_searches;
            if (!probe.complete) out.completed = false;
            score += probe.found ? probe.cands.front().merit
                                 : kIllegalPenalty;
          }
          // Strict < keeps the earlier (better own-merit) candidate on
          // ties, so a consumer-indifferent probe degenerates to greedy.
          if (score < best_score) {
            best_score = score;
            pick = i;
          }
        }
      }
    }
    const StageCandidate& c = run.cands[pick];
    sr.found = true;
    sr.affine = c.affine;
    sr.table = c.table;
    sr.cost = c.cost;
    sr.merit = c.merit;
    if (opts.strategy != StrategyKind::kExhaustive) {
      sr.strategy = run.strategies[c.src];
    }
  }

  out.found = std::all_of(out.stages.begin(), out.stages.end(),
                          [](const StageResult& r) { return r.found; });
  if (!out.found) return out;
  CostReport& total = out.total;
  for (std::size_t s = 0; s < pipe.size(); ++s) {
    StageResult& sr = out.stages[s];
    Cycle start = 0;
    for (const StageInput& b : pipe.stage(s).inputs) {
      if (b.kind == StageInput::Kind::kProducer) {
        start = std::max(start, out.stages[b.producer].finish_cycle);
      }
    }
    sr.start_cycle = start;
    sr.finish_cycle = start + sr.cost.makespan_cycles;
    total.makespan_cycles = std::max(total.makespan_cycles, sr.finish_cycle);
    total.compute_energy = total.compute_energy + sr.cost.compute_energy;
    total.onchip_movement_energy =
        total.onchip_movement_energy + sr.cost.onchip_movement_energy;
    total.local_access_energy =
        total.local_access_energy + sr.cost.local_access_energy;
    total.dram_energy = total.dram_energy + sr.cost.dram_energy;
    total.messages += sr.cost.messages;
    total.bit_hops += sr.cost.bit_hops;
    total.total_ops += sr.cost.total_ops;
  }
  total.makespan =
      machine.cycle * static_cast<double>(total.makespan_cycles);
  out.merit = merit_value(total, opts.fom);
  return out;
}

}  // namespace

PipelineResult tune_pipeline_greedy(const Pipeline& pipe,
                                    const MachineConfig& machine,
                                    const PipelineOptions& opts) {
  return tune_impl(pipe, machine, opts, /*paired=*/false);
}

PipelineResult tune_pipeline_paired(const Pipeline& pipe,
                                    const MachineConfig& machine,
                                    const PipelineOptions& opts) {
  return tune_impl(pipe, machine, opts, /*paired=*/true);
}

Mapping stage_input_proto(const Pipeline& pipe, std::size_t s,
                          StrategyKind strategy,
                          const PipelineResult& result) {
  HARMONY_REQUIRE(s < pipe.size(), "stage_input_proto: stage out of range");
  HARMONY_REQUIRE(result.stages.size() == pipe.size(),
                  "stage_input_proto: result does not match the pipeline");
  for (const StageInput& b : pipe.stage(s).inputs) {
    HARMONY_REQUIRE(b.kind != StageInput::Kind::kProducer ||
                        result.stages[b.producer].found,
                    "stage_input_proto: producer stage has no committed "
                    "mapping");
  }
  return build_proto(pipe, s, strategy, result.stages, pipe.size(), nullptr,
                     nullptr);
}

}  // namespace harmony::fm
