// fm::Pipeline — multi-kernel DAG composition with layout-aware handoff.
//
// The paper's central tension (architecture-friendly algorithms vs.
// algorithm-friendly architectures) is sharpest *between* kernels: where
// one kernel's output lives determines the next kernel's cheapest
// mapping, so tuning stages in isolation leaves the inter-stage
// data-movement cost on the table.  A Pipeline is a DAG of
// single-computed-tensor FunctionSpecs with typed producer→consumer
// value edges; a producer stage's chosen mapping *fixes the input homes*
// of its consumers (InputHome::distributed over the winner's place
// function), and the existing compile-time home resolution
// (fm/compiled.hpp) then prices every cross-stage dependence edge
// through the P×P route/energy tables — the handoff cost model is the
// single-spec cost model, fed the truth about where values actually
// live, instead of an assumed free handoff.
//
// Two tuners share that model:
//   * tune_pipeline_greedy — topological stage-by-stage: each stage
//     searches with its producers' committed winners fixed, commits its
//     own local best.  The baseline, and the cheapest.
//   * tune_pipeline_paired — co-optimizing: each stage keeps its
//     pair_candidates best mappings and scores every candidate by its
//     own merit *plus* probe searches of the immediate consumers with
//     that candidate's output layout substituted, committing the
//     candidate with the best pair score.  Catches the cases where the
//     producer's locally-best layout is the consumer's worst.
//
// Both reuse search_affine / search_table per stage (EvalContextPool per
// lane under a scheduler) and plumb deadline-cut and cancel through
// exactly like single-spec tunes: a cut pipeline returns best-so-far
// with completed == false.  bench_e24_pipeline measures the greedy vs.
// co-optimized gap over three scenarios; DESIGN.md §16 documents the
// model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fm/cost.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/search.hpp"
#include "fm/spec.hpp"
#include "fm/strategy/strategy.hpp"

namespace harmony::fm {

/// Where one stage input comes from: an external home (DRAM, a PE, or a
/// caller-supplied distribution) or the output of an earlier stage.
struct StageInput {
  enum class Kind : std::uint8_t { kExternal, kProducer };
  Kind kind = Kind::kExternal;
  InputHome home;             ///< kExternal
  std::size_t producer = 0;   ///< kProducer: index of an *earlier* stage

  [[nodiscard]] static StageInput external(InputHome h) {
    StageInput b;
    b.kind = Kind::kExternal;
    b.home = std::move(h);
    return b;
  }
  [[nodiscard]] static StageInput from(std::size_t stage) {
    StageInput b;
    b.kind = Kind::kProducer;
    b.producer = stage;
    return b;
  }
};

/// One pipeline stage: a single-computed-tensor spec plus one binding
/// per input tensor, in spec.input_tensors() order.
struct PipelineStage {
  std::string name;
  std::shared_ptr<const FunctionSpec> spec;
  std::vector<StageInput> inputs;
};

/// A DAG of stages.  Acyclicity holds by construction: add_stage()
/// requires every producer index to reference an earlier stage, so
/// stage order *is* a topological order.
class Pipeline {
 public:
  /// Validates and appends a stage; returns its index.  Throws
  /// InvalidArgument on: null spec, more than one computed tensor,
  /// binding count != input tensor count, a producer index that is not
  /// an earlier stage, or a producer target domain whose extents do not
  /// match the consumer input tensor's domain.
  std::size_t add_stage(PipelineStage s);

  [[nodiscard]] std::size_t size() const { return stages_.size(); }
  [[nodiscard]] bool empty() const { return stages_.empty(); }
  [[nodiscard]] const PipelineStage& stage(std::size_t i) const {
    return stages_[i];
  }

  /// A consumer edge: stage `stage` reads producer output as its input
  /// ordinal `input_ord`.
  struct Consumer {
    std::size_t stage = 0;
    std::size_t input_ord = 0;
  };
  /// Consumer edges of stage `p`, in (stage, ordinal) order.
  [[nodiscard]] std::vector<Consumer> consumers_of(std::size_t p) const;

 private:
  std::vector<PipelineStage> stages_;
};

struct PipelineOptions {
  /// Pipeline-level figure of merit: stage searches rank by it, and the
  /// co-tuner's pair scores sum it across stages.
  FigureOfMerit fom = FigureOfMerit::kEnergyDelay;
  /// Per-stage searcher: kExhaustive runs search_affine over `search`;
  /// kAnneal / kBeam run search_table over `strategy_opts`.
  StrategyKind strategy = StrategyKind::kExhaustive;
  /// Template for every stage's exhaustive search.  fom, cancel,
  /// scheduler, num_workers, and compiled are overridden per stage from
  /// the fields here; everything else passes through unchanged, so a
  /// single-stage pipeline reproduces a plain search_affine bit for bit.
  SearchOptions search;
  /// Template for kAnneal / kBeam stages (same override rule).
  StrategyOptions strategy_opts;
  /// Candidates per stage the co-tuner probes consumers with; 1 makes
  /// tune_pipeline_paired degenerate to greedy.
  std::size_t pair_candidates = 4;
  /// Pipeline-level cooperative cancellation: polled between stages and
  /// passed into every stage search (deadline cut — same contract as
  /// SearchOptions::cancel).  A cut pipeline returns best-so-far with
  /// completed == false.
  std::function<bool()> cancel;
  sched::Scheduler* scheduler = nullptr;
  unsigned num_workers = 0;
  /// Compile hook for the serving layer's per-stage compile cache:
  /// called with the stage index, the resolved input-home prototype,
  /// and a fingerprint identifying those homes (producer winners mix in
  /// their committed mapping).  Null compiles directly.
  std::function<std::shared_ptr<const CompiledSpec>(
      std::size_t stage, const Mapping& proto, std::uint64_t fingerprint)>
      compile;
};

/// One stage's committed outcome.  Exactly one of the affine / table
/// forms is meaningful, matching PipelineOptions::strategy.
struct StageResult {
  std::string name;
  bool found = false;
  AffineMap affine;        ///< strategy == kExhaustive
  TableMap table;          ///< strategy == kAnneal / kBeam
  /// Stage cost with the resolved input homes — inter-stage transit is
  /// priced here, through the compiled P×P tables.
  CostReport cost;
  double merit = 0.0;
  /// Full searcher detail for this stage's committing run.
  SearchResult search;      ///< kExhaustive
  StrategyResult strategy;  ///< kAnneal / kBeam
  /// Fingerprint of the resolved input homes this stage compiled with.
  std::uint64_t home_fingerprint = 0;
  /// Pipeline-level schedule: start = max over producers' finish (0 for
  /// source stages), finish = start + stage makespan.  Stage schedules
  /// are normalized to begin when their inputs are available, so the
  /// critical path through these is the pipeline makespan.
  Cycle start_cycle = 0;
  Cycle finish_cycle = 0;
};

struct PipelineResult {
  /// True when every stage committed a legal mapping.
  bool found = false;
  /// False when cancel cut tuning short (some stages may be missing or
  /// sub-exhaustive).
  bool completed = true;
  std::vector<StageResult> stages;
  /// Energies / messages / hops / ops summed over stages; makespan is
  /// the DAG critical path.
  CostReport total;
  double merit = 0.0;
  /// Extra consumer probe searches the co-tuner ran (0 for greedy).
  std::uint64_t probe_searches = 0;
};

/// Greedy stage-by-stage baseline: topological order, each stage tuned
/// with its producers' committed output layouts fixed as input homes,
/// local best committed.
[[nodiscard]] PipelineResult tune_pipeline_greedy(
    const Pipeline& pipe, const MachineConfig& machine,
    const PipelineOptions& opts = {});

/// Co-optimizing tuner: per stage, the pair_candidates best mappings
/// are each scored by own merit + probe searches of the immediate
/// consumers (adjacent stage pairs searched jointly); the best pair
/// score commits.  Falls back to the greedy choice when a stage has no
/// consumers or only one candidate.
[[nodiscard]] PipelineResult tune_pipeline_paired(
    const Pipeline& pipe, const MachineConfig& machine,
    const PipelineOptions& opts = {});

/// The resolved input-home prototype of stage `s` under `result`'s
/// committed winners: external bindings keep their homes, producer
/// bindings become distributed homes over the producer's winning place
/// function.  This is what certification needs — compile_spec on it and
/// replay the stage winner through analyze::build_exec_witness /
/// ExecChecker (serve and harmony-lint do exactly that).
[[nodiscard]] Mapping stage_input_proto(const Pipeline& pipe, std::size_t s,
                                        StrategyKind strategy,
                                        const PipelineResult& result);

}  // namespace harmony::fm
