#include "fm/program.hpp"

#include <cmath>

#include "fm/legality.hpp"
#include "support/error.hpp"

namespace harmony::fm {

ProgramResult run_program(const std::vector<ProgramStage>& stages,
                          const std::vector<Joint>& joints,
                          const MachineConfig& machine,
                          const std::vector<std::vector<double>>& first_inputs,
                          const VerifyOptions& verify_opts) {
  HARMONY_REQUIRE(!stages.empty(), "run_program: no stages");
  HARMONY_REQUIRE(joints.size() + 1 == stages.size(),
                  "run_program: need exactly one joint between each pair "
                  "of stages");
  for (const ProgramStage& s : stages) {
    HARMONY_REQUIRE(s.spec != nullptr && s.mapping != nullptr,
                    "run_program: stage " + s.name + " is incomplete");
  }

  ProgramResult res;
  const GridMachine gm(machine);
  std::vector<std::vector<double>> carried = first_inputs;

  for (std::size_t k = 0; k < stages.size(); ++k) {
    const ProgramStage& stage = stages[k];
    // The verify-before-run discipline applies per stage.
    const LegalityReport rep =
        verify(*stage.spec, *stage.mapping, machine, verify_opts);
    if (!rep.ok) {
      throw SimulationError("run_program: stage " + stage.name +
                            " has an illegal mapping: " +
                            (rep.diagnostics.empty() ? "(no detail)"
                                                     : rep.first_message()));
    }
    ExecutionResult exec = gm.run(*stage.spec, *stage.mapping, carried);
    res.total_cycles += exec.makespan_cycles;
    res.total_energy += exec.total_energy();
    carried = exec.outputs;
    res.per_stage.push_back(std::move(exec));

    if (k + 1 < stages.size()) {
      const Joint& joint = joints[k];
      // Value adaptation (host-side reshape/slice).
      if (joint.adapt) carried = joint.adapt(carried);
      // Movement pricing: aligned joints are free.
      HARMONY_REQUIRE(joint.produced.place != nullptr &&
                          joint.consumed.place != nullptr,
                      "run_program: joint " + std::to_string(k) +
                          " missing distributions");
      bool aligned = true;
      joint.domain.for_each([&](const Point& p) {
        if (!(joint.produced.place(p) == joint.consumed.place(p))) {
          aligned = false;
        }
      });
      res.joint_aligned.push_back(aligned);
      if (!aligned) {
        const RemapCost cost = remap_cost(joint.domain, joint.bits,
                                          joint.produced, joint.consumed,
                                          machine);
        res.remap_energy += cost.energy;
        res.total_energy += cost.energy;
        res.remap_messages += cost.messages;
        res.total_cycles += static_cast<Cycle>(
            std::ceil(cost.latency.picoseconds() /
                      machine.cycle.picoseconds()));
      }
    }
  }
  res.outputs = carried;
  return res;
}

}  // namespace harmony::fm
