// Multi-stage F&M programs: modular composition, executed (Dally, §3).
//
// "Functions compose as usual.  Mappings, however, must be aligned to
//  compose modules.  The output of module A must have the same mapping
//  as the input of module B ... or a remapping module must be inserted."
//
// run_program() chains (FunctionSpec, Mapping) stages on one grid
// machine: each stage executes for real (GridMachine), its outputs are
// carried to the next stage's inputs, and each joint is either aligned
// (free) or priced as a remap module via the idiom cost model.  The
// program's makespan is the sum of stage makespans plus remap transit;
// energy adds stage energies plus remap movement.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fm/idioms.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"

namespace harmony::fm {

/// Carries stage k's outputs into stage k+1's inputs.
struct Joint {
  /// Host-side value adapter: maps the producer's output tensors to the
  /// consumer's input tensors (e.g. slice the k = last plane out of a
  /// partial-sum tensor).  Defaults to the identity.
  std::function<std::vector<std::vector<double>>(
      const std::vector<std::vector<double>>&)> adapt;
  /// Movement pricing for the joint: where the carried values live after
  /// the producer vs where the consumer's mapping expects them.  The
  /// joint is "aligned" (free) when the distributions agree pointwise.
  IndexDomain domain{1};
  std::size_t bits = 32;
  Distribution produced;
  Distribution consumed;
};

struct ProgramStage {
  std::string name;
  const FunctionSpec* spec = nullptr;
  const Mapping* mapping = nullptr;
};

struct ProgramResult {
  /// Outputs of the final stage.
  std::vector<std::vector<double>> outputs;
  Cycle total_cycles = 0;
  Energy total_energy = Energy::zero();
  Energy remap_energy = Energy::zero();
  std::uint64_t remap_messages = 0;
  std::vector<ExecutionResult> per_stage;
  /// Joint alignment flags (true = no remap inserted).
  std::vector<bool> joint_aligned;
};

/// Executes stages sequentially; joints.size() must be stages.size()-1.
/// Every stage's mapping must verify-cleanly under `machine` (checked
/// with causality/exclusivity; storage and bandwidth per VerifyOptions).
[[nodiscard]] ProgramResult run_program(
    const std::vector<ProgramStage>& stages,
    const std::vector<Joint>& joints, const MachineConfig& machine,
    const std::vector<std::vector<double>>& first_inputs,
    const VerifyOptions& verify_opts = {});

}  // namespace harmony::fm
