#include "fm/recompute.hpp"

#include <algorithm>

namespace harmony::fm {

RecomputeReport recompute_report(const FunctionSpec& spec,
                                 const Mapping& mapping,
                                 const MachineConfig& machine) {
  mapping.require_complete(spec);
  RecomputeReport rep;
  const noc::TechnologyModel& tech = machine.geom.tech();
  const Length local_reach =
      machine.geom.pitch() * machine.local_access_pitch_fraction;

  for (TensorId t : spec.computed_tensors()) {
    const IndexDomain& dom = spec.domain(t);
    dom.for_each([&](const Point& p) {
      const noc::Coord here = mapping.place(t, p);
      for (const ValueRef& d : spec.deps(t, p)) {
        if (spec.is_input(d.tensor)) continue;
        const noc::Coord there = mapping.place(d.tensor, d.point);
        if (there == here) continue;
        ++rep.remote_edges;
        const std::size_t bits = spec.bits(d.tensor);
        const Energy move = machine.geom.transfer_energy(bits, there, here);
        rep.move_energy += move;

        // Depth-1 recompute feasibility.
        const auto producer_deps = spec.deps(d.tensor, d.point);
        const bool feasible = std::all_of(
            producer_deps.begin(), producer_deps.end(),
            [&](const ValueRef& pd) { return spec.is_input(pd.tensor); });
        if (!feasible) {
          rep.best_energy += move;
          continue;
        }
        ++rep.feasible_edges;
        Energy recompute =
            tech.op_energy(bits) * spec.cost(d.tensor).ops;
        for (const ValueRef& pd : producer_deps) {
          const std::size_t pbits = spec.bits(pd.tensor);
          const InputHome& home = mapping.input_home(pd.tensor);
          if (home.kind == InputHome::Kind::kDram) {
            recompute += machine.geom.dram_access_energy(pbits, here);
          } else if (home.home_of(pd.point) == here) {
            recompute += tech.sram_access_energy(pbits, local_reach);
          } else {
            recompute += machine.geom.transfer_energy(
                pbits, home.home_of(pd.point), here);
          }
        }
        if (recompute < move) {
          ++rep.profitable_edges;
          rep.best_energy += recompute;
        } else {
          rep.best_energy += move;
        }
      }
    });
  }
  return rep;
}

}  // namespace harmony::fm
