// Recompute-instead-of-communicate analysis (Dally, paper §3).
//
// "A mapping may compute the same element at multiple points in time
//  and/or space — rather than storing it or communicating it between
//  those points."
//
// recompute_report() walks every *remote* computed-operand edge of a
// mapped computation and compares
//
//   move cost      = wire energy of shipping the value along its route
//   recompute cost = the producer's op energy + the energy of acquiring
//                    the producer's own operands at the consumer
//
// Depth-1 feasibility: the producer's operands must all be inputs (the
// common case for streamed/broadcast values).  This is an *energy-bound
// analysis*: it tells the mapper where replication would pay; inserting
// the replicated ops into the schedule (extra (PE, cycle) slots) is the
// mapper's follow-up job.
#pragma once

#include <cstdint>

#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "support/units.hpp"

namespace harmony::fm {

struct RecomputeReport {
  std::uint64_t remote_edges = 0;     ///< computed operands that move
  std::uint64_t feasible_edges = 0;   ///< producer's operands all inputs
  std::uint64_t profitable_edges = 0; ///< recompute beats the wire
  /// Current movement energy of all remote computed-operand edges.
  Energy move_energy = Energy::zero();
  /// The same edges priced at min(move, feasible recompute).
  Energy best_energy = Energy::zero();

  [[nodiscard]] Energy savings() const { return move_energy - best_energy; }
  [[nodiscard]] double savings_fraction() const {
    const double m = move_energy.femtojoules();
    return m > 0.0 ? savings().femtojoules() / m : 0.0;
  }
};

[[nodiscard]] RecomputeReport recompute_report(const FunctionSpec& spec,
                                               const Mapping& mapping,
                                               const MachineConfig& machine);

}  // namespace harmony::fm
