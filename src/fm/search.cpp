#include "fm/search.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace harmony::fm {

namespace {

/// Extremes of an affine form over the domain box (attained at corners).
struct Range {
  std::int64_t lo;
  std::int64_t hi;
};

Range affine_range(const IndexDomain& dom, std::int64_t ci, std::int64_t cj,
                   std::int64_t ck, std::int64_t c0) {
  Range r{std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()};
  const std::int64_t is[2] = {0, dom.extent(0) - 1};
  const std::int64_t js[2] = {0, dom.extent(1) - 1};
  const std::int64_t ks[2] = {0, dom.extent(2) - 1};
  for (std::int64_t i : is) {
    for (std::int64_t j : js) {
      for (std::int64_t k : ks) {
        const std::int64_t v = ci * i + cj * j + ck * k + c0;
        r.lo = std::min(r.lo, v);
        r.hi = std::max(r.hi, v);
      }
    }
  }
  return r;
}

/// Builds the full candidate mapping: the searched map on the computed
/// tensor plus the caller's input homes.
Mapping make_candidate(const FunctionSpec& spec, TensorId target,
                       const AffineMap& map, const Mapping& input_proto) {
  Mapping m;
  m.set_computed(target, map.place_fn(), map.time_fn());
  for (TensorId t : spec.input_tensors()) {
    m.set_input(t, input_proto.input_home(t));
  }
  return m;
}

}  // namespace

SearchResult search_affine(const FunctionSpec& spec,
                           const MachineConfig& machine,
                           const Mapping& input_proto,
                           const SearchOptions& opts) {
  const auto computed = spec.computed_tensors();
  HARMONY_REQUIRE(computed.size() == 1,
                  "search_affine: spec must have exactly one computed "
                  "tensor");
  const TensorId target = computed[0];
  const IndexDomain& dom = spec.domain(target);
  const bool use_j = dom.rank() >= 2;
  const bool use_k = dom.rank() >= 3;

  // Sample points for the quick causality gate (deterministic stride).
  std::vector<Point> sample;
  {
    const std::int64_t n = dom.size();
    const std::int64_t stride =
        std::max<std::int64_t>(1, n / static_cast<std::int64_t>(
                                          std::max<std::size_t>(
                                              1, opts.quick_sample)));
    for (std::int64_t lin = 0; lin < n; lin += stride) {
      sample.push_back(dom.delinearize(lin));
    }
    sample.push_back(dom.delinearize(n - 1));
  }

  const double serial_size = static_cast<double>(dom.size());
  const double makespan_bound = serial_size * opts.makespan_slack + 1.0;

  SearchResult result;
  double best_merit = std::numeric_limits<double>::infinity();

  // Deterministic enumeration-slot counter: the serve layer resumes a
  // cut-short search by replaying the same loop nest and skipping the
  // first `resume_from` slots.
  std::uint64_t slot = 0;
  const auto stop_requested = [&opts] {
    return opts.cancel && opts.cancel();
  };

  const std::vector<std::int64_t> zero{0};
  const auto& tc = opts.space.time_coeffs;
  const auto& sc = opts.space.space_coeffs;
  const auto& tcj = use_j ? tc : zero;
  const auto& tck = use_k ? tc : zero;
  const auto& scj = use_j ? sc : zero;
  const auto& sck = use_k ? sc : zero;
  const auto& scy = opts.space.search_y && machine.geom.rows() > 1 ? sc
                                                                   : zero;
  const auto& scyj = use_j ? scy : zero;
  const auto& scyk = use_k ? scy : zero;

  for (std::int64_t ti : tc) {
    for (std::int64_t tj : tcj) {
      for (std::int64_t tk : tck) {
        // Normalize the offset so the schedule starts at cycle 0.
        const Range tr = affine_range(dom, ti, tj, tk, 0);
        const std::int64_t t0 = -tr.lo;
        if (static_cast<double>(tr.hi - tr.lo + 1) > makespan_bound) {
          continue;  // hopelessly stretched; skip before inner loops
        }
        for (std::int64_t xi : sc) {
          for (std::int64_t xj : scj) {
            for (std::int64_t xk : sck) {
              for (std::int64_t yi : scy) {
                for (std::int64_t yj : scyj) {
                  for (std::int64_t yk : scyk) {
                    if (slot++ < opts.resume_from) continue;
                    if (stop_requested()) {
                      result.exhausted = false;
                      result.next_offset = slot - 1;
                      return result;
                    }
                    ++result.enumerated;
                    AffineMap map{.ti = ti, .tj = tj, .tk = tk, .t0 = t0,
                                  .xi = xi, .xj = xj, .xk = xk, .x0 = 0,
                                  .yi = yi, .yj = yj, .yk = yk, .y0 = 0,
                                  .cols = machine.geom.cols(),
                                  .rows = machine.geom.rows()};

                    // Gate 1: sampled causality.
                    bool plausible = true;
                    for (const Point& p : sample) {
                      const Cycle when = map.time(p);
                      for (const ValueRef& d : spec.deps(target, p)) {
                        if (spec.is_input(d.tensor)) continue;
                        const noc::Coord here = map.place(p);
                        const noc::Coord there = map.place(d.point);
                        const Cycle need =
                            map.time(d.point) +
                            std::max<Cycle>(
                                1, machine.transit_cycles(there, here));
                        if (when < need) {
                          plausible = false;
                          break;
                        }
                      }
                      if (!plausible) break;
                    }
                    if (!plausible) {
                      ++result.quick_rejected;
                      continue;
                    }

                    // Input-arrival normalization: computed-dep legality
                    // is shift-invariant, input arrival is not — slide
                    // the whole schedule so every element starts no
                    // earlier than its input operands can reach it.
                    {
                      Cycle deficit = 0;
                      dom.for_each([&](const Point& p) {
                        const Cycle when = map.time(p);
                        const noc::Coord here = map.place(p);
                        for (const ValueRef& d : spec.deps(target, p)) {
                          if (!spec.is_input(d.tensor)) continue;
                          const InputHome& home =
                              input_proto.input_home(d.tensor);
                          const Cycle need =
                              home.kind == InputHome::Kind::kDram
                                  ? machine.dram_cycles(here)
                                  : machine.transit_cycles(
                                        home.home_of(d.point), here);
                          deficit = std::max(deficit, need - when);
                        }
                      });
                      map.t0 += deficit;
                    }

                    // Gate 2: full legality.
                    const Mapping candidate =
                        make_candidate(spec, target, map, input_proto);
                    const LegalityReport rep =
                        verify(spec, candidate, machine, opts.verify);
                    if (!rep.ok) {
                      ++result.verify_rejected;
                      continue;
                    }
                    ++result.legal;

                    // Gate 3: cost + ranking.
                    const CostReport cost =
                        evaluate_cost(spec, candidate, machine);
                    if (opts.keep_all_legal) {
                      result.all_legal.push_back(
                          Candidate{map, cost,
                                    merit_value(cost, opts.fom)});
                    }
                    const double merit = merit_value(cost, opts.fom);
                    Candidate cand{map, cost, merit};
                    result.top.push_back(cand);
                    std::sort(result.top.begin(), result.top.end(),
                              [](const Candidate& a, const Candidate& b) {
                                return a.merit < b.merit;
                              });
                    if (result.top.size() > opts.top_k) {
                      result.top.resize(opts.top_k);
                    }
                    if (merit < best_merit) {
                      best_merit = merit;
                      result.best = cand;
                      result.found = true;
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  result.next_offset = slot;
  return result;
}

std::vector<Candidate> pareto_front(
    const std::vector<Candidate>& candidates) {
  std::vector<Candidate> front;
  for (const Candidate& c : candidates) {
    bool dominated = false;
    for (const Candidate& other : candidates) {
      const bool no_worse =
          other.cost.makespan_cycles <= c.cost.makespan_cycles &&
          other.cost.total_energy().femtojoules() <=
              c.cost.total_energy().femtojoules();
      const bool strictly_better =
          other.cost.makespan_cycles < c.cost.makespan_cycles ||
          other.cost.total_energy().femtojoules() <
              c.cost.total_energy().femtojoules();
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      // Deduplicate identical (time, energy) points.
      bool dup = false;
      for (const Candidate& f : front) {
        if (f.cost.makespan_cycles == c.cost.makespan_cycles &&
            f.cost.total_energy().femtojoules() ==
                c.cost.total_energy().femtojoules()) {
          dup = true;
          break;
        }
      }
      if (!dup) front.push_back(c);
    }
  }
  std::sort(front.begin(), front.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.cost.makespan_cycles < b.cost.makespan_cycles;
            });
  return front;
}

}  // namespace harmony::fm
