#include "fm/search.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace harmony::fm {

namespace {

/// Decode chunk of the batched inner loop: big enough that the odometer
/// seed (one div/mod chain) amortizes away and the evaluation loop
/// stays tight, small enough that a lane's decode buffer is a few KB.
constexpr std::size_t kDecodeBatch = 256;

/// Evaluates decoded candidates through the three gates into a tally.
/// Every gate runs on the CompiledSpec's flat arrays — no Mapping
/// object, no spec callback, no geometry query, no indirect call per
/// candidate.  Read-only over the compiled spec and plan, so lanes
/// share one Evaluator; each lane owns the EvalContext and decode
/// buffer it passes in along with its SearchTally.
struct Evaluator {
  const CompiledSpec& cs;
  const SearchOptions& opts;
  const std::vector<Point>& sample_pts;
  const std::vector<std::int64_t>& sample_lins;
  const EnumPlan& plan;

  /// One candidate: row `r` of `soa` is slot `slot`.
  void eval_decoded(const AffineSoA& soa, std::size_t r, std::uint64_t slot,
                    SearchTally& tally, EvalContext& ctx) const {
    ++tally.enumerated;
    AffineMap map = soa.map_at(r, cs.cols, cs.rows);

    // Gate 1: sampled causality over the compiled dependence lists.
    const std::size_t P = cs.num_pes;
    for (std::size_t idx = 0; idx < sample_pts.size(); ++idx) {
      const Point& p = sample_pts[idx];
      const Cycle when = map.time(p);
      const auto lin = static_cast<std::size_t>(sample_lins[idx]);
      for (std::uint64_t o = cs.dep_offsets[lin];
           o < cs.dep_offsets[lin + 1]; ++o) {
        const CompiledDep& d = cs.deps[o];
        if (d.kind != CompiledDep::kComputed) continue;
        const std::size_t here = cs.pe_index(map.place(p));
        const Point dp = d.point();
        const std::size_t there = cs.pe_index(map.place(dp));
        const Cycle need =
            map.time(dp) + std::max<Cycle>(1, cs.transit[there * P + here]);
        if (when < need) {
          ++tally.quick_rejected;
          return;
        }
      }
    }

    // Input-arrival normalization: computed-dep legality is
    // shift-invariant, input arrival is not — slide the whole schedule
    // so every element starts no earlier than its input operands can
    // reach it.
    if (cs.has_input_deps) {
      Cycle deficit = 0;
      std::int64_t lin = 0;
      cs.domain.for_each([&](const Point& p) {
        const auto v = static_cast<std::size_t>(lin++);
        const std::uint64_t lo = cs.dep_offsets[v];
        const std::uint64_t hi = cs.dep_offsets[v + 1];
        if (lo == hi) return;
        const Cycle when = map.time(p);
        const std::size_t here = cs.pe_index(map.place(p));
        for (std::uint64_t o = lo; o < hi; ++o) {
          const CompiledDep& d = cs.deps[o];
          if (d.kind == CompiledDep::kComputed) continue;
          const Cycle need =
              d.kind == CompiledDep::kInputDram
                  ? cs.dram_cycles[here]
                  : cs.transit[static_cast<std::size_t>(d.home_pe) * P +
                               here];
          deficit = std::max(deficit, need - when);
        }
      });
      map.t0 += deficit;
    }

    // Gate 2: full legality on the compiled arrays.  The report-free
    // checker short-circuits at the first violation — rejection is the
    // common case and the search never read the report it used to get.
    if (!verify_ok(cs, map, ctx, opts.verify)) {
      ++tally.verify_rejected;
      return;
    }
    ++tally.legal;

    // Gate 3: cost + ranking.
    const CostReport cost = evaluate_cost(cs, map, ctx);
    const Candidate cand{map, cost, merit_value(cost, opts.fom), slot};
    if (opts.keep_all_legal) {
      tally.all_legal.push_back(cand);
    }
    tally_insert(tally, cand, opts.top_k);
  }

  /// A whole slot range, batch-decoded into `soa` and evaluated in a
  /// tight loop — the per-grain body of the parallel driver.
  void eval_range(std::uint64_t lo, std::uint64_t hi, AffineSoA& soa,
                  SearchTally& tally, EvalContext& ctx) const {
    for (std::uint64_t base = lo; base < hi; base += kDecodeBatch) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kDecodeBatch, hi - base));
      decode_slots(plan, base, n, soa);
      for (std::size_t r = 0; r < n; ++r) {
        eval_decoded(soa, r, base + r, tally, ctx);
      }
    }
  }
};

/// Deterministic reduction of the per-lane tallies: counter sums, best
/// by (merit, slot), top re-ranked and truncated, all_legal restored to
/// enumeration order.  Lane count never changes the outcome, and the
/// merge is the *only* cross-lane step of the whole search — the hot
/// loop shares nothing but the tail ticket (DESIGN.md §15).
void merge_tallies(std::vector<SearchTally>& tallies, std::size_t top_k,
                   SearchResult& out) {
  trace::Span span("fm", "merge", 0, tallies.size(), top_k);
  for (SearchTally& t : tallies) {
    out.enumerated += t.enumerated;
    out.quick_rejected += t.quick_rejected;
    out.verify_rejected += t.verify_rejected;
    out.legal += t.legal;
    if (t.found && (!out.found || candidate_precedes(t.best, out.best))) {
      out.best = t.best;
      out.found = true;
    }
    out.top.insert(out.top.end(), std::make_move_iterator(t.top.begin()),
                   std::make_move_iterator(t.top.end()));
    out.all_legal.insert(out.all_legal.end(),
                         std::make_move_iterator(t.all_legal.begin()),
                         std::make_move_iterator(t.all_legal.end()));
  }
  std::sort(out.top.begin(), out.top.end(), candidate_precedes);
  if (out.top.size() > top_k) out.top.resize(top_k);
  std::sort(out.all_legal.begin(), out.all_legal.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.slot < b.slot;
            });
}

}  // namespace

std::vector<analyze::Diagnostic> validate_search_options(
    const SearchOptions& opts) {
  std::vector<analyze::Diagnostic> diags;
  const auto flag = [&](const char* what) {
    diags.push_back(analyze::make_diagnostic(
        "FM005", analyze::Location{},
        std::string("fm::search_affine: ") + what));
  };
  if (opts.top_k == 0) {
    flag("top_k must be positive (0 would rank nothing)");
  }
  if (opts.quick_sample == 0) {
    flag("quick_sample must be positive (0 would sample no points)");
  }
  if (opts.grain == 0) {
    flag("grain must be positive (use kAutoGrain for automatic sizing)");
  }
  return diags;
}

SearchResult search_affine(const FunctionSpec& spec,
                           const MachineConfig& machine,
                           const Mapping& input_proto,
                           const SearchOptions& opts) {
  {
    const auto diags = validate_search_options(opts);
    if (!diags.empty()) throw InvalidArgument(diags.front().message);
  }
  const auto computed = spec.computed_tensors();
  HARMONY_REQUIRE(computed.size() == 1,
                  "search_affine: spec must have exactly one computed "
                  "tensor");
  const TensorId target = computed[0];
  const IndexDomain& dom = spec.domain(target);
  trace::Span search_span("fm", "search_affine", 0, opts.resume_from);

  // Compile the triple once per search (flat dependence + geometry
  // tables, see fm/compiled.hpp) unless the caller shares a precompiled
  // spec.  All lanes read it; each lane owns its own EvalContext scratch.
  std::shared_ptr<const CompiledSpec> cs = opts.compiled;
  if (cs == nullptr) cs = compile_spec(spec, machine, input_proto);

  // Sample points for the quick causality gate (deterministic stride).
  std::vector<Point> sample_pts;
  std::vector<std::int64_t> sample_lins;
  {
    const std::int64_t n = dom.size();
    const std::int64_t stride = std::max<std::int64_t>(
        1, n / static_cast<std::int64_t>(opts.quick_sample));
    for (std::int64_t lin = 0; lin < n; lin += stride) {
      sample_pts.push_back(dom.delinearize(lin));
      sample_lins.push_back(lin);
    }
    sample_pts.push_back(dom.delinearize(n - 1));
    sample_lins.push_back(n - 1);
  }

  const double serial_size = static_cast<double>(dom.size());
  const double makespan_bound = serial_size * opts.makespan_slack + 1.0;

  const EnumPlan plan =
      build_enum_plan(dom, machine, opts.space, makespan_bound);
  const std::uint64_t total = plan.total;
  const std::uint64_t begin = std::min(opts.resume_from, total);
  const Evaluator evaluate{*cs, opts, sample_pts, sample_lins, plan};

  SearchResult result;

  unsigned lanes = 1;
  if (opts.scheduler != nullptr && begin < total) {
    lanes = opts.scheduler->num_workers();
    if (opts.num_workers != 0) lanes = std::min(lanes, opts.num_workers);
  }

  if (lanes <= 1) {
    // Serial backend: one tally, one context, cancel polled per slot.
    // Decoding still runs in batches (it has no side effects, so a
    // cancel between decoded slots loses nothing) and evaluation is the
    // same tight loop the lanes run.
    std::vector<SearchTally> tally(1);
    EvalContext ctx(*cs);
    ctx.reserve_scratch(*cs);
    AffineSoA soa;
    for (std::uint64_t base = begin; base < total; base += kDecodeBatch) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kDecodeBatch, total - base));
      decode_slots(plan, base, n, soa);
      for (std::size_t r = 0; r < n; ++r) {
        if (opts.cancel && opts.cancel()) {
          result.exhausted = false;
          result.next_offset = base + r;
          merge_tallies(tally, opts.top_k, result);
          return result;
        }
        evaluate.eval_decoded(soa, r, base + r, tally[0], ctx);
      }
    }
    result.next_offset = total;
    merge_tallies(tally, opts.top_k, result);
    return result;
  }

  // Parallel backend: grains over [begin, total) — a static head share
  // per lane plus a small ticketed tail (fm::search_lanes) — cancel
  // polled per grain, completion tracked so next_offset is the lowest
  // unprocessed slot even when grains finish out of order.
  const std::uint64_t range = total - begin;
  const std::uint64_t grain_slots = opts.grain != kAutoGrain
                                        ? opts.grain
                                        : auto_grain_slots(range, lanes);
  // Overflow-safe ceil-divide: the naive (range + grain_slots - 1) form
  // wraps uint64 when a caller passes a near-2^64 grain (a legal value,
  // distinct from the kAutoGrain sentinel), collapsing num_grains to 0 —
  // the whole space is skipped yet next_offset lands on `total` with
  // exhausted=true, silently breaking the resume covering invariant.
  const std::uint64_t num_grains =
      range / grain_slots + (range % grain_slots != 0 ? 1 : 0);
  lanes = static_cast<unsigned>(
      std::min<std::uint64_t>(lanes, num_grains));

  std::vector<SearchTally> tallies(lanes);
  // Per-lane evaluation scratch, allocated and reserved before any lane
  // runs: EvalContexts in an arena-style pool, decode buffers beside
  // them.  The kernel's explicit lane index selects a lane's pair.
  EvalContextPool ctx_pool(*cs, lanes);
  std::vector<AffineSoA> decode_bufs(lanes);
  std::vector<std::uint8_t> processed(num_grains, 0);
  sched::RealCtx ctx;
  const auto kernel = [&] {
    search_lanes(ctx, lanes, begin, total, grain_slots, opts.cancel,
                 tallies.data(), processed.data(),
                 [&](std::uint64_t lo, std::uint64_t hi, unsigned lane,
                     SearchTally& t) {
                   evaluate.eval_range(lo, hi, decode_bufs[lane], t,
                                       ctx_pool.lane(lane));
                 });
  };
  if (sched::Scheduler::in_parallel_context()) {
    // Already inside a scheduler session (e.g. the serve dispatcher's
    // batch loop): fork into it instead of opening a nested run().
    kernel();
  } else {
    opts.scheduler->run(kernel);
  }

  result.workers_used = lanes;
  merge_tallies(tallies, opts.top_k, result);
  std::uint64_t first_unprocessed = num_grains;
  for (std::uint64_t g = 0; g < num_grains; ++g) {
    if (processed[g] == 0) {
      first_unprocessed = g;
      break;
    }
  }
  if (first_unprocessed == num_grains) {
    result.next_offset = total;
  } else {
    result.exhausted = false;
    // The lowest unprocessed grain's first slot, clamped to the
    // enumeration size: with a grain that does not divide the slot
    // space the multiply could otherwise step past `total`, and a
    // resume must never chase a phantom offset.
    result.next_offset =
        std::min(total, begin + first_unprocessed * grain_slots);
  }
  return result;
}

std::vector<Candidate> pareto_front(
    const std::vector<Candidate>& candidates) {
  std::vector<Candidate> front;
  for (const Candidate& c : candidates) {
    bool dominated = false;
    for (const Candidate& other : candidates) {
      const bool no_worse =
          other.cost.makespan_cycles <= c.cost.makespan_cycles &&
          other.cost.total_energy().femtojoules() <=
              c.cost.total_energy().femtojoules();
      const bool strictly_better =
          other.cost.makespan_cycles < c.cost.makespan_cycles ||
          other.cost.total_energy().femtojoules() <
              c.cost.total_energy().femtojoules();
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      // Deduplicate identical (time, energy) points.
      bool dup = false;
      for (const Candidate& f : front) {
        if (f.cost.makespan_cycles == c.cost.makespan_cycles &&
            f.cost.total_energy().femtojoules() ==
                c.cost.total_energy().femtojoules()) {
          dup = true;
          break;
        }
      }
      if (!dup) front.push_back(c);
    }
  }
  std::sort(front.begin(), front.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.cost.makespan_cycles < b.cost.makespan_cycles;
            });
  return front;
}

}  // namespace harmony::fm
