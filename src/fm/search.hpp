// Systematic mapping search (Dally, paper §3).
//
// "For each function there are many possible mappings that range from
//  completely serial to minimum-depth parallel with many points between.
//  One can systematically search the space of possible mappings to
//  optimize a given figure of merit: execution time, energy per op,
//  memory footprint, or some combination."
//
// search_affine() enumerates the AffineMap family for a spec with a
// single computed tensor: time coefficients from one candidate set, space
// coefficients from another, with the time offset auto-normalized so the
// schedule starts at cycle 0.  Candidates pass three gates:
//   1. a cheap sampled causality pre-check (rejects most of the space),
//   2. the full legality verifier (fm/legality.hpp),
//   3. cost evaluation and ranking by the requested figure of merit.
// Benches E8 uses this to show the wavefront emerging from search rather
// than being hand-planted.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"

namespace harmony::fm {

struct SearchSpace {
  std::vector<std::int64_t> time_coeffs{0, 1, 2};
  std::vector<std::int64_t> space_coeffs{-1, 0, 1};
  /// Explore the second grid dimension (else y is pinned to 0).
  bool search_y = true;
};

struct SearchOptions {
  SearchSpace space;
  FigureOfMerit fom = FigureOfMerit::kEnergyDelay;
  VerifyOptions verify;
  /// Points sampled by the causality pre-check.
  std::size_t quick_sample = 64;
  /// Candidates whose normalized makespan exceeds serial_size * this
  /// factor are discarded (guards against absurd stretched schedules).
  double makespan_slack = 4.0;
  /// How many best candidates to keep.
  std::size_t top_k = 5;
  /// Also retain every legal candidate (for pareto_front()).
  bool keep_all_legal = false;
  /// Cooperative cancellation: polled once per enumerated candidate.
  /// When it returns true the search stops immediately and the result
  /// carries the best-so-far frontier with `exhausted == false` — this is
  /// how a serving deadline (serve/service.hpp) cuts tuning short yet
  /// still answers with a legal mapping.  Null means run to exhaustion.
  std::function<bool()> cancel;
  /// Skip this many enumeration slots before doing any work; pass a
  /// previous SearchResult::next_offset to resume a cut-short search
  /// where it stopped.  The enumeration order is deterministic, so
  /// (resume_from = r).top ∪ (first run).top covers exactly the same
  /// candidates as one uncut run.  Counters in the result describe only
  /// the slots processed by this call.
  std::uint64_t resume_from = 0;
};

struct Candidate {
  AffineMap map;
  CostReport cost;
  double merit = 0.0;
};

struct SearchResult {
  bool found = false;
  Candidate best;
  std::vector<Candidate> top;  ///< up to top_k, best first
  std::uint64_t enumerated = 0;
  std::uint64_t quick_rejected = 0;
  std::uint64_t verify_rejected = 0;
  std::uint64_t legal = 0;
  /// Filled when SearchOptions::keep_all_legal is set.
  std::vector<Candidate> all_legal;
  /// False when SearchOptions::cancel stopped the search before the whole
  /// space was covered.
  bool exhausted = true;
  /// Enumeration slot at which to resume (== the slot after the last one
  /// processed); feed back via SearchOptions::resume_from.
  std::uint64_t next_offset = 0;
};

/// The (makespan, energy) Pareto-optimal subset of `candidates` — the
/// paper's "execution time, energy per op, ... or some combination" made
/// explicit: everything on the front is a defensible design point.
/// Sorted by ascending makespan.
[[nodiscard]] std::vector<Candidate> pareto_front(
    const std::vector<Candidate>& candidates);

/// Searches mappings for `spec`, which must have exactly one computed
/// tensor.  `input_proto` supplies the homes of all input tensors (its
/// computed assignments, if any, are ignored).
[[nodiscard]] SearchResult search_affine(const FunctionSpec& spec,
                                         const MachineConfig& machine,
                                         const Mapping& input_proto,
                                         const SearchOptions& opts = {});

}  // namespace harmony::fm
