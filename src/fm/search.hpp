// Systematic mapping search (Dally, paper §3).
//
// "For each function there are many possible mappings that range from
//  completely serial to minimum-depth parallel with many points between.
//  One can systematically search the space of possible mappings to
//  optimize a given figure of merit: execution time, energy per op,
//  memory footprint, or some combination."
//
// search_affine() enumerates the AffineMap family for a spec with a
// single computed tensor: time coefficients from one candidate set, space
// coefficients from another, with the time offset auto-normalized so the
// schedule starts at cycle 0.  Candidates pass three gates:
//   1. a cheap sampled causality pre-check (rejects most of the space),
//   2. the full legality verifier (fm/legality.hpp),
//   3. cost evaluation and ranking by the requested figure of merit.
// Benches E8 uses this to show the wavefront emerging from search rather
// than being hand-planted.
//
// The enumeration is slot-numbered: every candidate owns a deterministic
// 64-bit slot, so the space can be cut (cancel), resumed (resume_from),
// and partitioned across workers (SearchOptions::scheduler) while the
// ranked result stays bit-identical to a serial run — ties in merit break
// on the slot, never on arrival order.  See DESIGN.md §10.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "fm/compiled.hpp"
#include "fm/cost.hpp"
#include "fm/enum_plan.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "sched/parallel_ops.hpp"
#include "trace/trace.hpp"

namespace harmony::fm {

/// SearchOptions::grain sentinel: pick ~8 grains per lane automatically.
/// (0 is *not* auto — a zero grain would enumerate nothing and is
/// rejected by validate_search_options as FM005.)
inline constexpr std::uint64_t kAutoGrain = ~std::uint64_t{0};

/// The kAutoGrain sizing: ~8 grains per lane, clamped so the grain
/// count covers every lane.  Guarantees (pinned by unit test):
///   * result >= 1 always;
///   * ceil(range / result) >= lanes whenever range >= lanes — no lane
///     sits idle because a tiny slot space collapsed into fewer grains
///     than lanes (or a single covering grain);
///   * for large ranges, about 8 grains per lane, so the tail ticket
///     has enough pieces to rebalance a straggling lane.
[[nodiscard]] constexpr std::uint64_t auto_grain_slots(std::uint64_t range,
                                                       unsigned lanes) {
  if (range == 0) return 1;
  const std::uint64_t l = lanes == 0 ? 1 : lanes;
  std::uint64_t grain = range / (l * 8);
  if (grain == 0) grain = 1;
  // Never let one grain cover more than a lane's even share: with
  // grain <= floor(range / lanes), ceil(range / grain) >= lanes.
  const std::uint64_t share = range / l;
  if (share > 0 && grain > share) grain = share;
  return grain;
}

struct SearchOptions {
  SearchSpace space;
  FigureOfMerit fom = FigureOfMerit::kEnergyDelay;
  VerifyOptions verify;
  /// Points sampled by the causality pre-check.
  std::size_t quick_sample = 64;
  /// Candidates whose normalized makespan exceeds serial_size * this
  /// factor are discarded (guards against absurd stretched schedules).
  double makespan_slack = 4.0;
  /// How many best candidates to keep.
  std::size_t top_k = 5;
  /// Also retain every legal candidate (for pareto_front()).
  bool keep_all_legal = false;
  /// Cooperative cancellation.  The serial backend polls once per
  /// enumerated candidate; the parallel backend polls once per grain
  /// (so cancellation latency is bounded by one grain of evaluation).
  /// When it returns true the search stops and the result carries the
  /// best-so-far frontier with `exhausted == false` — this is how a
  /// serving deadline (serve/service.hpp) cuts tuning short yet still
  /// answers with a legal mapping.  Null means run to exhaustion.
  /// Under the parallel backend the callable is invoked concurrently
  /// from several workers and must be thread-safe.
  std::function<bool()> cancel;
  /// Skip this many enumeration slots before doing any work; pass a
  /// previous SearchResult::next_offset to resume a cut-short search
  /// where it stopped.  The enumeration order is deterministic, so
  /// (resume_from = r).top ∪ (first run).top covers every candidate of
  /// one uncut run (the parallel backend may evaluate some slots in
  /// both calls — see SearchResult::next_offset).  Counters in the
  /// result describe only the slots processed by this call.
  std::uint64_t resume_from = 0;
  /// Non-null: evaluate enumeration grains in parallel on this
  /// scheduler.  The ranked outcome (top, best, all_legal, counters) is
  /// identical to the serial backend on the same options.  When the
  /// calling thread is already a scheduler worker the grains fork into
  /// the surrounding session; otherwise scheduler->run() opens one.
  sched::Scheduler* scheduler = nullptr;
  /// Fork-join lanes to spread grains over; 0 means one lane per
  /// scheduler worker.  Always clamped to scheduler->num_workers().
  unsigned num_workers = 0;
  /// Enumeration slots per grain (the unit of work distribution and of
  /// cancel polling); kAutoGrain picks ~8 grains per lane.  Zero is a
  /// degenerate value (FM005).
  std::uint64_t grain = kAutoGrain;
  /// Optional pre-compiled evaluation tables.  Null (the default) makes
  /// search_affine() compile the (spec, machine, input_proto) triple on
  /// entry; a caller that tunes the same triple repeatedly (the serving
  /// layer's CompiledSpec cache) passes its own to skip the compile.
  /// Must have been built by compile_spec() from the *same* triple — the
  /// search trusts it and never re-checks.  Purely an accelerator: it
  /// cannot change any result, so serve's cache keys exclude it.
  std::shared_ptr<const CompiledSpec> compiled;
};

struct Candidate {
  AffineMap map;
  CostReport cost;
  double merit = 0.0;
  /// Deterministic enumeration slot; total order with merit (below).
  std::uint64_t slot = 0;
};

/// The search's strict ranking: merit first, enumeration slot as the
/// tie-break.  Using the slot — not arrival order — is what makes the
/// parallel merge reproduce the serial top-k byte for byte.
[[nodiscard]] inline bool candidate_precedes(const Candidate& a,
                                             const Candidate& b) {
  if (a.merit != b.merit) return a.merit < b.merit;
  return a.slot < b.slot;
}

struct SearchResult {
  bool found = false;
  Candidate best;
  std::vector<Candidate> top;  ///< up to top_k, best first
  std::uint64_t enumerated = 0;
  std::uint64_t quick_rejected = 0;
  std::uint64_t verify_rejected = 0;
  std::uint64_t legal = 0;
  /// Filled when SearchOptions::keep_all_legal is set.
  std::vector<Candidate> all_legal;
  /// False when SearchOptions::cancel stopped the search before the whole
  /// space was covered.
  bool exhausted = true;
  /// Enumeration slot at which to resume; feed back via
  /// SearchOptions::resume_from.  Serial backend: the slot after the
  /// last one processed.  Parallel backend: the lowest slot of any
  /// unprocessed grain — grains complete out of order, so slots above
  /// this may already have been evaluated and will be evaluated again
  /// on resume (harmless: evaluation is deterministic and ranking
  /// deduplicates by merit/slot).
  std::uint64_t next_offset = 0;
  /// Fork-join lanes the search actually spread over (1 == serial).
  unsigned workers_used = 1;
};

/// Per-lane accumulator for the parallel search.  Each lane owns one
/// tally; the merge in search_affine() reduces them deterministically.
struct SearchTally {
  std::uint64_t enumerated = 0;
  std::uint64_t quick_rejected = 0;
  std::uint64_t verify_rejected = 0;
  std::uint64_t legal = 0;
  bool found = false;
  Candidate best;
  /// Max-heap under candidate_precedes: the *worst* kept candidate sits
  /// at front(), ready to be displaced.
  std::vector<Candidate> top;
  std::vector<Candidate> all_legal;
};

/// Inserts `c` into the tally: tracks best/found unconditionally (so
/// top_k == 0 still reports a winner) and keeps the k best candidates in
/// the bounded heap.
inline void tally_insert(SearchTally& tally, const Candidate& c,
                         std::size_t top_k) {
  if (!tally.found || candidate_precedes(c, tally.best)) {
    tally.best = c;
    tally.found = true;
  }
  if (top_k == 0) return;
  if (tally.top.size() < top_k) {
    tally.top.push_back(c);
    std::push_heap(tally.top.begin(), tally.top.end(), candidate_precedes);
  } else if (candidate_precedes(c, tally.top.front())) {
    std::pop_heap(tally.top.begin(), tally.top.end(), candidate_precedes);
    tally.top.back() = c;
    std::push_heap(tally.top.begin(), tally.top.end(), candidate_precedes);
  }
}

/// The parallel enumeration kernel, generic over the fork-join context
/// so analyze::RaceCtx can replay it under the SP-bags determinacy-race
/// detector (tests/analyze_race_test.cpp certifies it clean).
///
/// Spreads the slot range [begin, end) over `lanes` fork-join lanes in
/// grains of `grain_slots` slots.  Grains are **statically
/// partitioned**: each lane owns a contiguous run of the head grains
/// outright (claimed with no shared state at all), and only a small
/// tail — about two grains per lane — is left on an atomic ticket for
/// rebalancing a straggling lane.  The hot path therefore executes
/// zero atomic operations per owned grain; the per-grain dispatch
/// overhead the old all-ticket deal paid is gone (DESIGN.md §15).
///
/// Lane L writes only tallies[L]; a grain is claimed by exactly one
/// lane and its completion recorded in processed[g] — the only shared
/// state is the tail ticket and the sticky cancel flag.
/// `eval_range(lo, hi, lane, tally)` evaluates the grain's slot range
/// into the lane's tally; the explicit lane index is the contract for
/// reaching per-lane scratch (EvalContext, decode buffers) — never
/// recover it from an address.
///
/// Lane assignment cannot change the result: the tally merge is the
/// strict (merit, slot) order, so which lane evaluated which grain is
/// invisible in the output (serial-parity contract, DESIGN.md §10).
///
/// Under a simulation context (Ctx::is_simulation, e.g. RaceCtx) the
/// tail is dealt round-robin instead of by ticket so every lane does
/// work even when fork2 executes serially — same footprint,
/// deterministic replay.  `cancel` is polled once per grain; a
/// cancelled run leaves the remaining grains' processed[] flags zero.
template <typename Ctx, typename EvalRange>
void search_lanes(Ctx& ctx, unsigned lanes, std::uint64_t begin,
                  std::uint64_t end, std::uint64_t grain_slots,
                  const std::function<bool()>& cancel, SearchTally* tallies,
                  std::uint8_t* processed, EvalRange&& eval_range) {
  if (begin >= end || lanes == 0 || grain_slots == 0) return;
  // Overflow-safe ceil-divide: adding grain_slots - 1 first would wrap
  // uint64 for near-2^64 grains and leave the whole range unevaluated.
  const std::uint64_t num_grains =
      (end - begin) / grain_slots + ((end - begin) % grain_slots != 0);
  // Head grains are owned statically; the tail (~2 grains per lane, the
  // whole range when it is that small) stays dynamic so a lane that
  // finishes early can absorb a straggler's work.
  const std::uint64_t tail =
      lanes > 1 ? std::min<std::uint64_t>(num_grains,
                                          std::uint64_t{lanes} * 2)
                : 0;
  const std::uint64_t head = num_grains - tail;
  std::atomic<std::uint64_t> ticket{head};
  std::atomic<bool> cancelled{false};
  sched::parallel_for(
      ctx, 0, lanes, 1, [&](std::size_t lane) {
        sched::writer(ctx, tallies, lane);
        SearchTally& tally = tallies[lane];
        const auto run_grain = [&](std::uint64_t g) {
          // Sticky-flag fast path first so one worker observing cancel
          // stops the whole fleet without every lane re-invoking the
          // (possibly expensive) user callable.
          if (cancelled.load(std::memory_order_relaxed)) return false;
          if (cancel && cancel()) {
            cancelled.store(true, std::memory_order_relaxed);
            return false;
          }
          const std::uint64_t lo = begin + g * grain_slots;
          const std::uint64_t hi = std::min(end, lo + grain_slots);
          {
            // One span per grain: id = lane, args = the slot range, so a
            // timeline shows which lane evaluated which slice of the
            // enumeration (and where a deadline cut landed).
            trace::Span span("fm", "grain", lane, lo, hi);
            eval_range(lo, hi, static_cast<unsigned>(lane), tally);
          }
          sched::writer(ctx, processed, g);
          processed[g] = 1;
          return true;
        };
        // Static head share: contiguous, no shared state to claim it.
        const sched::PartRange own = sched::static_partition(
            static_cast<std::size_t>(head), lanes, lane);
        for (std::uint64_t g = own.lo; g < own.hi; ++g) {
          if (!run_grain(g)) return;
        }
        if constexpr (Ctx::is_simulation) {
          // Deterministic round-robin tail deal: under serial fork2
          // replay a shared ticket would hand every tail grain to the
          // first lane.
          for (std::uint64_t g = head + lane; g < num_grains; g += lanes) {
            if (!run_grain(g)) return;
          }
        } else {
          for (;;) {
            const std::uint64_t g =
                ticket.fetch_add(1, std::memory_order_relaxed);
            if (g >= num_grains || !run_grain(g)) break;
          }
        }
      });
}

/// The (makespan, energy) Pareto-optimal subset of `candidates` — the
/// paper's "execution time, energy per op, ... or some combination" made
/// explicit: everything on the front is a defensible design point.
/// Sorted by ascending makespan.
[[nodiscard]] std::vector<Candidate> pareto_front(
    const std::vector<Candidate>& candidates);

/// FM005 records for every degenerate SearchOptions value (top_k == 0,
/// quick_sample == 0, grain == 0 — each would silently search nothing
/// or stall the enumeration); empty means valid.  search_affine()
/// throws InvalidArgument with the first message.
[[nodiscard]] std::vector<analyze::Diagnostic> validate_search_options(
    const SearchOptions& opts);

/// Searches mappings for `spec`, which must have exactly one computed
/// tensor.  `input_proto` supplies the homes of all input tensors (its
/// computed assignments, if any, are ignored).
[[nodiscard]] SearchResult search_affine(const FunctionSpec& spec,
                                         const MachineConfig& machine,
                                         const Mapping& input_proto,
                                         const SearchOptions& opts = {});

}  // namespace harmony::fm
