#include "fm/spec.hpp"

#include <algorithm>

namespace harmony::fm {

TensorId FunctionSpec::add_input(std::string name, IndexDomain domain,
                                 std::size_t bits) {
  Tensor t{.name = std::move(name),
           .domain = domain,
           .is_input = true,
           .bits = bits,
           .cost = {},
           .deps = nullptr,
           .eval = nullptr,
           .value_offset = total_values_};
  total_values_ += domain.size();
  tensors_.push_back(std::move(t));
  return static_cast<TensorId>(tensors_.size() - 1);
}

TensorId FunctionSpec::add_computed(std::string name, IndexDomain domain,
                                    DepFn deps, EvalFn eval, OpCost cost) {
  HARMONY_REQUIRE(deps != nullptr, "add_computed: deps function required");
  HARMONY_REQUIRE(eval != nullptr, "add_computed: eval function required");
  Tensor t{.name = std::move(name),
           .domain = domain,
           .is_input = false,
           .bits = cost.bits,
           .cost = cost,
           .deps = std::move(deps),
           .eval = std::move(eval),
           .value_offset = total_values_};
  total_values_ += domain.size();
  tensors_.push_back(std::move(t));
  return static_cast<TensorId>(tensors_.size() - 1);
}

void FunctionSpec::mark_output(TensorId t) {
  HARMONY_REQUIRE(!at(t).is_input, "mark_output: inputs cannot be outputs");
  at(t).is_output = true;
}

std::vector<TensorId> FunctionSpec::computed_tensors() const {
  std::vector<TensorId> out;
  for (int t = 0; t < num_tensors(); ++t) {
    if (!tensors_[static_cast<std::size_t>(t)].is_input) out.push_back(t);
  }
  return out;
}

std::vector<TensorId> FunctionSpec::input_tensors() const {
  std::vector<TensorId> out;
  for (int t = 0; t < num_tensors(); ++t) {
    if (tensors_[static_cast<std::size_t>(t)].is_input) out.push_back(t);
  }
  return out;
}

std::vector<TensorId> FunctionSpec::output_tensors() const {
  std::vector<TensorId> out;
  for (int t = 0; t < num_tensors(); ++t) {
    if (tensors_[static_cast<std::size_t>(t)].is_output) out.push_back(t);
  }
  return out;
}

std::vector<ValueRef> FunctionSpec::deps(TensorId t, const Point& p) const {
  const Tensor& tensor = at(t);
  HARMONY_REQUIRE(!tensor.is_input, "deps: input tensors have no deps");
  HARMONY_ASSERT(tensor.domain.contains(p));
  std::vector<ValueRef> refs = tensor.deps(p);
  for (const ValueRef& r : refs) {
    HARMONY_REQUIRE(r.tensor >= 0 && r.tensor < num_tensors(),
                    "deps: reference to unknown tensor");
    HARMONY_ASSERT_MSG(
        at(r.tensor).domain.contains(r.point),
        "deps: reference outside tensor domain (tensor " +
            at(r.tensor).name + ")");
  }
  return refs;
}

double FunctionSpec::eval(TensorId t, const Point& p,
                          const std::vector<double>& dep_values) const {
  const Tensor& tensor = at(t);
  HARMONY_REQUIRE(!tensor.is_input, "eval: input tensors have no eval");
  return tensor.eval(p, dep_values);
}

std::int64_t FunctionSpec::total_values() const { return total_values_; }

std::int64_t FunctionSpec::value_index(const ValueRef& r) const {
  const Tensor& t = at(r.tensor);
  return t.value_offset + t.domain.linearize(r.point);
}

double FunctionSpec::total_ops() const {
  double ops = 0.0;
  for (const Tensor& t : tensors_) {
    if (!t.is_input) ops += t.cost.ops * static_cast<double>(t.domain.size());
  }
  return ops;
}

std::vector<std::vector<double>> FunctionSpec::evaluate_reference(
    const std::vector<std::vector<double>>& inputs) const {
  // Flat value store + computed flags; iterative worklist topological
  // evaluation (recursion would overflow on long dependence chains).
  std::vector<double> values(static_cast<std::size_t>(total_values_), 0.0);
  std::vector<char> ready(static_cast<std::size_t>(total_values_), 0);

  // Load inputs.
  {
    std::size_t input_idx = 0;
    for (int t = 0; t < num_tensors(); ++t) {
      const Tensor& tensor = tensors_[static_cast<std::size_t>(t)];
      if (!tensor.is_input) continue;
      HARMONY_REQUIRE(input_idx < inputs.size(),
                      "evaluate_reference: missing input tensor data");
      const auto& data = inputs[input_idx++];
      HARMONY_REQUIRE(
          data.size() == static_cast<std::size_t>(tensor.domain.size()),
          "evaluate_reference: input size mismatch for " + tensor.name);
      for (std::int64_t i = 0; i < tensor.domain.size(); ++i) {
        values[static_cast<std::size_t>(tensor.value_offset + i)] = data[
            static_cast<std::size_t>(i)];
        ready[static_cast<std::size_t>(tensor.value_offset + i)] = 1;
      }
    }
    HARMONY_REQUIRE(input_idx == inputs.size(),
                    "evaluate_reference: too many input tensors supplied");
  }

  // Evaluate each computed element with an explicit DFS stack.
  std::vector<char> on_stack(static_cast<std::size_t>(total_values_), 0);
  for (TensorId t : computed_tensors()) {
    const Tensor& tensor = tensors_[static_cast<std::size_t>(t)];
    tensor.domain.for_each([&](const Point& p0) {
      const auto root = static_cast<std::size_t>(
          value_index(ValueRef{t, p0}));
      if (ready[root]) return;
      struct Frame {
        TensorId tensor;
        Point point;
        std::vector<ValueRef> deps;
        std::size_t next_dep = 0;
      };
      std::vector<Frame> stack;
      stack.push_back(Frame{t, p0, deps(t, p0)});
      on_stack[root] = 1;
      while (!stack.empty()) {
        Frame& f = stack.back();
        const auto self = static_cast<std::size_t>(
            value_index(ValueRef{f.tensor, f.point}));
        bool descended = false;
        while (f.next_dep < f.deps.size()) {
          const ValueRef& d = f.deps[f.next_dep];
          const auto di = static_cast<std::size_t>(value_index(d));
          if (ready[di]) {
            ++f.next_dep;
            continue;
          }
          if (on_stack[di]) {
            throw SimulationError(
                "FunctionSpec: cyclic dependence involving tensor " +
                at(d.tensor).name);
          }
          HARMONY_REQUIRE(!at(d.tensor).is_input,
                          "evaluate_reference: unready input value");
          on_stack[di] = 1;
          stack.push_back(Frame{d.tensor, d.point, deps(d.tensor, d.point)});
          descended = true;
          break;
        }
        if (descended) continue;
        // All deps ready: evaluate.
        std::vector<double> dep_values;
        dep_values.reserve(f.deps.size());
        for (const ValueRef& d : f.deps) {
          dep_values.push_back(values[static_cast<std::size_t>(
              value_index(d))]);
        }
        values[self] = eval(f.tensor, f.point, dep_values);
        ready[self] = 1;
        on_stack[self] = 0;
        stack.pop_back();
      }
    });
  }

  // Extract outputs in tensor order.
  std::vector<std::vector<double>> out;
  for (TensorId t : output_tensors()) {
    const Tensor& tensor = tensors_[static_cast<std::size_t>(t)];
    std::vector<double> data(static_cast<std::size_t>(tensor.domain.size()));
    for (std::int64_t i = 0; i < tensor.domain.size(); ++i) {
      data[static_cast<std::size_t>(i)] =
          values[static_cast<std::size_t>(tensor.value_offset + i)];
    }
    out.push_back(std::move(data));
  }
  return out;
}

}  // namespace harmony::fm
