// FunctionSpec: the "function" half of the F&M model (Dally, paper §3).
//
// "The function can be specified by a functional program that describes
//  how each element of a computation is computed from earlier elements.
//  No ordering — other than that imposed by data dependencies — is
//  specified.  By its nature, a definition exposes all available
//  parallelism in the computation."
//
// A FunctionSpec holds a set of logical tensors.  *Input* tensors carry
// externally supplied values.  *Computed* tensors define one value per
// domain point through
//   - a dependence function  deps(p)  -> the values each element reads,
//   - a semantic function    eval(p, dep_values) -> double, and
//   - an operation cost      (op count x bit width).
//
// The dependence function is the contract the mapping legality checker
// and the cost evaluator consume; the semantic function lets the grid
// machine execute the spec on real data so mapped results can be
// validated against a direct evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fm/domain.hpp"
#include "support/error.hpp"

namespace harmony::fm {

using TensorId = int;

/// A reference to one value: element `point` of tensor `tensor`.
struct ValueRef {
  TensorId tensor = -1;
  Point point;
  friend bool operator==(const ValueRef&, const ValueRef&) = default;
};

/// deps(p): the values element p reads.  Must be pure and cheap — it is
/// re-evaluated by the verifier, the cost model, and the machine.
using DepFn = std::function<std::vector<ValueRef>(const Point&)>;

/// eval(p, values-of-deps-in-order): the element's numeric semantics.
using EvalFn =
    std::function<double(const Point&, const std::vector<double>&)>;

struct OpCost {
  double ops = 1.0;        ///< ALU operations per element
  std::size_t bits = 32;   ///< operand width
};

class FunctionSpec {
 public:
  /// Declares an input tensor (externally supplied values).
  TensorId add_input(std::string name, IndexDomain domain,
                     std::size_t bits = 32);

  /// Declares a computed tensor.
  TensorId add_computed(std::string name, IndexDomain domain, DepFn deps,
                        EvalFn eval, OpCost cost = {});

  /// Marks a computed tensor as an output of the whole function.
  void mark_output(TensorId t);

  // --- introspection ---
  [[nodiscard]] int num_tensors() const {
    return static_cast<int>(tensors_.size());
  }
  [[nodiscard]] const std::string& name(TensorId t) const {
    return at(t).name;
  }
  [[nodiscard]] const IndexDomain& domain(TensorId t) const {
    return at(t).domain;
  }
  [[nodiscard]] bool is_input(TensorId t) const { return at(t).is_input; }
  [[nodiscard]] bool is_output(TensorId t) const { return at(t).is_output; }
  [[nodiscard]] const OpCost& cost(TensorId t) const { return at(t).cost; }
  [[nodiscard]] std::size_t bits(TensorId t) const { return at(t).bits; }
  [[nodiscard]] std::vector<TensorId> computed_tensors() const;
  [[nodiscard]] std::vector<TensorId> input_tensors() const;
  [[nodiscard]] std::vector<TensorId> output_tensors() const;

  /// Dependences of element p of computed tensor t.  Every returned ref
  /// is validated to lie inside its tensor's domain.
  [[nodiscard]] std::vector<ValueRef> deps(TensorId t, const Point& p) const;

  /// Semantics of element p given its dependence values.
  [[nodiscard]] double eval(TensorId t, const Point& p,
                            const std::vector<double>& dep_values) const;

  /// Total number of values across all tensors; per-tensor dense offsets
  /// for flat indexing (tensor-major, row-major within a tensor).
  [[nodiscard]] std::int64_t total_values() const;
  [[nodiscard]] std::int64_t value_index(const ValueRef& r) const;

  /// Total ALU work of one evaluation of the function.
  [[nodiscard]] double total_ops() const;

  /// Reference execution: evaluates every computed tensor directly in
  /// dependence order (topological; throws SimulationError on a cycle).
  /// `inputs[t]` supplies input tensor t in row-major order.
  [[nodiscard]] std::vector<std::vector<double>> evaluate_reference(
      const std::vector<std::vector<double>>& inputs) const;

 private:
  struct Tensor {
    std::string name;
    IndexDomain domain;
    bool is_input = false;
    bool is_output = false;
    std::size_t bits = 32;
    OpCost cost;
    DepFn deps;
    EvalFn eval;
    std::int64_t value_offset = 0;  // into the flat value index space
  };

  const Tensor& at(TensorId t) const {
    HARMONY_REQUIRE(t >= 0 && t < num_tensors(),
                    "FunctionSpec: bad tensor id");
    return tensors_[static_cast<std::size_t>(t)];
  }
  Tensor& at(TensorId t) {
    HARMONY_REQUIRE(t >= 0 && t < num_tensors(),
                    "FunctionSpec: bad tensor id");
    return tensors_[static_cast<std::size_t>(t)];
  }

  std::vector<Tensor> tensors_;
  std::int64_t total_values_ = 0;
};

}  // namespace harmony::fm
