#include "fm/strategy/delta.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace harmony::fm {

namespace {

/// Arrival need of one dependence edge at consumer PE `here`, exactly as
/// verify() computes it: producer time + max(1, transit) for computed
/// edges; DRAM latency or home-to-here transit for inputs.
Cycle input_need(const CompiledSpec& cs, const CompiledDep& d,
                 std::int32_t home, std::size_t here) {
  return d.kind == CompiledDep::kInputDram
             ? cs.dram_cycles[here]
             : cs.transit[static_cast<std::size_t>(home) * cs.num_pes + here];
}

}  // namespace

std::shared_ptr<const StrategySpec> build_strategy_spec(
    std::shared_ptr<const CompiledSpec> cs, double makespan_slack) {
  HARMONY_REQUIRE(cs != nullptr, "build_strategy_spec: null CompiledSpec");
  HARMONY_REQUIRE(makespan_slack >= 1.0,
                  "build_strategy_spec: makespan_slack must be >= 1");
  auto ss = std::make_shared<StrategySpec>();
  ss->cs = std::move(cs);
  const CompiledSpec& c = *ss->cs;
  const auto n = static_cast<std::size_t>(c.num_points);
  const std::size_t E = c.deps.size();
  const std::size_t P = c.num_pes;

  // Edge -> consuming op, then the reverse CSR (producer -> edges).
  ss->edge_owner.resize(E);
  ss->consumer_offsets.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint64_t e = c.dep_offsets[v]; e < c.dep_offsets[v + 1]; ++e) {
      ss->edge_owner[e] = static_cast<std::int64_t>(v);
      if (c.deps[e].kind == CompiledDep::kComputed) {
        ++ss->consumer_offsets[static_cast<std::size_t>(c.deps[e].dep_lin) +
                               1];
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    ss->consumer_offsets[v + 1] += ss->consumer_offsets[v];
  }
  ss->consumers.resize(ss->consumer_offsets[n]);
  {
    std::vector<std::uint64_t> cursor(ss->consumer_offsets.begin(),
                                      ss->consumer_offsets.end() - 1);
    for (std::uint64_t e = 0; e < E; ++e) {
      if (c.deps[e].kind != CompiledDep::kComputed) continue;
      const auto w = static_cast<std::size_t>(c.deps[e].dep_lin);
      ss->consumers[cursor[w]++] =
          StrategySpec::ConsumerRef{ss->edge_owner[e], e};
    }
  }

  // Input ordinal -> consuming edges, plus the per-ordinal exemplar
  // reference/home (first-seen, same dense numbering as compile_spec).
  const std::size_t I = c.num_input_values;
  ss->input_consumer_offsets.assign(I + 1, 0);
  ss->input_refs.resize(I);
  ss->input_home.assign(I, -1);
  std::vector<char> seen(I, 0);
  for (std::uint64_t e = 0; e < E; ++e) {
    const CompiledDep& d = c.deps[e];
    if (d.kind == CompiledDep::kComputed) continue;
    ++ss->input_consumer_offsets[d.input_ord + 1];
    if (seen[d.input_ord] == 0) {
      seen[d.input_ord] = 1;
      ss->input_refs[d.input_ord] = TableMap::InputRef{d.tensor, d.point()};
      if (d.kind == CompiledDep::kInputPe) {
        ss->input_home[d.input_ord] = d.home_pe;
        ss->pe_homed.push_back(d.input_ord);
      }
    }
  }
  for (std::size_t o = 0; o < I; ++o) {
    ss->input_consumer_offsets[o + 1] += ss->input_consumer_offsets[o];
  }
  ss->input_consumers.resize(ss->input_consumer_offsets[I]);
  {
    std::vector<std::uint64_t> cursor(ss->input_consumer_offsets.begin(),
                                      ss->input_consumer_offsets.end() - 1);
    for (std::uint64_t e = 0; e < E; ++e) {
      if (c.deps[e].kind == CompiledDep::kComputed) continue;
      ss->input_consumers[cursor[c.deps[e].input_ord]++] = e;
    }
  }

  // Move-space cycle bound: wide enough for the requested slack factor
  // and for the serial seed (offset + one stride per op).
  for (std::size_t e = 0; e < P * P; ++e) {
    ss->max_transit = std::max(ss->max_transit, c.transit[e]);
  }
  ss->max_input_need = ss->max_transit;
  for (std::size_t q = 0; q < P; ++q) {
    ss->max_input_need = std::max(ss->max_input_need, c.dram_cycles[q]);
  }
  const auto nn = static_cast<Cycle>(n);
  const Cycle serial_span =
      ss->max_input_need + nn * (Cycle{1} + ss->max_transit);
  const auto slack_span = static_cast<Cycle>(
      static_cast<double>(nn) * makespan_slack);
  ss->cycle_bound = std::max(serial_span, slack_span) + 1;
  HARMONY_ASSERT(ss->cycle_bound < (Cycle{1} << 40));
  return ss;
}

TableMap seed_table(const StrategySpec& ss) {
  const CompiledSpec& cs = *ss.cs;
  const auto n = static_cast<std::size_t>(cs.num_points);
  const std::size_t P = cs.num_pes;

  // Kahn's algorithm with a min-heap keyed on the linearized index:
  // yields row-major order whenever row-major is already topological,
  // and a deterministic topological order otherwise.
  std::vector<std::int64_t> indeg(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint64_t e = cs.dep_offsets[v]; e < cs.dep_offsets[v + 1];
         ++e) {
      if (cs.deps[e].kind == CompiledDep::kComputed) ++indeg[v];
    }
  }
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<std::int64_t>>
      ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push(static_cast<std::int64_t>(v));
  }

  TableMap tm;
  tm.target = cs.target;
  tm.domain = cs.domain;
  tm.cols = cs.cols;
  tm.rows = cs.rows;
  tm.pe.resize(n);
  tm.cycle.resize(n);
  tm.input_refs = ss.input_refs;
  tm.input_home = ss.input_home;

  // Block placement keeps per-PE residency at ceil(n / P) — the minimum
  // any table can achieve — and the stride leaves room for the slowest
  // hop, so the seed is causal, exclusive, and storage-minimal.
  const std::size_t block = (n + P - 1) / P;
  const Cycle stride = Cycle{1} + ss.max_transit;
  std::size_t q = 0;
  while (!ready.empty()) {
    const std::int64_t u = ready.top();
    ready.pop();
    tm.pe[static_cast<std::size_t>(u)] =
        static_cast<std::int32_t>(q / block);
    tm.cycle[static_cast<std::size_t>(u)] =
        ss.max_input_need + static_cast<Cycle>(q) * stride;
    ++q;
    for (std::uint64_t o = ss.consumer_offsets[static_cast<std::size_t>(u)];
         o < ss.consumer_offsets[static_cast<std::size_t>(u) + 1]; ++o) {
      if (--indeg[static_cast<std::size_t>(ss.consumers[o].op)] == 0) {
        ready.push(ss.consumers[o].op);
      }
    }
  }
  if (q != n) {
    throw SimulationError("fm::seed_table: cyclic dependence relation");
  }
  return tm;
}

DeltaEval::DeltaEval(std::shared_ptr<const StrategySpec> ss,
                     VerifyOptions opts)
    : ss_(std::move(ss)), opts_(opts) {
  HARMONY_REQUIRE(ss_ != nullptr, "DeltaEval: null StrategySpec");
  P_ = ss_->cs->num_pes;
  output_ = ss_->cs->target_is_output;
}

void DeltaEval::set_bad(std::uint64_t e, bool bad) {
  if (edge_bad_[e] == static_cast<std::uint8_t>(bad)) return;
  edge_bad_[e] = static_cast<std::uint8_t>(bad);
  causality_bad_ += bad ? 1 : -1;
}

void DeltaEval::occ_insert(std::size_t pe, Cycle c) {
  const std::uint64_t key = (static_cast<std::uint64_t>(pe) << 40) |
                            static_cast<std::uint64_t>(c);
  if (++occ_[key] >= 2) ++excl_extra_;
}

void DeltaEval::occ_erase(std::size_t pe, Cycle c) {
  const std::uint64_t key = (static_cast<std::uint64_t>(pe) << 40) |
                            static_cast<std::uint64_t>(c);
  const auto it = occ_.find(key);
  if (--it->second >= 1) {
    --excl_extra_;
  } else {
    occ_.erase(it);
  }
}

void DeltaEval::hist_insert(Cycle c) {
  ++cyc_hist_[static_cast<std::size_t>(c)];
  max_cycle_ = std::max(max_cycle_, c);
}

void DeltaEval::hist_erase(Cycle c) {
  --cyc_hist_[static_cast<std::size_t>(c)];
  while (max_cycle_ > 0 &&
         cyc_hist_[static_cast<std::size_t>(max_cycle_)] == 0) {
    --max_cycle_;
  }
}

void DeltaEval::route_add(std::size_t from, std::size_t to, bool add) {
  if (from == to) return;
  const CompiledSpec& cs = *ss_->cs;
  const auto bits = static_cast<std::uint64_t>(cs.bits);
  const std::size_t r = from * P_ + to;
  for (std::uint32_t o = cs.route_offsets[r]; o < cs.route_offsets[r + 1];
       ++o) {
    if (add) {
      link_bits_[cs.route_links[o]] += bits;
    } else {
      link_bits_[cs.route_links[o]] -= bits;
    }
  }
}

/// One on-chip transfer (or local access when from == to): the cost
/// contribution of a computed edge or of an input delivery from a PE home.
void DeltaEval::movement_add(std::size_t from, std::size_t to, bool add) {
  if (from == to) {
    if (add) {
      ++n_local_;
    } else {
      --n_local_;
    }
    return;
  }
  const CompiledSpec& cs = *ss_->cs;
  const std::uint64_t hops =
      static_cast<std::uint64_t>(cs.bits) *
      static_cast<std::uint64_t>(cs.hop_count[from * P_ + to]);
  if (add) {
    ++n_transfer_[from * P_ + to];
    ++messages_;
    bit_hops_ += hops;
  } else {
    --n_transfer_[from * P_ + to];
    --messages_;
    bit_hops_ -= hops;
  }
  route_add(from, to, add);
}

/// The once-per-(ordinal, PE) delivery contribution.
void DeltaEval::delivery_add(const CompiledDep& d, std::size_t pe, bool add) {
  if (d.kind == CompiledDep::kInputDram) {
    if (add) {
      ++n_dram_[pe];
    } else {
      --n_dram_[pe];
    }
    return;
  }
  const auto home =
      static_cast<std::size_t>(tm_.input_home[d.input_ord]);
  movement_add(home, pe, add);
}

/// Adjusts the delivered-set count of (d.input_ord, pe) by one read.
/// First read pays the delivery; repeat reads pay a local SRAM access —
/// the same totals evaluate_cost's first_delivery scan produces.
void DeltaEval::deliv_change(const CompiledDep& d, std::size_t pe, bool add) {
  std::uint32_t& c =
      deliv_[static_cast<std::size_t>(d.input_ord) * P_ + pe];
  if (add) {
    if (c++ == 0) {
      delivery_add(d, pe, true);
    } else {
      ++n_local_;
    }
  } else {
    if (--c == 0) {
      delivery_add(d, pe, false);
    } else {
      --n_local_;
    }
  }
}

void DeltaEval::value_insert(std::int64_t v, std::size_t pe) {
  auto& list = pe_values_[pe];
  value_pos_[static_cast<std::size_t>(v)] =
      static_cast<std::uint32_t>(list.size());
  list.push_back(v);
  mark_storage_dirty(pe);
}

void DeltaEval::value_erase(std::int64_t v, std::size_t pe) {
  auto& list = pe_values_[pe];
  const std::uint32_t pos = value_pos_[static_cast<std::size_t>(v)];
  const std::int64_t last = list.back();
  list[pos] = last;
  value_pos_[static_cast<std::size_t>(last)] = pos;
  list.pop_back();
  mark_storage_dirty(pe);
}

void DeltaEval::mark_storage_dirty(std::size_t pe) {
  if (pe_dirty_[pe] != 0) return;
  pe_dirty_[pe] = 1;
  dirty_list_.push_back(static_cast<std::int32_t>(pe));
}

std::int64_t DeltaEval::pe_peak_of(std::size_t pe) {
  const auto& list = pe_values_[pe];
  if (output_) {
    // Every value lives until the makespan, past every definition, so
    // the sweep's running max is just the resident count.
    return static_cast<std::int64_t>(list.size());
  }
  ev_scratch_.clear();
  for (const std::int64_t v : list) {
    const auto vi = static_cast<std::size_t>(v);
    const Cycle def = tm_.cycle[vi];
    const Cycle last = std::max(def, cons_last_[vi]);
    ev_scratch_.emplace_back(def, +1);
    ev_scratch_.emplace_back(last + 1, -1);
  }
  // (cycle, delta) ascending: frees before allocations at a tick, the
  // verifier's event order restricted to one PE.
  std::sort(ev_scratch_.begin(), ev_scratch_.end());
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (const auto& [cycle, delta] : ev_scratch_) {
    live += delta;
    peak = std::max(peak, live);
  }
  return peak;
}

void DeltaEval::flush_storage() {
  const std::int64_t cap = ss_->cs->pe_capacity_values;
  for (const std::int32_t q : dirty_list_) {
    const auto pe = static_cast<std::size_t>(q);
    const bool was_over = pe_peak_[pe] > cap;
    pe_peak_[pe] = pe_peak_of(pe);
    const bool now_over = pe_peak_[pe] > cap;
    if (was_over != now_over) storage_over_ += now_over ? 1 : -1;
    pe_dirty_[pe] = 0;
  }
  dirty_list_.clear();
}

void DeltaEval::reset(const TableMap& tm) {
  const CompiledSpec& cs = *ss_->cs;
  const auto n = static_cast<std::size_t>(cs.num_points);
  HARMONY_REQUIRE(tm.pe.size() == n && tm.cycle.size() == n &&
                      tm.input_home.size() == cs.num_input_values,
                  "DeltaEval::reset: table does not match the spec's shape");
  for (std::size_t v = 0; v < n; ++v) {
    HARMONY_REQUIRE(tm.pe[v] >= 0 &&
                        static_cast<std::size_t>(tm.pe[v]) < P_ &&
                        tm.cycle[v] >= 0 && tm.cycle[v] < ss_->cycle_bound,
                    "DeltaEval::reset: op placed outside the move space");
  }
  for (const std::uint32_t ord : ss_->pe_homed) {
    HARMONY_REQUIRE(tm.input_home[ord] >= 0 &&
                        static_cast<std::size_t>(tm.input_home[ord]) < P_,
                    "DeltaEval::reset: PE-homed input without a valid home");
  }
  tm_ = tm;

  n_local_ = messages_ = bit_hops_ = 0;
  n_dram_.assign(P_, 0);
  n_transfer_.assign(P_ * P_, 0);
  deliv_.assign(static_cast<std::size_t>(cs.num_input_values) * P_, 0);
  cyc_hist_.assign(static_cast<std::size_t>(ss_->cycle_bound), 0);
  max_cycle_ = 0;
  edge_bad_.assign(cs.deps.size(), 0);
  causality_bad_ = 0;
  occ_.clear();
  excl_extra_ = 0;
  link_bits_.assign(P_ * 4, 0);
  cons_last_.assign(n, -1);
  pe_values_.assign(P_, {});
  value_pos_.assign(n, 0);
  pe_peak_.assign(P_, 0);
  pe_dirty_.assign(P_, 0);
  dirty_list_.clear();
  storage_over_ = 0;

  for (std::size_t v = 0; v < n; ++v) {
    const auto pe = static_cast<std::size_t>(tm_.pe[v]);
    const Cycle when = tm_.cycle[v];
    occ_insert(pe, when);
    hist_insert(when);
    value_insert(static_cast<std::int64_t>(v), pe);
    for (std::uint64_t e = cs.dep_offsets[v]; e < cs.dep_offsets[v + 1];
         ++e) {
      const CompiledDep& d = cs.deps[e];
      if (d.kind == CompiledDep::kComputed) {
        const auto w = static_cast<std::size_t>(d.dep_lin);
        const auto there = static_cast<std::size_t>(tm_.pe[w]);
        movement_add(there, pe, true);
        const Cycle need =
            tm_.cycle[w] +
            std::max<Cycle>(1, cs.transit[there * P_ + pe]);
        set_bad(e, when < need);
        if (!output_) {
          cons_last_[w] = std::max(cons_last_[w], when);
        }
      } else {
        deliv_change(d, pe, true);
        set_bad(e, when < input_need(cs, d, tm_.input_home[d.input_ord],
                                     pe));
      }
    }
  }
}

void DeltaEval::remove_op(std::int64_t u) {
  const CompiledSpec& cs = *ss_->cs;
  const auto ui = static_cast<std::size_t>(u);
  const auto pe = static_cast<std::size_t>(tm_.pe[ui]);
  const Cycle when = tm_.cycle[ui];
  occ_erase(pe, when);
  hist_erase(when);
  value_erase(u, pe);
  for (std::uint64_t e = cs.dep_offsets[ui]; e < cs.dep_offsets[ui + 1];
       ++e) {
    const CompiledDep& d = cs.deps[e];
    if (d.kind == CompiledDep::kComputed) {
      movement_add(static_cast<std::size_t>(
                       tm_.pe[static_cast<std::size_t>(d.dep_lin)]),
                   pe, false);
    } else {
      deliv_change(d, pe, false);
    }
    set_bad(e, false);
  }
  for (std::uint64_t o = ss_->consumer_offsets[ui];
       o < ss_->consumer_offsets[ui + 1]; ++o) {
    const StrategySpec::ConsumerRef& cr = ss_->consumers[o];
    if (cr.op == u) continue;  // self-edge already handled above
    movement_add(pe,
                 static_cast<std::size_t>(
                     tm_.pe[static_cast<std::size_t>(cr.op)]),
                 false);
    set_bad(cr.edge, false);
  }
}

void DeltaEval::add_op(std::int64_t u) {
  const CompiledSpec& cs = *ss_->cs;
  const auto ui = static_cast<std::size_t>(u);
  const auto pe = static_cast<std::size_t>(tm_.pe[ui]);
  const Cycle when = tm_.cycle[ui];
  occ_insert(pe, when);
  hist_insert(when);
  value_insert(u, pe);
  for (std::uint64_t e = cs.dep_offsets[ui]; e < cs.dep_offsets[ui + 1];
       ++e) {
    const CompiledDep& d = cs.deps[e];
    if (d.kind == CompiledDep::kComputed) {
      const auto w = static_cast<std::size_t>(d.dep_lin);
      const auto there = static_cast<std::size_t>(tm_.pe[w]);
      movement_add(there, pe, true);
      const Cycle need =
          tm_.cycle[w] + std::max<Cycle>(1, cs.transit[there * P_ + pe]);
      set_bad(e, when < need);
    } else {
      deliv_change(d, pe, true);
      set_bad(e,
              when < input_need(cs, d, tm_.input_home[d.input_ord], pe));
    }
  }
  for (std::uint64_t o = ss_->consumer_offsets[ui];
       o < ss_->consumer_offsets[ui + 1]; ++o) {
    const StrategySpec::ConsumerRef& cr = ss_->consumers[o];
    if (cr.op == u) continue;
    const auto ci = static_cast<std::size_t>(cr.op);
    const auto cpe = static_cast<std::size_t>(tm_.pe[ci]);
    movement_add(pe, cpe, true);
    const Cycle need =
        when + std::max<Cycle>(1, cs.transit[pe * P_ + cpe]);
    set_bad(cr.edge, tm_.cycle[ci] < need);
  }
}

void DeltaEval::update_producer_last_use(std::int64_t u) {
  if (output_) return;  // last-use plays no role: peaks are counts
  const CompiledSpec& cs = *ss_->cs;
  const auto ui = static_cast<std::size_t>(u);
  for (std::uint64_t e = cs.dep_offsets[ui]; e < cs.dep_offsets[ui + 1];
       ++e) {
    const CompiledDep& d = cs.deps[e];
    if (d.kind != CompiledDep::kComputed) continue;
    const auto w = static_cast<std::size_t>(d.dep_lin);
    Cycle last = -1;
    for (std::uint64_t o = ss_->consumer_offsets[w];
         o < ss_->consumer_offsets[w + 1]; ++o) {
      last = std::max(
          last,
          tm_.cycle[static_cast<std::size_t>(ss_->consumers[o].op)]);
    }
    if (last != cons_last_[w]) {
      cons_last_[w] = last;
      mark_storage_dirty(static_cast<std::size_t>(tm_.pe[w]));
    }
  }
}

void DeltaEval::apply_replace(std::int64_t u, std::int32_t pe, Cycle cycle) {
  remove_op(u);
  tm_.pe[static_cast<std::size_t>(u)] = pe;
  tm_.cycle[static_cast<std::size_t>(u)] = cycle;
  add_op(u);
  update_producer_last_use(u);
}

void DeltaEval::apply_shift_home(std::int64_t ord, std::int32_t pe) {
  const CompiledSpec& cs = *ss_->cs;
  const auto oi = static_cast<std::size_t>(ord);
  const auto old_home = static_cast<std::size_t>(tm_.input_home[oi]);
  const auto new_home = static_cast<std::size_t>(pe);
  if (old_home != new_home) {
    // Re-point every active delivery of this ordinal at the new home.
    for (std::size_t q = 0; q < P_; ++q) {
      if (deliv_[oi * P_ + q] == 0) continue;
      movement_add(old_home, q, false);
      movement_add(new_home, q, true);
    }
    tm_.input_home[oi] = pe;
    // Arrival times changed for every edge reading this ordinal.
    for (std::uint64_t o = ss_->input_consumer_offsets[oi];
         o < ss_->input_consumer_offsets[oi + 1]; ++o) {
      const std::uint64_t e = ss_->input_consumers[o];
      const auto ci = static_cast<std::size_t>(ss_->edge_owner[e]);
      set_bad(e, tm_.cycle[ci] <
                     input_need(cs, cs.deps[e], pe,
                                static_cast<std::size_t>(tm_.pe[ci])));
    }
  }
}

Move DeltaEval::apply_move(const Move& m) {
  const auto n = static_cast<std::int64_t>(ss_->cs->num_points);
  switch (m.kind) {
    case MoveKind::kReplaceOp: {
      HARMONY_REQUIRE(m.a >= 0 && m.a < n && m.pe >= 0 &&
                          static_cast<std::size_t>(m.pe) < P_ &&
                          m.cycle >= 0 && m.cycle < ss_->cycle_bound,
                      "DeltaEval: replace move outside the move space");
      const auto ui = static_cast<std::size_t>(m.a);
      Move inv{MoveKind::kReplaceOp, m.a, 0, tm_.pe[ui], tm_.cycle[ui]};
      apply_replace(m.a, m.pe, m.cycle);
      return inv;
    }
    case MoveKind::kSwapOps: {
      HARMONY_REQUIRE(m.a >= 0 && m.a < n && m.b >= 0 && m.b < n,
                      "DeltaEval: swap move outside the move space");
      const auto ai = static_cast<std::size_t>(m.a);
      const auto bi = static_cast<std::size_t>(m.b);
      if (m.a != m.b) {
        const std::int32_t pe_a = tm_.pe[ai];
        const Cycle cy_a = tm_.cycle[ai];
        apply_replace(m.a, tm_.pe[bi], tm_.cycle[bi]);
        apply_replace(m.b, pe_a, cy_a);
      }
      return m;  // a swap is its own inverse
    }
    case MoveKind::kShiftHome: {
      HARMONY_REQUIRE(
          m.a >= 0 &&
              m.a < static_cast<std::int64_t>(ss_->input_home.size()) &&
              ss_->input_home[static_cast<std::size_t>(m.a)] >= 0 &&
              m.pe >= 0 && static_cast<std::size_t>(m.pe) < P_,
          "DeltaEval: home shift on a DRAM input or outside the machine");
      Move inv{MoveKind::kShiftHome, m.a, 0,
               tm_.input_home[static_cast<std::size_t>(m.a)], 0};
      apply_shift_home(m.a, m.pe);
      return inv;
    }
  }
  HARMONY_ASSERT(false);
  return m;  // unreachable
}

bool DeltaEval::legal() {
  if (causality_bad_ != 0 || excl_extra_ != 0) return false;
  if (opts_.check_storage) {
    flush_storage();
    if (storage_over_ != 0) return false;
  }
  if (opts_.check_bandwidth && bandwidth_violations() != 0) return false;
  return true;
}

std::uint64_t DeltaEval::storage_violations() {
  flush_storage();
  return storage_over_;
}

std::uint64_t DeltaEval::bandwidth_violations() const {
  const double cap = ss_->cs->link_bits_per_cycle;
  const auto makespan = static_cast<double>(max_cycle_ + 1);
  std::uint64_t over = 0;
  for (const std::uint64_t lb : link_bits_) {
    if (static_cast<double>(lb) / makespan > cap) ++over;
  }
  return over;
}

CostReport DeltaEval::cost_report() const {
  const CompiledSpec& cs = *ss_->cs;
  CostReport rep;
  rep.makespan_cycles = max_cycle_ + 1;
  rep.compute_energy = cs.compute_energy_total;
  rep.total_ops = cs.total_ops_total;
  rep.local_access_energy =
      cs.sram_access * static_cast<double>(n_local_);
  for (std::size_t q = 0; q < P_; ++q) {
    if (n_dram_[q] == 0) continue;
    rep.dram_energy +=
        cs.dram_energy[q] * static_cast<double>(n_dram_[q]);
  }
  for (std::size_t e = 0; e < P_ * P_; ++e) {
    if (n_transfer_[e] == 0) continue;
    rep.onchip_movement_energy +=
        cs.transfer_energy[e] * static_cast<double>(n_transfer_[e]);
  }
  rep.messages = messages_;
  rep.bit_hops = bit_hops_;
  rep.makespan = cs.cycle * static_cast<double>(rep.makespan_cycles);
  return rep;
}

double DeltaEval::merit(FigureOfMerit fom) const {
  if (fom == FigureOfMerit::kTime) {
    return (ss_->cs->cycle * static_cast<double>(max_cycle_ + 1))
        .picoseconds();
  }
  return merit_value(cost_report(), fom);
}

}  // namespace harmony::fm
