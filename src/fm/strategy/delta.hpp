// Delta evaluation over CompiledSpec — the mutation-search inner loop.
//
// PR 5's CompiledSpec made one full candidate evaluation cheap; a
// mutation-based search (strategy.hpp) makes thousands of *nearly
// identical* candidates, and re-walking every dependence edge per move
// wastes almost all of that work.  DeltaEval keeps the complete
// legality-and-cost state of one TableMap and re-scores only what a
// move touches: the moved op's CSR dependence row, its reverse-CSR
// consumer edges, the delivered-set entries of its input reads, and the
// (pe, cycle) occupancy / storage-interval bookkeeping of its old and
// new slots.  A move costs O(degree + P) instead of O(E + n log n).
//
// Exactness contract (pinned by tests/fm_strategy_test.cpp):
//   * all state that decides legality and the integer cost fields is
//     kept in exact integer counters, so after ANY apply_move/undo_move
//     sequence the state — and cost_report(), which derives every field
//     from it by a fixed-order conversion — is bit-identical to a fresh
//     reset() on the same table;
//   * legal() always agrees with verify_ok(cs, tm, ctx, opts), and the
//     four violation counters equal verify(cs, tm, ctx, opts)'s;
//   * cost_report() matches evaluate_cost(cs, tm, ctx) exactly on the
//     integer fields (makespan_cycles, messages, bit_hops, total_ops);
//     the energy doubles are the same count-weighted sums evaluated in
//     table order rather than edge order, so they agree to addition-
//     reassociation (≈1 ulp per term), not bit-for-bit — the winners a
//     search reports are always re-scored through evaluate_cost.
// DESIGN.md §13 records these invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fm/compiled.hpp"
#include "fm/strategy/table_map.hpp"

namespace harmony::fm {

/// The mutation move set of the stochastic searchers.
enum class MoveKind : std::uint8_t {
  kReplaceOp,  ///< re-place op `a` at (pe, cycle)
  kSwapOps,    ///< swap the (pe, cycle) slots of ops `a` and `b`
  kShiftHome,  ///< re-home PE-resident input ordinal `a` to `pe`
};

struct Move {
  MoveKind kind = MoveKind::kReplaceOp;
  std::int64_t a = 0;   ///< op lin (kReplaceOp/kSwapOps) or input ordinal
  std::int64_t b = 0;   ///< kSwapOps: second op lin
  std::int32_t pe = 0;  ///< kReplaceOp/kShiftHome: new PE
  Cycle cycle = 0;      ///< kReplaceOp: new cycle
};

/// Search-invariant adjacency the delta evaluator needs beyond the
/// CompiledSpec: the reverse dependence relation (op -> consumer edges),
/// the per-input-ordinal consumer edges, and the move-space bounds.
/// Built once per search; read-only, shared across lanes.
struct StrategySpec {
  std::shared_ptr<const CompiledSpec> cs;

  /// Reverse CSR over target ops: for producer v, the edges that read
  /// it.  `op` is the consuming op, `edge` indexes cs->deps.
  struct ConsumerRef {
    std::int64_t op = 0;
    std::uint64_t edge = 0;
  };
  std::vector<std::uint64_t> consumer_offsets;  ///< num_points + 1
  std::vector<ConsumerRef> consumers;
  /// Consuming op of every edge in cs->deps.
  std::vector<std::int64_t> edge_owner;
  /// Per input ordinal: the edges that read it (CSR).
  std::vector<std::uint64_t> input_consumer_offsets;
  std::vector<std::uint64_t> input_consumers;
  /// Compiled home per ordinal (-1 = DRAM) plus the exemplar reference,
  /// mirrored out of cs->deps for O(1) access and TableMap construction.
  std::vector<TableMap::InputRef> input_refs;
  std::vector<std::int32_t> input_home;
  /// Ordinals with a PE home — the kShiftHome move targets.
  std::vector<std::uint32_t> pe_homed;
  /// Worst-case hop latency and input-arrival latency on this machine —
  /// the seed schedule's stride and offset.
  Cycle max_transit = 0;
  Cycle max_input_need = 0;
  /// Exclusive upper bound on schedule cycles in the move space: wide
  /// enough for both ceil(num_points * slack) and the serial seed.
  Cycle cycle_bound = 0;
};

[[nodiscard]] std::shared_ptr<const StrategySpec> build_strategy_spec(
    std::shared_ptr<const CompiledSpec> cs, double makespan_slack = 4.0);

/// A legal serial-style starting table: ops on PE 0 in topological order
/// (row-major when row-major is already topological), one per cycle,
/// shifted so every input operand can arrive; inputs at their compiled
/// homes.  Throws SimulationError on a cyclic dependence relation.
[[nodiscard]] TableMap seed_table(const StrategySpec& ss);

/// Incremental cost + legality state of one TableMap candidate.
class DeltaEval {
 public:
  explicit DeltaEval(std::shared_ptr<const StrategySpec> ss,
                     VerifyOptions opts = {});

  /// Full recompute from `tm` — the reference every incremental state
  /// must match bit-for-bit.  The table must fit the spec's shape and
  /// the strategy spec's cycle bound.
  void reset(const TableMap& tm);

  /// Applies `m` and returns the inverse move; undoing is applying the
  /// inverse.  All aggregate updates are exact integer transitions, so
  /// apply(m) followed by apply(inverse) restores the state exactly.
  Move apply_move(const Move& m);
  void undo_move(const Move& inverse) { (void)apply_move(inverse); }

  [[nodiscard]] const TableMap& table() const { return tm_; }
  [[nodiscard]] const StrategySpec& strategy() const { return *ss_; }
  [[nodiscard]] const VerifyOptions& options() const { return opts_; }

  /// Agrees with verify_ok(cs, table(), ctx, opts) always.  Non-const:
  /// flushes lazily-dirtied per-PE storage peaks.
  [[nodiscard]] bool legal();

  /// Violation counters matching verify(cs, table(), ctx, opts)'s
  /// exactly.  Storage/bandwidth are computed on demand (and regardless
  /// of the VerifyOptions gates — the gates only affect legal()).
  [[nodiscard]] std::uint64_t causality_violations() const {
    return causality_bad_;
  }
  [[nodiscard]] std::uint64_t exclusivity_violations() const {
    return excl_extra_;
  }
  [[nodiscard]] std::uint64_t storage_violations();
  [[nodiscard]] std::uint64_t bandwidth_violations() const;

  [[nodiscard]] Cycle makespan_cycles() const { return max_cycle_ + 1; }

  /// CostReport derived from the exact counters by a fixed-order
  /// count-weighted conversion (see file comment for how this relates
  /// to evaluate_cost).
  [[nodiscard]] CostReport cost_report() const;

  /// merit_value(cost_report(), fom) without building the full report:
  /// O(1) for kTime, O(P^2) table scan for the energy figures.
  [[nodiscard]] double merit(FigureOfMerit fom) const;

 private:
  void set_bad(std::uint64_t e, bool bad);
  void occ_insert(std::size_t pe, Cycle c);
  void occ_erase(std::size_t pe, Cycle c);
  void hist_insert(Cycle c);
  void hist_erase(Cycle c);
  void route_add(std::size_t from, std::size_t to, bool add);
  void movement_add(std::size_t from, std::size_t to, bool add);
  void delivery_add(const CompiledDep& d, std::size_t pe, bool add);
  void deliv_change(const CompiledDep& d, std::size_t pe, bool add);
  void value_insert(std::int64_t v, std::size_t pe);
  void value_erase(std::int64_t v, std::size_t pe);
  void remove_op(std::int64_t u);
  void add_op(std::int64_t u);
  void apply_replace(std::int64_t u, std::int32_t pe, Cycle cycle);
  void apply_shift_home(std::int64_t ord, std::int32_t pe);
  void update_producer_last_use(std::int64_t u);
  void mark_storage_dirty(std::size_t pe);
  void flush_storage();
  [[nodiscard]] std::int64_t pe_peak_of(std::size_t pe);

  std::shared_ptr<const StrategySpec> ss_;
  VerifyOptions opts_;
  TableMap tm_;
  std::size_t P_ = 1;
  bool output_ = false;

  // Cost counters (exact integers).
  std::uint64_t n_local_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bit_hops_ = 0;
  std::vector<std::uint64_t> n_dram_;      // per PE
  std::vector<std::uint64_t> n_transfer_;  // per [from * P + to]
  std::vector<std::uint32_t> deliv_;       // reads per (ord * P + pe)

  // Makespan: bounded cycle histogram + running max.
  std::vector<std::uint32_t> cyc_hist_;
  Cycle max_cycle_ = 0;

  // Causality: per-edge violation bit + count.
  std::vector<std::uint8_t> edge_bad_;
  std::uint64_t causality_bad_ = 0;

  // Exclusivity: (pe << 40 | cycle) occupancy; excl_extra_ counts the
  // same pairs verify()'s sorted-duplicate scan does (c - 1 per slot).
  std::unordered_map<std::uint64_t, std::uint32_t> occ_;
  std::uint64_t excl_extra_ = 0;

  // Bandwidth: exact per-directed-link bits (always maintained).
  std::vector<std::uint64_t> link_bits_;

  // Storage.  Output target: every value lives to the makespan, so the
  // per-PE peak is just the value count.  Otherwise: per-value last-use
  // maintained from the reverse CSR, per-PE peaks recomputed lazily for
  // dirtied PEs by the same interval sweep verify() runs.
  std::vector<Cycle> cons_last_;                    // max consumer cycle
  std::vector<std::vector<std::int64_t>> pe_values_;
  std::vector<std::uint32_t> value_pos_;
  std::vector<std::int64_t> pe_peak_;
  std::vector<std::uint8_t> pe_dirty_;
  std::vector<std::int32_t> dirty_list_;
  std::uint64_t storage_over_ = 0;  // PEs whose peak exceeds capacity
  std::vector<std::pair<Cycle, std::int32_t>> ev_scratch_;
};

}  // namespace harmony::fm
