#include "fm/strategy/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "fm/strategy/delta.hpp"
#include "sched/parallel_ops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace harmony::fm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Earliest causally safe cycle for op `u` on PE `pe` under the current
/// table: the latest operand arrival, with repeat input reads priced
/// conservatively as first deliveries.  Slot occupancy is deliberately
/// ignored — a colliding proposal just fails the legality check.
Cycle earliest_cycle(const StrategySpec& ss, const TableMap& cur,
                     std::int64_t u, std::int32_t pe) {
  const CompiledSpec& cs = *ss.cs;
  const auto P = cs.num_pes;
  const auto here = static_cast<std::size_t>(pe);
  Cycle c = 0;
  const std::uint64_t lo = cs.dep_offsets[static_cast<std::size_t>(u)];
  const std::uint64_t hi = cs.dep_offsets[static_cast<std::size_t>(u) + 1];
  for (std::uint64_t e = lo; e < hi; ++e) {
    const CompiledDep& d = cs.deps[e];
    Cycle need = 0;
    if (d.kind == CompiledDep::kComputed) {
      if (d.dep_lin == u) continue;
      const auto w = static_cast<std::size_t>(d.dep_lin);
      const Cycle tr =
          cs.transit[static_cast<std::size_t>(cur.pe[w]) * P + here];
      need = cur.cycle[w] + std::max<Cycle>(1, tr);
    } else if (d.kind == CompiledDep::kInputDram) {
      need = cs.dram_cycles[here];
    } else {
      const auto home = static_cast<std::size_t>(
          cur.input_home[static_cast<std::size_t>(d.input_ord)]);
      need = cs.transit[home * P + here];
    }
    c = std::max(c, need);
  }
  return std::min<Cycle>(c, ss.cycle_bound - 1);
}

/// The proposal mixture: compaction pulls (an op re-placed at its
/// earliest causally safe cycle), window-bounded global re-placements
/// (the window tracks the current makespan, so proposals concentrate as
/// the schedule compresses), time-local nudges, swaps, and — when the
/// spec has PE-homed inputs — home shifts.  Draws depend only on the
/// chain's own Rng stream and table state, never on timing.
Move propose_move(const StrategySpec& ss, const DeltaEval& de, Rng& rng) {
  const TableMap& cur = de.table();
  const auto n = static_cast<std::uint64_t>(ss.cs->num_points);
  const auto P = static_cast<std::uint64_t>(ss.cs->num_pes);
  const std::uint64_t r = rng.next_below(100);
  if (r >= 92 && !ss.pe_homed.empty()) {
    Move m;
    m.kind = MoveKind::kShiftHome;
    m.a = ss.pe_homed[rng.next_below(ss.pe_homed.size())];
    m.pe = static_cast<std::int32_t>(rng.next_below(P));
    return m;
  }
  if (r >= 80 && r < 92 && n >= 2) {
    Move m;
    m.kind = MoveKind::kSwapOps;
    m.a = static_cast<std::int64_t>(rng.next_below(n));
    m.b = static_cast<std::int64_t>(rng.next_below(n));
    return m;
  }
  if (r >= 55 && r < 80) {
    // Local nudge: same PE, schedule shifted a few cycles.
    Move m;
    m.kind = MoveKind::kReplaceOp;
    m.a = static_cast<std::int64_t>(rng.next_below(n));
    const auto ai = static_cast<std::size_t>(m.a);
    m.pe = cur.pe[ai];
    const Cycle c = cur.cycle[ai] + rng.next_int(-8, 8);
    m.cycle = std::clamp<Cycle>(c, 0, ss.cycle_bound - 1);
    return m;
  }
  if (r >= 30 && r < 55) {
    // Compaction pull: as early as the operands allow, on the current
    // PE half the time and a random one otherwise.
    Move m;
    m.kind = MoveKind::kReplaceOp;
    m.a = static_cast<std::int64_t>(rng.next_below(n));
    m.pe = rng.next_below(2) == 0
               ? cur.pe[static_cast<std::size_t>(m.a)]
               : static_cast<std::int32_t>(rng.next_below(P));
    m.cycle = std::min<Cycle>(
        ss.cycle_bound - 1,
        earliest_cycle(ss, cur, m.a, m.pe) +
            static_cast<Cycle>(rng.next_below(4)));
    return m;
  }
  Move m;
  m.kind = MoveKind::kReplaceOp;
  m.a = static_cast<std::int64_t>(rng.next_below(n));
  m.pe = static_cast<std::int32_t>(rng.next_below(P));
  const Cycle window =
      std::min<Cycle>(ss.cycle_bound, de.makespan_cycles() + 16);
  m.cycle = static_cast<Cycle>(
      rng.next_below(static_cast<std::uint64_t>(window)));
  return m;
}

struct ChainResult {
  bool found = false;
  TableMap best;
  double merit = kInf;
  std::uint64_t tried = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_illegal = 0;
  int epochs_run = 0;
  int reheats = 0;
  bool cut = false;
};

ChainResult run_chain(std::size_t chain, Rng rng,
                      const std::shared_ptr<const StrategySpec>& ss,
                      const TableMap& seed, double seed_merit,
                      const StrategyOptions& opts) {
  ChainResult res;
  DeltaEval de(ss, opts.verify);
  de.reset(seed);
  double cur = seed_merit;
  res.best = seed;
  res.merit = seed_merit;
  res.found = true;

  const double t0 =
      opts.t0_fraction * std::max(std::abs(seed_merit), 1e-9);
  double temp = t0;
  int stall = 0;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    if (opts.cancel && opts.cancel()) {
      res.cut = true;
      break;
    }
    const double epoch_best = res.merit;
    {
      trace::Span span("fm", "anneal_epoch", chain,
                       static_cast<std::uint64_t>(epoch),
                       static_cast<std::uint64_t>(opts.iters_per_epoch));
      for (int it = 0; it < opts.iters_per_epoch; ++it) {
        const Move mv = propose_move(*ss, de, rng);
        ++res.tried;
        const Move inv = de.apply_move(mv);
        if (!de.legal()) {
          ++res.rejected_illegal;
          de.undo_move(inv);
          continue;
        }
        const double merit = de.merit(opts.fom);
        const double delta = merit - cur;
        if (delta <= 0.0 ||
            rng.next_double() < std::exp(-delta / temp)) {
          cur = merit;
          ++res.accepted;
          if (merit < res.merit) {
            res.merit = merit;
            res.best = de.table();
          }
        } else {
          de.undo_move(inv);
        }
      }
    }
    ++res.epochs_run;
    temp *= opts.cooling;
    stall = res.merit < epoch_best ? 0 : stall + 1;
    if (stall >= opts.stall_epochs) {
      if (res.reheats >= opts.max_reheats) break;
      ++res.reheats;
      temp = t0;
      stall = 0;
    }
  }
  return res;
}

/// One beam proposal, recorded with its strict rank key: parents and
/// proposal indices break merit ties, so the sort — and hence the whole
/// generation — is independent of evaluation order.
struct BeamCand {
  double merit = kInf;
  std::uint32_t parent = 0;
  std::uint32_t idx = 0;
  Move mv;
};

bool beam_precedes(const BeamCand& a, const BeamCand& b) {
  if (a.merit != b.merit) return a.merit < b.merit;
  if (a.parent != b.parent) return a.parent < b.parent;
  return a.idx < b.idx;
}

/// One beam lane's whole output, so the fan-out writes exactly one
/// results slot per lane (the strategy_lanes contract).
struct BeamLane {
  std::vector<BeamCand> cands;
  std::uint64_t illegal = 0;
};

/// Applies a (known-shape) move directly to a table copy.
void apply_to_table(TableMap& tm, const Move& mv) {
  switch (mv.kind) {
    case MoveKind::kReplaceOp:
      tm.pe[static_cast<std::size_t>(mv.a)] = mv.pe;
      tm.cycle[static_cast<std::size_t>(mv.a)] = mv.cycle;
      return;
    case MoveKind::kSwapOps:
      std::swap(tm.pe[static_cast<std::size_t>(mv.a)],
                tm.pe[static_cast<std::size_t>(mv.b)]);
      std::swap(tm.cycle[static_cast<std::size_t>(mv.a)],
                tm.cycle[static_cast<std::size_t>(mv.b)]);
      return;
    case MoveKind::kShiftHome:
      tm.input_home[static_cast<std::size_t>(mv.a)] = mv.pe;
      return;
  }
}

/// Spreads `results[i] = eval(ctx, i)` over [0, count) through the
/// strategy_lanes kernel — on the scheduler when one is given (forking
/// into a surrounding session when already inside one), serially
/// otherwise.  Returns the lane count used.
template <typename Result, typename Eval>
unsigned spread_lanes(sched::Scheduler* scheduler, unsigned num_workers,
                      std::size_t count, Result* results, Eval&& eval) {
  unsigned lanes = 1;
  if (scheduler != nullptr) {
    lanes = scheduler->num_workers();
    if (num_workers != 0) lanes = std::min(lanes, num_workers);
    lanes = static_cast<unsigned>(
        std::min<std::size_t>(lanes, std::max<std::size_t>(count, 1)));
  }
  sched::RealCtx ctx;
  if (lanes <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = eval(ctx, i);
    return 1;
  }
  const auto kernel = [&] { strategy_lanes(ctx, count, results, eval); };
  if (sched::Scheduler::in_parallel_context()) {
    kernel();
  } else {
    scheduler->run(kernel);
  }
  return lanes;
}

}  // namespace

std::vector<analyze::Diagnostic> validate_strategy_options(
    const StrategyOptions& opts) {
  std::vector<analyze::Diagnostic> diags;
  const auto flag = [&](const char* what) {
    diags.push_back(analyze::make_diagnostic(
        "FM005", analyze::Location{},
        std::string("fm::search_table: ") + what));
  };
  if (opts.chains <= 0) flag("chains must be positive");
  if (opts.iters_per_epoch <= 0) flag("iters_per_epoch must be positive");
  if (opts.epochs <= 0) flag("epochs must be positive");
  if (!(opts.t0_fraction > 0.0)) flag("t0_fraction must be positive");
  if (!(opts.cooling > 0.0) || opts.cooling > 1.0) {
    flag("cooling must be in (0, 1]");
  }
  if (opts.stall_epochs <= 0) flag("stall_epochs must be positive");
  if (opts.max_reheats < 0) flag("max_reheats must be non-negative");
  if (!(opts.makespan_slack >= 1.0)) flag("makespan_slack must be >= 1");
  if (opts.beam_width <= 0) flag("beam_width must be positive");
  if (opts.beam_moves <= 0) flag("beam_moves must be positive");
  return diags;
}

StrategyResult search_table(const FunctionSpec& spec,
                            const MachineConfig& machine,
                            const Mapping& input_proto, StrategyKind kind,
                            const StrategyOptions& opts) {
  HARMONY_REQUIRE(kind != StrategyKind::kExhaustive,
                  "search_table: kExhaustive is search_affine's job — "
                  "call it (or serve with strategy = kExhaustive)");
  const auto diags = validate_strategy_options(opts);
  if (!diags.empty()) throw InvalidArgument(diags.front().message);

  std::shared_ptr<const CompiledSpec> cs =
      opts.compiled != nullptr ? opts.compiled
                               : compile_spec(spec, machine, input_proto);
  HARMONY_REQUIRE(cs->num_points > 0,
                  "search_table: empty computation domain");
  const std::shared_ptr<const StrategySpec> ss =
      build_strategy_spec(cs, opts.makespan_slack);
  const TableMap seed = seed_table(*ss);

  double seed_merit;
  {
    DeltaEval probe(ss, opts.verify);
    probe.reset(seed);
    HARMONY_REQUIRE(
        probe.legal(),
        "search_table: the serial seed schedule is not legal on this "
        "machine (PE capacity or link bandwidth too small for any "
        "one-op-per-cycle table)");
    seed_merit = probe.merit(opts.fom);
  }

  trace::Span span("fm", "strategy_search",
                   static_cast<std::uint64_t>(kind),
                   static_cast<std::uint64_t>(cs->num_points),
                   static_cast<std::uint64_t>(opts.seed));

  StrategyResult result;
  Rng root(opts.seed);

  if (kind == StrategyKind::kAnneal) {
    const auto chains = static_cast<std::size_t>(opts.chains);
    // Streams split in chain order on the coordinator: chain c's stream
    // is a function of (seed, c) alone, so any worker interleaving
    // produces the same per-chain results.
    std::vector<Rng> rngs;
    rngs.reserve(chains);
    for (std::size_t c = 0; c < chains; ++c) rngs.push_back(root.split());
    std::vector<ChainResult> chain_results(chains);
    result.workers_used = spread_lanes(
        opts.scheduler, opts.num_workers, chains, chain_results.data(),
        [&](auto& ctx, std::size_t c) {
          sched::reader(ctx, rngs.data(), c);
          return run_chain(c, rngs[c], ss, seed, seed_merit, opts);
        });
    result.chains_used = opts.chains;

    std::size_t winner = 0;
    for (std::size_t c = 0; c < chains; ++c) {
      const ChainResult& r = chain_results[c];
      result.moves_tried += r.tried;
      result.moves_accepted += r.accepted;
      result.moves_rejected_illegal += r.rejected_illegal;
      result.epochs_run = std::max(result.epochs_run, r.epochs_run);
      result.reheats += r.reheats;
      if (r.cut) result.completed = false;
      // Strict (merit, chain) order: the earliest chain wins ties.
      if (r.merit < chain_results[winner].merit) winner = c;
    }
    result.found = true;
    result.best = chain_results[winner].best;
  } else {
    std::vector<TableMap> parents{seed};
    TableMap best = seed;
    double best_merit = seed_merit;
    result.chains_used = 1;
    const auto width = static_cast<std::size_t>(opts.beam_width);
    const auto moves = static_cast<std::uint32_t>(opts.beam_moves);
    unsigned max_lanes = 1;

    // One DeltaEval per beam position, built once and reset() per
    // parent per epoch: reset is a full recompute, so reuse is
    // byte-identical to constructing fresh — it just keeps the
    // evaluator's arena of occupancy/aggregate state out of the
    // per-epoch hot path.  Lane i touches only de_pool[i].
    std::vector<DeltaEval> de_pool;
    de_pool.reserve(std::max<std::size_t>(width, 1));
    for (std::size_t i = 0; i < std::max<std::size_t>(width, 1); ++i) {
      de_pool.emplace_back(ss, opts.verify);
    }

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
      if (opts.cancel && opts.cancel()) {
        result.completed = false;
        break;
      }
      trace::Span epoch_span("fm", "beam_epoch", 0,
                             static_cast<std::uint64_t>(epoch),
                             static_cast<std::uint64_t>(parents.size()));
      std::vector<Rng> rngs;
      rngs.reserve(parents.size());
      for (std::size_t i = 0; i < parents.size(); ++i) {
        rngs.push_back(root.split());
      }
      std::vector<BeamLane> lane_results(parents.size());
      const unsigned lanes = spread_lanes(
          opts.scheduler, opts.num_workers, parents.size(),
          lane_results.data(), [&](auto& ctx, std::size_t i) {
            sched::reader(ctx, parents.data(), i);
            sched::reader(ctx, rngs.data(), i);
            sched::writer(ctx, de_pool.data(), i);
            BeamLane lane;
            DeltaEval& de = de_pool[i];
            de.reset(parents[i]);
            Rng rng = rngs[i];
            for (std::uint32_t j = 0; j < moves; ++j) {
              const Move mv = propose_move(*ss, de, rng);
              const Move inv = de.apply_move(mv);
              if (de.legal()) {
                lane.cands.push_back(BeamCand{de.merit(opts.fom),
                                              static_cast<std::uint32_t>(i),
                                              j, mv});
              } else {
                ++lane.illegal;
              }
              de.undo_move(inv);
            }
            return lane;
          });
      max_lanes = std::max(max_lanes, lanes);

      std::vector<BeamCand> all;
      for (std::size_t i = 0; i < parents.size(); ++i) {
        result.moves_tried += moves;
        result.moves_rejected_illegal += lane_results[i].illegal;
        all.insert(all.end(), lane_results[i].cands.begin(),
                   lane_results[i].cands.end());
      }
      ++result.epochs_run;
      if (all.empty()) break;  // every mutation of every parent illegal
      std::sort(all.begin(), all.end(), beam_precedes);
      if (all.size() > width) all.resize(width);

      std::vector<TableMap> children;
      children.reserve(all.size());
      for (const BeamCand& c : all) {
        TableMap child = parents[c.parent];
        apply_to_table(child, c.mv);
        children.push_back(std::move(child));
        ++result.moves_accepted;
      }
      if (all.front().merit < best_merit) {
        best_merit = all.front().merit;
        best = children.front();
      }
      parents = std::move(children);
    }
    result.workers_used = max_lanes;
    result.found = true;
    result.best = best;
  }

  // Winners are re-scored through the full evaluator: the published
  // numbers come from the pinned oracle, not the delta conversion.
  EvalContext ectx(*cs);
  result.cost = evaluate_cost(*cs, result.best, ectx);
  result.merit = merit_value(result.cost, opts.fom);
  return result;
}

}  // namespace harmony::fm
