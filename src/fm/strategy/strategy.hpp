// Stochastic mapping search over non-affine spaces (fm::strategy).
//
// search_affine() enumerates the AffineMap family exhaustively — the
// right tool when the space is a few thousand coefficient tuples.  The
// TableMap space (per-op placement) is (P * cycles)^n: no enumeration
// survives it, but it contains every schedule the affine family cannot
// express (irregular DAGs, mixed serial/parallel phases, per-value input
// homes).  search_table() explores it with mutation moves scored by the
// delta evaluator (strategy/delta.hpp):
//
//   * kAnneal — simulated annealing: geometric cooling with reheats,
//     several independent chains.  Each chain owns a support::Rng split
//     off one root seed *in chain order*, runs its own DeltaEval, and
//     chains spread over the work-stealing scheduler; the winner is
//     merged by (merit, chain index).  The result is therefore
//     byte-identical for a fixed (seed, chains) across any worker count
//     — determinism comes from the stream split, not the schedule.
//   * kBeam — deterministic beam search: per epoch every surviving
//     state proposes `beam_moves` mutations (per-parent Rngs split in
//     parent order), all candidates are ranked by
//     (merit, parent, proposal index), and the best `beam_width` become
//     the next generation.  Same determinism argument.
//
// Both drivers poll `cancel` once per epoch, so a serving deadline cuts
// the search short and still answers with the best table found — the
// anneal analogue of the exhaustive search's resumable slot cut.  Each
// epoch runs under trace::Span("fm", "anneal_epoch" / "beam_epoch").
// DESIGN.md §13.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "fm/compiled.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/strategy/table_map.hpp"
#include "sched/parallel_ops.hpp"
#include "sched/scheduler.hpp"

namespace harmony::fm {

enum class StrategyKind : std::uint8_t {
  kExhaustive,  ///< serve-level alias for search_affine (not a driver here)
  kAnneal,
  kBeam,
};

[[nodiscard]] constexpr const char* to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::kExhaustive:
      return "exhaustive";
    case StrategyKind::kAnneal:
      return "anneal";
    case StrategyKind::kBeam:
      return "beam";
  }
  return "?";
}

struct StrategyOptions {
  FigureOfMerit fom = FigureOfMerit::kEnergyDelay;
  VerifyOptions verify;
  /// Root seed of the whole search; every random stream derives from it
  /// by Rng::split in a fixed order.
  std::uint64_t seed = 0x5eed;
  /// kAnneal: independent chains (merged by merit, chain index).
  int chains = 4;
  /// kAnneal: proposals per temperature epoch.
  int iters_per_epoch = 256;
  /// Temperature epochs (anneal) / generations (beam).
  int epochs = 64;
  /// kAnneal: T0 = t0_fraction * |seed merit|.
  double t0_fraction = 0.05;
  /// kAnneal: geometric cooling factor per epoch, in (0, 1].
  double cooling = 0.85;
  /// kAnneal: epochs without a new best before a reheat.
  int stall_epochs = 8;
  /// kAnneal: reheats before the chain stops early.
  int max_reheats = 2;
  /// Move-space schedule bound factor (see build_strategy_spec).
  double makespan_slack = 4.0;
  /// kBeam: surviving states per generation.
  int beam_width = 8;
  /// kBeam: proposals per surviving state per generation.
  int beam_moves = 32;
  /// Polled once per epoch (thread-safe under a scheduler); true stops
  /// the search, which returns best-so-far with completed == false.
  std::function<bool()> cancel;
  /// Non-null: spread chains (anneal) / parents (beam) over this
  /// scheduler.  The result is identical to a serial run.
  sched::Scheduler* scheduler = nullptr;
  /// Lane cap; 0 means one lane per scheduler worker.
  unsigned num_workers = 0;
  /// Optional pre-compiled tables (serve's cache); must come from
  /// compile_spec on the same (spec, machine, input_proto) triple.
  std::shared_ptr<const CompiledSpec> compiled;
};

/// FM005 records for every degenerate option value; empty means valid.
/// search_table() throws InvalidArgument with the first message.
[[nodiscard]] std::vector<analyze::Diagnostic> validate_strategy_options(
    const StrategyOptions& opts);

struct StrategyResult {
  bool found = false;
  TableMap best;
  /// Full re-score of `best` through evaluate_cost (not the delta
  /// evaluator's count-converted report).
  CostReport cost;
  double merit = 0.0;
  std::uint64_t moves_tried = 0;
  std::uint64_t moves_accepted = 0;
  std::uint64_t moves_rejected_illegal = 0;
  int epochs_run = 0;
  int reheats = 0;
  /// False when `cancel` stopped the search before its budget.
  bool completed = true;
  int chains_used = 0;
  unsigned workers_used = 1;
};

/// The drivers' shared lane kernel: lane i writes results[i] and
/// nothing else shared.  `eval(ctx, i)` receives the context so lane
/// bodies can annotate their own per-lane reads (the chain's seed Rng,
/// the beam parent) with sched::reader.  Public and Ctx-generic for the
/// same reason fm::search_lanes is: replayed under analyze::RaceCtx it
/// certifies the anneal/beam fan-out determinacy-race-free
/// (tests/analyze_race_test.cpp), and the annotations compile away
/// under RealCtx.
template <typename Ctx, typename Result, typename Eval>
void strategy_lanes(Ctx& ctx, std::size_t count, Result* results,
                    Eval&& eval) {
  sched::parallel_for(ctx, 0, count, 1, [&](std::size_t i) {
    sched::writer(ctx, results, i);
    results[i] = eval(ctx, i);
  });
}

/// Searches TableMaps for `spec` (single computed tensor) on `machine`;
/// `input_proto` supplies the input homes the seed starts from, exactly
/// as in search_affine.  `kind` must be kAnneal or kBeam.
[[nodiscard]] StrategyResult search_table(const FunctionSpec& spec,
                                          const MachineConfig& machine,
                                          const Mapping& input_proto,
                                          StrategyKind kind,
                                          const StrategyOptions& opts = {});

}  // namespace harmony::fm
