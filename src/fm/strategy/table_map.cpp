#include "fm/strategy/table_map.hpp"

#include <unordered_map>
#include <utility>

#include "fm/compiled.hpp"
#include "support/error.hpp"

namespace harmony::fm {

TableMap table_from_affine(const CompiledSpec& cs, const AffineMap& map) {
  TableMap tm;
  tm.target = cs.target;
  tm.domain = cs.domain;
  tm.cols = cs.cols;
  tm.rows = cs.rows;
  tm.pe.resize(static_cast<std::size_t>(cs.num_points));
  tm.cycle.resize(static_cast<std::size_t>(cs.num_points));
  std::int64_t lin = 0;
  cs.domain.for_each([&](const Point& p) {
    const auto v = static_cast<std::size_t>(lin++);
    tm.pe[v] = static_cast<std::int32_t>(cs.pe_index(map.place(p)));
    tm.cycle[v] = map.time(p);
  });
  // Input ordinals are dense and first-seen in deps order (compile_spec's
  // try_emplace), so one pass over the flat edges recovers each ordinal's
  // exemplar reference and compiled home.
  tm.input_home.assign(cs.num_input_values, -1);
  tm.input_refs.resize(cs.num_input_values);
  std::vector<char> seen(cs.num_input_values, 0);
  for (const CompiledDep& d : cs.deps) {
    if (d.kind == CompiledDep::kComputed) continue;
    if (seen[d.input_ord] != 0) continue;
    seen[d.input_ord] = 1;
    tm.input_refs[d.input_ord] = TableMap::InputRef{d.tensor, d.point()};
    tm.input_home[d.input_ord] =
        d.kind == CompiledDep::kInputPe ? d.home_pe : -1;
  }
  return tm;
}

TableMap table_from_mapping(const CompiledSpec& cs, const Mapping& m) {
  TableMap tm;
  tm.target = cs.target;
  tm.domain = cs.domain;
  tm.cols = cs.cols;
  tm.rows = cs.rows;
  tm.pe.resize(static_cast<std::size_t>(cs.num_points));
  tm.cycle.resize(static_cast<std::size_t>(cs.num_points));
  std::int64_t lin = 0;
  cs.domain.for_each([&](const Point& p) {
    const auto v = static_cast<std::size_t>(lin++);
    tm.pe[v] = static_cast<std::int32_t>(cs.pe_index(m.place(cs.target, p)));
    tm.cycle[v] = m.time(cs.target, p);
  });
  // Same ordinal recovery as table_from_affine, with homes read from the
  // mapping instead of the compiled snapshot.  The compiled kind stays
  // authoritative for DRAM-vs-PE (it came from the same input proto).
  tm.input_home.assign(cs.num_input_values, -1);
  tm.input_refs.resize(cs.num_input_values);
  std::vector<char> seen(cs.num_input_values, 0);
  for (const CompiledDep& d : cs.deps) {
    if (d.kind == CompiledDep::kComputed) continue;
    if (seen[d.input_ord] != 0) continue;
    seen[d.input_ord] = 1;
    tm.input_refs[d.input_ord] = TableMap::InputRef{d.tensor, d.point()};
    if (d.kind == CompiledDep::kInputPe) {
      const InputHome& home = m.input_home(d.tensor);
      tm.input_home[d.input_ord] =
          home.kind == InputHome::Kind::kDram
              ? d.home_pe
              : static_cast<std::int32_t>(
                    cs.pe_index(home.home_of(d.point())));
    }
  }
  return tm;
}

Mapping to_mapping(const FunctionSpec& spec, const TableMap& tm) {
  HARMONY_REQUIRE(tm.target >= 0 && tm.pe.size() == tm.cycle.size() &&
                      static_cast<std::int64_t>(tm.pe.size()) ==
                          tm.domain.size(),
                  "to_mapping: malformed TableMap");
  Mapping m;
  // The closures share one immutable snapshot of the table; the Mapping
  // stays valid after the TableMap that built it mutates or dies.
  auto shared = std::make_shared<const TableMap>(tm);
  m.set_computed(
      tm.target,
      [shared](const Point& p) {
        return shared->coord_of(shared->domain.linearize(p));
      },
      [shared](const Point& p) {
        return shared->cycle[static_cast<std::size_t>(
            shared->domain.linearize(p))];
      });

  // Group the per-ordinal homes by tensor.  A tensor's ordinals are all
  // DRAM or all PE-homed (the kind is fixed per tensor at compile time).
  std::unordered_map<TensorId, std::shared_ptr<
                                   std::unordered_map<std::int64_t, noc::Coord>>>
      homes;
  for (std::size_t ord = 0; ord < tm.input_refs.size(); ++ord) {
    const TableMap::InputRef& ref = tm.input_refs[ord];
    if (ref.tensor < 0 || tm.input_home[ord] < 0) continue;
    auto& table = homes[ref.tensor];
    if (table == nullptr) {
      table =
          std::make_shared<std::unordered_map<std::int64_t, noc::Coord>>();
    }
    const std::int32_t q = tm.input_home[ord];
    (*table)[spec.domain(ref.tensor).linearize(ref.point)] =
        noc::Coord{q % tm.cols, q / tm.cols};
  }
  for (TensorId in : spec.input_tensors()) {
    const auto it = homes.find(in);
    if (it == homes.end()) {
      m.set_input(in, InputHome::dram());
      continue;
    }
    const IndexDomain dom = spec.domain(in);
    m.set_input(in, InputHome::distributed(
                        [table = it->second, dom](const Point& p) {
                          const auto f = table->find(dom.linearize(p));
                          return f == table->end() ? noc::Coord{0, 0}
                                                   : f->second;
                        }));
  }
  return m;
}

}  // namespace harmony::fm
