// TableMap — per-op / per-value placement, the non-affine half of the
// mapping space (Dally, paper §3).
//
// "One can systematically search the space of possible mappings" — but
// the AffineMap family search_affine() enumerates is a vanishing slice
// of that space.  A TableMap stores one (pe, cycle) per linearized
// element of the target tensor and one home PE per input value, so
// *every* legal mapping of a single-tensor spec is representable, at
// the price of an O(n) representation instead of twelve coefficients.
//
// TableMap lowers into the existing machinery two ways:
//   * to_mapping() builds a closure-based fm::Mapping, so the legacy
//     oracles (evaluate_cost, verify), the linter, and the GridMachine
//     all consume it unchanged;
//   * compiled.hpp's TableMap overloads of evaluate_cost / verify /
//     verify_ok run it through the CompiledSpec flat arrays, pinned
//     bit-identical to the lowered-Mapping path by tests.
// The stochastic searchers (fm/strategy/strategy.hpp) mutate TableMaps
// through the delta evaluator (fm/strategy/delta.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "noc/mesh.hpp"

namespace harmony::fm {

struct CompiledSpec;  // fm/compiled.hpp

/// Per-op/per-value placement table for a spec with one computed tensor.
/// Op order is the row-major linearization of the target domain; input
/// values use the CompiledSpec's dense ordinal numbering.
struct TableMap {
  TensorId target = -1;
  IndexDomain domain{1};
  int cols = 1, rows = 1;
  /// Linear PE index and schedule cycle of each target element,
  /// indexed by the row-major linearization of `domain`.
  std::vector<std::int32_t> pe;
  std::vector<Cycle> cycle;
  /// Home PE per dense input-value ordinal; -1 means DRAM.  The kind is
  /// fixed at compile time (a DRAM-homed value never moves on-chip), so
  /// entries are either always -1 or always a valid PE index.
  std::vector<std::int32_t> input_home;
  /// Exemplar (tensor, point) of each input ordinal — what to_mapping()
  /// needs to rebuild per-tensor InputHome closures.
  struct InputRef {
    TensorId tensor = -1;
    Point point{};
  };
  std::vector<InputRef> input_refs;

  [[nodiscard]] std::int64_t num_ops() const {
    return static_cast<std::int64_t>(pe.size());
  }
  [[nodiscard]] noc::Coord coord_of(std::int64_t lin) const {
    const std::int32_t q = pe[static_cast<std::size_t>(lin)];
    return noc::Coord{q % cols, q / cols};
  }
  /// max(0, max over elements of cycle + 1) — the same integers as the
  /// legacy evaluator's per-point running max seeded at 0.
  [[nodiscard]] Cycle makespan_cycles() const {
    Cycle m = 0;
    for (const Cycle c : cycle) m = std::max(m, c + 1);
    return m;
  }
};

/// The affine family embedded in the table space: snapshots `map` (and
/// the compiled input homes) into a TableMap.  Used to seed searches
/// from an affine winner and to pin table-vs-affine oracle parity.
[[nodiscard]] TableMap table_from_affine(const CompiledSpec& cs,
                                         const AffineMap& map);

/// Any closure Mapping embedded in the table space: snapshots the
/// mapping's (place, time) per target element and its input homes per
/// ordinal.  This is how non-affine hand mappings (serial, wavefront)
/// reach consumers that speak TableMap — `harmony-lint --check-exec`
/// lowers through here to build an execution witness.  The mapping must
/// cover the compiled target tensor and every input tensor.
[[nodiscard]] TableMap table_from_mapping(const CompiledSpec& cs,
                                          const Mapping& m);

/// Lowers a TableMap to the closure-based Mapping every legacy consumer
/// (cost, legality, lint, GridMachine) understands.  Input tensors whose
/// ordinals are DRAM-homed get InputHome::dram(); PE-homed tensors get a
/// distributed closure over the table's per-value homes (unreferenced
/// elements of the tensor default to PE 0 — no oracle ever asks for
/// them, they are off every dependence edge).
[[nodiscard]] Mapping to_mapping(const FunctionSpec& spec,
                                 const TableMap& tm);

}  // namespace harmony::fm
