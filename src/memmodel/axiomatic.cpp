// Axiomatic SC / x86-TSO / PSO candidate-execution checker (litmus.hpp).
//
// Candidate executions: every load picks a reads-from source (a store to
// the same location, or the initial value); every location picks a total
// coherence order over its stores.  A candidate is consistent when:
//
//   SC:   acyclic(po u rf u co u fr)
//   TSO:  acyclic(po-loc u rf u co u fr)                ["uniproc"]
//         and acyclic(ppo u mfence u rfe u co u fr)     ["ghb"]
//         where ppo = po \ (store -> load), rfe = inter-thread rf,
//         mfence = pairs separated in po by a fence.
//
// References: Alglave, Maranget, Tautschnig, "Herding cats" (TOPLAS 2014)
// — the TSO instance of the framework.
#include <algorithm>
#include <numeric>

#include "memmodel/litmus.hpp"

namespace harmony::memmodel {

namespace {

struct Event {
  int id;
  int thread;
  int index;  // position in thread
  OpType type;
  int loc;
  int value;  // store value (assigned); for loads filled per candidate
};

/// Simple DFS cycle detector over an adjacency matrix.
class Graph {
 public:
  explicit Graph(int n) : n_(n), adj_(static_cast<std::size_t>(n * n), 0) {}
  void edge(int a, int b) {
    adj_[static_cast<std::size_t>(a * n_ + b)] = 1;
  }
  [[nodiscard]] bool acyclic() const {
    std::vector<int> state(static_cast<std::size_t>(n_), 0);  // 0/1/2
    for (int v = 0; v < n_; ++v) {
      if (state[static_cast<std::size_t>(v)] == 0 && has_cycle(v, state)) {
        return false;
      }
    }
    return true;
  }

 private:
  bool has_cycle(int v, std::vector<int>& state) const {
    state[static_cast<std::size_t>(v)] = 1;
    for (int w = 0; w < n_; ++w) {
      if (!adj_[static_cast<std::size_t>(v * n_ + w)]) continue;
      if (state[static_cast<std::size_t>(w)] == 1) return true;
      if (state[static_cast<std::size_t>(w)] == 0 &&
          has_cycle(w, state)) {
        return true;
      }
    }
    state[static_cast<std::size_t>(v)] = 2;
    return false;
  }
  int n_;
  std::vector<char> adj_;
};

}  // namespace

CheckResult check_axiomatic(const LitmusTest& test, Model model) {
  HARMONY_REQUIRE(test.condition != nullptr,
                  "check_axiomatic: test has no condition");
  HARMONY_REQUIRE(!test.uses_rmw(),
                  "check_axiomatic: RMW is not supported by the axiomatic "
                  "checker; use check_operational");

  // Flatten events.
  std::vector<Event> events;
  std::vector<int> loads;                       // event ids
  std::vector<std::vector<int>> stores_of_loc(  // event ids per location
      static_cast<std::size_t>(test.num_locs));
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    for (std::size_t i = 0; i < test.threads[t].size(); ++i) {
      const Op& op = test.threads[t][i];
      const int id = static_cast<int>(events.size());
      events.push_back(Event{id, static_cast<int>(t),
                             static_cast<int>(i), op.type, op.loc,
                             op.value});
      if (op.type == OpType::kLoad) loads.push_back(id);
      if (op.type == OpType::kStore) {
        stores_of_loc[static_cast<std::size_t>(op.loc)].push_back(id);
      }
    }
  }
  const int n = static_cast<int>(events.size());

  CheckResult result;

  // Enumerate rf choices: per load, index into {-1 (init)} u stores(loc).
  std::vector<int> rf_choice(loads.size(), -1);
  // Enumerate co: a permutation per location.
  std::vector<std::vector<int>> co_perm(
      static_cast<std::size_t>(test.num_locs));
  for (int l = 0; l < test.num_locs; ++l) {
    auto& perm = co_perm[static_cast<std::size_t>(l)];
    perm.resize(stores_of_loc[static_cast<std::size_t>(l)].size());
    std::iota(perm.begin(), perm.end(), 0);
  }

  // Recursive enumeration over loads, then permutations per location.
  auto check_candidate = [&]() {
    ++result.executions_explored;
    // co position per store event (for fr derivation).
    std::vector<int> co_pos(static_cast<std::size_t>(n), -1);
    for (int l = 0; l < test.num_locs; ++l) {
      const auto& sl = stores_of_loc[static_cast<std::size_t>(l)];
      const auto& perm = co_perm[static_cast<std::size_t>(l)];
      for (std::size_t k = 0; k < perm.size(); ++k) {
        co_pos[static_cast<std::size_t>(
            sl[static_cast<std::size_t>(perm[k])])] =
            static_cast<int>(k);
      }
    }

    // Build relations.
    Graph sc_graph(n), uniproc(n), ghb(n);
    const bool tso = model != Model::kSc;  // any store-buffer model
    const bool pso = model == Model::kPso;

    // po (and derived ppo / po-loc / mfence).
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
      std::vector<int> ids;
      for (const Event& e : events) {
        if (e.thread == static_cast<int>(t)) ids.push_back(e.id);
      }
      for (std::size_t a = 0; a < ids.size(); ++a) {
        for (std::size_t b = a + 1; b < ids.size(); ++b) {
          const Event& ea = events[static_cast<std::size_t>(ids[a])];
          const Event& eb = events[static_cast<std::size_t>(ids[b])];
          if (ea.type == OpType::kFence || eb.type == OpType::kFence) {
            continue;  // fences matter only through the mfence relation
          }
          sc_graph.edge(ea.id, eb.id);
          if (ea.loc == eb.loc) uniproc.edge(ea.id, eb.id);
          if (tso) {
            // Pairs the buffer may reorder: W->R (TSO and PSO), and
            // W->W to a *different* location (PSO only; same-location
            // order is preserved by the per-location FIFO).
            const bool is_wr = ea.type == OpType::kStore &&
                               eb.type == OpType::kLoad;
            const bool is_ww_diff = pso &&
                                    ea.type == OpType::kStore &&
                                    eb.type == OpType::kStore &&
                                    ea.loc != eb.loc;
            bool fence_between = false;
            for (std::size_t c = a + 1; c < b; ++c) {
              if (events[static_cast<std::size_t>(ids[c])].type ==
                  OpType::kFence) {
                fence_between = true;
                break;
              }
            }
            if ((!is_wr && !is_ww_diff) || fence_between) {
              ghb.edge(ea.id, eb.id);
            }
          }
        }
      }
    }

    // rf, fr.
    std::vector<std::vector<std::int64_t>> regs(test.threads.size());
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
      regs[t].assign(test.threads[t].size(), 0);
    }
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const Event& load = events[static_cast<std::size_t>(loads[li])];
      const auto& sl = stores_of_loc[static_cast<std::size_t>(load.loc)];
      const int choice = rf_choice[li];
      if (choice >= 0) {
        const Event& src = events[static_cast<std::size_t>(
            sl[static_cast<std::size_t>(choice)])];
        regs[static_cast<std::size_t>(load.thread)]
            [static_cast<std::size_t>(load.index)] = src.value;
        sc_graph.edge(src.id, load.id);
        uniproc.edge(src.id, load.id);
        if (tso && src.thread != load.thread) ghb.edge(src.id, load.id);
        // fr: load -> every store co-after its source.
        for (int sid : sl) {
          if (co_pos[static_cast<std::size_t>(sid)] >
              co_pos[static_cast<std::size_t>(src.id)]) {
            sc_graph.edge(load.id, sid);
            uniproc.edge(load.id, sid);
            if (tso) ghb.edge(load.id, sid);
          }
        }
      } else {
        // Reads the initial value 0: fr to every store on the location.
        for (int sid : sl) {
          sc_graph.edge(load.id, sid);
          uniproc.edge(load.id, sid);
          if (tso) ghb.edge(load.id, sid);
        }
      }
    }

    // co edges (successive pairs suffice for cycle detection together
    // with the explicit fr edges above).
    for (int l = 0; l < test.num_locs; ++l) {
      const auto& sl = stores_of_loc[static_cast<std::size_t>(l)];
      const auto& perm = co_perm[static_cast<std::size_t>(l)];
      for (std::size_t k = 0; k + 1 < perm.size(); ++k) {
        const int a = sl[static_cast<std::size_t>(perm[k])];
        const int b = sl[static_cast<std::size_t>(perm[k + 1])];
        sc_graph.edge(a, b);
        uniproc.edge(a, b);
        if (tso) ghb.edge(a, b);
      }
    }

    // Axioms.
    bool consistent;
    if (tso) {
      consistent = uniproc.acyclic() && ghb.acyclic();
    } else {
      consistent = sc_graph.acyclic();
    }
    if (!consistent) return;
    ++result.states_visited;

    // Final memory: co-last store per location (or 0).
    FinalState fs;
    fs.regs = regs;
    fs.mem.assign(static_cast<std::size_t>(test.num_locs), 0);
    for (int l = 0; l < test.num_locs; ++l) {
      const auto& sl = stores_of_loc[static_cast<std::size_t>(l)];
      const auto& perm = co_perm[static_cast<std::size_t>(l)];
      if (!perm.empty()) {
        fs.mem[static_cast<std::size_t>(l)] =
            events[static_cast<std::size_t>(
                       sl[static_cast<std::size_t>(perm.back())])]
                .value;
      }
    }
    if (test.condition(fs)) result.condition_reachable = true;
  };

  // Nested enumeration: permutations (per location) x rf choices.
  auto enumerate_perms = [&](auto&& self, std::size_t loc) -> void {
    if (loc == co_perm.size()) {
      check_candidate();
      return;
    }
    auto& perm = co_perm[loc];
    std::sort(perm.begin(), perm.end());
    do {
      self(self, loc + 1);
    } while (std::next_permutation(perm.begin(), perm.end()));
  };
  auto enumerate_rf = [&](auto&& self, std::size_t li) -> void {
    if (li == loads.size()) {
      enumerate_perms(enumerate_perms, 0);
      return;
    }
    const Event& load = events[static_cast<std::size_t>(loads[li])];
    const auto& sl = stores_of_loc[static_cast<std::size_t>(load.loc)];
    for (int c = -1; c < static_cast<int>(sl.size()); ++c) {
      rf_choice[li] = c;
      self(self, li + 1);
    }
  };
  enumerate_rf(enumerate_rf, 0);
  return result;
}

}  // namespace harmony::memmodel
