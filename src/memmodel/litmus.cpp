// The classic litmus-test library (see litmus.hpp).
#include "memmodel/litmus.hpp"

namespace harmony::memmodel {

namespace {
/// reg(t, i): value observed by op i of thread t.
std::int64_t reg(const FinalState& s, std::size_t t, std::size_t i) {
  return s.regs[t][i];
}
}  // namespace

LitmusTest store_buffering() {
  LitmusTest t;
  t.name = "SB";
  t.num_locs = 2;
  t.threads = {
      {Op::store(0, 1), Op::load(1)},
      {Op::store(1, 1), Op::load(0)},
  };
  // r0 == 0 && r1 == 0: both threads miss each other's store.
  t.condition = [](const FinalState& s) {
    return reg(s, 0, 1) == 0 && reg(s, 1, 1) == 0;
  };
  t.allowed_sc = false;
  t.allowed_tso = true;  // the signature TSO relaxation
  t.allowed_pso = true;
  return t;
}

LitmusTest store_buffering_fenced() {
  LitmusTest t;
  t.name = "SB+mfences";
  t.num_locs = 2;
  t.threads = {
      {Op::store(0, 1), Op::fence(), Op::load(1)},
      {Op::store(1, 1), Op::fence(), Op::load(0)},
  };
  t.condition = [](const FinalState& s) {
    return reg(s, 0, 2) == 0 && reg(s, 1, 2) == 0;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;  // fences restore SC here
  t.allowed_pso = false;
  return t;
}

LitmusTest message_passing() {
  LitmusTest t;
  t.name = "MP";
  t.num_locs = 2;  // x0 = data, x1 = flag
  t.threads = {
      {Op::store(0, 42), Op::store(1, 1)},
      {Op::load(1), Op::load(0)},
  };
  // flag observed set but data not yet visible.
  t.condition = [](const FinalState& s) {
    return reg(s, 1, 0) == 1 && reg(s, 1, 1) == 0;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;  // TSO keeps W->W and R->R order
  t.allowed_pso = true;  // PSO reorders the data/flag writes
  return t;
}

LitmusTest load_buffering() {
  LitmusTest t;
  t.name = "LB";
  t.num_locs = 2;
  t.threads = {
      {Op::load(0), Op::store(1, 1)},
      {Op::load(1), Op::store(0, 1)},
  };
  // Both loads observe the other thread's (po-later) store.
  t.condition = [](const FinalState& s) {
    return reg(s, 0, 0) == 1 && reg(s, 1, 0) == 1;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;  // TSO does not reorder R->W
  t.allowed_pso = false;  // nor does PSO
  return t;
}

LitmusTest iriw() {
  LitmusTest t;
  t.name = "IRIW";
  t.num_locs = 2;
  t.threads = {
      {Op::store(0, 1)},
      {Op::store(1, 1)},
      {Op::load(0), Op::load(1)},
      {Op::load(1), Op::load(0)},
  };
  // The two readers observe the writes in opposite orders.
  t.condition = [](const FinalState& s) {
    return reg(s, 2, 0) == 1 && reg(s, 2, 1) == 0 &&
           reg(s, 3, 0) == 1 && reg(s, 3, 1) == 0;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;  // TSO is multi-copy atomic
  t.allowed_pso = false;  // PSO too (single shared memory)
  return t;
}

LitmusTest two_plus_two_w() {
  LitmusTest t;
  t.name = "2+2W";
  t.num_locs = 2;
  t.threads = {
      {Op::store(0, 1), Op::store(1, 2)},
      {Op::store(1, 1), Op::store(0, 2)},
  };
  // Both locations end with the po-first values: requires a co cycle.
  t.condition = [](const FinalState& s) {
    return s.mem[0] == 1 && s.mem[1] == 1;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;
  t.allowed_pso = true;  // per-location buffers drain in either order
  return t;
}

LitmusTest corr() {
  LitmusTest t;
  t.name = "CoRR";
  t.num_locs = 1;
  t.threads = {
      {Op::store(0, 1)},
      {Op::load(0), Op::load(0)},
  };
  // New value then old value: violates per-location coherence.
  t.condition = [](const FinalState& s) {
    return reg(s, 1, 0) == 1 && reg(s, 1, 1) == 0;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;
  t.allowed_pso = false;  // per-location coherence survives
  return t;
}

LitmusTest store_buffering_rmw() {
  LitmusTest t;
  t.name = "SB+rmws";
  t.num_locs = 2;
  t.threads = {
      {Op::rmw(0, 1), Op::load(1)},
      {Op::rmw(1, 1), Op::load(0)},
  };
  t.condition = [](const FinalState& s) {
    return reg(s, 0, 1) == 0 && reg(s, 1, 1) == 0;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;  // RMW drains the store buffer (locked op)
  t.allowed_pso = false;
  return t;
}

LitmusTest r_test() {
  LitmusTest t;
  t.name = "R";
  t.num_locs = 2;  // x0 = x, x1 = y
  t.threads = {
      {Op::store(0, 1), Op::store(1, 1)},
      {Op::store(1, 2), Op::load(0)},
  };
  // y finishes at T1's value while T1's read missed T0's x.
  t.condition = [](const FinalState& s) {
    return s.mem[1] == 2 && reg(s, 1, 1) == 0;
  };
  t.allowed_sc = false;
  t.allowed_tso = true;  // T1's W->R reorders
  t.allowed_pso = true;
  return t;
}

LitmusTest s_test() {
  LitmusTest t;
  t.name = "S";
  t.num_locs = 2;  // x0 = x, x1 = y
  t.threads = {
      {Op::store(0, 2), Op::store(1, 1)},
      {Op::load(1), Op::store(0, 1)},
  };
  // T1 saw y=1 (so T0's stores "happened"), wrote x=1, yet x ends at 2.
  t.condition = [](const FinalState& s) {
    return reg(s, 1, 0) == 1 && s.mem[0] == 2;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;  // needs T0's W->W to reorder
  t.allowed_pso = true;   // per-location buffers deliver y=1 before x=2
  return t;
}

LitmusTest cowr() {
  LitmusTest t;
  t.name = "CoWR";
  t.num_locs = 1;
  t.threads = {
      {Op::store(0, 1), Op::load(0)},
      {Op::store(0, 2)},
  };
  // T0 reads the external 2 past its own buffered/committed 1, yet 1
  // wins the coherence order — forbidden by per-location coherence.
  t.condition = [](const FinalState& s) {
    return reg(s, 0, 1) == 2 && s.mem[0] == 1;
  };
  t.allowed_sc = false;
  t.allowed_tso = false;
  t.allowed_pso = false;
  return t;
}

std::vector<LitmusTest> classic_suite() {
  return {store_buffering(),  store_buffering_fenced(), message_passing(),
          load_buffering(),   iriw(),                   two_plus_two_w(),
          corr(),             store_buffering_rmw(),    r_test(),
          s_test(),           cowr()};
}

}  // namespace harmony::memmodel
