// Litmus-test programs and memory-model checkers (Martonosi, paper §4).
//
// "I will advocate for a shift towards formal specifications that support
//  automated full-stack verification for correctness and security."
//
// This module is that idea in miniature, applied to the hardware memory
// consistency interface (Martonosi's own research area): small multi-
// threaded programs ("litmus tests") are checked against two formal
// specifications of the architecture —
//
//   * an *operational* model (SC: all interleavings; TSO: per-thread FIFO
//     store buffers with explicit flush transitions), explored
//     exhaustively with memoized state-space search; and
//   * an *axiomatic* model (candidate executions = reads-from + coherence
//     choices, validated by acyclicity axioms: SC = acyclic(po u com);
//     x86-TSO = uniproc + acyclic(ppo u fence u rfe u co u fr) with
//     ppo = po minus store->load).
//
// The two specifications are independent implementations; the test suite
// requires them to agree on every litmus test, and bench E10 reports the
// classic allowed/forbidden table plus enumeration throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace harmony::memmodel {

enum class OpType {
  kLoad,   ///< reg := mem[loc]
  kStore,  ///< mem[loc] := value
  kFence,  ///< full fence (MFENCE): drains the store buffer
  kRmw,    ///< atomic reg := fetch_add(mem[loc], value)
};

struct Op {
  OpType type;
  int loc = 0;    ///< location index (kLoad/kStore/kRmw)
  int value = 0;  ///< stored value (kStore) / addend (kRmw)

  [[nodiscard]] static Op load(int loc) { return {OpType::kLoad, loc, 0}; }
  [[nodiscard]] static Op store(int loc, int value) {
    return {OpType::kStore, loc, value};
  }
  [[nodiscard]] static Op fence() { return {OpType::kFence, 0, 0}; }
  [[nodiscard]] static Op rmw(int loc, int addend) {
    return {OpType::kRmw, loc, addend};
  }
};

/// Register file of one finished execution: regs[t][i] is the value
/// observed by the i-th op of thread t (loads and RMWs; 0 otherwise).
struct FinalState {
  std::vector<std::vector<std::int64_t>> regs;
  std::vector<std::int64_t> mem;
};

using Condition = std::function<bool(const FinalState&)>;

struct LitmusTest {
  std::string name;
  int num_locs = 0;
  std::vector<std::vector<Op>> threads;
  /// The interesting final condition (e.g. "both loads saw 0").
  Condition condition;
  /// Ground truth for the classic tests (used by the test suite).
  bool allowed_sc = false;
  bool allowed_tso = false;
  bool allowed_pso = false;
  [[nodiscard]] bool uses_rmw() const;
};

struct CheckResult {
  bool condition_reachable = false;
  std::uint64_t executions_explored = 0;  ///< final states / candidates
  std::uint64_t states_visited = 0;       ///< operational: distinct states
  /// A witness interleaving when reachable (operational checkers):
  /// sequence of "T<t>:<op>" / "flush T<t>" labels.
  std::optional<std::vector<std::string>> witness;
};

/// kSc  — sequential consistency (atomic interleavings).
/// kTso — x86-TSO: per-thread FIFO store buffer (W->R reordering).
/// kPso — SPARC-PSO-style: per-(thread, location) store buffers
///        (W->R and W->W reordering; R->R / R->W stay ordered).
enum class Model { kSc, kTso, kPso };

/// Exhaustive operational exploration.
[[nodiscard]] CheckResult check_operational(const LitmusTest& test,
                                            Model model);

/// Axiomatic candidate-execution enumeration.  RMW is not supported here
/// (throws InvalidArgument); the classic tests below avoid it except
/// where noted.
[[nodiscard]] CheckResult check_axiomatic(const LitmusTest& test,
                                          Model model);

// --- fence synthesis ---------------------------------------------------
//
// Martonosi's "automated verification" turned into repair: given a test
// whose condition is a *violation* (must never be observable), find the
// minimal sets of fences that forbid it under the given model.

struct FencePlacement {
  int thread = 0;
  int before_op = 0;  ///< fence inserted before this op index
  friend bool operator==(const FencePlacement&,
                         const FencePlacement&) = default;
};

struct FenceSynthesisResult {
  bool already_forbidden = false;
  /// All minimal (by cardinality) fence sets that forbid the condition;
  /// empty if no fence set works (e.g. single-thread coherence bugs).
  std::vector<std::vector<FencePlacement>> minimal_sets;
  std::uint64_t candidates_tried = 0;
};

/// Exhaustively tries fence insertions (smallest sets first) and returns
/// every minimal set under which `check_operational(test', model)` makes
/// the condition unreachable.
[[nodiscard]] FenceSynthesisResult synthesize_fences(const LitmusTest& test,
                                                     Model model);

// --- the classic litmus library --------------------------------------

/// SB: Dekker store buffering — allowed on TSO, forbidden on SC.
[[nodiscard]] LitmusTest store_buffering();
/// MP: message passing — forbidden on SC and TSO.
[[nodiscard]] LitmusTest message_passing();
/// LB: load buffering — forbidden on SC and TSO.
[[nodiscard]] LitmusTest load_buffering();
/// SB+mfences: store buffering with fences — forbidden on TSO too.
[[nodiscard]] LitmusTest store_buffering_fenced();
/// IRIW: independent reads of independent writes — forbidden on SC & TSO.
[[nodiscard]] LitmusTest iriw();
/// 2+2W: write serialization — forbidden on SC and TSO.
[[nodiscard]] LitmusTest two_plus_two_w();
/// CoRR: read-read coherence on one location — forbidden everywhere.
[[nodiscard]] LitmusTest corr();
/// SB with RMWs instead of plain stores — forbidden on TSO (RMW drains
/// the buffer); operational checkers only.
[[nodiscard]] LitmusTest store_buffering_rmw();
/// R: write-serialization vs stale read — forbidden on SC, allowed on
/// TSO and PSO (the reader's W->R pair reorders).
[[nodiscard]] LitmusTest r_test();
/// S: the PSO discriminator — forbidden on SC and TSO, allowed on PSO
/// (needs W->W reordering, which TSO forbids).
[[nodiscard]] LitmusTest s_test();
/// CoWR: a read po-after a same-location write cannot see a value the
/// write is co-after — forbidden on all three models (coherence).
[[nodiscard]] LitmusTest cowr();

/// All of the above, for table-driven tests and bench E10.
[[nodiscard]] std::vector<LitmusTest> classic_suite();

}  // namespace harmony::memmodel
