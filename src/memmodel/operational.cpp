// Operational SC / x86-TSO / PSO model exploration and fence synthesis
// (see litmus.hpp).
#include <algorithm>
#include <deque>
#include <string>
#include <unordered_set>

#include "memmodel/litmus.hpp"

namespace harmony::memmodel {

bool LitmusTest::uses_rmw() const {
  for (const auto& th : threads) {
    for (const Op& op : th) {
      if (op.type == OpType::kRmw) return true;
    }
  }
  return false;
}

namespace {

struct MachineState {
  std::vector<int> pc;
  std::vector<std::int64_t> mem;
  std::vector<std::vector<std::int64_t>> regs;
  // TSO store buffers: FIFO of (loc, value) per thread.  Empty under SC.
  std::vector<std::deque<std::pair<int, std::int64_t>>> buffers;

  [[nodiscard]] std::string key() const {
    std::string k;
    k.reserve(64);
    auto put = [&k](std::int64_t v) {
      k.append(reinterpret_cast<const char*>(&v), sizeof v);
    };
    for (int p : pc) put(p);
    for (std::int64_t m : mem) put(m);
    for (const auto& r : regs) {
      for (std::int64_t v : r) put(v);
    }
    for (const auto& b : buffers) {
      put(static_cast<std::int64_t>(b.size()));
      for (const auto& [loc, val] : b) {
        put(loc);
        put(val);
      }
    }
    return k;
  }
};

class Explorer {
 public:
  Explorer(const LitmusTest& test, Model model)
      : test_(test), model_(model) {
    HARMONY_REQUIRE(test.condition != nullptr,
                    "check_operational: test has no condition");
  }

  CheckResult run() {
    MachineState init;
    const auto nt = test_.threads.size();
    init.pc.assign(nt, 0);
    init.mem.assign(static_cast<std::size_t>(test_.num_locs), 0);
    init.regs.resize(nt);
    for (std::size_t t = 0; t < nt; ++t) {
      init.regs[t].assign(test_.threads[t].size(), 0);
    }
    init.buffers.resize(nt);
    dfs(init);
    return result_;
  }

 private:
  [[nodiscard]] bool is_final(const MachineState& s) const {
    for (std::size_t t = 0; t < s.pc.size(); ++t) {
      if (s.pc[t] < static_cast<int>(test_.threads[t].size())) return false;
      if (!s.buffers[t].empty()) return false;
    }
    return true;
  }

  void dfs(const MachineState& s) {
    const std::string k = s.key();
    if (!visited_.insert(k).second) return;
    ++result_.states_visited;

    if (is_final(s)) {
      ++result_.executions_explored;
      if (!result_.condition_reachable &&
          test_.condition(FinalState{s.regs, s.mem})) {
        result_.condition_reachable = true;
        result_.witness = path_;
      }
      return;
    }

    for (std::size_t t = 0; t < s.pc.size(); ++t) {
      // Instruction step.
      if (s.pc[t] < static_cast<int>(test_.threads[t].size())) {
        const Op& op = test_.threads[t][static_cast<std::size_t>(s.pc[t])];
        if (enabled(s, t, op)) {
          MachineState next = s;
          const std::string label = step(next, t, op);
          path_.push_back(label);
          dfs(next);
          path_.pop_back();
        }
      }
      // Buffer flush steps.
      if (model_ == Model::kTso && !s.buffers[t].empty()) {
        // TSO: one FIFO per thread — only the oldest entry may drain.
        MachineState next = s;
        const auto [loc, val] = next.buffers[t].front();
        next.buffers[t].pop_front();
        next.mem[static_cast<std::size_t>(loc)] = val;
        path_.push_back("flush T" + std::to_string(t));
        dfs(next);
        path_.pop_back();
      } else if (model_ == Model::kPso && !s.buffers[t].empty()) {
        // PSO: FIFO per (thread, location) — the oldest entry of *each*
        // location may drain, so writes to different locations reorder.
        std::vector<char> seen_loc(
            static_cast<std::size_t>(test_.num_locs), 0);
        for (std::size_t e = 0; e < s.buffers[t].size(); ++e) {
          const int loc = s.buffers[t][e].first;
          if (seen_loc[static_cast<std::size_t>(loc)]) {
            continue;  // not the oldest for its location
          }
          seen_loc[static_cast<std::size_t>(loc)] = 1;
          MachineState next = s;
          const auto [l, val] = next.buffers[t][e];
          next.buffers[t].erase(next.buffers[t].begin() +
                                static_cast<std::ptrdiff_t>(e));
          next.mem[static_cast<std::size_t>(l)] = val;
          path_.push_back("flush T" + std::to_string(t) + " x" +
                          std::to_string(l));
          dfs(next);
          path_.pop_back();
        }
      }
    }
  }

  [[nodiscard]] bool enabled(const MachineState& s, std::size_t t,
                             const Op& op) const {
    if (model_ == Model::kSc) return true;
    // TSO: fences and RMWs require an empty store buffer.
    if (op.type == OpType::kFence || op.type == OpType::kRmw) {
      return s.buffers[t].empty();
    }
    return true;
  }

  /// Applies op for thread t; returns a trace label.
  std::string step(MachineState& s, std::size_t t, const Op& op) const {
    const auto i = static_cast<std::size_t>(s.pc[t]);
    ++s.pc[t];
    const std::string tn = "T" + std::to_string(t) + ":";
    switch (op.type) {
      case OpType::kLoad: {
        std::int64_t v = 0;
        bool forwarded = false;
        if (model_ != Model::kSc) {
          // Store-to-load forwarding from own buffer (newest first).
          const auto& buf = s.buffers[t];
          for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
            if (it->first == op.loc) {
              v = it->second;
              forwarded = true;
              break;
            }
          }
        }
        if (!forwarded) v = s.mem[static_cast<std::size_t>(op.loc)];
        s.regs[t][i] = v;
        return tn + "r=x" + std::to_string(op.loc) + "(" +
               std::to_string(v) + ")";
      }
      case OpType::kStore:
        if (model_ != Model::kSc) {
          s.buffers[t].emplace_back(op.loc, op.value);
        } else {
          s.mem[static_cast<std::size_t>(op.loc)] = op.value;
        }
        return tn + "x" + std::to_string(op.loc) + "=" +
               std::to_string(op.value);
      case OpType::kFence:
        return tn + "mfence";
      case OpType::kRmw: {
        auto& cell = s.mem[static_cast<std::size_t>(op.loc)];
        s.regs[t][i] = cell;
        cell += op.value;
        return tn + "rmw x" + std::to_string(op.loc);
      }
    }
    HARMONY_ASSERT(false);
    return {};
  }

  const LitmusTest& test_;
  Model model_;
  std::unordered_set<std::string> visited_;
  std::vector<std::string> path_;
  CheckResult result_;
};

}  // namespace

CheckResult check_operational(const LitmusTest& test, Model model) {
  return Explorer(test, model).run();
}

namespace {

/// Applies a set of fence insertions.  Inserting shifts op indices, and
/// the test's Condition closure refers to *original* indices, so the
/// returned test wraps the condition with a register remap (fence rows
/// removed) before evaluating the original predicate.
LitmusTest with_fences(const LitmusTest& test,
                       std::vector<FencePlacement> fences) {
  LitmusTest out = test;
  std::sort(fences.begin(), fences.end(),
            [](const FencePlacement& a, const FencePlacement& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.before_op > b.before_op;  // stable indices
            });
  // new_index[t][i] = position of original op i after insertion.
  std::vector<std::vector<std::size_t>> new_index(test.threads.size());
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    new_index[t].resize(test.threads[t].size());
    for (std::size_t i = 0; i < test.threads[t].size(); ++i) {
      std::size_t shift = 0;
      for (const FencePlacement& f : fences) {
        if (f.thread == static_cast<int>(t) &&
            static_cast<std::size_t>(f.before_op) <= i) {
          ++shift;
        }
      }
      new_index[t][i] = i + shift;
    }
  }
  for (const FencePlacement& f : fences) {
    auto& ops = out.threads[static_cast<std::size_t>(f.thread)];
    ops.insert(ops.begin() + f.before_op, Op::fence());
  }
  Condition original = test.condition;
  out.condition = [original, new_index](const FinalState& fs) {
    FinalState remapped;
    remapped.mem = fs.mem;
    remapped.regs.resize(new_index.size());
    for (std::size_t t = 0; t < new_index.size(); ++t) {
      remapped.regs[t].resize(new_index[t].size());
      for (std::size_t i = 0; i < new_index[t].size(); ++i) {
        remapped.regs[t][i] = fs.regs[t][new_index[t][i]];
      }
    }
    return original(remapped);
  };
  out.name = test.name + "+synthesized-fences";
  return out;
}

}  // namespace

FenceSynthesisResult synthesize_fences(const LitmusTest& test,
                                       Model model) {
  FenceSynthesisResult result;
  if (!check_operational(test, model).condition_reachable) {
    result.already_forbidden = true;
    return result;
  }

  // Candidate insertion points: between consecutive ops of each thread.
  std::vector<FencePlacement> points;
  for (std::size_t t = 0; t < test.threads.size(); ++t) {
    for (std::size_t i = 1; i < test.threads[t].size(); ++i) {
      points.push_back(FencePlacement{static_cast<int>(t),
                                      static_cast<int>(i)});
    }
  }

  // Breadth-first over subset cardinality: all minimal sets share the
  // first cardinality at which any subset forbids the condition.
  const std::size_t n = points.size();
  for (std::size_t k = 1; k <= n; ++k) {
    // k-combinations in lexicographic order.
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    bool more = k <= n;
    while (more) {
      std::vector<FencePlacement> chosen;
      chosen.reserve(k);
      for (std::size_t i : idx) chosen.push_back(points[i]);
      ++result.candidates_tried;
      if (!check_operational(with_fences(test, chosen), model)
               .condition_reachable) {
        result.minimal_sets.push_back(std::move(chosen));
      }
      // Advance the combination.
      more = false;
      for (std::size_t i = k; i-- > 0;) {
        if (idx[i] + (k - i) < n) {
          ++idx[i];
          for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
          more = true;
          break;
        }
      }
    }
    if (!result.minimal_sets.empty()) break;
  }
  return result;
}

}  // namespace harmony::memmodel
