#include "noc/mesh.hpp"

#include <algorithm>
#include <cmath>

namespace harmony::noc {

Time TechnologyModel::op_delay(std::size_t bits) const {
  HARMONY_REQUIRE(bits > 0, "op_delay: zero-width op");
  // log-depth adder, normalized to 200 ps at 32 bits.
  const double scale = std::log2(static_cast<double>(bits) + 1.0) /
                       std::log2(33.0);
  return add_delay * scale;
}

GridGeometry::GridGeometry(int cols, int rows, Length pitch,
                           TechnologyModel tech, Topology topology)
    : cols_(cols),
      rows_(rows),
      pitch_(pitch),
      tech_(tech),
      topology_(topology) {
  HARMONY_REQUIRE(cols >= 1 && rows >= 1, "GridGeometry: empty grid");
  HARMONY_REQUIRE(pitch.millimetres() > 0.0,
                  "GridGeometry: pitch must be positive");
}

int GridGeometry::axis_delta(int from, int to, int extent) const {
  // Signed step count along one axis: positive = increasing coordinate.
  int fwd = to - from;
  if (topology_ == Topology::kMesh || extent <= 2) return fwd;
  // Torus: pick the shorter way around (ties go the increasing way).
  int alt = fwd > 0 ? fwd - extent : fwd + extent;
  if (fwd == 0) return 0;
  // On a tie (|delta| == extent/2) both ways are equally short; `fwd`
  // alone would go whichever way the operand order happened to point,
  // making hops(a,b) routes disagree with hops(b,a) routes.
  if (std::abs(fwd) == std::abs(alt)) return std::max(fwd, alt);
  return std::abs(fwd) < std::abs(alt) ? fwd : alt;
}

int GridGeometry::hops(Coord a, Coord b) const {
  HARMONY_ASSERT(contains(a) && contains(b));
  return std::abs(axis_delta(a.x, b.x, cols_)) +
         std::abs(axis_delta(a.y, b.y, rows_));
}

Coord GridGeometry::next_hop(Coord at, Coord dst) const {
  HARMONY_ASSERT(contains(at) && contains(dst) && !(at == dst));
  // Dimension order: resolve x first.
  if (at.x != dst.x) {
    const int d = axis_delta(at.x, dst.x, cols_);
    const int step = d > 0 ? 1 : -1;
    return Coord{(at.x + step + cols_) % cols_, at.y};
  }
  const int d = axis_delta(at.y, dst.y, rows_);
  const int step = d > 0 ? 1 : -1;
  return Coord{at.x, (at.y + step + rows_) % rows_};
}

int GridGeometry::diameter_hops() const {
  if (topology_ == Topology::kMesh) {
    return (cols_ - 1) + (rows_ - 1);
  }
  return cols_ / 2 + rows_ / 2;
}

int GridGeometry::bisection_links() const {
  // Directed E/W links crossing the x = cols/2 cut, both directions.
  const int per_row = topology_ == Topology::kTorus && cols_ > 2 ? 4 : 2;
  return rows_ * per_row;
}

Length GridGeometry::distance(Coord a, Coord b) const {
  return pitch_ * static_cast<double>(hops(a, b));
}

Energy GridGeometry::transfer_energy(std::size_t bits, Coord a,
                                     Coord b) const {
  return tech_.move_energy(bits, distance(a, b));
}

Time GridGeometry::transfer_latency(Coord a, Coord b) const {
  return tech_.move_delay(distance(a, b));
}

Length GridGeometry::distance_to_memory(Coord c) const {
  HARMONY_ASSERT(contains(c));
  // Memory controllers along the west edge: distance to x = -1 column.
  return pitch_ * static_cast<double>(c.x + 1);
}

Energy GridGeometry::dram_access_energy(std::size_t bits, Coord c) const {
  return tech_.move_energy(bits, distance_to_memory(c)) +
         tech_.offchip_energy(bits);
}

Time GridGeometry::dram_access_latency(std::size_t bits, Coord c) const {
  (void)bits;
  return tech_.move_delay(distance_to_memory(c)) + tech_.offchip_latency;
}

namespace {

/// Decodes which directed link a one-step move along a single axis
/// uses.  Plain adjacency is tested first: on a 2-extent torus the +1
/// and -1 neighbours coincide (and the router treats extent <= 2 as
/// mesh-like), so the non-wrap reading is the correct one there.  What
/// remains are the wrap steps off either edge.
MeshNetwork::Dir step_dir(int from, int to, int extent, MeshNetwork::Dir inc,
                          MeshNetwork::Dir dec) {
  if (to == from + 1) return inc;
  if (to == from - 1) return dec;
  return to == 0 && from == extent - 1 ? inc : dec;
}

}  // namespace

MeshNetwork::MeshNetwork(GridGeometry geom, double link_bits_per_ps)
    : geom_(geom),
      link_bw_(link_bits_per_ps),
      busy_until_(static_cast<std::size_t>(geom.num_nodes()) * 4,
                  Time::zero()),
      link_bits_(static_cast<std::size_t>(geom.num_nodes()) * 4, 0) {
  HARMONY_REQUIRE(link_bits_per_ps > 0.0,
                  "MeshNetwork: bandwidth must be positive");
}

MeshNetwork::Delivery MeshNetwork::send(Coord src, Coord dst,
                                        std::size_t bits, Time when) {
  HARMONY_REQUIRE(geom_.contains(src) && geom_.contains(dst),
                  "MeshNetwork::send: coordinate off grid");
  ++messages_;
  Delivery d;
  d.arrival = when;
  if (src == dst || bits == 0) return d;

  const Time serialization =
      Time::picoseconds(static_cast<double>(bits) / link_bw_);
  const Time hop_wire = geom_.tech().move_delay(geom_.pitch());

  Coord at = src;
  Time t = when;
  // Dimension-ordered routing via the geometry's next_hop (wrap-aware on
  // a torus).  Store-and-forward: the whole message serializes onto each
  // link after the link frees up.
  while (!(at == dst)) {
    const Coord next = geom_.next_hop(at, dst);
    // Decode the link from the axis that actually changed (next_hop
    // moves along exactly one axis per step).  The earlier modular
    // comparisons were vacuously true for east on one-column grids
    // (charging y-hops to the east link) and true for both east and
    // west on two-column ones (west traffic contending on east).
    const Dir dir = next.x != at.x
                        ? step_dir(at.x, next.x, geom_.cols(), kEast, kWest)
                        : step_dir(at.y, next.y, geom_.rows(), kNorth, kSouth);
    const std::size_t link = link_id(at, dir);
    const Time start = std::max(t, busy_until_[link]);
    const Time done = start + serialization + hop_wire;
    busy_until_[link] = done;
    link_bits_[link] += bits;
    bit_hops_ += bits;
    t = done;
    at = next;
    ++d.hops;
  }
  d.arrival = t;
  d.energy = geom_.tech().move_energy(
      bits, geom_.pitch() * static_cast<double>(d.hops));
  total_energy_ += d.energy;
  return d;
}

Time MeshNetwork::drain_time() const {
  Time t = Time::zero();
  for (Time b : busy_until_) t = std::max(t, b);
  return t;
}

std::uint64_t MeshNetwork::max_link_bits() const {
  std::uint64_t m = 0;
  for (std::uint64_t b : link_bits_) m = std::max(m, b);
  return m;
}

}  // namespace harmony::noc
