// 2-D mesh interconnect model.
//
// The F&M grid machine (src/fm) discretizes location "onto a grid of two
// or more dimensions" (paper §3).  This module supplies:
//
//   * GridGeometry — coordinates, XY (dimension-ordered) routing distance,
//     per-hop energy/latency from the TechnologyModel;
//   * MeshNetwork  — an event-driven store-and-forward simulator with
//     per-link serialization and contention (busy-until per directed
//     link), used where queueing matters (E14) and to audit the analytic
//     transfer costs used by the F&M evaluator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "noc/tech.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace harmony::noc {

/// A processing-element coordinate on the grid.
struct Coord {
  int x = 0;
  int y = 0;
  friend bool operator==(Coord, Coord) = default;
};

enum class Topology {
  kMesh,   ///< links between adjacent PEs only
  kTorus,  ///< plus wrap-around links (folded-torus wiring assumed, so
           ///< a wrap hop costs the same pitch as a neighbour hop)
};

class GridGeometry {
 public:
  /// `pitch` is the physical distance between adjacent grid points.
  GridGeometry(int cols, int rows, Length pitch, TechnologyModel tech = {},
               Topology topology = Topology::kMesh);

  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int num_nodes() const { return cols_ * rows_; }
  [[nodiscard]] Length pitch() const { return pitch_; }
  [[nodiscard]] const TechnologyModel& tech() const { return tech_; }
  [[nodiscard]] Topology topology() const { return topology_; }

  [[nodiscard]] bool contains(Coord c) const {
    return c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_;
  }
  [[nodiscard]] std::size_t index(Coord c) const {
    HARMONY_ASSERT(contains(c));
    return static_cast<std::size_t>(c.y) * cols_ + c.x;
  }
  [[nodiscard]] Coord coord(std::size_t index) const {
    HARMONY_ASSERT(index < static_cast<std::size_t>(num_nodes()));
    return Coord{static_cast<int>(index % cols_),
                 static_cast<int>(index / cols_)};
  }

  /// Manhattan hop count of the dimension-ordered route (wrap-aware on
  /// a torus).
  [[nodiscard]] int hops(Coord a, Coord b) const;
  /// One step of the dimension-ordered (X then Y) route from `at`
  /// toward `dst`; `at` must differ from `dst`.  The single source of
  /// truth for routing — the mesh simulator, the bandwidth checker, and
  /// the hardware lowering all walk routes through this.
  [[nodiscard]] Coord next_hop(Coord at, Coord dst) const;
  /// Physical length of the XY route.
  [[nodiscard]] Length distance(Coord a, Coord b) const;

  /// Zero-contention transfer cost of `bits` from `a` to `b`:
  /// energy = bits * wire_energy * distance; latency = wire delay over the
  /// distance (zero for a == b).
  [[nodiscard]] Energy transfer_energy(std::size_t bits, Coord a,
                                       Coord b) const;
  [[nodiscard]] Time transfer_latency(Coord a, Coord b) const;

  /// Longest dimension-ordered route on this grid, in hops.
  [[nodiscard]] int diameter_hops() const;
  /// Directed links crossing the vertical bisection (a first-order
  /// global-bandwidth figure: torus wrap links double it).
  [[nodiscard]] int bisection_links() const;

  /// Distance from `c` to the nearest die-edge memory controller
  /// (controllers sit along x = -1 in this model).
  [[nodiscard]] Length distance_to_memory(Coord c) const;
  /// Energy of a DRAM access of `bits` issued from `c`: on-chip transport
  /// to the edge plus the off-chip penalty.
  [[nodiscard]] Energy dram_access_energy(std::size_t bits, Coord c) const;
  [[nodiscard]] Time dram_access_latency(std::size_t bits, Coord c) const;

 private:
  [[nodiscard]] int axis_delta(int from, int to, int extent) const;

  int cols_;
  int rows_;
  Length pitch_;
  TechnologyModel tech_;
  Topology topology_;
};

/// Event-driven mesh with per-link serialization and FIFO contention.
class MeshNetwork {
 public:
  /// `link_bits_per_ps`: link bandwidth.  Default 0.064 bits/ps = 64 Gb/s.
  explicit MeshNetwork(GridGeometry geom, double link_bits_per_ps = 0.064);

  /// Directed link direction out of a node (4 links per node).  Public
  /// so link-level accounting (link_bits below) is testable: direction
  /// decoding bugs show up as traffic attributed to the wrong link.
  enum Dir : int { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

  struct Delivery {
    Time arrival = Time::zero();
    Energy energy = Energy::zero();
    int hops = 0;
  };

  /// Injects a message of `bits` at `when`; returns its delivery record.
  /// Messages on the same link serialize in injection-call order
  /// (deterministic).  Store-and-forward per hop.
  Delivery send(Coord src, Coord dst, std::size_t bits, Time when);

  /// Aggregate statistics since construction.
  [[nodiscard]] Energy total_energy() const { return total_energy_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t total_bit_hops() const { return bit_hops_; }
  /// Largest busy-until over all links (network drain time).
  [[nodiscard]] Time drain_time() const;
  /// Maximum bits carried by any single directed link (hot-spot metric).
  [[nodiscard]] std::uint64_t max_link_bits() const;
  /// Bits carried so far by the directed link leaving `from` toward `d`.
  [[nodiscard]] std::uint64_t link_bits(Coord from, Dir d) const {
    return link_bits_[link_id(from, d)];
  }

  [[nodiscard]] const GridGeometry& geometry() const { return geom_; }

 private:
  // Directed link id: 4 per node (E,W,N,S).
  [[nodiscard]] std::size_t link_id(Coord from, Dir d) const {
    return geom_.index(from) * 4 + static_cast<std::size_t>(d);
  }

  GridGeometry geom_;
  double link_bw_;
  std::vector<Time> busy_until_;
  std::vector<std::uint64_t> link_bits_;
  Energy total_energy_ = Energy::zero();
  std::uint64_t messages_ = 0;
  std::uint64_t bit_hops_ = 0;
};

}  // namespace harmony::noc
