// Physical technology cost model (Dally, paper §3).
//
// The statement's argument rests on a handful of 5 nm constants:
//
//   * a 32-bit add costs ~0.5 fJ/bit and takes ~200 ps;
//   * on-chip communication costs ~80 fJ/bit-mm and 1 mm takes ~800 ps;
//   * therefore moving an add result 1 mm costs 160x the add, crossing an
//     800 mm^2 die ~4500x, and going off chip is another order of
//     magnitude (~50,000x an add);
//   * the instruction-delivery overhead of an out-of-order core is
//     ~10,000x the energy of the add it performs.
//
// TechnologyModel encodes those constants (overridable — they are inputs,
// not conclusions) and derives every energy/delay quantity the grid
// machine, the F&M cost evaluator, and bench E1/E12 need.  With the
// defaults, ratio_move_over_add(1 mm) == 160 exactly.
#pragma once

#include <cstddef>

#include "support/error.hpp"
#include "support/units.hpp"

namespace harmony::noc {

struct TechnologyModel {
  // --- primitive constants (5 nm defaults, straight from the paper) ---
  double add_energy_per_bit_fj = 0.5;   ///< ALU op energy, fJ/bit
  Time add_delay = Time::picoseconds(200.0);  ///< 32-bit add latency
  double wire_energy_per_bit_mm_fj = 80.0;    ///< on-chip wire, fJ/bit-mm
  Time wire_delay_per_mm = Time::picoseconds(800.0);
  double sram_cell_energy_per_bit_fj = 0.1;  ///< bit-cell R/W ("extremely
                                             ///< fast and efficient")
  Time sram_cell_delay = Time::picoseconds(100.0);
  /// Off-chip transport costs "an order of magnitude more" than crossing
  /// the die; applied on top of a full die traversal.
  double offchip_multiplier = 10.0;
  Time offchip_latency = Time::nanoseconds(20.0);  ///< DRAM round trip
  /// Energy overhead factor of delivering one instruction on a modern
  /// out-of-order core, relative to the arithmetic it performs.
  double instruction_overhead_factor = 10000.0;
  Area die = Area::mm2(800.0);  ///< the paper's "800 mm^2 GPU"

  // --- derived quantities ---

  /// Energy of a `bits`-wide ALU operation (add-class).
  [[nodiscard]] Energy op_energy(std::size_t bits) const {
    return Energy::femtojoules(add_energy_per_bit_fj *
                               static_cast<double>(bits));
  }

  /// Latency of a `bits`-wide ALU operation.  The paper quotes 200 ps for
  /// 32 bits; we scale logarithmically with width (carry-lookahead-ish),
  /// normalized so 32 bits matches the quoted figure.
  [[nodiscard]] Time op_delay(std::size_t bits) const;

  /// Energy to move `bits` over distance `d` on chip.
  [[nodiscard]] Energy move_energy(std::size_t bits, Length d) const {
    return Energy::femtojoules(wire_energy_per_bit_mm_fj *
                               static_cast<double>(bits) * d.millimetres());
  }

  /// Wire delay over distance `d` (repeatered, linear in d).
  [[nodiscard]] Time move_delay(Length d) const {
    return wire_delay_per_mm * d.millimetres();
  }

  /// Energy of an SRAM access of `bits` at wire distance `d` from the
  /// consumer: bit-cell cost plus transport ("all the cost in accessing
  /// memory is data movement").
  [[nodiscard]] Energy sram_access_energy(std::size_t bits, Length d) const {
    return Energy::femtojoules(sram_cell_energy_per_bit_fj *
                               static_cast<double>(bits)) +
           move_energy(bits, d);
  }

  /// Energy of one off-chip (DRAM) transfer of `bits`: full-die traversal
  /// times the off-chip multiplier.
  [[nodiscard]] Energy offchip_energy(std::size_t bits) const {
    return move_energy(bits, die.side()) * offchip_multiplier;
  }

  /// Energy of executing a `bits`-wide add *as a CPU instruction*,
  /// including fetch/rename/schedule/ROB overheads.
  [[nodiscard]] Energy cpu_instruction_energy(std::size_t bits) const {
    return op_energy(bits) * instruction_overhead_factor;
  }

  // --- the paper's headline ratios, as checkable functions ---

  /// move(d) / add, for `bits`-wide values; == 160 * d_mm at defaults.
  [[nodiscard]] double ratio_move_over_add(Length d,
                                           std::size_t bits = 32) const {
    return move_energy(bits, d) / op_energy(bits);
  }

  /// offchip / add; ~45,000 at defaults ("50,000x more expensive").
  [[nodiscard]] double ratio_offchip_over_add(std::size_t bits = 32) const {
    return offchip_energy(bits) / op_energy(bits);
  }

  /// The paper's published 5 nm numbers.
  [[nodiscard]] static TechnologyModel n5() { return TechnologyModel{}; }
};

}  // namespace harmony::noc
