#include "pram/pram.hpp"

#include <string>

namespace harmony::pram {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kErew:
      return "EREW";
    case Variant::kCrew:
      return "CREW";
    case Variant::kCrcwCommon:
      return "CRCW-common";
    case Variant::kCrcwArbitrary:
      return "CRCW-arbitrary";
    case Variant::kCrcwPriority:
      return "CRCW-priority";
  }
  return "?";
}

PramMachine::PramMachine(Variant variant, std::size_t num_procs,
                         std::size_t mem_words)
    : variant_(variant), num_procs_(num_procs), mem_(mem_words, 0) {
  HARMONY_REQUIRE(num_procs >= 1, "PramMachine: need >= 1 processor");
}

std::int64_t PramMachine::Ctx::read(std::size_t addr) {
  return machine_->do_read(proc_, addr);
}

void PramMachine::Ctx::write(std::size_t addr, std::int64_t value) {
  machine_->do_write(proc_, addr, value);
}

std::int64_t PramMachine::do_read(std::size_t proc, std::size_t addr) {
  HARMONY_REQUIRE(addr < mem_.size(), "PRAM read out of range");
  ++stats_.reads;
  if (variant_ == Variant::kErew) {
    auto [it, inserted] = read_owner_.try_emplace(addr, proc);
    if (!inserted && it->second != proc) {
      throw SimulationError(
          "EREW violation: processors " + std::to_string(it->second) +
          " and " + std::to_string(proc) + " concurrently read address " +
          std::to_string(addr) + " at step " + std::to_string(stats_.steps));
    }
  }
  return mem_[addr];
}

void PramMachine::do_write(std::size_t proc, std::size_t addr,
                           std::int64_t value) {
  HARMONY_REQUIRE(addr < mem_.size(), "PRAM write out of range");
  ++stats_.writes;
  auto it = pending_writes_.find(addr);
  if (it == pending_writes_.end()) {
    pending_writes_.emplace(addr, WriteRecord{proc, value});
    return;
  }
  if (it->second.proc == proc) {
    it->second.value = value;  // same processor overwrites its own write
    return;
  }
  switch (variant_) {
    case Variant::kErew:
    case Variant::kCrew:
      throw SimulationError(
          variant_ == Variant::kErew
              ? std::string("EREW violation: ")
              : std::string("CREW violation: ") +
                    "processors " + std::to_string(it->second.proc) +
                    " and " + std::to_string(proc) +
                    " concurrently write address " + std::to_string(addr) +
                    " at step " + std::to_string(stats_.steps));
    case Variant::kCrcwCommon:
      if (it->second.value != value) {
        throw SimulationError(
            "CRCW-common violation: conflicting values written to address " +
            std::to_string(addr) + " at step " +
            std::to_string(stats_.steps));
      }
      break;
    case Variant::kCrcwArbitrary:
    case Variant::kCrcwPriority:
      // Lowest processor id wins (deterministic).
      if (proc < it->second.proc) {
        it->second = WriteRecord{proc, value};
      }
      break;
  }
}

PramStats PramMachine::run(const std::function<void(Ctx&)>& step_fn,
                           std::int64_t max_steps) {
  HARMONY_REQUIRE(step_fn != nullptr, "PramMachine::run: null program");
  stats_ = PramStats{};
  std::vector<char> live(num_procs_, 1);
  std::size_t num_live = num_procs_;

  while (num_live > 0) {
    if (stats_.steps >= max_steps) {
      throw SimulationError("PramMachine::run: exceeded " +
                            std::to_string(max_steps) +
                            " steps without quiescence");
    }
    read_owner_.clear();
    pending_writes_.clear();
    for (std::size_t p = 0; p < num_procs_; ++p) {
      if (!live[p]) continue;
      Ctx ctx(*this, p, stats_.steps);
      step_fn(ctx);
      ++stats_.work;
      if (ctx.halted_) {
        live[p] = 0;
        --num_live;
      }
    }
    // Commit the write phase.
    for (const auto& [addr, rec] : pending_writes_) {
      mem_[addr] = rec.value;
    }
    ++stats_.steps;
  }
  return stats_;
}

}  // namespace harmony::pram
