// Step-synchronous PRAM simulator (Vishkin, paper §5).
//
// The PRAM is the statement's algorithm-friendly abstraction: P processors
// execute in lock-step against a flat shared memory, each step consisting
// of a read phase, a compute phase, and a write phase.  PramMachine
// enforces the access discipline of the selected variant:
//
//   EREW          — exclusive read, exclusive write (violations throw)
//   CREW          — concurrent read, exclusive write
//   CRCW-common   — concurrent writes must agree on the value
//   CRCW-arbitrary— one writer wins; resolved deterministically as the
//                   lowest processor id (a legal "arbitrary" choice)
//   CRCW-priority — lowest processor id wins by definition
//
// Reads during a step observe the memory as of the step start; writes
// commit at the step end.  The machine reports work (active
// processor-steps) and depth (steps) — the quantities Vishkin's
// work-efficiency arguments are stated in.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace harmony::pram {

enum class Variant {
  kErew,
  kCrew,
  kCrcwCommon,
  kCrcwArbitrary,
  kCrcwPriority,
};

[[nodiscard]] const char* variant_name(Variant v);

struct PramStats {
  std::int64_t steps = 0;   ///< depth: synchronous rounds executed
  std::int64_t work = 0;    ///< sum over rounds of active processors
  std::int64_t reads = 0;
  std::int64_t writes = 0;
};

class PramMachine {
 public:
  PramMachine(Variant variant, std::size_t num_procs,
              std::size_t mem_words);

  [[nodiscard]] Variant variant() const { return variant_; }
  [[nodiscard]] std::size_t num_procs() const { return num_procs_; }
  [[nodiscard]] std::size_t mem_size() const { return mem_.size(); }

  /// Host access for setup and readout (not counted, not checked).
  [[nodiscard]] std::int64_t& mem(std::size_t addr) {
    HARMONY_REQUIRE(addr < mem_.size(), "PramMachine::mem: out of range");
    return mem_[addr];
  }
  [[nodiscard]] std::int64_t mem(std::size_t addr) const {
    HARMONY_REQUIRE(addr < mem_.size(), "PramMachine::mem: out of range");
    return mem_[addr];
  }

  /// Per-processor view of one synchronous step.
  class Ctx {
   public:
    [[nodiscard]] std::size_t proc() const { return proc_; }
    [[nodiscard]] std::int64_t step() const { return step_; }
    /// Shared-memory read (sees the state at step start).
    [[nodiscard]] std::int64_t read(std::size_t addr);
    /// Shared-memory write (commits at step end).
    void write(std::size_t addr, std::int64_t value);
    /// This processor stops participating after the current step.
    void halt() { halted_ = true; }

   private:
    friend class PramMachine;
    Ctx(PramMachine& m, std::size_t proc, std::int64_t step)
        : machine_(&m), proc_(proc), step_(step) {}
    PramMachine* machine_;
    std::size_t proc_;
    std::int64_t step_;
    bool halted_ = false;
  };

  /// Runs `step_fn(ctx)` for every live processor per round until all
  /// processors have halted.  Throws SimulationError on an access-
  /// discipline violation or when `max_steps` rounds pass without
  /// quiescence.
  PramStats run(const std::function<void(Ctx&)>& step_fn,
                std::int64_t max_steps = std::int64_t{1} << 20);

 private:
  friend class Ctx;

  std::int64_t do_read(std::size_t proc, std::size_t addr);
  void do_write(std::size_t proc, std::size_t addr, std::int64_t value);

  Variant variant_;
  std::size_t num_procs_;
  std::vector<std::int64_t> mem_;

  // Per-step conflict state.
  struct WriteRecord {
    std::size_t proc;
    std::int64_t value;
  };
  std::unordered_map<std::size_t, std::size_t> read_owner_;
  std::unordered_map<std::size_t, WriteRecord> pending_writes_;
  PramStats stats_;
};

}  // namespace harmony::pram
