#include "pram/xmt.hpp"

#include <algorithm>
#include <string>

namespace harmony::pram {

XmtStats& XmtStats::operator+=(const XmtStats& o) {
  threads += o.threads;
  work += o.work;
  depth += o.depth;  // sequential composition of spawn blocks
  ps_ops += o.ps_ops;
  max_ps_contention = std::max(max_ps_contention, o.max_ps_contention);
  estimated_cycles += o.estimated_cycles;
  return *this;
}

XmtMachine::XmtMachine(std::size_t mem_words, XmtConfig cfg)
    : cfg_(cfg), mem_(mem_words, 0) {
  HARMONY_REQUIRE(cfg.num_tcus >= 1, "XmtMachine: need >= 1 TCU");
}

std::int64_t& XmtMachine::mem(std::size_t addr) {
  HARMONY_REQUIRE(addr < mem_.size(), "XmtMachine::mem: out of range");
  return mem_[addr];
}

std::int64_t XmtMachine::mem(std::size_t addr) const {
  HARMONY_REQUIRE(addr < mem_.size(), "XmtMachine::mem: out of range");
  return mem_[addr];
}

std::int64_t XmtMachine::Thread::read(std::size_t addr) {
  ++instructions_;
  HARMONY_REQUIRE(addr < machine_->mem_.size(), "XMT read out of range");
  return machine_->mem_[addr];
}

void XmtMachine::Thread::write(std::size_t addr, std::int64_t value) {
  ++instructions_;
  HARMONY_REQUIRE(addr < machine_->mem_.size(), "XMT write out of range");
  auto [it, inserted] = machine_->writer_of_.try_emplace(addr, id_);
  if (!inserted && it->second != id_) {
    throw SimulationError(
        "XMT race: threads " + std::to_string(it->second) + " and " +
        std::to_string(id_) + " both write address " + std::to_string(addr) +
        " within one spawn block");
  }
  machine_->mem_[addr] = value;
}

std::int64_t XmtMachine::Thread::ps(std::size_t base_addr,
                                    std::int64_t delta) {
  ++instructions_;
  HARMONY_REQUIRE(base_addr < machine_->mem_.size(),
                  "XMT ps out of range");
  ++machine_->ps_count_[base_addr];
  const std::int64_t old = machine_->mem_[base_addr];
  machine_->mem_[base_addr] += delta;
  return old;
}

XmtStats XmtMachine::spawn(std::int64_t n,
                           const std::function<void(Thread&)>& body) {
  HARMONY_REQUIRE(n >= 0, "XmtMachine::spawn: negative thread count");
  HARMONY_REQUIRE(body != nullptr, "XmtMachine::spawn: null body");
  writer_of_.clear();
  ps_count_.clear();

  XmtStats st;
  st.threads = n;
  for (std::int64_t id = 0; id < n; ++id) {
    Thread t(*this, id);
    current_thread_ = id;
    body(t);
    st.work += t.instructions_;
    st.depth = std::max(st.depth, t.instructions_);
  }
  current_thread_ = -1;

  for (const auto& [base, count] : ps_count_) {
    (void)base;
    st.ps_ops += count;
    st.max_ps_contention = std::max(st.max_ps_contention, count);
  }

  // Cost model (see header).  Threads are multiplexed over num_tcus.
  const auto p = static_cast<std::int64_t>(cfg_.num_tcus);
  const std::int64_t throughput = (st.work + p - 1) / p;
  std::int64_t cycles = cfg_.spawn_overhead_cycles +
                        std::max(throughput, st.depth);
  if (!cfg_.hardware_ps && st.max_ps_contention > 1) {
    // Software fetch-add serializes the hottest base register.
    cycles += st.max_ps_contention - 1;
  }
  st.estimated_cycles = cycles;
  return st;
}

}  // namespace harmony::pram
