// XMT-style spawn/join execution with a hardware prefix-sum primitive
// (Vishkin, paper §5).
//
// "Having invented the XMT architecture, which to a first approximation
//  is about reducing overheads of PRAM algorithms using hardware
//  primitives" — the flagship primitive being ps(R, B): an atomic
//  fetch-and-add that XMT implements in constant time even when many
//  threads hit the same base register simultaneously (the hardware
//  combines them in a prefix-sum tree).
//
// XmtMachine executes spawn blocks of virtual threads against a shared
// int64 memory and prices them under a configurable overhead model:
//
//   cycles(spawn) = spawn_overhead
//                 + ceil(work / P)                      (throughput term)
//                 + max_thread_instructions residue     (critical thread)
//                 + ps contention penalty               (see below)
//
// ps contention: with the hardware primitive, k simultaneous ps ops on a
// base cost 1 cycle each (combined in the interconnect).  A software
// fetch-add (CAS loop / lock) serializes: k ops on one base cost Θ(k)
// cycles of serial latency.  XmtMachine records per-base ps counts and
// charges  max_base(count) - 1  extra depth when hardware_ps is off.
// Bench E13 sweeps this contrast.
//
// Virtual threads are executed sequentially to completion (they are
// independent by the XMT programming discipline except through ps and
// writes to distinct locations; a write-write race on the same address
// is detected and throws).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace harmony::pram {

struct XmtConfig {
  std::size_t num_tcus = 64;  ///< thread control units (physical parallelism)
  bool hardware_ps = true;
  std::int64_t spawn_overhead_cycles = 24;  ///< spawn + join broadcast
};

struct XmtStats {
  std::int64_t threads = 0;
  std::int64_t work = 0;          ///< total instructions, all threads
  std::int64_t depth = 0;         ///< longest single thread
  std::int64_t ps_ops = 0;
  std::int64_t max_ps_contention = 0;  ///< hottest base register
  std::int64_t estimated_cycles = 0;   ///< under the overhead model

  XmtStats& operator+=(const XmtStats& o);
};

class XmtMachine {
 public:
  explicit XmtMachine(std::size_t mem_words, XmtConfig cfg = {});

  [[nodiscard]] const XmtConfig& config() const { return cfg_; }

  /// Host access (not counted).
  [[nodiscard]] std::int64_t& mem(std::size_t addr);
  [[nodiscard]] std::int64_t mem(std::size_t addr) const;

  class Thread {
   public:
    [[nodiscard]] std::int64_t id() const { return id_; }
    /// Shared read; 1 instruction.
    [[nodiscard]] std::int64_t read(std::size_t addr);
    /// Shared write; 1 instruction.  Two threads of one spawn writing the
    /// same address is a race and throws.
    void write(std::size_t addr, std::int64_t value);
    /// ps(delta, base): atomic fetch-add, returns the old value;
    /// 1 instruction (hardware) — contention priced at join.
    std::int64_t ps(std::size_t base_addr, std::int64_t delta);
    /// Charges `n` local compute instructions.
    void charge(std::int64_t n = 1) { instructions_ += n; }

   private:
    friend class XmtMachine;
    Thread(XmtMachine& m, std::int64_t id) : machine_(&m), id_(id) {}
    XmtMachine* machine_;
    std::int64_t id_;
    std::int64_t instructions_ = 0;
  };

  /// Runs `body` for virtual threads 0..n-1 and returns the cost record.
  XmtStats spawn(std::int64_t n, const std::function<void(Thread&)>& body);

 private:
  friend class Thread;
  XmtConfig cfg_;
  std::vector<std::int64_t> mem_;
  // Per-spawn bookkeeping.
  std::unordered_map<std::size_t, std::int64_t> writer_of_;
  std::unordered_map<std::size_t, std::int64_t> ps_count_;
  std::int64_t current_thread_ = -1;
};

}  // namespace harmony::pram
