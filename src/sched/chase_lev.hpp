// Chase–Lev work-stealing deque.
//
// Single-owner push/pop at the bottom, lock-free steal at the top.
// Reference: D. Chase & Y. Lev, "Dynamic circular work-stealing deque",
// SPAA 2005; memory-order discipline follows Lê, Pop, Cohen, Zappa
// Nardelli, "Correct and efficient work-stealing for weak memory models",
// PPoPP 2013.
//
// The deque stores raw pointers (jobs are owned by the forking stack
// frame, which outlives any reference in the deque — see scheduler.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/error.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based orderings below produce false data-race reports under TSan.
// When TSan is active we trade each fence for strictly stronger
// per-operation seq_cst orderings — slower, but precisely understood by
// the race detector.
#if defined(__SANITIZE_THREAD__)
#define HARMONY_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HARMONY_TSAN_ENABLED 1
#endif
#endif

namespace harmony::sched {

template <typename T>
class ChaseLevDeque {
 public:
  /// `capacity_log2`: initial ring capacity (grows automatically).
  explicit ChaseLevDeque(unsigned capacity_log2 = 10)
      : array_(new RingArray(capacity_log2)) {}

  ~ChaseLevDeque() {
    RingArray* a = array_.load(std::memory_order_relaxed);
    while (a != nullptr) {
      RingArray* prev = a->previous;
      delete a;
      a = prev;
    }
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push a job at the bottom.
  void push(T* job) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    RingArray* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity() - 1) {
      a = grow(a, b, t);
    }
    a->put(b, job);
#ifdef HARMONY_TSAN_ENABLED
    bottom_.store(b + 1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only: pop the most recently pushed job, or nullptr if empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    RingArray* a = array_.load(std::memory_order_relaxed);
#ifdef HARMONY_TSAN_ENABLED
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* job = a->get(b);
    if (t == b) {
      // Last element: race against concurrent steals.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        job = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return job;
  }

  /// Any thread: steal the oldest job, or nullptr (empty or lost race).
  T* steal() {
#ifdef HARMONY_TSAN_ENABLED
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t >= b) return nullptr;
    RingArray* a = array_.load(std::memory_order_consume);
    T* job = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return job;
  }

  /// Approximate size (owner's view).
  [[nodiscard]] std::int64_t size_approx() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

 private:
  // Growable circular buffer.  Old arrays are retired onto a free-list and
  // reclaimed with the deque (steals may still be reading them).
  class RingArray {
   public:
    explicit RingArray(unsigned log2)
        : log2_(log2), slots_(std::size_t{1} << log2) {}

    [[nodiscard]] std::int64_t capacity() const {
      return std::int64_t{1} << log2_;
    }
    void put(std::int64_t i, T* job) {
      slots_[static_cast<std::size_t>(i) & mask()].store(
          job, std::memory_order_relaxed);
    }
    T* get(std::int64_t i) const {
      return slots_[static_cast<std::size_t>(i) & mask()].load(
          std::memory_order_relaxed);
    }

    RingArray* previous = nullptr;  // retirement chain
    unsigned log2_;

   private:
    [[nodiscard]] std::size_t mask() const {
      return (std::size_t{1} << log2_) - 1;
    }
    std::vector<std::atomic<T*>> slots_;
  };

  RingArray* grow(RingArray* old, std::int64_t b, std::int64_t t) {
    auto* bigger = new RingArray(old->log2_ + 1);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    bigger->previous = old;
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<RingArray*> array_;
};

}  // namespace harmony::sched
