// Generic fork-join combinators over a "parallel context".
//
// Every parallel algorithm in src/algos is written once, against a Ctx
// concept with two members:
//
//     void work(double ops);                    // cost annotation
//     template <F, G> void fork2(F&& f, G&& g); // parallel composition
//
// Two contexts implement it:
//   * RealCtx      — executes on the work-stealing scheduler (work() is
//                    a no-op); used for wall-clock benchmarks.
//   * WorkSpanCtx  — executes serially while recording the series-parallel
//                    computation DAG; yields work W, span D, and a greedy
//                    P-processor schedule time (workspan.hpp).
//
// This is the paper's (§2) claim made executable: one simple model, one
// source program, costs that translate down to the machine.
#pragma once

#include <cstddef>
#include <utility>

#include "sched/scheduler.hpp"

namespace harmony::sched {

/// Executes on the default work-stealing scheduler.
struct RealCtx {
  static constexpr bool is_simulation = false;
  void work(double) {}
  template <typename F, typename G>
  void fork2(F&& f, G&& g) {
    Scheduler::fork2(std::forward<F>(f), std::forward<G>(g));
  }
};

/// Shadow-access annotations for the determinacy-race detector
/// (analyze/race.hpp).  A kernel declares "this strand reads/writes
/// base[index..index+count)"; under a context that implements
/// reader/writer (analyze::RaceCtx) the access feeds the SP-bags race
/// check, under every other context the call compiles away.
template <typename Ctx, typename T>
inline void reader(Ctx& ctx, const T* base, std::size_t index,
                   std::size_t count = 1) {
  if constexpr (requires { ctx.reader(base, index, count); }) {
    ctx.reader(base, index, count);
  }
}

template <typename Ctx, typename T>
inline void writer(Ctx& ctx, const T* base, std::size_t index,
                   std::size_t count = 1) {
  if constexpr (requires { ctx.writer(base, index, count); }) {
    ctx.writer(base, index, count);
  }
}

/// Contiguous even split of `total` items into `parts` pieces: piece
/// `idx` owns [first, second).  Piece sizes differ by at most one, every
/// piece is non-empty whenever total >= parts, and the pieces tile the
/// range in order — the static-partitioning primitive the parallel
/// search driver and lane kernels share (DESIGN.md §15).
struct PartRange {
  std::size_t lo;
  std::size_t hi;
};

[[nodiscard]] constexpr PartRange static_partition(std::size_t total,
                                                   std::size_t parts,
                                                   std::size_t idx) {
  if (parts == 0) return PartRange{0, 0};
  return PartRange{idx * total / parts, (idx + 1) * total / parts};
}

/// Runs the loop body over [lo, hi) with binary fork-join splitting;
/// ranges of at most `grain` iterations run serially.
template <typename Ctx, typename Body>
void parallel_for(Ctx& ctx, std::size_t lo, std::size_t hi, std::size_t grain,
                  Body&& body) {
  if (lo >= hi) return;
  if (grain == 0) grain = 1;
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  ctx.fork2([&] { parallel_for(ctx, lo, mid, grain, body); },
            [&] { parallel_for(ctx, mid, hi, grain, body); });
}

/// Tree reduction over [lo, hi): combine(map(lo), ..., map(hi-1)).
/// `combine` must be associative; the combination tree shape is
/// deterministic, so floating-point results are reproducible.
template <typename Ctx, typename T, typename Map, typename Combine>
T parallel_reduce(Ctx& ctx, std::size_t lo, std::size_t hi, std::size_t grain,
                  T identity, Map&& map, Combine&& combine) {
  if (lo >= hi) return identity;
  if (grain == 0) grain = 1;
  if (hi - lo <= grain) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  T left{};
  T right{};
  ctx.fork2(
      [&] {
        left = parallel_reduce(ctx, lo, mid, grain, identity, map, combine);
      },
      [&] {
        right = parallel_reduce(ctx, mid, hi, grain, identity, map, combine);
      });
  return combine(left, right);
}

}  // namespace harmony::sched
