#include "sched/scheduler.hpp"

#include <chrono>
#include <string>

#include "trace/trace.hpp"

namespace harmony::sched {

Scheduler::Worker*& Scheduler::current_worker_slot() {
  thread_local Worker* tls = nullptr;
  return tls;
}

Scheduler::Scheduler(unsigned num_workers) {
  HARMONY_REQUIRE(num_workers >= 1, "Scheduler: need at least one worker");
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->scheduler = this;
    w->index = i;
    w->rng = Rng(0x5eed0000 + i);
    workers_.push_back(std::move(w));
  }
  threads_.reserve(num_workers > 0 ? num_workers - 1 : 0);
  for (unsigned i = 1; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker past its predicate check but not
    // yet blocked holds sleep_mutex_, so this serializes the notify
    // after it actually waits.
    std::lock_guard<std::mutex> lk(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Scheduler::begin_session() {
  session_mutex_.lock();
  HARMONY_ASSERT_MSG(current_worker() == nullptr,
                     "Scheduler::run: nested run() is not supported");
  current_worker_slot() = workers_[0].get();
}

void Scheduler::end_session() {
  current_worker_slot() = nullptr;
  session_mutex_.unlock();
}

void Scheduler::on_job_pushed() {
  // seq_cst pairs with the fetch_add in worker_loop: either this load
  // sees the sleeper (and we notify under the mutex), or the sleeper's
  // increment came later and its wait predicate re-checks the deques —
  // both orders deliver the job; there is no interleaving that loses it.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

bool Scheduler::have_pending_work() const {
  for (const auto& w : workers_) {
    if (w->deque.size_approx() > 0) return true;
  }
  return false;
}

bool Scheduler::help(Worker& self) {
  // Own work first (depth-first execution preserves locality).
  if (Job* j = self.deque.pop()) {
    trace::Span span("sched", "run", 0, self.index);
    j->run();
    return true;
  }
  // Then steal from a uniformly random victim.
  const auto n = workers_.size();
  const std::size_t start = self.rng.next_below(n);
  for (std::size_t k = 0; k < n; ++k) {
    Worker& victim = *workers_[(start + k) % n];
    if (&victim == &self) continue;
    if (Job* j = victim.deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      trace::Span span("sched", "steal", 0, self.index, victim.index);
      j->run();
      return true;
    }
  }
  return false;
}

void Scheduler::worker_loop(unsigned index) {
  Worker& self = *workers_[index];
  current_worker_slot() = &self;
  trace::set_thread_name("sched-w" + std::to_string(index));
  unsigned failures = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (help(self)) {
      failures = 0;
      continue;
    }
    ++failures;
    if (failures < 64) {
      std::this_thread::yield();
    } else {
      // Nothing to do: park until a job is pushed or shutdown.  The
      // wait predicate re-checks deque emptiness *under sleep_mutex_*:
      // a push that raced our failed steal sweep is either seen here
      // (never block on a non-empty system) or happened after our
      // sleepers_ increment, in which case on_job_pushed() observes the
      // sleeper and notifies through the same mutex — the lost-wakeup
      // window between "sweep failed" and "blocked" is closed.  The
      // timeout is a belt-and-braces backstop only.
      trace::Span span("sched", "sleep", 0, self.index);
      std::unique_lock<std::mutex> lk(sleep_mutex_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv_.wait_for(lk, std::chrono::milliseconds(2), [this] {
        return shutdown_.load(std::memory_order_acquire) ||
               have_pending_work();
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      failures = 0;
    }
  }
  current_worker_slot() = nullptr;
}

Scheduler& default_scheduler() {
  static Scheduler instance(std::max(1u, std::thread::hardware_concurrency()));
  return instance;
}

}  // namespace harmony::sched
