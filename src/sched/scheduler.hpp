// Fork-join work-stealing scheduler (Blelloch, paper §2).
//
// The work-depth model the statement advocates maps to exactly two runtime
// primitives: fork2 (run two closures in parallel, join both) and the
// parallel_for / reduce combinators built on it (parallel_ops.hpp).
//
// Design: child-stealing.  fork2 pushes the second closure onto the calling
// worker's Chase–Lev deque and runs the first inline.  On return it pops:
// if the child is still at the bottom of the deque it runs inline (the
// common, allocation-free fast path); if a thief took it, the parent helps
// (steals other work) until the child completes.  Jobs live on the forking
// stack frame — no heap allocation per fork.
//
// Every fork site works without a scheduler too: if the calling thread is
// not a worker, fork2 degrades to serial execution, so algorithms written
// against this API run correctly in any context (Core Guidelines CP.1).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/chase_lev.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace harmony::sched {

/// Type-erased job: a stack-allocated closure plus completion flag.
struct Job {
  void (*invoke)(Job*) = nullptr;
  std::atomic<bool> done{false};

  void run() {
    invoke(this);
    done.store(true, std::memory_order_release);
  }
};

template <typename F>
struct ClosureJob : Job {
  explicit ClosureJob(F* f) : fn(f) {
    invoke = [](Job* self) { (*static_cast<ClosureJob*>(self)->fn)(); };
  }
  F* fn;
};

class Scheduler {
 public:
  /// Creates `num_workers` execution contexts.  Worker 0 is the thread
  /// that calls run(); workers 1..n-1 are spawned here.
  explicit Scheduler(unsigned num_workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Executes `root` with the calling thread acting as worker 0.
  /// Only one run() may be active at a time (checked).
  template <typename F>
  void run(F&& root) {
    begin_session();
    try {
      std::forward<F>(root)();
    } catch (...) {
      end_session();
      throw;
    }
    end_session();
  }

  /// Fork-join primitive.  Callable from inside run() (parallel) or from
  /// any other context (serial fallback).  `f` and `g` must not throw
  /// across the join when executed in parallel.
  template <typename F, typename G>
  static void fork2(F&& f, G&& g) {
    Worker* w = current_worker();
    if (w == nullptr) {
      f();
      g();
      return;
    }
    ClosureJob<std::remove_reference_t<G>> gj(&g);
    w->deque.push(&gj);
    w->scheduler->on_job_pushed();
    f();
    // After f() returns, every job pushed during f() has been consumed,
    // so the bottom of the deque is gj unless a thief took it (thieves
    // consume from the top, so gj is the *last* entry to be stolen).
    Job* popped = w->deque.pop();
    if (popped == &gj) {
      g();
      return;
    }
    HARMONY_ASSERT_MSG(popped == nullptr,
                       "fork2: deque discipline violated");
    // Stolen: mark g as complete only when the thief sets done; help
    // with other work meanwhile (greedy scheduling, no idle waiting).
    Worker* self = current_worker();
    while (!gj.done.load(std::memory_order_acquire)) {
      if (!self->scheduler->help(*self)) {
        std::this_thread::yield();
      }
    }
  }

  /// Total number of successful steals since construction (diagnostics).
  [[nodiscard]] std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// True if the calling thread is currently a scheduler worker.
  [[nodiscard]] static bool in_parallel_context() {
    return current_worker() != nullptr;
  }

 private:
  struct Worker {
    ChaseLevDeque<Job> deque;
    Scheduler* scheduler = nullptr;
    unsigned index = 0;
    Rng rng{0};
  };

  static Worker*& current_worker_slot();
  static Worker* current_worker() { return current_worker_slot(); }

  void begin_session();
  void end_session();
  void worker_loop(unsigned index);
  /// Attempts to execute one job (own deque, then random steals).
  /// Returns true if a job was executed.
  bool help(Worker& self);
  /// Wakes a parked worker if any are asleep.  Called by fork2 after
  /// every push: pairing the sleepers_ check with an (empty) critical
  /// section on sleep_mutex_ closes the lost-wakeup window against the
  /// deque-emptiness re-check in worker_loop's wait predicate.
  void on_job_pushed();
  /// True if any worker deque is (approximately) non-empty.
  [[nodiscard]] bool have_pending_work() const;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<unsigned> sleepers_{0};  // workers parked on sleep_cv_
  std::atomic<std::uint64_t> steals_{0};
  std::mutex session_mutex_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

/// Process-wide default scheduler, lazily created with
/// std::thread::hardware_concurrency() workers.
Scheduler& default_scheduler();

}  // namespace harmony::sched
