#include "sched/workspan.hpp"

#include <algorithm>
#include <queue>

namespace harmony::sched {

WorkSpanCtx::WorkSpanCtx(Options opts) : opts_(opts) {
  root_ = new_node(Node::Kind::kSeries);
  series_stack_.push_back(root_);
}

std::size_t WorkSpanCtx::new_node(Node::Kind k) {
  nodes_.push_back(Node{k, 0.0, {}});
  return nodes_.size() - 1;
}

void WorkSpanCtx::work(double ops) {
  HARMONY_REQUIRE(ops >= 0.0, "WorkSpanCtx::work: negative cost");
  if (ops == 0.0) return;
  if (observer_ != nullptr) observer_->on_work(ops);
  Node& series = nodes_[series_stack_.back()];
  // Merge into a preceding leaf: consecutive sequential work is one strand.
  if (!series.children.empty() &&
      nodes_[series.children.back()].kind == Node::Kind::kLeaf) {
    nodes_[series.children.back()].cost += ops;
    return;
  }
  const std::size_t leaf = new_node(Node::Kind::kLeaf);
  nodes_[leaf].cost = ops;
  nodes_[series_stack_.back()].children.push_back(leaf);
}

std::size_t WorkSpanCtx::begin_fork() {
  if (opts_.fork_cost > 0.0) work(opts_.fork_cost);
  ++fork_count_;
  const std::size_t par = new_node(Node::Kind::kPar);
  nodes_[series_stack_.back()].children.push_back(par);
  if (observer_ != nullptr) observer_->on_fork();
  return par;
}

void WorkSpanCtx::begin_branch(std::size_t par) {
  const int which = static_cast<int>(nodes_[par].children.size());
  const std::size_t branch = new_node(Node::Kind::kSeries);
  nodes_[par].children.push_back(branch);
  series_stack_.push_back(branch);
  if (observer_ != nullptr) observer_->on_branch_begin(which);
}

void WorkSpanCtx::end_branch(std::size_t par) {
  HARMONY_ASSERT(!series_stack_.empty());
  HARMONY_ASSERT(nodes_[par].kind == Node::Kind::kPar);
  series_stack_.pop_back();
  if (observer_ != nullptr) {
    observer_->on_branch_end(
        static_cast<int>(nodes_[par].children.size()) - 1);
  }
}

void WorkSpanCtx::end_fork(std::size_t par) {
  HARMONY_ASSERT(nodes_[par].children.size() == 2);
  if (observer_ != nullptr) observer_->on_join();
}

double WorkSpanCtx::node_work(std::size_t id) const {
  const Node& n = nodes_[id];
  if (n.kind == Node::Kind::kLeaf) return n.cost;
  double w = 0.0;
  for (std::size_t c : n.children) w += node_work(c);
  return w;
}

double WorkSpanCtx::node_span(std::size_t id) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case Node::Kind::kLeaf:
      return n.cost;
    case Node::Kind::kSeries: {
      double d = 0.0;
      for (std::size_t c : n.children) d += node_span(c);
      return d;
    }
    case Node::Kind::kPar: {
      double d = 0.0;
      for (std::size_t c : n.children) d = std::max(d, node_span(c));
      return d;
    }
  }
  return 0.0;
}

double WorkSpanCtx::total_work() const { return node_work(root_); }
double WorkSpanCtx::span() const { return node_span(root_); }

std::size_t WorkSpanCtx::leaf_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.kind == Node::Kind::kLeaf) ++n;
  }
  return n;
}

double WorkSpanCtx::parallelism() const {
  const double d = span();
  return d > 0.0 ? total_work() / d : 0.0;
}

namespace {

/// Strand-level DAG extracted from the SP tree for schedule simulation.
struct StrandDag {
  std::vector<double> dur;
  std::vector<std::vector<std::size_t>> succ;
  std::vector<int> indeg;

  std::size_t add(double d) {
    dur.push_back(d);
    succ.emplace_back();
    indeg.push_back(0);
    return dur.size() - 1;
  }
  void edge(std::size_t from, std::size_t to) {
    succ[from].push_back(to);
    ++indeg[to];
  }
};

}  // namespace

double WorkSpanCtx::greedy_time(unsigned p) const {
  HARMONY_REQUIRE(p >= 1, "greedy_time: need at least one processor");
  StrandDag dag;

  // Lower each SP-tree node to a (head, tail) pair of strand-DAG tasks.
  // Implemented iteratively-recursive via an explicit lambda to keep the
  // tree walk readable.
  struct HeadTail {
    std::size_t head, tail;
  };
  auto lower = [&](auto&& self, std::size_t id) -> HeadTail {
    const Node& n = nodes_[id];
    switch (n.kind) {
      case Node::Kind::kLeaf: {
        const std::size_t t = dag.add(n.cost);
        return {t, t};
      }
      case Node::Kind::kSeries: {
        if (n.children.empty()) {
          const std::size_t t = dag.add(0.0);
          return {t, t};
        }
        HeadTail first = self(self, n.children[0]);
        std::size_t tail = first.tail;
        for (std::size_t i = 1; i < n.children.size(); ++i) {
          HeadTail next = self(self, n.children[i]);
          dag.edge(tail, next.head);
          tail = next.tail;
        }
        return {first.head, tail};
      }
      case Node::Kind::kPar: {
        const std::size_t fork = dag.add(0.0);
        const std::size_t join = dag.add(0.0);
        for (std::size_t c : n.children) {
          HeadTail branch = self(self, c);
          dag.edge(fork, branch.head);
          dag.edge(branch.tail, join);
        }
        return {fork, join};
      }
    }
    HARMONY_ASSERT(false);
    return {0, 0};
  };
  const HeadTail root = lower(lower, root_);
  (void)root;

  // Greedy non-preemptive list scheduling.  Ready tasks are dispatched in
  // task-id (creation) order; no processor idles while a task is ready.
  const std::size_t n = dag.dur.size();
  // Min-heap of ready task ids (creation order).
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (dag.indeg[i] == 0) ready.push(i);
  }
  // Min-heap of (finish_time, task id) running events.
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  double now = 0.0;
  double makespan = 0.0;
  std::size_t completed = 0;
  while (completed < n) {
    while (!ready.empty() && running.size() < p) {
      const std::size_t t = ready.top();
      ready.pop();
      running.emplace(now + dag.dur[t], t);
    }
    HARMONY_ASSERT_MSG(!running.empty(),
                       "greedy_time: no runnable task — DAG has a cycle?");
    const auto [finish, task] = running.top();
    running.pop();
    now = finish;
    makespan = std::max(makespan, finish);
    ++completed;
    for (std::size_t s : dag.succ[task]) {
      if (--dag.indeg[s] == 0) ready.push(s);
    }
  }
  return makespan;
}

}  // namespace harmony::sched
