// Work-span (work-depth) cost analyzer (Blelloch, paper §2).
//
// WorkSpanCtx runs a fork-join algorithm *serially* while recording its
// series-parallel computation tree.  From the tree it reports:
//
//   * work  W  — total operations,
//   * span  D  — longest dependence chain,
//   * greedy_time(P) — the completion time of a greedy (no processor idles
//     while a task is ready) non-preemptive schedule on P processors.
//
// Brent's theorem guarantees  max(W/P, D) <= T_P <= W/P + D  for any
// greedy schedule; tests and bench E6 audit the simulator against both
// sides of that bound.
//
// Optional fork overheads model the constant cost a real runtime pays per
// fork (the "cost mapping down to the machine" the statement asks for).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace harmony::sched {

/// Instrumentation hooks: an observer registered on a WorkSpanCtx sees
/// the series-parallel structure exactly as it is recorded — fork2 fires
/// on_fork, then on_branch_begin/on_branch_end around each branch, then
/// on_join.  The determinacy-race detector (analyze/race.hpp) drives its
/// SP-bags bookkeeping from these callbacks.
class ForkJoinObserver {
 public:
  virtual ~ForkJoinObserver() = default;
  /// Sequential work charged on the current strand.
  virtual void on_work(double /*ops*/) {}
  /// A fork2 is about to open (before either branch runs).
  virtual void on_fork() {}
  /// Branch `which` (0 = left, 1 = right) starts executing.
  virtual void on_branch_begin(int /*which*/) {}
  /// Branch `which` finished executing.
  virtual void on_branch_end(int /*which*/) {}
  /// Both branches joined; execution continues on the parent strand.
  virtual void on_join() {}
};

class WorkSpanCtx {
 public:
  struct Options {
    /// Cost charged as a sequential strand before every fork2 — models the
    /// constant runtime overhead of a fork (contributes to both W and D,
    /// and appears in the greedy schedule as a real task).
    double fork_cost = 0.0;
  };

  WorkSpanCtx() : WorkSpanCtx(Options{}) {}
  explicit WorkSpanCtx(Options opts);

  static constexpr bool is_simulation = true;

  /// Charges `ops` units of sequential work on the current strand.
  void work(double ops);

  /// Records a parallel composition; executes both closures serially.
  template <typename F, typename G>
  void fork2(F&& f, G&& g) {
    const std::size_t par = begin_fork();
    begin_branch(par);
    std::forward<F>(f)();
    end_branch(par);
    begin_branch(par);
    std::forward<G>(g)();
    end_branch(par);
    end_fork(par);
  }

  /// Total work W (includes fork overheads).
  [[nodiscard]] double total_work() const;
  /// Span D — cost of the longest chain (includes fork overheads).
  [[nodiscard]] double span() const;
  /// Number of fork2 nodes recorded.
  [[nodiscard]] std::size_t fork_count() const { return fork_count_; }
  /// Number of strand leaves in the recorded tree.
  [[nodiscard]] std::size_t leaf_count() const;

  /// Simulated greedy schedule length on `p` processors.
  /// Deterministic: ready tasks are served in creation order.
  [[nodiscard]] double greedy_time(unsigned p) const;

  /// Parallelism W/D (the "maximum useful processor count").
  [[nodiscard]] double parallelism() const;

  /// Registers (or, with nullptr, detaches) the fork-join observer.  At
  /// most one observer; it must outlive every fork2/work call.
  void set_observer(ForkJoinObserver* obs) { observer_ = obs; }

 private:
  // Series-parallel tree.  SERIES children alternate leaves and PAR nodes;
  // consecutive sequential work is merged into one leaf strand.
  struct Node {
    enum class Kind { kLeaf, kSeries, kPar } kind;
    double cost = 0.0;                 // kLeaf only
    std::vector<std::size_t> children;  // kSeries / kPar (node indices)
  };

  std::size_t new_node(Node::Kind k);
  std::size_t begin_fork();
  void begin_branch(std::size_t par);
  void end_branch(std::size_t par);
  void end_fork(std::size_t par);

  double node_work(std::size_t id) const;
  double node_span(std::size_t id) const;

  Options opts_;
  ForkJoinObserver* observer_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<std::size_t> series_stack_;  // innermost active SERIES node
  std::size_t root_;
  std::size_t fork_count_ = 0;
};

}  // namespace harmony::sched
