#include "serve/cache.hpp"

#include <algorithm>

namespace harmony::serve {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  HARMONY_REQUIRE(capacity > 0, "ResultCache: capacity must be positive");
  shards = std::clamp<std::size_t>(shards, 1, capacity);
  // Distribute the budget exactly: base entries per shard, with the
  // remainder handed out one each to the leading shards, so the caps
  // sum to `capacity` (neither truncated nor over-provisioned).
  const std::size_t base = capacity / shards;
  const std::size_t extra = capacity % shards;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->cap = base + (s < extra ? 1 : 0);
    shards_.push_back(std::move(sh));
  }
}

std::shared_ptr<const Response> ResultCache::get(const CacheKey& key) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lk(sh.mu);
  const auto it = sh.index.find(key);
  if (it == sh.index.end()) {
    ++sh.misses;
    return nullptr;
  }
  ++sh.hits;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // bump to MRU
  return it->second->second;
}

void ResultCache::put(const CacheKey& key,
                      std::shared_ptr<const Response> value) {
  HARMONY_REQUIRE(value != nullptr, "ResultCache::put: null value");
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lk(sh.mu);
  if (const auto it = sh.index.find(key); it != sh.index.end()) {
    it->second->second = std::move(value);
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return;
  }
  if (sh.lru.size() >= sh.cap) {
    sh.index.erase(sh.lru.back().first);
    sh.lru.pop_back();
    ++sh.evictions;
  }
  sh.lru.emplace_front(key, std::move(value));
  sh.index.emplace(key, sh.lru.begin());
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    total.hits += sh->hits;
    total.misses += sh->misses;
    total.evictions += sh->evictions;
    total.entries += sh->lru.size();
  }
  return total;
}

void ResultCache::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->lru.clear();
    sh->index.clear();
  }
}

}  // namespace harmony::serve
