// Sharded LRU memoization cache for serving responses.
//
// Tuning and cost evaluation are pure queries (request.hpp), so the
// service memoizes them.  The cache is sharded by the high word of the
// 128-bit key: each shard is an independent lock + LRU list + index, so
// concurrent lookups on different shards never contend, and a scan-heavy
// tenant can evict at most its shards' share of the capacity.
//
// Values are shared_ptr<const Response> — hits hand back a reference to
// the immutable cached object (no copy of a potentially large
// SearchResult under the shard lock); the service copies only to stamp
// per-waiter latency.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/request.hpp"

namespace harmony::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
};

class ResultCache {
 public:
  /// `capacity` is the total entry budget, split across `shards` with
  /// the remainder distributed one entry each to the first
  /// `capacity % shards` shards — the shard caps always sum to exactly
  /// `capacity` (shard count is clamped so each holds at least one
  /// entry).
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  /// Hit: bumps the entry to most-recently-used and returns it.
  [[nodiscard]] std::shared_ptr<const Response> get(const CacheKey& key);

  /// Inserts or refreshes; evicts the shard's LRU entry when full.
  void put(const CacheKey& key, std::shared_ptr<const Response> value);

  /// Aggregated over shards (each counter internally consistent; the
  /// cross-shard sum is a point-in-time composite).
  [[nodiscard]] CacheStats stats() const;

  void clear();

  /// The total entry budget as requested at construction.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<CacheKey, std::shared_ptr<const Response>>> lru;
    std::unordered_map<CacheKey, decltype(lru)::iterator, CacheKeyHash>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// This shard's slice of the total budget.
    std::size_t cap = 0;
  };

  Shard& shard_for(const CacheKey& key) {
    return *shards_[key.hi % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_;
};

}  // namespace harmony::serve
