#include "serve/catalog.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"

namespace harmony::serve {
namespace {

/// Splits "a,b,c" / "AxB" style dimension lists.  Throws on anything
/// that is not a plain decimal integer — catalog names come off the
/// wire, so parsing must be as strict as the frame decoder.
std::vector<std::int64_t> parse_dims(const std::string& s, char sep,
                                     const std::string& name) {
  std::vector<std::int64_t> dims;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    const std::string tok =
        s.substr(pos, next == std::string::npos ? std::string::npos
                                                : next - pos);
    if (tok.empty() || tok.find_first_not_of("0123456789") !=
                           std::string::npos) {
      throw WireError("SpecCatalog: bad dimension '" + tok + "' in '" +
                      name + "'");
    }
    dims.push_back(std::stoll(tok));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return dims;
}

std::shared_ptr<const fm::FunctionSpec> build(const std::string& name) {
  const std::size_t colon = name.find(':');
  if (colon == std::string::npos || colon + 1 >= name.size()) {
    throw WireError("SpecCatalog: malformed spec name '" + name + "'");
  }
  const std::string family = name.substr(0, colon);
  const std::string rest = name.substr(colon + 1);
  if (family == "editdist") {
    const auto dims = parse_dims(rest, 'x', name);
    if (dims.size() != 2) {
      throw WireError("SpecCatalog: editdist wants NxM: '" + name + "'");
    }
    return std::make_shared<const fm::FunctionSpec>(
        algos::editdist_spec(dims[0], dims[1], algos::SwScores{}));
  }
  if (family == "stencil") {
    const auto dims = parse_dims(rest, ',', name);
    if (dims.size() != 2) {
      throw WireError("SpecCatalog: stencil wants N,STEPS: '" + name + "'");
    }
    return std::make_shared<const fm::FunctionSpec>(
        algos::stencil1d_spec(dims[0], dims[1]));
  }
  if (family == "conv") {
    const auto dims = parse_dims(rest, ',', name);
    if (dims.size() != 2) {
      throw WireError("SpecCatalog: conv wants N,K: '" + name + "'");
    }
    return std::make_shared<const fm::FunctionSpec>(
        algos::conv1d_spec(dims[0], dims[1]));
  }
  if (family == "matmul") {
    const auto dims = parse_dims(rest, ',', name);
    if (dims.size() != 1) {
      throw WireError("SpecCatalog: matmul wants N: '" + name + "'");
    }
    return std::make_shared<const fm::FunctionSpec>(
        algos::matmul_spec(dims[0]));
  }
  if (family == "irregular") {
    const auto dims = parse_dims(rest, ',', name);
    if (dims.size() != 3) {
      throw WireError("SpecCatalog: irregular wants N,FANIN,SEED: '" +
                      name + "'");
    }
    return std::make_shared<const fm::FunctionSpec>(algos::irregular_dag_spec(
        dims[0], static_cast<int>(dims[1]),
        static_cast<std::uint64_t>(dims[2])));
  }
  throw WireError("SpecCatalog: unknown spec family '" + family + "'");
}

}  // namespace

std::shared_ptr<const fm::FunctionSpec> SpecCatalog::spec(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = specs_.find(name);
    if (it != specs_.end()) return it->second;
  }
  // Build outside the lock (irregular DAGs can be sizable); last writer
  // wins on a race, and both builds are identical by determinism.
  std::shared_ptr<const fm::FunctionSpec> spec = build(name);
  std::lock_guard<std::mutex> lock(mu_);
  return specs_.emplace(name, std::move(spec)).first->second;
}

Request to_request(const WireRequest& wire, SpecCatalog& catalog) {
  Request req;
  req.kind = wire.kind;
  req.spec = catalog.spec(wire.spec);
  req.machine = fm::make_machine(static_cast<int>(wire.machine_cols),
                                 static_cast<int>(wire.machine_rows));
  req.machine.cycle = Time::picoseconds(wire.cycle_ps);
  req.machine.pe_capacity_values = wire.pe_capacity_values;
  req.machine.link_bits_per_cycle = wire.link_bits_per_cycle;
  req.machine.local_access_pitch_fraction = wire.local_access_pitch_fraction;
  req.fom = wire.fom;
  req.inputs = wire.inputs;
  req.map = wire.map;
  req.verify.check_storage = wire.check_storage;
  req.verify.check_bandwidth = wire.check_bandwidth;
  req.verify.max_messages = wire.max_messages;
  if (!wire.time_coeffs.empty()) req.search.space.time_coeffs = wire.time_coeffs;
  if (!wire.space_coeffs.empty()) {
    req.search.space.space_coeffs = wire.space_coeffs;
  }
  req.search.space.search_y = wire.search_y;
  req.search.fom = wire.fom;
  req.search.verify = req.verify;
  req.search.quick_sample = wire.quick_sample;
  req.search.makespan_slack = wire.makespan_slack;
  req.search.top_k = wire.top_k;
  req.strategy = fm::StrategyKind::kExhaustive;
  req.tune_workers = wire.tune_workers;
  req.deadline = std::chrono::nanoseconds(wire.deadline_ns);
  return req;
}

}  // namespace harmony::serve
