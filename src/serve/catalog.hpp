// Named spec families for the wire tier (DESIGN.md §17).
//
// A FunctionSpec cannot cross a process boundary — its dependence
// relation is a black-box std::function — so wire requests carry a
// *name* in the grammar harmony-lint already speaks, and each end
// rebuilds the spec locally:
//
//   editdist:NxM          Smith-Waterman H over N x M (default scores)
//   stencil:N,STEPS       1-D Jacobi heat stencil
//   conv:N,K              1-D convolution partial-sum recurrence
//   matmul:N              N x N x N matrix multiply
//   irregular:N,FANIN,SEED  hash-derived irregular DAG
//
// The spec builders are deterministic, so the router's rebuild and the
// shard's rebuild fingerprint identically: make_cache_key() over the
// two rebuilt Requests agrees bit for bit (pinned by
// tests/serve_wire_test.cpp), which is what lets a shard's result cache
// serve a key the router computed.
//
// SpecCatalog memoizes by name — a shard answering 10k requests for
// "editdist:24x24" builds the spec once.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fm/spec.hpp"
#include "serve/request.hpp"
#include "serve/wire.hpp"

namespace harmony::serve {

class SpecCatalog {
 public:
  /// The spec named by `name`; builds and memoizes on first use.
  /// Throws WireError for an unknown family or malformed dimensions.
  [[nodiscard]] std::shared_ptr<const fm::FunctionSpec> spec(
      const std::string& name);

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const fm::FunctionSpec>>
      specs_;
};

/// Rebuilds the full in-process Request a WireRequest describes: spec
/// from the catalog, machine from the scalar overrides, search options
/// from the knob fields (empty coefficient pools = SearchSpace
/// defaults).  The inverse direction is a field-by-field copy done by
/// clients; round-tripping through both preserves make_cache_key().
[[nodiscard]] Request to_request(const WireRequest& wire,
                                 SpecCatalog& catalog);

}  // namespace harmony::serve
