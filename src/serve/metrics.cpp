#include "serve/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "trace/trace.hpp"

namespace harmony::serve {

namespace {

/// Midpoint of histogram bucket `b` in microseconds.  Bucket 0 is
/// exactly 0 ns; bucket b >= 1 spans [2^(b-1), 2^b), midpoint
/// 1.5 * 2^(b-1).  See percentile_us doc for the resulting
/// [0.75x, 1.5x] single-observation bound.
double bucket_midpoint_us(std::size_t b) {
  if (b == 0) return 0.0;
  const double mid_ns =
      (std::ldexp(1.0, static_cast<int>(b) - 1) +
       std::ldexp(1.0, static_cast<int>(b))) /
      2.0;
  return mid_ns / 1000.0;
}

}  // namespace

void LatencyHistogram::record(std::chrono::nanoseconds latency) {
  const auto ns = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, latency.count()));
  const std::size_t bucket =
      std::min<std::size_t>(kNumBuckets - 1, std::bit_width(ns));  // 0 ns -> 0
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::percentile_us(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::array<std::uint64_t, kNumBuckets> snap{};
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
    total += snap[b];
  }
  if (total == 0) return 0.0;
  // Rank of the q-th order statistic, 1-based, ceil'd like
  // nearest-rank percentiles.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += snap[b];
    if (seen >= rank) return bucket_midpoint_us(b);
  }
  // Unreachable via the public API (rank <= total, so the loop always
  // hits), kept as defense in depth.  Must use the same midpoint
  // convention as the loop — the upper-edge value returned previously
  // broke the documented [0.75x, 1.5x] bound for top-bucket samples.
  return bucket_midpoint_us(kNumBuckets - 1);
}

std::vector<std::uint64_t> LatencyHistogram::counts() const {
  std::vector<std::uint64_t> out(kNumBuckets);
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
}

void LatencyHistogram::add_counts(const std::vector<std::uint64_t>& counts) {
  if (counts.size() > kNumBuckets) {
    throw std::invalid_argument(
        "LatencyHistogram::add_counts: foreign bucket convention (" +
        std::to_string(counts.size()) + " buckets, expected <= " +
        std::to_string(kNumBuckets) + ")");
  }
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] != 0) {
      buckets_[b].fetch_add(counts[b], std::memory_order_relaxed);
    }
  }
}

void Metrics::on_complete(std::chrono::nanoseconds latency,
                          bool deadline_cut, bool error) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (deadline_cut) {
    deadline_cut_.fetch_add(1, std::memory_order_relaxed);
  }
  if (error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_.record(latency);
}

void Metrics::on_batch(std::size_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
}

void Metrics::on_tune(unsigned workers_used, std::uint64_t steals) {
  tunes_.fetch_add(1, std::memory_order_relaxed);
  tune_workers_.fetch_add(workers_used, std::memory_order_relaxed);
  tune_steals_.fetch_add(steals, std::memory_order_relaxed);
}

void Metrics::on_diagnostics(
    const std::vector<analyze::Diagnostic>& diags) {
  for (const analyze::Diagnostic& d : diags) {
    const int idx = analyze::rule_index(d.rule_id);
    if (idx >= 0) {
      diag_by_rule_[static_cast<std::size_t>(idx)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot Metrics::snapshot(std::uint64_t queue_depth,
                                  const CacheStats& cache) const {
  MetricsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.deadline_cut = deadline_cut_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  const std::uint64_t batched =
      batched_requests_.load(std::memory_order_relaxed);
  s.mean_batch = s.batches ? static_cast<double>(batched) /
                                 static_cast<double>(s.batches)
                           : 0.0;
  s.queue_depth = queue_depth;
  s.cache = cache;
  s.p50_us = latency_.percentile_us(0.50);
  s.p95_us = latency_.percentile_us(0.95);
  s.p99_us = latency_.percentile_us(0.99);
  s.p999_us = latency_.percentile_us(0.999);
  s.latency_buckets = latency_.counts();
  s.tunes = tunes_.load(std::memory_order_relaxed);
  const std::uint64_t lanes = tune_workers_.load(std::memory_order_relaxed);
  s.mean_tune_workers = s.tunes ? static_cast<double>(lanes) /
                                      static_cast<double>(s.tunes)
                                : 0.0;
  s.tune_steals = tune_steals_.load(std::memory_order_relaxed);
  s.compile_hits = compile_hits_.load(std::memory_order_relaxed);
  s.compile_misses = compile_misses_.load(std::memory_order_relaxed);
  s.exec_checks = exec_checks_.load(std::memory_order_relaxed);
  s.exec_failures = exec_failures_.load(std::memory_order_relaxed);
  s.trace_dropped = trace::dropped_total();
  for (std::size_t i = 0; i < analyze::kRuleCount; ++i) {
    s.diagnostics_by_rule[i] = diag_by_rule_[i].load(std::memory_order_relaxed);
  }
  return s;
}

Table metrics_table(const MetricsSnapshot& snap) {
  Table t({"metric", "value"});
  t.title("harmony::serve metrics");
  const auto u = [](std::uint64_t v) {
    return static_cast<std::int64_t>(v);
  };
  t.add_row({"submitted", u(snap.submitted)});
  t.add_row({"completed", u(snap.completed)});
  t.add_row({"rejected", u(snap.rejected)});
  t.add_row({"errors", u(snap.errors)});
  t.add_row({"deadline_cut", u(snap.deadline_cut)});
  t.add_row({"batches", u(snap.batches)});
  t.add_row({"mean_batch", snap.mean_batch});
  t.add_row({"queue_depth", u(snap.queue_depth)});
  t.add_row({"cache_hits", u(snap.cache.hits)});
  t.add_row({"cache_misses", u(snap.cache.misses)});
  t.add_row({"cache_evictions", u(snap.cache.evictions)});
  t.add_row({"cache_entries", u(snap.cache.entries)});
  t.add_row({"cache_hit_rate", snap.cache.hit_rate()});
  t.add_row({"p50_us", snap.p50_us});
  t.add_row({"p95_us", snap.p95_us});
  t.add_row({"p99_us", snap.p99_us});
  t.add_row({"p999_us", snap.p999_us});
  t.add_row({"tunes", u(snap.tunes)});
  t.add_row({"mean_tune_workers", snap.mean_tune_workers});
  t.add_row({"tune_steals", u(snap.tune_steals)});
  t.add_row({"compile_hits", u(snap.compile_hits)});
  t.add_row({"compile_misses", u(snap.compile_misses)});
  t.add_row({"exec_checks", u(snap.exec_checks)});
  t.add_row({"exec_failures", u(snap.exec_failures)});
  t.add_row({"trace_dropped", u(snap.trace_dropped)});
  t.add_row({"diagnostics", u(snap.diagnostics_total())});
  for (std::size_t i = 0; i < analyze::kRuleCount; ++i) {
    if (snap.diagnostics_by_rule[i] == 0) continue;
    t.add_row({std::string("diag.") + analyze::kRules[i].id,
               u(snap.diagnostics_by_rule[i])});
  }
  return t;
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  metrics_table(snap).print_json(os);
  return os.str();
}

}  // namespace harmony::serve
