// Serving metrics: latency histograms, queue depth, cache hit rate.
//
// Counters are lock-free atomics updated on the request path; snapshots
// are assembled on demand and exported through support::Table, which
// renders the same data as an aligned ASCII table (human), CSV
// (HARMONY_CSV pipeline), or JSON (print_json — the machine-readable
// endpoint a fronting process would scrape).
//
// The histogram uses power-of-two nanosecond buckets: record() is one
// bit_width + one relaxed fetch_add, and a percentile read costs at most
// one bucket-width of relative error — the right trade for a hot path
// that must never serialize workers behind a stats lock.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "serve/cache.hpp"
#include "support/table.hpp"

namespace harmony::serve {

class LatencyHistogram {
 public:
  // Bucket b holds latencies with bit_width(ns) == b: [2^(b-1), 2^b).
  // 64 buckets cover every representable nanoseconds value.  Public:
  // the wire tier ships raw bucket counts so a router can rebuild
  // fleet-wide percentiles (merge below), and the bucket convention is
  // part of that contract.
  static constexpr std::size_t kNumBuckets = 64;

  void record(std::chrono::nanoseconds latency);

  [[nodiscard]] std::uint64_t count() const;

  /// q-th percentile (q in [0,1]) in microseconds, resolved to the
  /// *midpoint* of the containing power-of-two bucket; 0 when empty.
  /// Midpoint resolution bounds the error for any single observation to
  /// [0.75x, 1.5x] of the true latency — the upper bucket edge used
  /// previously overreported a lone sample by up to 2x (a 1000 ns
  /// observation read back as p50 = 1.024 us instead of 0.768 us).
  [[nodiscard]] double percentile_us(double q) const;

  /// Point-in-time copy of the raw bucket counts (index = bit_width).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;

  /// Adds `other`'s observations into this histogram.  Because buckets
  /// are exact counters (the quantization happened at record() time),
  /// merged percentiles equal those of one histogram fed the union of
  /// the samples — pinned against that oracle by tests/serve_test.cpp.
  /// This is what makes per-shard histograms aggregable: merging counts
  /// is lossless, whereas averaging per-shard *percentiles* is wrong
  /// for any non-uniform load split.
  void merge(const LatencyHistogram& other);

  /// merge() for counts that crossed the wire (WireMetrics).  Accepts
  /// up to kNumBuckets entries; throws std::invalid_argument beyond
  /// (a longer vector means a peer with a different bucket convention,
  /// which must not be silently folded).
  void add_counts(const std::vector<std::uint64_t>& counts);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// Point-in-time view of the service counters, ready for export.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< includes cache hits, excludes rejects
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadline_cut = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  std::uint64_t queue_depth = 0;
  CacheStats cache;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Tail percentile the saturation bench (E25) tracks; a knee shows
  /// here one sweep step before it reaches p99.
  double p999_us = 0.0;
  /// Raw latency-bucket counts (LatencyHistogram convention), exported
  /// so a fronting router can merge shard histograms losslessly.
  std::vector<std::uint64_t> latency_buckets;
  /// Oracle-run tunes (cache hits replay stored results and don't count).
  std::uint64_t tunes = 0;
  /// Mean fork-join lanes per tune (1.0 == every tune ran serial).
  double mean_tune_workers = 0.0;
  /// Scheduler steals observed across tunes — approximate when tunes
  /// overlap in one batch session, but a faithful saturation signal.
  std::uint64_t tune_steals = 0;
  /// CompiledSpec cache traffic: a hit means a tune reused another
  /// request's flat evaluation tables and skipped fm::compile_spec.
  std::uint64_t compile_hits = 0;
  std::uint64_t compile_misses = 0;
  /// Tune winners replayed through the execution checker
  /// (ServiceConfig::check_exec), and how many of those replays found
  /// an axiom violation.  A nonzero failure count means an oracle and
  /// the relational model disagree — a bug in one of them.
  std::uint64_t exec_checks = 0;
  std::uint64_t exec_failures = 0;
  /// Trace events lost to ring-buffer wrap in the current (or last)
  /// trace session (harmony::trace); 0 when tracing never ran.
  std::uint64_t trace_dropped = 0;
  /// Diagnostics emitted by oracle runs, indexed like analyze::kRules
  /// (cache hits replay stored diagnostics and are not re-counted).
  std::array<std::uint64_t, analyze::kRuleCount> diagnostics_by_rule{};

  [[nodiscard]] std::uint64_t diagnostics_total() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : diagnostics_by_rule) n += c;
    return n;
  }
};

class Metrics {
 public:
  void on_submit() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_reject() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_complete(std::chrono::nanoseconds latency, bool deadline_cut,
                   bool error);
  void on_batch(std::size_t size);
  /// Records one oracle tune: the fork-join lanes it actually spread
  /// over (SearchResult::workers_used) and the scheduler steals
  /// attributed to it.
  void on_tune(unsigned workers_used, std::uint64_t steals);
  /// Records one CompiledSpec cache probe.
  void on_compile(bool hit) {
    (hit ? compile_hits_ : compile_misses_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  /// Records one execution-checker replay of a tune winner.
  void on_exec_check(bool failed) {
    exec_checks_.fetch_add(1, std::memory_order_relaxed);
    if (failed) exec_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Tallies a response's diagnostics by rule ID (unknown IDs ignored).
  void on_diagnostics(const std::vector<analyze::Diagnostic>& diags);

  [[nodiscard]] MetricsSnapshot snapshot(std::uint64_t queue_depth,
                                         const CacheStats& cache) const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadline_cut_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> tunes_{0};
  std::atomic<std::uint64_t> tune_workers_{0};
  std::atomic<std::uint64_t> tune_steals_{0};
  std::atomic<std::uint64_t> compile_hits_{0};
  std::atomic<std::uint64_t> compile_misses_{0};
  std::atomic<std::uint64_t> exec_checks_{0};
  std::atomic<std::uint64_t> exec_failures_{0};
  std::array<std::atomic<std::uint64_t>, analyze::kRuleCount> diag_by_rule_{};
  LatencyHistogram latency_;
};

/// One row per metric ("metric", "value") — print() for humans,
/// print_json() for machines.
[[nodiscard]] Table metrics_table(const MetricsSnapshot& snap);

/// The table above rendered as a JSON string.
[[nodiscard]] std::string metrics_json(const MetricsSnapshot& snap);

}  // namespace harmony::serve
