// Bounded MPMC admission queue with backpressure.
//
// The serving layer's first line of defense: when producers outrun the
// worker pool, try_push fails fast (the service turns that into a
// kRejected response with a retry-after hint) instead of letting the
// queue — and every queued request's latency — grow without bound.
// Consumers drain in batches so the dispatcher can dedup identical
// requests and amortize scheduler-session overhead across a whole batch.
//
// Plain mutex + condition variable on purpose: admission is not the hot
// path (cache hits never reach the queue), and the lock makes the
// close/drain protocol — close() wakes every popper, pop_batch returns
// false only when closed *and* empty — easy to get right under TSan.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace harmony::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : cap_(capacity) {
    HARMONY_REQUIRE(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admit; false when full or closed (backpressure).
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || items_.size() >= cap_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking single pop; false when the queue is closed and drained.
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Blocks for at least one item, then takes up to `max_items`,
  /// lingering for stragglers to batch with.  The linger budget is a
  /// deadline fixed when the first item is taken — straggler rounds
  /// wait only the *remaining* time, so total added latency is bounded
  /// by `linger` no matter how many stragglers trickle in (a per-round
  /// `wait_for(linger)` would restart the budget on every arrival and
  /// let a slow trickle stretch the batch indefinitely).  Appends to
  /// `out`; returns false only when closed and drained.
  [[nodiscard]] bool pop_batch(std::vector<T>& out, std::size_t max_items,
                               std::chrono::microseconds linger) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    take(out, max_items);
    if (linger > std::chrono::microseconds::zero()) {
      const auto deadline = std::chrono::steady_clock::now() + linger;
      while (out.size() < max_items && !closed_ &&
             std::chrono::steady_clock::now() < deadline) {
        if (!not_empty_.wait_until(lk, deadline, [this] {
              return closed_ || !items_.empty();
            })) {
          break;  // deadline expired with nothing new
        }
        take(out, max_items);
      }
    }
    return true;
  }

  /// Wakes all blocked poppers; subsequent pushes fail.  Items already
  /// admitted stay poppable (graceful drain).
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }

 private:
  void take(std::vector<T>& out, std::size_t max_items) {
    while (!items_.empty() && out.size() < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t cap_;
  bool closed_ = false;
};

}  // namespace harmony::serve
