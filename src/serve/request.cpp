#include "serve/request.hpp"

#include <algorithm>
#include <bit>

namespace harmony::serve {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCostEval: return "cost_eval";
    case RequestKind::kLegality: return "legality";
    case RequestKind::kTune: return "tune";
    case RequestKind::kPipelineTune: return "pipeline_tune";
  }
  return "?";
}

namespace {

/// Two SplitMix64-finalized accumulators fed in lockstep with different
/// injection functions; order-sensitive, so field order is part of the
/// canonical form (never reorder mixes without bumping kKeySchema).
class Fingerprint {
 public:
  void mix(std::uint64_t v) {
    a_ = finalize(a_ ^ v);
    b_ = finalize(b_ + v + 0x9e3779b97f4a7c15ULL);
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v ? 1 : 2)); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    std::uint64_t word = 0;
    int n = 0;
    for (unsigned char ch : s) {
      word = (word << 8) | ch;
      if (++n == 8) {
        mix(word);
        word = 0;
        n = 0;
      }
    }
    if (n) mix(word);
  }

  [[nodiscard]] CacheKey key() const { return CacheKey{a_, b_}; }

 private:
  static std::uint64_t finalize(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t a_ = 0x243f6a8885a308d3ULL;  // pi, nothing up the sleeve
  std::uint64_t b_ = 0x13198a2e03707344ULL;
};

// Bump when the mix order or field set below changes, so stale
// serialized keys (if anyone persists them) can never alias.
constexpr std::uint64_t kKeySchema = 1;

void mix_point(Fingerprint& fp, const fm::Point& p) {
  fp.mix(p.i);
  fp.mix(p.j);
  fp.mix(p.k);
}

/// Deterministic sample of `n` points: the same stride walk the
/// autotuner's causality pre-check uses, plus the last point.
std::vector<fm::Point> sample_points(const fm::IndexDomain& dom,
                                     std::size_t n) {
  std::vector<fm::Point> pts;
  const std::int64_t size = dom.size();
  const std::int64_t stride = std::max<std::int64_t>(
      1, size / static_cast<std::int64_t>(std::max<std::size_t>(1, n)));
  for (std::int64_t lin = 0; lin < size; lin += stride) {
    pts.push_back(dom.delinearize(lin));
  }
  pts.push_back(dom.delinearize(size - 1));
  return pts;
}

void mix_spec(Fingerprint& fp, const fm::FunctionSpec& spec,
              std::size_t samples) {
  fp.mix(static_cast<std::uint64_t>(spec.num_tensors()));
  for (fm::TensorId t = 0; t < spec.num_tensors(); ++t) {
    fp.mix(spec.name(t));
    const fm::IndexDomain& dom = spec.domain(t);
    fp.mix(dom.rank());
    for (int d = 0; d < 3; ++d) fp.mix(dom.extent(d));
    fp.mix(spec.is_input(t));
    fp.mix(spec.is_output(t));
    fp.mix(static_cast<std::uint64_t>(spec.bits(t)));
    fp.mix(spec.cost(t).ops);
    fp.mix(static_cast<std::uint64_t>(spec.cost(t).bits));
    if (spec.is_input(t)) continue;
    // Sampled dependence edges: the dep function is a black box, so the
    // relation itself is what gets fingerprinted.
    for (const fm::Point& p : sample_points(dom, samples)) {
      mix_point(fp, p);
      const auto deps = spec.deps(t, p);
      fp.mix(static_cast<std::uint64_t>(deps.size()));
      for (const fm::ValueRef& d : deps) {
        fp.mix(static_cast<std::uint64_t>(d.tensor));
        mix_point(fp, d.point);
      }
    }
  }
}

void mix_machine(Fingerprint& fp, const fm::MachineConfig& m) {
  fp.mix(m.geom.cols());
  fp.mix(m.geom.rows());
  fp.mix(m.geom.pitch().millimetres());
  fp.mix(static_cast<std::uint64_t>(m.geom.topology()));
  const noc::TechnologyModel& t = m.geom.tech();
  fp.mix(t.add_energy_per_bit_fj);
  fp.mix(t.add_delay.picoseconds());
  fp.mix(t.wire_energy_per_bit_mm_fj);
  fp.mix(t.wire_delay_per_mm.picoseconds());
  fp.mix(t.sram_cell_energy_per_bit_fj);
  fp.mix(t.sram_cell_delay.picoseconds());
  fp.mix(t.offchip_multiplier);
  fp.mix(t.offchip_latency.picoseconds());
  fp.mix(t.instruction_overhead_factor);
  fp.mix(t.die.mm2());
  fp.mix(m.cycle.picoseconds());
  fp.mix(m.pe_capacity_values);
  fp.mix(m.link_bits_per_cycle);
  fp.mix(m.local_access_pitch_fraction);
}

void mix_affine(Fingerprint& fp, const fm::AffineMap& a) {
  fp.mix(a.ti); fp.mix(a.tj); fp.mix(a.tk); fp.mix(a.t0);
  fp.mix(a.xi); fp.mix(a.xj); fp.mix(a.xk); fp.mix(a.x0);
  fp.mix(a.yi); fp.mix(a.yj); fp.mix(a.yk); fp.mix(a.y0);
  fp.mix(a.cols); fp.mix(a.rows);
}

void mix_verify(Fingerprint& fp, const fm::VerifyOptions& v) {
  fp.mix(v.check_storage);
  fp.mix(v.check_bandwidth);
}

void mix_search(Fingerprint& fp, const fm::SearchOptions& s) {
  // Everything that shapes the candidate set and ranking; cancel and
  // resume_from deliberately excluded (they shape *coverage of one call*,
  // not the converged answer, and only exhausted results are cached).
  // The parallel-backend knobs (scheduler, num_workers, grain) and
  // Request::tune_workers are excluded for the same reason: the lane
  // merge is deterministic, so worker count never changes the answer.
  fp.mix(static_cast<std::uint64_t>(s.space.time_coeffs.size()));
  for (std::int64_t c : s.space.time_coeffs) fp.mix(c);
  fp.mix(static_cast<std::uint64_t>(s.space.space_coeffs.size()));
  for (std::int64_t c : s.space.space_coeffs) fp.mix(c);
  fp.mix(s.space.search_y);
  fp.mix(static_cast<std::uint64_t>(s.fom));
  mix_verify(fp, s.verify);
  fp.mix(static_cast<std::uint64_t>(s.quick_sample));
  fp.mix(s.makespan_slack);
  fp.mix(static_cast<std::uint64_t>(s.top_k));
  fp.mix(s.keep_all_legal);
}

void mix_strategy(Fingerprint& fp, const fm::StrategyOptions& s) {
  // Same exclusion policy as mix_search: everything that shapes the
  // converged answer (seeds, budgets, cooling schedule) is keyed;
  // cancel / scheduler / num_workers / compiled are service-owned
  // execution detail that cannot change the deterministic result.
  fp.mix(static_cast<std::uint64_t>(s.fom));
  mix_verify(fp, s.verify);
  fp.mix(s.seed);
  fp.mix(static_cast<std::uint64_t>(s.chains));
  fp.mix(static_cast<std::uint64_t>(s.iters_per_epoch));
  fp.mix(static_cast<std::uint64_t>(s.epochs));
  fp.mix(s.t0_fraction);
  fp.mix(s.cooling);
  fp.mix(static_cast<std::uint64_t>(s.stall_epochs));
  fp.mix(static_cast<std::uint64_t>(s.max_reheats));
  fp.mix(s.makespan_slack);
  fp.mix(static_cast<std::uint64_t>(s.beam_width));
  fp.mix(static_cast<std::uint64_t>(s.beam_moves));
}

/// Stage bindings are structural: producer edges by index, external
/// homes by (kind, pe).  Callers must have screened out distributed
/// externals (cacheable() does) — a closure has no canonical form.
void mix_pipeline(Fingerprint& fp, const fm::Pipeline& pipe,
                  std::size_t samples) {
  fp.mix(static_cast<std::uint64_t>(pipe.size()));
  for (std::size_t s = 0; s < pipe.size(); ++s) {
    const fm::PipelineStage& st = pipe.stage(s);
    fp.mix(st.name);
    mix_spec(fp, *st.spec, samples);
    fp.mix(static_cast<std::uint64_t>(st.inputs.size()));
    for (const fm::StageInput& b : st.inputs) {
      fp.mix(static_cast<std::uint64_t>(b.kind));
      if (b.kind == fm::StageInput::Kind::kProducer) {
        fp.mix(static_cast<std::uint64_t>(b.producer));
      } else {
        fp.mix(static_cast<std::uint64_t>(b.home.kind));
        fp.mix(b.home.pe.x);
        fp.mix(b.home.pe.y);
      }
    }
  }
}

}  // namespace

bool cacheable(const Request& req) {
  if (req.kind == RequestKind::kPipelineTune) {
    if (req.pipeline == nullptr) return false;
    for (std::size_t s = 0; s < req.pipeline->size(); ++s) {
      for (const fm::StageInput& b : req.pipeline->stage(s).inputs) {
        if (b.kind == fm::StageInput::Kind::kExternal &&
            b.home.kind == fm::InputHome::Kind::kDistributed) {
          return false;  // closure homes have no canonical fingerprint
        }
      }
    }
    return true;
  }
  return req.spec != nullptr;
}

CacheKey make_cache_key(const Request& req, std::size_t sample_points_n) {
  Fingerprint fp;
  fp.mix(kKeySchema);
  fp.mix(static_cast<std::uint64_t>(req.kind));
  if (req.kind == RequestKind::kPipelineTune) {
    HARMONY_REQUIRE(req.pipeline != nullptr, "make_cache_key: null pipeline");
    mix_pipeline(fp, *req.pipeline, sample_points_n);
    mix_machine(fp, req.machine);
    fp.mix(static_cast<std::uint64_t>(req.fom));
    fp.mix(req.pipeline_paired);
    fp.mix(static_cast<std::uint64_t>(req.pipeline_pair_candidates));
    fp.mix(static_cast<std::uint64_t>(req.strategy));
    if (req.strategy == fm::StrategyKind::kExhaustive) {
      mix_search(fp, req.search);
    } else {
      mix_strategy(fp, req.strategy_opts);
    }
    return fp.key();
  }
  HARMONY_REQUIRE(req.spec != nullptr, "make_cache_key: null spec");
  mix_spec(fp, *req.spec, sample_points_n);
  mix_machine(fp, req.machine);
  fp.mix(static_cast<std::uint64_t>(req.fom));
  fp.mix(static_cast<std::uint64_t>(req.inputs.size()));
  for (const InputPlacement& in : req.inputs) {
    fp.mix(static_cast<std::uint64_t>(in.kind));
    fp.mix(in.pe.x);
    fp.mix(in.pe.y);
  }
  switch (req.kind) {
    case RequestKind::kCostEval:
      mix_affine(fp, req.map);
      break;
    case RequestKind::kLegality:
      mix_affine(fp, req.map);
      mix_verify(fp, req.verify);
      break;
    case RequestKind::kTune:
      fp.mix(static_cast<std::uint64_t>(req.strategy));
      if (req.strategy == fm::StrategyKind::kExhaustive) {
        mix_search(fp, req.search);
      } else {
        mix_strategy(fp, req.strategy_opts);
      }
      break;
    case RequestKind::kPipelineTune:
      break;  // handled above
  }
  return fp.key();
}

CacheKey make_compile_key(const Request& req, std::size_t sample_points_n) {
  HARMONY_REQUIRE(req.spec != nullptr, "make_compile_key: null spec");
  Fingerprint fp;
  fp.mix(kKeySchema);
  // Domain-separation tag: result keys mix RequestKind (0..2) here, so a
  // compile key can never collide with any result key.
  fp.mix(std::uint64_t{0xc04111edULL});
  mix_spec(fp, *req.spec, sample_points_n);
  mix_machine(fp, req.machine);
  fp.mix(static_cast<std::uint64_t>(req.inputs.size()));
  for (const InputPlacement& in : req.inputs) {
    fp.mix(static_cast<std::uint64_t>(in.kind));
    fp.mix(in.pe.x);
    fp.mix(in.pe.y);
  }
  return fp.key();
}

CacheKey make_stage_compile_key(const Request& req, std::size_t stage,
                                std::uint64_t home_fingerprint,
                                std::size_t sample_points_n) {
  HARMONY_REQUIRE(req.pipeline != nullptr && stage < req.pipeline->size(),
                  "make_stage_compile_key: bad pipeline stage");
  Fingerprint fp;
  fp.mix(kKeySchema);
  // Domain-separation tag, distinct from make_compile_key's.
  fp.mix(std::uint64_t{0x51a6e5edULL});
  mix_spec(fp, *req.pipeline->stage(stage).spec, sample_points_n);
  mix_machine(fp, req.machine);
  // The resolved input homes, compressed by the tuner: externals
  // structurally, producer winners by their committed coefficients /
  // placement tables (fm/pipeline.cpp).
  fp.mix(home_fingerprint);
  return fp.key();
}

}  // namespace harmony::serve
