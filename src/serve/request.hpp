// harmony::serve request/response vocabulary and canonical cache keys.
//
// Dally's §3 framing makes (function, mapping) cost a *pure* query: the
// analytic evaluator prices a pair without executing it, and the answer
// depends only on the spec, the mapping, the machine, and the figure of
// merit.  Pure queries are memoizable, so the serving layer fronts the
// expensive oracles (fm/cost.hpp, fm/legality.hpp, fm/search.hpp) with a
// typed request/response interface plus a 128-bit canonical cache key.
//
// The key is a *fingerprint*, not a proof of semantic equality: spec
// structure (domains, bit widths, op costs) is hashed exactly, and the
// dependence relation — a black-box std::function — is hashed by
// enumerating deps at a deterministic sample of domain points (the same
// trick the autotuner's causality pre-check uses).  Two specs that agree
// on every sampled edge but differ elsewhere would collide; callers that
// synthesize adversarial spec families can raise `sample_points` up to
// the domain size for an exact edge hash.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/pipeline.hpp"
#include "fm/search.hpp"
#include "fm/spec.hpp"
#include "fm/strategy/strategy.hpp"
#include "noc/mesh.hpp"

namespace harmony::serve {

enum class RequestKind : std::uint8_t {
  kCostEval,      ///< price one (spec, AffineMap) pair: fm::evaluate_cost
  kLegality,      ///< check one (spec, AffineMap) pair: fm::verify
  kTune,          ///< autotune the mapping: fm::search_affine
  kPipelineTune,  ///< tune a multi-kernel DAG: fm::tune_pipeline_*
};

[[nodiscard]] const char* to_string(RequestKind kind);

/// Hashable subset of fm::InputHome (kDistributed carries an arbitrary
/// closure and cannot be fingerprinted, so the service does not accept it).
struct InputPlacement {
  enum class Kind : std::uint8_t { kDram, kPe } kind = Kind::kDram;
  noc::Coord pe{};

  [[nodiscard]] static InputPlacement dram() { return {}; }
  [[nodiscard]] static InputPlacement at(noc::Coord c) {
    return InputPlacement{Kind::kPe, c};
  }
  [[nodiscard]] fm::InputHome to_home() const {
    return kind == Kind::kDram ? fm::InputHome::dram()
                               : fm::InputHome::at(pe);
  }
};

struct Request {
  RequestKind kind = RequestKind::kCostEval;
  /// The function under query; shared so in-flight work keeps it alive
  /// after the submitting thread moves on.  Must have exactly one
  /// computed tensor (the AffineMap family maps a single tensor).
  std::shared_ptr<const fm::FunctionSpec> spec;
  /// Target machine; defaults to a 1x1 grid (callers always set this).
  fm::MachineConfig machine = fm::make_machine(1, 1);
  fm::FigureOfMerit fom = fm::FigureOfMerit::kEnergyDelay;
  /// Input-tensor homes in spec->input_tensors() order; missing trailing
  /// entries default to DRAM.
  std::vector<InputPlacement> inputs;
  /// kCostEval / kLegality: the candidate map on the computed tensor.
  fm::AffineMap map;
  /// kLegality: verifier options.
  fm::VerifyOptions verify;
  /// kTune: search options.  `search.cancel` is chained with the
  /// service's deadline check; it, `search.resume_from`, and the
  /// parallel-backend knobs (`search.scheduler` / `num_workers` /
  /// `grain` are overridden by the service anyway) are excluded from
  /// the cache key.
  fm::SearchOptions search;
  /// kTune: which searcher answers the tune.  kExhaustive (the default)
  /// runs fm::search_affine with `search`; kAnneal / kBeam run
  /// fm::search_table over the non-affine TableMap space with
  /// `strategy_opts`.  Part of the cache key.
  fm::StrategyKind strategy = fm::StrategyKind::kExhaustive;
  /// kTune with strategy != kExhaustive: stochastic-search budget and
  /// seeds.  Result-shaping fields are cache-keyed; `cancel`,
  /// `scheduler`, `num_workers`, and `compiled` are service-owned and
  /// excluded, like their SearchOptions counterparts.
  fm::StrategyOptions strategy_opts;
  /// kPipelineTune: the stage DAG under tuning (spec stays null).  The
  /// per-stage searcher is `strategy` with `search` / `strategy_opts` as
  /// the stage templates, exactly like kTune; `fom` ranks both the stage
  /// searches and the chain total.  Cacheable unless an external stage
  /// input carries a distributed home (an arbitrary closure cannot be
  /// fingerprinted — such requests run uncached).
  std::shared_ptr<const fm::Pipeline> pipeline;
  /// kPipelineTune: co-optimizing tuner (tune_pipeline_paired) when
  /// true, the greedy stage-by-stage baseline when false.
  bool pipeline_paired = true;
  /// kPipelineTune: candidates per stage the co-tuner probes consumers
  /// with (fm::PipelineOptions::pair_candidates).
  std::size_t pipeline_pair_candidates = 4;
  /// kTune: fork-join lanes this tune may spread over on the service's
  /// shared scheduler.  0 means "up to the service cap"
  /// (ServiceConfig::max_tune_workers); nonzero is clamped to that cap.
  /// Excluded from the cache key — the parallel merge is deterministic,
  /// so lane count never changes the answer.
  unsigned tune_workers = 0;
  /// Per-request completion deadline; zero means "use the service
  /// default" (which may itself be none).  A tune that reaches its
  /// deadline answers with the autotuner's best-so-far frontier
  /// (Response::deadline_cut) instead of failing.
  std::chrono::nanoseconds deadline{0};
};

enum class Status : std::uint8_t {
  kOk,        ///< executed (possibly deadline-cut for tunes)
  kRejected,  ///< admission queue full or service shutting down; see
              ///< Response::retry_after
  kError,     ///< the oracle threw; see Response::error
};

struct Response {
  Status status = Status::kOk;
  RequestKind kind = RequestKind::kCostEval;
  bool cache_hit = false;
  /// Tune only: the deadline fired before the search space was exhausted;
  /// `search.best` is the best legal mapping found so far.
  bool deadline_cut = false;
  fm::CostReport cost;          ///< kCostEval; also the best tune cost
  fm::LegalityReport legality;  ///< kLegality
  fm::SearchResult search;      ///< kTune (strategy == kExhaustive)
  /// kTune with strategy == kAnneal / kBeam: the stochastic search's
  /// winner (TableMap), full re-scored cost, and move counters.
  fm::StrategyResult strategy;
  /// kPipelineTune: per-stage winners, chain totals (critical-path
  /// makespan), and the co-tuner's probe count.  `cost` mirrors
  /// `pipeline.total`.
  fm::PipelineResult pipeline;
  /// kTune: mapping-linter diagnostics (analyze::lint_mapping) for the
  /// best mapping found — warnings a merit number alone would hide.
  std::vector<analyze::Diagnostic> lint;
  /// kTune with ServiceConfig::check_exec: the winner's execution
  /// witness was replayed through analyze::ExecChecker.  `exec` holds
  /// any EXEC axiom violations (empty = the independent relational
  /// model agrees the winner is legal).
  bool exec_checked = false;
  std::vector<analyze::Diagnostic> exec;
  std::string error;            ///< kError
  /// Submit-to-response time as observed by this waiter.
  std::chrono::nanoseconds latency{0};
  /// kRejected: suggested client backoff before retrying.
  std::chrono::nanoseconds retry_after{0};

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// 128-bit cache key (two independently mixed 64-bit streams; the pair
/// makes accidental collision odds negligible at serving cache sizes).
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// True for requests whose responses are pure functions of the key and
/// therefore memoizable.  All three kinds qualify; a deadline-cut tune
/// result is nevertheless *stored* only when the search ran to
/// exhaustion (service.cpp), so a short deadline can never poison the
/// cache for a later, more patient caller.
[[nodiscard]] bool cacheable(const Request& req);

/// Canonical key over (kind, spec structure, sampled dependence edges,
/// input placements, machine config, FoM, and the kind-specific payload:
/// AffineMap coefficients, verify options, or search-space knobs).
/// Stable across processes and runs — no pointer values, no iteration
/// order dependence.
[[nodiscard]] CacheKey make_cache_key(const Request& req,
                                      std::size_t sample_points = 32);

/// Key over only what fm::compile_spec consumes: spec structure, sampled
/// dependence edges, machine config, and input placements.  Deliberately
/// coarser than make_cache_key — two tunes that differ in FoM or search
/// knobs share one CompiledSpec, so the service's compile cache can hand
/// both the same flat tables.  Tagged so it can never alias a result key.
[[nodiscard]] CacheKey make_compile_key(const Request& req,
                                        std::size_t sample_points = 32);

/// Compile key for one pipeline stage: stage spec structure, machine,
/// and the resolved-input-home fingerprint the pipeline tuner reports
/// (fm::PipelineOptions::compile).  Producer-fed stages recompile when
/// — and only when — the producer's committed layout changes, and two
/// pipeline tunes sharing a stage triple share its flat tables.  Tagged
/// so it can never alias a result key or a single-spec compile key.
[[nodiscard]] CacheKey make_stage_compile_key(const Request& req,
                                              std::size_t stage,
                                              std::uint64_t home_fingerprint,
                                              std::size_t sample_points = 32);

}  // namespace harmony::serve
