#include "serve/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace harmony::serve {
namespace {

// One placement point per (seed, shard, vnode).  SplitMix64 finalization
// over the packed identity gives well-spread, history-independent points.
std::uint64_t vnode_point(std::uint64_t seed, std::uint64_t shard,
                          std::uint64_t vnode) {
  SplitMix64 mix(seed ^ (shard * 0x9e3779b97f4a7c15ULL) ^
                          (vnode * 0xbf58476d1ce4e5b9ULL));
  return mix.next();
}

}  // namespace

HashRing::HashRing(RingConfig cfg) : cfg_(cfg) {
  if (cfg_.vnodes == 0) {
    throw std::invalid_argument("HashRing: vnodes must be >= 1");
  }
}

std::size_t HashRing::add_shard() {
  const std::size_t shard = active_.size();
  nodes_.reserve(nodes_.size() + cfg_.vnodes);
  for (std::size_t v = 0; v < cfg_.vnodes; ++v) {
    nodes_.push_back(Node{vnode_point(cfg_.seed, shard, v),
                          static_cast<std::uint32_t>(shard)});
  }
  std::sort(nodes_.begin(), nodes_.end(),
            [](const Node& a, const Node& b) {
              // Tie-break on shard id so placement stays deterministic
              // even in the astronomically unlikely point collision.
              return a.point != b.point ? a.point < b.point
                                        : a.shard < b.shard;
            });
  active_.push_back(1);
  return shard;
}

void HashRing::set_active(std::size_t shard, bool active) {
  if (shard >= active_.size()) {
    throw std::out_of_range("HashRing::set_active: no such shard");
  }
  active_[shard] = active ? 1 : 0;
}

bool HashRing::active(std::size_t shard) const {
  if (shard >= active_.size()) {
    throw std::out_of_range("HashRing::active: no such shard");
  }
  return active_[shard] != 0;
}

std::size_t HashRing::num_active() const {
  std::size_t n = 0;
  for (char a : active_) n += a != 0 ? 1 : 0;
  return n;
}

std::uint64_t HashRing::key_point(const CacheKey& key) {
  // The 128-bit key is already two finalized fingerprint streams; fold
  // them through one more SplitMix64 round so ring position is not
  // literally key.hi (which other components use for cache sharding —
  // reusing it verbatim would correlate ring placement with the result
  // cache's internal shard choice).
  SplitMix64 mix(key.hi ^ (key.lo * 0x94d049bb133111ebULL));
  return mix.next();
}

std::size_t HashRing::lookup(const CacheKey& key) const {
  if (nodes_.empty()) {
    throw std::invalid_argument("HashRing::lookup: empty ring");
  }
  const std::uint64_t point = key_point(key);
  auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), point,
      [](const Node& n, std::uint64_t p) { return n.point < p; });
  // Clockwise walk from the first point >= key, wrapping, skipping
  // drained shards.  Bounded by one full lap.
  for (std::size_t hops = 0; hops < nodes_.size(); ++hops, ++it) {
    if (it == nodes_.end()) it = nodes_.begin();
    if (active_[it->shard] != 0) return it->shard;
  }
  throw std::invalid_argument("HashRing::lookup: no active shards");
}

}  // namespace harmony::serve
