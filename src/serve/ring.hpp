// Consistent-hash ring for the distributed serve tier (DESIGN.md §17).
//
// The router spreads compile/result keys across worker shards, and the
// one property that makes per-shard affinity caches pay is *stability*:
// when the shard set changes (drain, join, crash-restart), only the keys
// that must move do.  A consistent-hash ring with virtual nodes gives
// exactly that — adding one shard to N moves an expected K/(N+1) of K
// keys (all of them *to* the new shard), and removing a shard moves only
// the keys it owned.  Virtual nodes (default 64 per shard) smooth the
// arc lengths so the load split stays within a few tens of percent of
// uniform; both bounds are pinned by tests/serve_ring_test.cpp.
//
// Placement is a pure function of (seed, shard index, vnode index), so
// two processes that build the ring from the same configuration agree on
// every key's owner without exchanging a byte — the property a restarted
// router relies on to keep warm shards warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace harmony::serve {

struct RingConfig {
  /// Virtual nodes per shard.  More vnodes = smoother balance at the
  /// cost of a larger (still tiny) sorted point table.
  std::size_t vnodes = 64;
  /// Seed for the vnode placement hash; part of the ring's identity —
  /// two rings agree on placement iff they share seed, vnodes, and the
  /// shard count.
  std::uint64_t seed = 0x5a17ed1e5ULL;
};

/// The ring itself: shards are dense indices 0..N-1, each owning
/// `vnodes` pseudo-random points on a 64-bit circle.  A key belongs to
/// the first *active* point clockwise from its hash.  Draining a shard
/// deactivates its points (lookups skip them; its keys fall through to
/// the next point clockwise — the bounded-movement rehash); rejoining
/// reactivates the same points, restoring the exact previous placement.
class HashRing {
 public:
  explicit HashRing(RingConfig cfg = {});

  /// Appends a shard and returns its index.  Point placement depends
  /// only on (seed, index, vnode), never on insertion history.
  std::size_t add_shard();

  /// Drain/rejoin hook: inactive shards are skipped by lookup().
  void set_active(std::size_t shard, bool active);
  [[nodiscard]] bool active(std::size_t shard) const;

  [[nodiscard]] std::size_t num_shards() const { return active_.size(); }
  [[nodiscard]] std::size_t num_active() const;

  /// Owner of `key` among active shards.  Throws InvalidArgument when
  /// the ring is empty or every shard is inactive.
  [[nodiscard]] std::size_t lookup(const CacheKey& key) const;

  /// The 64-bit circle position a key hashes to (exposed for tests).
  [[nodiscard]] static std::uint64_t key_point(const CacheKey& key);

 private:
  struct Node {
    std::uint64_t point;
    std::uint32_t shard;
  };

  RingConfig cfg_;
  std::vector<Node> nodes_;  ///< sorted by point
  std::vector<char> active_;
};

}  // namespace harmony::serve
