#include "serve/router.hpp"

#include <future>
#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"

namespace harmony::serve {

Router::Router(RouterConfig cfg) : cfg_(cfg), ring_(cfg.ring) {}

Router::~Router() { shutdown(); }

std::size_t Router::add_shard(std::string name,
                              std::shared_ptr<Channel> channel) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) throw std::logic_error("Router::add_shard after shutdown");
  const std::size_t shard = ring_.add_shard();
  auto s = std::make_unique<Shard>();
  s->name = std::move(name);
  s->channel = std::move(channel);
  shards_.push_back(std::move(s));
  outstanding_.push_back(0);
  stats_.per_shard.push_back(0);
  shards_.back()->reader = std::thread([this, shard] { reader_loop(shard); });
  return shard;
}

std::size_t Router::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

void Router::submit(const WireRequest& req, Callback on_reply) {
  const CacheKey key = routing_key(req);
  Writer w;
  encode(w, req);
  std::vector<std::uint8_t> body = w.take();

  std::uint64_t id = 0;
  std::shared_ptr<Channel> channel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || shards_.empty()) {
      WireResponse r;
      r.status = static_cast<std::uint8_t>(Status::kRejected);
      r.error = shards_.empty() ? "router has no shards"
                                : "router shutting down";
      on_reply(r);
      return;
    }
    // Coalesce: attach to an identical in-flight ask.  Deadline-carrying
    // requests opt out — their reply is shaped by the leader's budget.
    const bool coalesceable = cfg_.coalesce && req.deadline_ns == 0;
    if (coalesceable) {
      if (const auto it = inflight_.find(key); it != inflight_.end()) {
        pending_[it->second].waiters.push_back(std::move(on_reply));
        ++stats_.coalesced;
        return;
      }
    }

    std::size_t target = ring_.lookup(key);
    bool stolen = false;
    if (cfg_.enable_steal) {
      // Overflow steal: hot keys pile depth onto one shard; past the
      // margin, queue delay outweighs the affinity cache's savings.
      std::size_t least = target;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (ring_.active(s) && outstanding_[s] < outstanding_[least]) {
          least = s;
        }
      }
      if (least != target &&
          outstanding_[target] > outstanding_[least] + cfg_.steal_margin) {
        target = least;
        stolen = true;
        ++stats_.stolen;
      }
    }

    id = next_id_++;
    PendingAsk ask;
    ask.shard = target;
    ask.stolen = stolen;
    ask.coalesceable = coalesceable;
    ask.key = key;
    if (trace::enabled()) ask.begin_ns = trace::now_ns();
    ask.waiters.push_back(std::move(on_reply));
    pending_.emplace(id, std::move(ask));
    if (coalesceable) inflight_.emplace(key, id);
    ++outstanding_[target];
    ++stats_.routed;
    ++stats_.per_shard[target];
    channel = shards_[target]->channel;
  }

  // Send outside the lock: the reply cannot beat the send, and a slow
  // kernel buffer must not stall every other submitter.
  if (!channel->send(Frame{MsgType::kSubmit, id, std::move(body)})) {
    WireResponse r;
    r.status = static_cast<std::uint8_t>(Status::kError);
    r.error = "shard channel closed";
    finish_ask(id, std::move(r));
  }
}

WireResponse Router::call(const WireRequest& req) {
  std::promise<WireResponse> done;
  std::future<WireResponse> fut = done.get_future();
  submit(req, [&done](const WireResponse& r) { done.set_value(r); });
  return fut.get();
}

void Router::reader_loop(std::size_t shard) {
  trace::set_thread_name("serve-router");
  std::shared_ptr<Channel> channel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    channel = shards_[shard]->channel;
  }
  Frame frame;
  while (channel->recv(frame)) {
    if (frame.type == MsgType::kReply) {
      WireResponse resp;
      try {
        Reader r(frame.body);
        resp = decode_response(r);
        r.expect_end();
      } catch (const std::exception& e) {
        resp = WireResponse{};
        resp.status = static_cast<std::uint8_t>(Status::kError);
        resp.error = std::string("reply decode failed: ") + e.what();
      }
      finish_ask(frame.id, std::move(resp));
      continue;
    }
    // Control replies (kMetrics / kSnapshot / kRestored) rendezvous
    // with the blocked control() caller by id.
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = control_.find(frame.id); it != control_.end()) {
      it->second->frame = std::move(frame);
      it->second->done = true;
      control_cv_.notify_all();
    }
  }
  fail_shard(shard, "shard channel closed");
}

void Router::finish_ask(std::uint64_t id, WireResponse resp) {
  PendingAsk ask;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // already failed by fail_shard
    ask = std::move(it->second);
    pending_.erase(it);
    if (ask.coalesceable) {
      if (const auto inf = inflight_.find(ask.key);
          inf != inflight_.end() && inf->second == id) {
        inflight_.erase(inf);
      }
    }
    --outstanding_[ask.shard];
    drain_cv_.notify_all();
  }
  if (ask.begin_ns != 0 && trace::enabled()) {
    // Router half of the request lifecycle, joined to the shard span by
    // the correlation id; args carry (shard, stolen).
    trace::emit_span("serve_dist", "route", ask.begin_ns, trace::now_ns(),
                     id, static_cast<std::uint64_t>(ask.shard),
                     ask.stolen ? 1 : 0);
  }
  resp.shard = static_cast<std::uint32_t>(ask.shard);
  resp.stolen = ask.stolen;
  for (std::size_t i = 0; i < ask.waiters.size(); ++i) {
    WireResponse r = resp;
    r.coalesced = i > 0;
    ask.waiters[i](r);
  }
}

void Router::fail_shard(std::size_t shard, const std::string& reason) {
  std::vector<std::pair<std::uint64_t, WireResponse>> failed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, ask] : pending_) {
      if (ask.shard != shard) continue;
      WireResponse r;
      r.status = static_cast<std::uint8_t>(Status::kError);
      r.error = reason;
      failed.emplace_back(id, std::move(r));
    }
    // Unblock any control() caller waiting on this shard forever.
    control_cv_.notify_all();
  }
  for (auto& [id, resp] : failed) finish_ask(id, std::move(resp));
}

void Router::drain(std::size_t shard) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shard >= shards_.size()) {
    throw std::out_of_range("Router::drain: no such shard");
  }
  ring_.set_active(shard, false);
  // In-flight work finishes normally; new submits already rehash to the
  // ring successors.  Stolen asks count against their *target* shard,
  // so outstanding_[shard] covers everything this shard owes.
  drain_cv_.wait(lock, [&] { return outstanding_[shard] == 0; });
}

void Router::rejoin(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= shards_.size()) {
    throw std::out_of_range("Router::rejoin: no such shard");
  }
  ring_.set_active(shard, true);
}

Frame Router::control(std::size_t shard, MsgType send_type,
                      std::vector<std::uint8_t> body, MsgType want_type) {
  std::uint64_t id = 0;
  std::shared_ptr<Channel> channel;
  auto wait = std::make_shared<ControlWait>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shard >= shards_.size()) {
      throw std::out_of_range("Router::control: no such shard");
    }
    id = next_id_++;
    control_.emplace(id, wait);
    channel = shards_[shard]->channel;
  }
  if (!channel->send(Frame{send_type, id, std::move(body)})) {
    std::lock_guard<std::mutex> lock(mu_);
    control_.erase(id);
    throw WireError("Router::control: shard channel closed");
  }
  std::unique_lock<std::mutex> lock(mu_);
  control_cv_.wait(lock, [&] { return wait->done || shutdown_; });
  control_.erase(id);
  if (!wait->done) throw WireError("Router::control: shutdown during RPC");
  if (wait->frame.type != want_type) {
    throw WireError("Router::control: unexpected reply type");
  }
  return std::move(wait->frame);
}

std::vector<std::uint8_t> Router::snapshot_shard(std::size_t shard) {
  return control(shard, MsgType::kSnapshotGet, {}, MsgType::kSnapshot).body;
}

std::uint64_t Router::restore_shard(
    std::size_t shard, const std::vector<std::uint8_t>& snapshot) {
  Frame reply =
      control(shard, MsgType::kRestore, snapshot, MsgType::kRestored);
  Reader r(reply.body);
  const std::uint64_t restored = r.u64();
  r.expect_end();
  return restored;
}

WireMetrics Router::shard_metrics(std::size_t shard) {
  Frame reply = control(shard, MsgType::kMetricsGet, {}, MsgType::kMetrics);
  Reader r(reply.body);
  WireMetrics m = decode_metrics(r);
  r.expect_end();
  return m;
}

WireMetrics Router::fleet_metrics() {
  const std::size_t n = num_shards();
  WireMetrics fleet;
  fleet.latency_buckets.assign(LatencyHistogram::kNumBuckets, 0);
  for (std::size_t s = 0; s < n; ++s) {
    const WireMetrics m = shard_metrics(s);
    fleet.submitted += m.submitted;
    fleet.completed += m.completed;
    fleet.rejected += m.rejected;
    fleet.errors += m.errors;
    fleet.deadline_cut += m.deadline_cut;
    fleet.tunes += m.tunes;
    fleet.cache_hits += m.cache_hits;
    fleet.cache_misses += m.cache_misses;
    fleet.cache_entries += m.cache_entries;
    fleet.compile_hits += m.compile_hits;
    fleet.compile_misses += m.compile_misses;
    fleet.exec_checks += m.exec_checks;
    fleet.exec_failures += m.exec_failures;
    for (std::size_t b = 0;
         b < std::min(m.latency_buckets.size(), fleet.latency_buckets.size());
         ++b) {
      fleet.latency_buckets[b] += m.latency_buckets[b];
    }
  }
  return fleet;
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterStats s = stats_;
  s.outstanding = outstanding_;
  return s;
}

void Router::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    control_cv_.notify_all();
  }
  // Politely stop each worker loop, then close so readers see EOF and
  // fail any stragglers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : shards_) {
      s->channel->send(Frame{MsgType::kShutdown, 0, {}});
      s->channel->close();
    }
  }
  for (const auto& s : shards_) {
    if (s->reader.joinable()) s->reader.join();
  }
}

}  // namespace harmony::serve
