// Router front of the distributed serve tier (DESIGN.md §17).
//
// The router owns the consistent-hash ring and a Channel per worker
// shard.  submit() hashes the request's routing key to its *affinity*
// shard — the shard whose result and CompiledSpec caches have answered
// this key before — and sends one kSubmit frame; a per-shard reader
// thread matches kReply frames back to waiters by correlation id.
//
// Hot keys get two defenses:
//   * duplicate coalescing — a request whose key is already in flight
//     attaches to the leader's reply instead of re-asking the shard
//     (deadline-carrying requests opt out, exactly like the Service's
//     batch dedup: different patience deserves a different frontier);
//   * overflow stealing — when the affinity shard's outstanding count
//     exceeds the least-loaded active shard's by steal_margin, the
//     request routes to the least-loaded shard instead.  The stolen
//     shard computes the same pure function, so the reply is
//     semantically byte-identical (semantic_bytes; pinned by test) —
//     stealing trades cache affinity for queue depth, nothing else.
//
// drain(shard) removes a shard from rotation without dropping work:
// the ring deactivates it (its keys rehash to ring successors — the
// bounded-movement property), in-flight requests finish normally, and
// the call returns when the shard's outstanding count reaches zero.
// rejoin() reactivates the same ring points, restoring the exact
// pre-drain placement.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/ring.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"

namespace harmony::serve {

struct RouterConfig {
  RingConfig ring;
  /// Attach duplicate in-flight keys to one shard ask.
  bool coalesce = true;
  /// Steal to the least-loaded shard when the affinity shard is this
  /// many outstanding requests deeper.  0 steals on any imbalance;
  /// disable with enable_steal.
  std::uint64_t steal_margin = 8;
  bool enable_steal = true;
};

struct RouterStats {
  std::uint64_t routed = 0;     ///< frames sent to shards
  std::uint64_t coalesced = 0;  ///< waiters attached to an in-flight ask
  std::uint64_t stolen = 0;     ///< asks moved off their affinity shard
  std::vector<std::uint64_t> per_shard;    ///< asks sent per shard
  std::vector<std::uint64_t> outstanding;  ///< currently in flight
};

class Router {
 public:
  using Callback = std::function<void(const WireResponse&)>;

  explicit Router(RouterConfig cfg = {});
  ~Router();  // shutdown()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Registers a shard and starts its reader thread.  Shards must be
  /// added before the first submit; the returned index is the ring
  /// shard id.
  std::size_t add_shard(std::string name, std::shared_ptr<Channel> channel);

  /// Routes one request; `on_reply` runs on the shard's reader thread
  /// when the reply arrives (keep it cheap — the open-loop bench
  /// records a timestamp and returns).  The reply carries delivery
  /// metadata: shard, stolen, coalesced.
  void submit(const WireRequest& req, Callback on_reply);

  /// submit() + wait.
  [[nodiscard]] WireResponse call(const WireRequest& req);

  /// Stops routing to `shard` and blocks until its in-flight requests
  /// have all been answered.  Zero requests are dropped or errored by
  /// a drain (pinned by tests/serve_dist_test.cpp).
  void drain(std::size_t shard);

  /// Returns a drained shard to rotation (same ring points, same keys).
  void rejoin(std::size_t shard);

  /// Control RPCs (synchronous).
  [[nodiscard]] std::vector<std::uint8_t> snapshot_shard(std::size_t shard);
  std::uint64_t restore_shard(std::size_t shard,
                              const std::vector<std::uint8_t>& snapshot);
  [[nodiscard]] WireMetrics shard_metrics(std::size_t shard);

  /// Fleet-wide view: counters summed, latency buckets merged — so
  /// percentiles computed from it (via LatencyHistogram::add_counts)
  /// are true fleet percentiles, not averages of shard percentiles.
  [[nodiscard]] WireMetrics fleet_metrics();

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] std::size_t num_shards() const;

  /// Sends kShutdown to every shard, fails any stragglers, joins the
  /// readers.  Idempotent; called by the destructor.
  void shutdown();

 private:
  struct Shard {
    std::string name;
    std::shared_ptr<Channel> channel;
    std::thread reader;
  };

  struct PendingAsk {
    std::size_t shard = 0;
    bool stolen = false;
    bool coalesceable = false;
    CacheKey key;
    std::uint64_t begin_ns = 0;
    /// Leader first; coalesced followers appended.
    std::vector<Callback> waiters;
  };

  void reader_loop(std::size_t shard);
  void finish_ask(std::uint64_t id, WireResponse resp);
  /// Fails every pending ask routed to `shard` (reader saw EOF).
  void fail_shard(std::size_t shard, const std::string& reason);
  [[nodiscard]] Frame control(std::size_t shard, MsgType send_type,
                              std::vector<std::uint8_t> body,
                              MsgType want_type);

  RouterConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, PendingAsk> pending_;
  /// key -> in-flight correlation id (coalescing).
  std::unordered_map<CacheKey, std::uint64_t, CacheKeyHash> inflight_;
  /// Control RPC rendezvous: id -> reply frame slot.
  struct ControlWait {
    bool done = false;
    Frame frame;
  };
  std::unordered_map<std::uint64_t, std::shared_ptr<ControlWait>> control_;
  std::condition_variable control_cv_;
  std::vector<std::uint64_t> outstanding_;
  RouterStats stats_;
  bool shutdown_ = false;
};

}  // namespace harmony::serve
